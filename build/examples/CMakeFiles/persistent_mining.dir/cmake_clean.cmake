file(REMOVE_RECURSE
  "CMakeFiles/persistent_mining.dir/persistent_mining.cpp.o"
  "CMakeFiles/persistent_mining.dir/persistent_mining.cpp.o.d"
  "persistent_mining"
  "persistent_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
