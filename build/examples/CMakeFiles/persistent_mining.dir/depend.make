# Empty dependencies file for persistent_mining.
# This may be replaced when dependencies are built.
