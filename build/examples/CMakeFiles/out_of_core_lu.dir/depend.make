# Empty dependencies file for out_of_core_lu.
# This may be replaced when dependencies are built.
