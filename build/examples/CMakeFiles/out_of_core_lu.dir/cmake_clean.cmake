file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_lu.dir/out_of_core_lu.cpp.o"
  "CMakeFiles/out_of_core_lu.dir/out_of_core_lu.cpp.o.d"
  "out_of_core_lu"
  "out_of_core_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
