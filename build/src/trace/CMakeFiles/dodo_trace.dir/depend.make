# Empty dependencies file for dodo_trace.
# This may be replaced when dependencies are built.
