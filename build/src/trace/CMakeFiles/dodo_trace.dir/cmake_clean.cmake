file(REMOVE_RECURSE
  "CMakeFiles/dodo_trace.dir/memory_trace.cpp.o"
  "CMakeFiles/dodo_trace.dir/memory_trace.cpp.o.d"
  "libdodo_trace.a"
  "libdodo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
