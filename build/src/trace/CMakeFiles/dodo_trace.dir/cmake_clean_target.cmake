file(REMOVE_RECURSE
  "libdodo_trace.a"
)
