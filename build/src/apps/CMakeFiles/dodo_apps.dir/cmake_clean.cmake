file(REMOVE_RECURSE
  "CMakeFiles/dodo_apps.dir/block_io.cpp.o"
  "CMakeFiles/dodo_apps.dir/block_io.cpp.o.d"
  "CMakeFiles/dodo_apps.dir/dmine.cpp.o"
  "CMakeFiles/dodo_apps.dir/dmine.cpp.o.d"
  "CMakeFiles/dodo_apps.dir/lu.cpp.o"
  "CMakeFiles/dodo_apps.dir/lu.cpp.o.d"
  "CMakeFiles/dodo_apps.dir/synthetic.cpp.o"
  "CMakeFiles/dodo_apps.dir/synthetic.cpp.o.d"
  "libdodo_apps.a"
  "libdodo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
