
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/block_io.cpp" "src/apps/CMakeFiles/dodo_apps.dir/block_io.cpp.o" "gcc" "src/apps/CMakeFiles/dodo_apps.dir/block_io.cpp.o.d"
  "/root/repo/src/apps/dmine.cpp" "src/apps/CMakeFiles/dodo_apps.dir/dmine.cpp.o" "gcc" "src/apps/CMakeFiles/dodo_apps.dir/dmine.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/dodo_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/dodo_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/apps/CMakeFiles/dodo_apps.dir/synthetic.cpp.o" "gcc" "src/apps/CMakeFiles/dodo_apps.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/dodo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/manage/CMakeFiles/dodo_manage.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dodo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/dodo_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dodo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dodo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dodo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dodo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
