file(REMOVE_RECURSE
  "libdodo_apps.a"
)
