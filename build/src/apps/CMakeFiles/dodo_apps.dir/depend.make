# Empty dependencies file for dodo_apps.
# This may be replaced when dependencies are built.
