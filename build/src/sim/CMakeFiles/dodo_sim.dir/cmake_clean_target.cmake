file(REMOVE_RECURSE
  "libdodo_sim.a"
)
