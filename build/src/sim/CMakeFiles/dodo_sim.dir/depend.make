# Empty dependencies file for dodo_sim.
# This may be replaced when dependencies are built.
