file(REMOVE_RECURSE
  "CMakeFiles/dodo_sim.dir/simulator.cpp.o"
  "CMakeFiles/dodo_sim.dir/simulator.cpp.o.d"
  "libdodo_sim.a"
  "libdodo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
