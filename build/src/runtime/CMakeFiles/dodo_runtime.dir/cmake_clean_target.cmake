file(REMOVE_RECURSE
  "libdodo_runtime.a"
)
