file(REMOVE_RECURSE
  "CMakeFiles/dodo_runtime.dir/dodo_client.cpp.o"
  "CMakeFiles/dodo_runtime.dir/dodo_client.cpp.o.d"
  "libdodo_runtime.a"
  "libdodo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
