# Empty dependencies file for dodo_runtime.
# This may be replaced when dependencies are built.
