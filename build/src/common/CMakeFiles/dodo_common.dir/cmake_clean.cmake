file(REMOVE_RECURSE
  "CMakeFiles/dodo_common.dir/log.cpp.o"
  "CMakeFiles/dodo_common.dir/log.cpp.o.d"
  "CMakeFiles/dodo_common.dir/rng.cpp.o"
  "CMakeFiles/dodo_common.dir/rng.cpp.o.d"
  "CMakeFiles/dodo_common.dir/stats.cpp.o"
  "CMakeFiles/dodo_common.dir/stats.cpp.o.d"
  "CMakeFiles/dodo_common.dir/status.cpp.o"
  "CMakeFiles/dodo_common.dir/status.cpp.o.d"
  "libdodo_common.a"
  "libdodo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
