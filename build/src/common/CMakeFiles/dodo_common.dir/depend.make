# Empty dependencies file for dodo_common.
# This may be replaced when dependencies are built.
