file(REMOVE_RECURSE
  "libdodo_common.a"
)
