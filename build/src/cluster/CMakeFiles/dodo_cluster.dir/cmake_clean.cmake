file(REMOVE_RECURSE
  "CMakeFiles/dodo_cluster.dir/cluster.cpp.o"
  "CMakeFiles/dodo_cluster.dir/cluster.cpp.o.d"
  "libdodo_cluster.a"
  "libdodo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
