file(REMOVE_RECURSE
  "libdodo_cluster.a"
)
