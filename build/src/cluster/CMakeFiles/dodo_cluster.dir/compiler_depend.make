# Empty compiler generated dependencies file for dodo_cluster.
# This may be replaced when dependencies are built.
