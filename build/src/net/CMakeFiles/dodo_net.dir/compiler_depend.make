# Empty compiler generated dependencies file for dodo_net.
# This may be replaced when dependencies are built.
