file(REMOVE_RECURSE
  "libdodo_net.a"
)
