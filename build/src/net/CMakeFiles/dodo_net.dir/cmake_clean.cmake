file(REMOVE_RECURSE
  "CMakeFiles/dodo_net.dir/bulk.cpp.o"
  "CMakeFiles/dodo_net.dir/bulk.cpp.o.d"
  "CMakeFiles/dodo_net.dir/transport.cpp.o"
  "CMakeFiles/dodo_net.dir/transport.cpp.o.d"
  "libdodo_net.a"
  "libdodo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
