file(REMOVE_RECURSE
  "CMakeFiles/dodo_disk.dir/disk_model.cpp.o"
  "CMakeFiles/dodo_disk.dir/disk_model.cpp.o.d"
  "CMakeFiles/dodo_disk.dir/file_cache.cpp.o"
  "CMakeFiles/dodo_disk.dir/file_cache.cpp.o.d"
  "CMakeFiles/dodo_disk.dir/filesystem.cpp.o"
  "CMakeFiles/dodo_disk.dir/filesystem.cpp.o.d"
  "CMakeFiles/dodo_disk.dir/store.cpp.o"
  "CMakeFiles/dodo_disk.dir/store.cpp.o.d"
  "libdodo_disk.a"
  "libdodo_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
