file(REMOVE_RECURSE
  "libdodo_disk.a"
)
