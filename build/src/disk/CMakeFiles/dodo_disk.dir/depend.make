# Empty dependencies file for dodo_disk.
# This may be replaced when dependencies are built.
