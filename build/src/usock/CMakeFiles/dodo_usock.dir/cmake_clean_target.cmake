file(REMOVE_RECURSE
  "libdodo_usock.a"
)
