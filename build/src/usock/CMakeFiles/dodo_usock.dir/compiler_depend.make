# Empty compiler generated dependencies file for dodo_usock.
# This may be replaced when dependencies are built.
