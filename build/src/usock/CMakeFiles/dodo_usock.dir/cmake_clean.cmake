file(REMOVE_RECURSE
  "CMakeFiles/dodo_usock.dir/usocket.cpp.o"
  "CMakeFiles/dodo_usock.dir/usocket.cpp.o.d"
  "libdodo_usock.a"
  "libdodo_usock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_usock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
