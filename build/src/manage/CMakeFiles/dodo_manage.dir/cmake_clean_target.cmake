file(REMOVE_RECURSE
  "libdodo_manage.a"
)
