file(REMOVE_RECURSE
  "CMakeFiles/dodo_manage.dir/region_manager.cpp.o"
  "CMakeFiles/dodo_manage.dir/region_manager.cpp.o.d"
  "libdodo_manage.a"
  "libdodo_manage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_manage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
