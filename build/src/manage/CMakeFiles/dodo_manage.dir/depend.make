# Empty dependencies file for dodo_manage.
# This may be replaced when dependencies are built.
