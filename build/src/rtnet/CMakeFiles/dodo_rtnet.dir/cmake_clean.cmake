file(REMOVE_RECURSE
  "CMakeFiles/dodo_rtnet.dir/rt_udp.cpp.o"
  "CMakeFiles/dodo_rtnet.dir/rt_udp.cpp.o.d"
  "libdodo_rtnet.a"
  "libdodo_rtnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_rtnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
