file(REMOVE_RECURSE
  "libdodo_rtnet.a"
)
