# Empty dependencies file for dodo_rtnet.
# This may be replaced when dependencies are built.
