# Empty dependencies file for dodo_core.
# This may be replaced when dependencies are built.
