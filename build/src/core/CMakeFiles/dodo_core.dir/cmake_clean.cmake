file(REMOVE_RECURSE
  "CMakeFiles/dodo_core.dir/buddy_allocator.cpp.o"
  "CMakeFiles/dodo_core.dir/buddy_allocator.cpp.o.d"
  "CMakeFiles/dodo_core.dir/cmd.cpp.o"
  "CMakeFiles/dodo_core.dir/cmd.cpp.o.d"
  "CMakeFiles/dodo_core.dir/imd.cpp.o"
  "CMakeFiles/dodo_core.dir/imd.cpp.o.d"
  "CMakeFiles/dodo_core.dir/pool_allocator.cpp.o"
  "CMakeFiles/dodo_core.dir/pool_allocator.cpp.o.d"
  "CMakeFiles/dodo_core.dir/rmd.cpp.o"
  "CMakeFiles/dodo_core.dir/rmd.cpp.o.d"
  "libdodo_core.a"
  "libdodo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
