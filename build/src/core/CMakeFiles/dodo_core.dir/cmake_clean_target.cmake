file(REMOVE_RECURSE
  "libdodo_core.a"
)
