# Empty dependencies file for test_rtnet.
# This may be replaced when dependencies are built.
