file(REMOVE_RECURSE
  "CMakeFiles/test_rtnet.dir/test_rtnet.cpp.o"
  "CMakeFiles/test_rtnet.dir/test_rtnet.cpp.o.d"
  "test_rtnet"
  "test_rtnet.pdb"
  "test_rtnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
