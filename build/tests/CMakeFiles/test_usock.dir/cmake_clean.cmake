file(REMOVE_RECURSE
  "CMakeFiles/test_usock.dir/test_usock.cpp.o"
  "CMakeFiles/test_usock.dir/test_usock.cpp.o.d"
  "test_usock"
  "test_usock.pdb"
  "test_usock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
