# Empty compiler generated dependencies file for test_usock.
# This may be replaced when dependencies are built.
