file(REMOVE_RECURSE
  "CMakeFiles/test_manage.dir/test_manage.cpp.o"
  "CMakeFiles/test_manage.dir/test_manage.cpp.o.d"
  "test_manage"
  "test_manage.pdb"
  "test_manage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
