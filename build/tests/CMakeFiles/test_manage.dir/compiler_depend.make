# Empty compiler generated dependencies file for test_manage.
# This may be replaced when dependencies are built.
