# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_disk[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_allocator[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_manage[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_usock[1]_include.cmake")
include("/root/repo/build/tests/test_rtnet[1]_include.cmake")
include("/root/repo/build/tests/test_buddy[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
