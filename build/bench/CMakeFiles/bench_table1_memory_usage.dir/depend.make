# Empty dependencies file for bench_table1_memory_usage.
# This may be replaced when dependencies are built.
