# Empty compiler generated dependencies file for bench_fig1_cluster_availability.
# This may be replaced when dependencies are built.
