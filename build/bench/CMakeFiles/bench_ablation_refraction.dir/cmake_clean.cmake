file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_refraction.dir/bench_ablation_refraction.cpp.o"
  "CMakeFiles/bench_ablation_refraction.dir/bench_ablation_refraction.cpp.o.d"
  "bench_ablation_refraction"
  "bench_ablation_refraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_refraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
