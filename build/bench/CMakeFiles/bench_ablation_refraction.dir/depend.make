# Empty dependencies file for bench_ablation_refraction.
# This may be replaced when dependencies are built.
