# Empty dependencies file for bench_fig2_host_availability.
# This may be replaced when dependencies are built.
