file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_host_availability.dir/bench_fig2_host_availability.cpp.o"
  "CMakeFiles/bench_fig2_host_availability.dir/bench_fig2_host_availability.cpp.o.d"
  "bench_fig2_host_availability"
  "bench_fig2_host_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_host_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
