file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_synthetics.dir/bench_fig8_synthetics.cpp.o"
  "CMakeFiles/bench_fig8_synthetics.dir/bench_fig8_synthetics.cpp.o.d"
  "bench_fig8_synthetics"
  "bench_fig8_synthetics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_synthetics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
