# Empty dependencies file for bench_fig8_synthetics.
# This may be replaced when dependencies are built.
