// Flash-crowd harvest economics (§14): the cluster idles long enough to be
// harvested deeply, then every owner returns within a few seconds — the 9am
// arrival wave from the trace module's synthesize_flash_crowd. Each return
// ramps memory before the console goes busy, so a lease-enabled deployment
// sees graded pressure first and sheds its coldest regions incrementally
// (proactive re-replication keeps affected fragments served from memory),
// while a lease-off deployment keeps everything until the console signal
// kills each imd wholesale.
//
// The exported scalars are the acceptance numbers for the chaos battery:
// mread p99 in the steady window and in the mass-reclamation window (the
// ramp, before any console goes busy), per arm. The urgent storm after the
// consoles light up is the paper's wholesale degradation — byte-exact but
// disk-bound — and is deliberately outside the reclaim window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "trace/memory_trace.hpp"

namespace {

using namespace dodo;
using dodo::operator""_KiB;
using dodo::operator""_MiB;

enum class Mode : long { kWholesale = 0, kLeases = 1 };

struct TimedRead {
  SimTime start = 0;
  Duration latency = 0;
};

/// Exact p99 (nth_element) of read latencies started in [lo, hi); the
/// shared LatencyHistogram buckets are too coarse for a 5x bound.
Duration window_p99(const std::vector<TimedRead>& timeline, SimTime lo,
                    SimTime hi) {
  std::vector<Duration> lat;
  for (const TimedRead& r : timeline) {
    if (r.start >= lo && r.start < hi) lat.push_back(r.latency);
  }
  if (lat.empty()) return 0;
  const auto idx = static_cast<std::ptrdiff_t>(
      (lat.size() - 1) * 99 / 100);
  std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
  return lat[idx];
}

void BM_FlashCrowd(benchmark::State& state) {
  const auto mode = static_cast<Mode>(state.range(0));
  const bool leases = mode == Mode::kLeases;

  // Compressed flash crowd: warm harvest until 30s, owners back within 5s,
  // a 10s memory ramp with quiet consoles, 30s of console-busy, then gone.
  trace::FlashCrowdConfig tcfg;
  tcfg.sample_interval = seconds(1.0);
  tcfg.duration = seconds(120.0);
  tcfg.crowd_at = seconds(30.0);
  tcfg.arrival_spread = seconds(5.0);
  tcfg.ramp_len = seconds(10.0);
  tcfg.busy_len = seconds(30.0);
  tcfg.seed = 17;
  const std::vector<trace::HostClass> classes(8, trace::HostClass::k128);
  const auto traces = trace::synthesize_flash_crowd(classes, tcfg);

  cluster::ClusterConfig cfg = dodo::bench::paper_config(
      /*use_dodo=*/true, /*unet=*/true, manage::Policy::kLru, 17);
  cfg.imd_hosts = static_cast<int>(traces.size());
  cfg.imd_pool = 0;  // derive from the trace, so graded pressure can bite
  // Chaos-battery proportions, unscaled: the dataset is small enough that
  // reads are dominated by the remote data plane, not local-cache churn —
  // that is the latency the reclamation window is supposed to perturb.
  cfg.local_cache = 512_KiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.rmd.idle_threshold = seconds(10.0);  // re-recruit within the run
  if (leases) {
    cfg.imd.lease_epochs = true;
    cfg.cmd.lease_epochs = true;
    cfg.cmd.keepalive_interval = millis(500);
    cfg.imd.lease_ttl = seconds(4.0);
    cfg.imd.lease_grace = millis(2500);
    cfg.client.refraction = millis(300);
  }
  std::vector<std::unique_ptr<trace::TraceActivity>> activities;
  for (const auto& tr : traces) {
    activities.push_back(std::make_unique<trace::TraceActivity>(tr));
  }
  for (const auto& a : activities) cfg.host_activity.push_back(a.get());

  const Bytes64 dataset = 2_MiB;
  const Bytes64 block = 32_KiB;

  auto& exporter = dodo::bench::json_exporter("flashcrowd");
  std::vector<TimedRead> timeline;
  std::uint64_t shrinks = 0, notices = 0, proactive = 0, fallbacks = 0;
  for (auto _ : state) {
    timeline.clear();
    cluster::Cluster c(cfg);
    const int fd = c.create_dataset("data", dataset);
    apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
    // The graded counters live in the per-epoch imd metrics, which the
    // urgent eviction destroys with the daemon — snapshot just before the
    // earliest console can go busy (crowd_at + ramp_len).
    obs::MetricsSnapshot mid;
    bool captured_mid = false;
    const SimTime mid_at = tcfg.crowd_at + tcfg.ramp_len - millis(500);
    c.run_app(
        [&](cluster::Cluster& cl) -> sim::Co<void> {
          // Sweep with per-block compute until well past the crowd's exit,
          // logging (start, latency) per block read.
          while (cl.sim().now() < seconds(90.0)) {
            for (Bytes64 off = 0; off < dataset; off += block) {
              const SimTime t0 = cl.sim().now();
              co_await io.read(off, nullptr, block);
              timeline.push_back(TimedRead{t0, cl.sim().now() - t0});
              if (!captured_mid && cl.sim().now() >= mid_at) {
                mid = cl.metrics_snapshot();
                captured_mid = true;
              }
              co_await cl.sim().sleep(millis(5));
              if (cl.sim().now() >= seconds(90.0)) break;
            }
          }
          co_await io.finish(false);
        },
        3600_s);
    shrinks = mid.counter_value("rmd.pressure_shrinks");
    // Victims that re-home fast enough are freed by the cmd before their
    // fence ever fires, so the imd's fence-reclaim counter can stay at
    // zero on a healthy run; the cmd-side notice counter (which also
    // survives the urgent evictions) is the stable measure of victims.
    notices = mid.counter_value("cmd.lease_expiry_notices");
    proactive = mid.counter_value("cmd.proactive_copies");
    fallbacks = mid.counter_value("client.disk_fallbacks");
    exporter.record_traces(c);
    // Per-arm timeline: the reclaim window shows up as a curve — disk
    // fallbacks and lease notices spike between crowd_at and crowd_at+ramp.
    exporter.record_timeline(c, leases ? "leases" : "wholesale");
    exporter.absorb(c.metrics_snapshot());
  }

  // Steady: warm pool before any owner is back. Reclaim: the graded window
  // between the first return and the earliest console going busy. Storm:
  // the consoles are live and every imd dies wholesale (both arms pay it).
  const Duration steady = window_p99(timeline, seconds(10.0), tcfg.crowd_at);
  const Duration reclaim =
      window_p99(timeline, tcfg.crowd_at, tcfg.crowd_at + tcfg.ramp_len);
  const Duration storm = window_p99(
      timeline, tcfg.crowd_at + tcfg.ramp_len,
      tcfg.crowd_at + tcfg.arrival_spread + tcfg.ramp_len + tcfg.busy_len);
  const char* key = leases ? "flashcrowd.leases" : "flashcrowd.wholesale";
  exporter.set_scalar(std::string(key) + ".steady_p99_us", steady / 1000);
  exporter.set_scalar(std::string(key) + ".reclaim_p99_us", reclaim / 1000);
  exporter.set_scalar(std::string(key) + ".storm_p99_us", storm / 1000);
  if (steady > 0) {
    exporter.set_milli(std::string(key) + ".reclaim_over_steady",
                       static_cast<double>(reclaim) /
                           static_cast<double>(steady));
  }

  state.counters["steady_p99_us"] = static_cast<double>(steady) / 1e3;
  state.counters["reclaim_p99_us"] = static_cast<double>(reclaim) / 1e3;
  state.counters["storm_p99_us"] = static_cast<double>(storm) / 1e3;
  state.counters["shrinks"] = static_cast<double>(shrinks);

  dodo::bench::print_header_once(
      "Flash crowd: every owner returns at once (8 hosts, graded ramp)",
      "mode        steady-p99(us) reclaim-p99(us) storm-p99(us)  shrinks  "
      "notices  proactive  disk-fallbacks   (counters at crowd_at+ramp)");
  std::printf("%-11s %14.0f %15.0f %13.0f %8llu %8llu %10llu %15llu\n",
              leases ? "leases" : "wholesale",
              static_cast<double>(steady) / 1e3,
              static_cast<double>(reclaim) / 1e3,
              static_cast<double>(storm) / 1e3,
              static_cast<unsigned long long>(shrinks),
              static_cast<unsigned long long>(notices),
              static_cast<unsigned long long>(proactive),
              static_cast<unsigned long long>(fallbacks));
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_FlashCrowd)
    ->Arg(static_cast<long>(Mode::kWholesale))
    ->Arg(static_cast<long>(Mode::kLeases))
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
