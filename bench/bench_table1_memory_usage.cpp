// Table 1: average amount of memory used for different purposes, per host
// memory class — mean (stddev) of kernel, file-cache, process, and available
// memory in KB. Regenerated from the synthesized Section-2 traces and
// printed next to the paper's published values.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "trace/memory_trace.hpp"

namespace {

using namespace dodo;
using trace::HostClass;

void BM_Table1(benchmark::State& state) {
  const auto cls = static_cast<HostClass>(state.range(0));
  const auto paper = trace::paper_stats(cls);
  trace::TraceConfig cfg;
  trace::Table1Row row;
  for (auto _ : state) {
    row = trace::summarize_class(cls, 24, cfg, 2024);
  }
  {
    auto& exporter = dodo::bench::json_exporter("table1_memory_usage");
    dodo::bench::record_reference_trace(exporter);
    const std::string key =
        "table1." + std::to_string(paper.total_kb / 1024) + "mb";
    exporter.set_scalar(key + ".avail_mean_kb",
                        static_cast<std::int64_t>(std::llround(
                            row.avail.mean())));
    exporter.set_scalar(key + ".avail_sd_kb",
                        static_cast<std::int64_t>(std::llround(
                            row.avail.stddev())));
    exporter.set_scalar(key + ".fcache_mean_kb",
                        static_cast<std::int64_t>(std::llround(
                            row.fcache.mean())));
  }
  state.counters["avail_mean_kb"] = row.avail.mean();
  state.counters["avail_sd_kb"] = row.avail.stddev();

  static bool header = false;
  if (!header) {
    std::printf(
        "\n=== Table 1: memory usage per host class, KB, mean (stddev) ===\n"
        "%-10s %-22s %-22s %-22s %-22s\n",
        "host", "kernel", "file-cache", "process", "available");
    header = true;
  }
  auto cell = [](const RunningStats& s, double pm, double ps) {
    static thread_local char buf[4][64];
    static int slot = 0;
    slot = (slot + 1) % 4;
    std::snprintf(buf[slot], sizeof(buf[slot]), "%6.0f(%5.0f) p:%6.0f(%5.0f)",
                  s.mean(), s.stddev(), pm, ps);
    return buf[slot];
  };
  std::printf("%4lldMB     measured vs paper(p):\n",
              static_cast<long long>(paper.total_kb / 1024));
  std::printf("  kernel     %s\n",
              cell(row.kernel, paper.kernel_mean, paper.kernel_sd));
  std::printf("  file-cache %s\n",
              cell(row.fcache, paper.fcache_mean, paper.fcache_sd));
  std::printf("  process    %s\n",
              cell(row.proc, paper.proc_mean, paper.proc_sd));
  std::printf("  available  %s\n",
              cell(row.avail, paper.avail_mean, paper.avail_sd));
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Table1)
    ->Arg(static_cast<long>(HostClass::k32))
    ->Arg(static_cast<long>(HostClass::k64))
    ->Arg(static_cast<long>(HostClass::k128))
    ->Arg(static_cast<long>(HostClass::k256))
    ->Iterations(1);

BENCHMARK_MAIN();
