// Ablation: region-replacement policy (§4.5's motivation for first-in).
//
// Two workloads over the same Dodo cluster, three policies each:
//   multi-scan sequential (dmine/lu-like): first-in should win — LRU evicts
//       exactly the regions about to be re-used ("sequential flooding");
//   hotcold (skewed working set): LRU should win — first-in pins whatever
//       arrived first, hot or not.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace dodo;
using dodo::operator""_MiB;
using dodo::operator""_KiB;
using Pattern = apps::SyntheticConfig::Pattern;

const char* policy_name(manage::Policy p) {
  switch (p) {
    case manage::Policy::kLru:
      return "LRU";
    case manage::Policy::kMru:
      return "MRU";
    case manage::Policy::kFirstIn:
      return "first-in";
  }
  return "?";
}

void BM_Policy(benchmark::State& state) {
  const auto pattern = static_cast<Pattern>(state.range(0));
  const auto policy = static_cast<manage::Policy>(state.range(1));

  apps::SyntheticConfig s;
  s.pattern = pattern;
  s.dataset = dodo::bench::scaled(512_MiB);
  s.req_size = 64_KiB;
  s.iterations = 4;
  s.compute_per_req = 2 * kMillisecond;
  s.seed = 77;

  auto& exporter = dodo::bench::json_exporter("ablation_policy");
  dodo::bench::SynthOutcome out;
  for (auto _ : state) {
    out = dodo::bench::run_synthetic_once(s, /*use_dodo=*/true,
                                          /*unet=*/true, policy, &exporter);
  }
  {
    const std::string key = std::string("policy.") +
                            dodo::bench::pattern_name(pattern) + "." +
                            policy_name(policy);
    exporter.set_milli(key + ".total_s", out.total_s);
    exporter.set_milli(key + ".steady_s", out.steady_s);
  }
  state.counters["total_s"] = out.total_s;
  state.counters["steady_s"] = out.steady_s;

  dodo::bench::print_header_once(
      "Ablation: replacement policy",
      "workload    policy    total(s)  steady-iter(s)");
  std::printf("%-11s %-9s %8.1f %10.1f\n",
              dodo::bench::pattern_name(pattern), policy_name(policy),
              out.total_s, out.steady_s);
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Policy)
    ->ArgsProduct({{static_cast<long>(Pattern::kSequential),
                    static_cast<long>(Pattern::kHotcold)},
                   {static_cast<long>(manage::Policy::kLru),
                    static_cast<long>(manage::Policy::kMru),
                    static_cast<long>(manage::Policy::kFirstIn)}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
