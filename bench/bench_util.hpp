// Shared helpers for the benchmark binaries.
//
// Every Figure-7/Figure-8/ablation benchmark runs a full simulated cluster
// matching the paper's testbed (12 imd hosts x 100 MB, 80 MB local region
// cache, 128 MB application node, UDP or U-Net transport). To keep default
// runtimes reasonable on a laptop, the *sizes* (datasets, pools, caches) are
// all multiplied by DODO_BENCH_SCALE (default 0.1); because every cache and
// dataset shrinks together and per-request device times are absolute, hit
// ratios and per-request cost ratios — and therefore speedups — are
// preserved. Set DODO_BENCH_SCALE=1 to run at exact paper scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "apps/block_io.hpp"
#include "apps/synthetic.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

namespace dodo::bench {

inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("DODO_BENCH_SCALE");
    double v = env != nullptr ? std::atof(env) : 0.1;
    if (v <= 0.0 || v > 1.0) v = 0.1;
    return v;
  }();
  return s;
}

inline Bytes64 scaled(Bytes64 bytes) {
  return static_cast<Bytes64>(static_cast<double>(bytes) * scale());
}

/// The paper's testbed (§5.1), scaled.
inline cluster::ClusterConfig paper_config(bool use_dodo, bool unet,
                                           manage::Policy policy,
                                           std::uint64_t seed = 1) {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 12;
  cfg.imd_pool = scaled(100_MiB);
  cfg.local_cache = scaled(80_MiB);
  cfg.page_cache_dodo = scaled(24_MiB);
  cfg.page_cache_baseline = scaled(100_MiB);
  cfg.net = unet ? net::NetParams::unet_batched() : net::NetParams::udp();
  cfg.use_dodo = use_dodo;
  cfg.materialize = false;  // phantom data: timing only
  cfg.policy = policy;
  cfg.seed = seed;
  return cfg;
}

struct SynthOutcome {
  apps::RunStats stats;
  double total_s = 0.0;
  double steady_s = 0.0;  // per-iteration, iterations 2+
};

/// Runs one synthetic configuration on a fresh cluster.
inline SynthOutcome run_synthetic_once(apps::SyntheticConfig scfg,
                                       bool use_dodo, bool unet,
                                       manage::Policy policy) {
  cluster::Cluster c(paper_config(use_dodo, unet, policy));
  const int fd = c.create_dataset("data", scfg.dataset);
  std::unique_ptr<apps::BlockIo> io;
  if (use_dodo) {
    io = std::make_unique<apps::DodoBlockIo>(*c.manager(), fd, scfg.dataset,
                                             scfg.req_size);
  } else {
    io = std::make_unique<apps::FsBlockIo>(c.fs(), fd);
  }
  SynthOutcome out;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await apps::run_synthetic(cl, *io, scfg, &out.stats);
  });
  out.total_s = to_seconds(out.stats.total());
  out.steady_s = out.stats.steady_seconds();
  return out;
}

inline const char* pattern_name(apps::SyntheticConfig::Pattern p) {
  switch (p) {
    case apps::SyntheticConfig::Pattern::kSequential:
      return "sequential";
    case apps::SyntheticConfig::Pattern::kHotcold:
      return "hotcold";
    case apps::SyntheticConfig::Pattern::kRandom:
      return "random";
  }
  return "?";
}

inline void print_header_once(const char* title, const char* columns) {
  static bool printed = false;
  if (!printed) {
    std::printf("\n=== %s (DODO_BENCH_SCALE=%.2f) ===\n%s\n", title, scale(),
                columns);
    printed = true;
  }
}

}  // namespace dodo::bench
