// Shared helpers for the benchmark binaries.
//
// Every Figure-7/Figure-8/ablation benchmark runs a full simulated cluster
// matching the paper's testbed (12 imd hosts x 100 MB, 80 MB local region
// cache, 128 MB application node, UDP or U-Net transport). To keep default
// runtimes reasonable on a laptop, the *sizes* (datasets, pools, caches) are
// all multiplied by DODO_BENCH_SCALE (default 0.1); because every cache and
// dataset shrinks together and per-request device times are absolute, hit
// ratios and per-request cost ratios — and therefore speedups — are
// preserved. Set DODO_BENCH_SCALE=1 to run at exact paper scale.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <map>

#include "apps/block_io.hpp"
#include "apps/synthetic.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "obs/critical_path.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_merge.hpp"

namespace dodo::bench {

/// Deterministic metric export for a bench binary. Every benchmark case
/// absorbs its cluster's metrics snapshot (counters/histograms merge across
/// cases) and may record scalar results; at process exit the accumulated
/// snapshot is written as BENCH_<name>.json into $DODO_BENCH_JSON_DIR
/// (default: the working directory). All values are integers and the JSON
/// field order is sorted, so same-seed runs produce byte-identical files.
class JsonExporter {
 public:
  explicit JsonExporter(std::string name) : name_(std::move(name)) {}

  ~JsonExporter() {
    const char* dir = std::getenv("DODO_BENCH_JSON_DIR");
    const std::string base = std::string(dir != nullptr ? dir : ".");
    const std::string path = base + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    // DODO_BENCH_SUPPRESS_ZEROS=1 drops zero-valued metrics from the BENCH
    // export only; the default stays byte-identical to previous builds.
    const char* sz = std::getenv("DODO_BENCH_SUPPRESS_ZEROS");
    const bool suppress = sz != nullptr && sz[0] == '1' && sz[1] == '\0';
    const std::string json =
        suppress ? total_.without_zeros().to_json() : total_.to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "bench: wrote %s (%zu metrics)\n", path.c_str(),
                 total_.size());
    if (!chrome_json_.empty()) {
      const std::string tpath = base + "/TRACE_" + name_ + ".json";
      std::FILE* tf = std::fopen(tpath.c_str(), "w");
      if (tf != nullptr) {
        std::fwrite(chrome_json_.data(), 1, chrome_json_.size(), tf);
        std::fclose(tf);
        std::fprintf(stderr, "bench: wrote %s\n", tpath.c_str());
      }
    }
    if (!timelines_.empty()) {
      std::map<std::string, const obs::TelemetryTimeline*> views;
      for (const auto& [label, tl] : timelines_) views[label] = &tl;
      const std::string tj = obs::TelemetryTimeline::export_json(views);
      const std::string jpath = base + "/TELEM_" + name_ + ".json";
      std::FILE* jf = std::fopen(jpath.c_str(), "w");
      if (jf != nullptr) {
        std::fwrite(tj.data(), 1, tj.size(), jf);
        std::fclose(jf);
        std::fprintf(stderr, "bench: wrote %s\n", jpath.c_str());
      }
      const std::string tv = obs::TelemetryTimeline::export_tsv(views);
      const std::string vpath = base + "/TELEM_" + name_ + ".tsv";
      std::FILE* vf = std::fopen(vpath.c_str(), "w");
      if (vf != nullptr) {
        std::fwrite(tv.data(), 1, tv.size(), vf);
        std::fclose(vf);
        std::fprintf(stderr, "bench: wrote %s\n", vpath.c_str());
      }
    }
  }

  void absorb(const obs::MetricsSnapshot& snap) { total_.merge(snap); }

  [[nodiscard]] bool has_traces() const { return traces_recorded_; }

  /// Critical-path attribution for one representative cluster: the first
  /// Dodo cluster offered wins (repeat calls are no-ops), so every bench
  /// emits one deterministic `latency_breakdown.*` section plus a
  /// Perfetto-loadable TRACE_<name>.json at exit.
  void record_traces(cluster::Cluster& c) {
    if (traces_recorded_ || c.dodo() == nullptr || c.traces() == nullptr) {
      return;
    }
    traces_recorded_ = true;
    const std::vector<obs::MergedSpan> spans = c.merged_spans();
    const std::vector<obs::TraceSummary> traces = obs::analyze_traces(spans);
    obs::MetricsSnapshot breakdown;
    obs::export_latency_breakdown(traces, breakdown);
    total_.merge(breakdown);
    chrome_json_ = obs::TraceDomain::chrome_json(spans);
  }

  /// Phase-resolved telemetry for one representative cluster per label: the
  /// first cluster offered under a label wins (repeat calls are no-ops), so
  /// the TELEM_<name>.json/.tsv written at exit is deterministic. Forces one
  /// final sample so even sub-interval runs produce a non-empty timeline.
  void record_timeline(cluster::Cluster& c, const std::string& label = "run") {
    if (c.timeline() == nullptr || timelines_.count(label) != 0) return;
    c.take_telemetry_sample();
    timelines_.emplace(label, *c.timeline());
  }

  /// Records a result scalar. Results are i64 gauges, so merging repeated
  /// cases keeps the sum — use distinct names per case for per-case values.
  void set_scalar(const std::string& name, std::int64_t v) {
    total_.set_gauge(name, v);
  }

  /// Fixed-point helper for ratios (speedups): stores round(v * 1000).
  void set_milli(const std::string& name, double v) {
    total_.set_gauge(name, static_cast<std::int64_t>(std::llround(v * 1e3)));
  }

 private:
  std::string name_;
  obs::MetricsSnapshot total_;
  std::string chrome_json_;
  std::map<std::string, obs::TelemetryTimeline> timelines_;
  bool traces_recorded_ = false;
};

/// The process-wide exporter; the name passed on first use wins.
inline JsonExporter& json_exporter(const char* name) {
  static JsonExporter exporter{std::string(name)};
  return exporter;
}

inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("DODO_BENCH_SCALE");
    double v = env != nullptr ? std::atof(env) : 0.1;
    if (v <= 0.0 || v > 1.0) v = 0.1;
    return v;
  }();
  return s;
}

inline Bytes64 scaled(Bytes64 bytes) {
  return static_cast<Bytes64>(static_cast<double>(bytes) * scale());
}

/// The paper's testbed (§5.1), scaled.
inline cluster::ClusterConfig paper_config(bool use_dodo, bool unet,
                                           manage::Policy policy,
                                           std::uint64_t seed = 1) {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 12;
  cfg.imd_pool = scaled(100_MiB);
  cfg.local_cache = scaled(80_MiB);
  cfg.page_cache_dodo = scaled(24_MiB);
  cfg.page_cache_baseline = scaled(100_MiB);
  cfg.net = unet ? net::NetParams::unet_batched() : net::NetParams::udp();
  cfg.use_dodo = use_dodo;
  cfg.materialize = false;  // phantom data: timing only
  cfg.policy = policy;
  cfg.seed = seed;
  cfg.record_spans = true;  // latency_breakdown + TRACE_<name>.json export
  // Phase-resolved telemetry: the sampler is in-process and integer-only, so
  // enabling it leaves wire traffic and BENCH/TRACE exports untouched.
  cfg.telemetry.sample_interval = millis(250.0);
  return cfg;
}

struct SynthOutcome {
  apps::RunStats stats;
  double total_s = 0.0;
  double steady_s = 0.0;  // per-iteration, iterations 2+
};

/// Runs one synthetic configuration on a fresh cluster. When `exporter` is
/// given, the cluster's end-of-run metrics snapshot is absorbed into it.
inline SynthOutcome run_synthetic_once(apps::SyntheticConfig scfg,
                                       bool use_dodo, bool unet,
                                       manage::Policy policy,
                                       JsonExporter* exporter = nullptr) {
  cluster::Cluster c(paper_config(use_dodo, unet, policy));
  const int fd = c.create_dataset("data", scfg.dataset);
  std::unique_ptr<apps::BlockIo> io;
  if (use_dodo) {
    io = std::make_unique<apps::DodoBlockIo>(*c.manager(), fd, scfg.dataset,
                                             scfg.req_size);
  } else {
    io = std::make_unique<apps::FsBlockIo>(c.fs(), fd);
  }
  SynthOutcome out;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await apps::run_synthetic(cl, *io, scfg, &out.stats);
  });
  out.total_s = to_seconds(out.stats.total());
  out.steady_s = out.stats.steady_seconds();
  if (exporter != nullptr) {
    exporter->record_traces(c);
    exporter->record_timeline(c);
    exporter->absorb(c.metrics_snapshot());
  }
  return out;
}

/// For bench binaries that never build a cluster (trace synthesis, pool
/// allocator churn): one small canonical mopen/mwrite/mread/mclose run, so
/// their JSON still carries the latency_breakdown section and a Perfetto
/// trace under the same transport defaults as the cluster benches.
inline void record_reference_trace(JsonExporter& exporter) {
  if (exporter.has_traces()) return;
  cluster::ClusterConfig cfg =
      paper_config(/*use_dodo=*/true, /*unet=*/true, manage::Policy::kLru);
  cfg.imd_hosts = 2;
  cluster::Cluster c(cfg);
  const Bytes64 len = 256 * 1024;
  const int fd = c.create_dataset("ref", len);
  c.run_app([fd, len](cluster::Cluster& cl) -> sim::Co<void> {
    auto& d = *cl.dodo();
    const int rd = co_await d.mopen(len, fd, 0);
    if (rd < 0) co_return;
    co_await d.mwrite(rd, 0, nullptr, len);
    co_await d.mread(rd, 0, nullptr, len);
    co_await d.mclose(rd);
  });
  exporter.record_traces(c);
  exporter.record_timeline(c, "ref");
}

inline const char* pattern_name(apps::SyntheticConfig::Pattern p) {
  switch (p) {
    case apps::SyntheticConfig::Pattern::kSequential:
      return "sequential";
    case apps::SyntheticConfig::Pattern::kHotcold:
      return "hotcold";
    case apps::SyntheticConfig::Pattern::kRandom:
      return "random";
  }
  return "?";
}

inline void print_header_once(const char* title, const char* columns) {
  static bool printed = false;
  if (!printed) {
    std::printf("\n=== %s (DODO_BENCH_SCALE=%.2f) ===\n%s\n", title, scale(),
                columns);
    printed = true;
  }
}

}  // namespace dodo::bench
