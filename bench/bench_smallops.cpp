// Small-op throughput on the zero-copy batched data path (DESIGN.md §16):
// 4 KiB reads driven through the submission/completion ring, swept across
// the client's coalescing window {off, 16 KiB, 128 KiB} and ring depth
// {1, 16, 64} on both transports. The unbatched baseline (window off,
// depth 1) is the pre-ring build's behaviour — one RPC round trip per op —
// and every other arm reports its ops/s speedup against it. Acceptance:
// the coalesced deep-ring arm reaches >= 3x baseline ops/s on at least one
// transport, with zero disk fallbacks and byte-identical data in every arm
// (an order-independent FNV digest over each pass pins that down).
//
// Runs with materialized bytes (not phantom) so the digest is real, and
// with fixed (unscaled) sizes so the exported JSON is byte-identical per
// seed regardless of DODO_BENCH_SCALE.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/ring.hpp"

namespace {

using namespace dodo;
using dodo::operator""_KiB;
using dodo::operator""_MiB;

constexpr Bytes64 kRegion = 256_KiB;
constexpr Bytes64 kOp = 4_KiB;
constexpr int kPasses = 3;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

const char* window_name(Bytes64 w) {
  if (w == 0) return "off";
  return w == 16_KiB ? "16k" : "128k";
}

void BM_SmallOps(benchmark::State& state) {
  const bool unet = state.range(0) != 0;
  const Bytes64 window = state.range(1) == 0
                             ? 0
                             : (state.range(1) == 1 ? 16_KiB : 128_KiB);
  const int depth = static_cast<int>(state.range(2));

  cluster::ClusterConfig cfg = dodo::bench::paper_config(
      /*use_dodo=*/true, unet, manage::Policy::kLru, 7);
  cfg.imd_hosts = 2;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 1_MiB;
  cfg.page_cache_dodo = 512_KiB;
  cfg.materialize = true;  // real bytes: the digest must mean something
  cfg.client.coalesce_window_bytes = window;
  // One routed hop between application and harvested hosts (identical in
  // every arm): small ops are round-trip-bound, which is exactly the cost
  // the coalescing window and the ring amortize. On a zero-latency wire
  // all arms converge on raw Fast-Ethernet bandwidth and the sweep would
  // measure nothing but the 12.5 MB/s ceiling.
  cfg.net.propagation = micros(100);

  auto& exporter = dodo::bench::json_exporter("smallops");

  double ops_per_s = 0;
  std::uint64_t digest = 0;
  std::uint64_t coalesced = 0, flushes = 0, fallbacks = 0, sg_segments = 0;
  for (auto _ : state) {
    cluster::Cluster c(cfg);
    const int fd = c.create_dataset("small", kRegion);
    Duration read_phase = 0;
    c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
      auto& d = *cl.dodo();
      const int rd = co_await d.mopen(kRegion, fd, 0);
      if (rd < 0) co_return;
      net::Buf data(static_cast<std::size_t>(kRegion));
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>((i * 167 + 41) & 0xff);
      }
      co_await d.mwrite(rd, 0, data.data(), kRegion);

      runtime::DodoRing ring(cl.sim(), d,
                             static_cast<std::size_t>(depth));
      net::Buf got(static_cast<std::size_t>(kRegion), 0);
      const SimTime t0 = cl.sim().now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (Bytes64 off = 0; off < kRegion; off += kOp) {
          runtime::Sqe sqe;
          sqe.op = runtime::RingOp::kRead;
          sqe.rd = rd;
          sqe.offset = off;
          sqe.len = kOp;
          sqe.buf = got.data() + static_cast<std::ptrdiff_t>(off);
          sqe.user_data = static_cast<std::uint64_t>(off / kOp);
          co_await ring.submit(sqe);
        }
        co_await ring.drain();
        while (ring.try_reap().has_value()) {
        }
        // Order-independent: XOR of per-op digests, identical whatever the
        // arm's batching did to transfer boundaries.
        for (Bytes64 off = 0; off < kRegion; off += kOp) {
          digest ^= fnv1a(1469598103934665603ULL,
                          got.data() + static_cast<std::ptrdiff_t>(off),
                          static_cast<std::size_t>(kOp));
        }
      }
      read_phase = cl.sim().now() - t0;
      co_await d.mclose(rd);
    });
    const double ops = static_cast<double>(kPasses) *
                       static_cast<double>(kRegion / kOp);
    ops_per_s = ops / to_seconds(read_phase);
    const auto& m = c.dodo()->metrics();
    coalesced = m.coalesced_mreads;
    flushes = m.batch_flushes;
    fallbacks = m.disk_fallbacks;
    sg_segments = c.dodo()->bulk_stats().sg_segments.value();
    const std::string label = std::string(unet ? "unet" : "udp") + ".w" +
                              window_name(window) + ".d" +
                              std::to_string(depth);
    exporter.record_traces(c);
    exporter.record_timeline(c, label);
    exporter.absorb(c.metrics_snapshot());
    exporter.set_scalar("smallops." + label + ".ops_per_s",
                        static_cast<std::int64_t>(ops_per_s));
  }

  // Every arm reads the same bytes: first arm pins the digest, the rest
  // must match it — a mismatch is a data-path bug, not a perf result.
  static std::uint64_t expect_digest = 0;
  if (expect_digest == 0) expect_digest = digest;
  if (digest != expect_digest) {
    state.SkipWithError("smallops: arm digest diverged from baseline arm");
    return;
  }
  if (fallbacks != 0) {
    state.SkipWithError("smallops: disk fallbacks on a healthy cluster");
    return;
  }

  // Baseline = (window off, depth 1) per transport, registered first so it
  // always runs before the arms that report a speedup against it.
  static double baseline[2] = {0, 0};
  if (window == 0 && depth == 1) baseline[unet ? 1 : 0] = ops_per_s;
  const double base = baseline[unet ? 1 : 0];
  const double speedup = base > 0 ? ops_per_s / base : 0;
  const std::string label = std::string(unet ? "unet" : "udp") + ".w" +
                            window_name(window) + ".d" +
                            std::to_string(depth);
  if (!(window == 0 && depth == 1)) {
    exporter.set_milli("smallops." + label + ".speedup", speedup);
  }

  state.counters["ops_per_s"] = ops_per_s;
  state.counters["speedup"] = speedup;
  state.counters["coalesced"] = static_cast<double>(coalesced);

  dodo::bench::print_header_once(
      "Small ops: 4 KiB reads through the ring (2 hosts, 256 KiB region)",
      "transport  window  depth     ops/s   speedup  coalesced  flushes  "
      "sg-segs  disk-fallbacks");
  std::printf("%-10s %6s %6d %9.0f %9.2f %10llu %8llu %8llu %15llu\n",
              unet ? "unet" : "udp", window_name(window), depth, ops_per_s,
              speedup, static_cast<unsigned long long>(coalesced),
              static_cast<unsigned long long>(flushes),
              static_cast<unsigned long long>(sg_segments),
              static_cast<unsigned long long>(fallbacks));
  std::fflush(stdout);
}

}  // namespace

// Baseline (w=off, d=1) first per transport, then the sweep.
BENCHMARK(BM_SmallOps)
    ->ArgsProduct({{0, 1}, {0, 1, 2}, {1, 16, 64}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
