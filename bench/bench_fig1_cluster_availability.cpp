// Figure 1: variation of total available memory in the two traced clusters,
// for all hosts and for idle hosts only. The paper reports averages of
// 3549 MB (all) / 2747 MB (idle) for clusterA (29 hosts) and 852 / 742 MB
// for clusterB (23 hosts). We regenerate the two-week series from the trace
// synthesizer and print daily averages plus the overall means.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "trace/memory_trace.hpp"

namespace {

using namespace dodo;

void print_series(const char* name, const trace::ClusterSeries& s,
                  double paper_all, double paper_idle) {
  std::printf("\n--- Figure 1, %s ---\n", name);
  std::printf("day  all-hosts(MB)  idle-hosts(MB)\n");
  const std::size_t per_day = 86400 / 300;
  for (std::size_t day = 0; day * per_day < s.t.size(); ++day) {
    double all = 0, idle = 0;
    std::size_t n = 0;
    for (std::size_t i = day * per_day;
         i < std::min(s.t.size(), (day + 1) * per_day); ++i) {
      all += s.all_hosts_mb[i];
      idle += s.idle_hosts_mb[i];
      ++n;
    }
    std::printf("%3zu %11.0f %14.0f\n", day + 1,
                all / static_cast<double>(n), idle / static_cast<double>(n));
  }
  std::printf("mean: all=%.0f MB (paper %.0f), idle=%.0f MB (paper %.0f)\n",
              s.mean_all(), paper_all, s.mean_idle(), paper_idle);
  std::fflush(stdout);
}

void BM_Fig1(benchmark::State& state) {
  const bool is_a = state.range(0) == 0;
  trace::TraceConfig cfg;  // two weeks, 5-minute samples
  trace::ClusterSeries series;
  for (auto _ : state) {
    series = trace::cluster_availability(
        is_a ? trace::cluster_a_hosts() : trace::cluster_b_hosts(), cfg,
        is_a ? 11 : 13);
  }
  {
    auto& exporter = dodo::bench::json_exporter("fig1_cluster_availability");
    dodo::bench::record_reference_trace(exporter);
    const std::string key =
        std::string("fig1.") + (is_a ? "cluster_a" : "cluster_b");
    exporter.set_scalar(key + ".mean_all_kb",
                        static_cast<std::int64_t>(std::llround(
                            series.mean_all() * 1024.0)));
    exporter.set_scalar(key + ".mean_idle_kb",
                        static_cast<std::int64_t>(std::llround(
                            series.mean_idle() * 1024.0)));
  }
  state.counters["mean_all_mb"] = series.mean_all();
  state.counters["mean_idle_mb"] = series.mean_idle();
  if (is_a) {
    print_series("clusterA (29 Solaris hosts, UCSB)", series, 3549, 2747);
  } else {
    print_series("clusterB (23 Solaris hosts, GMU)", series, 852, 742);
  }
}

}  // namespace

BENCHMARK(BM_Fig1)->Arg(0)->Arg(1)->Iterations(1);

BENCHMARK_MAIN();
