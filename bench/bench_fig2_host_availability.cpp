// Figure 2: variation in available memory for individual workstations of
// each memory class. The paper's observation: availability has noticeable
// dips (moments where the machine would page), yet a large fraction of
// memory is available most of the time. We print, per host class, the mean
// availability, the fraction of samples with more than half the machine's
// memory available, dip statistics, and a compact day-by-day profile.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/units.hpp"
#include "bench_util.hpp"
#include "trace/memory_trace.hpp"

namespace {

using namespace dodo;
using trace::HostClass;

void BM_Fig2(benchmark::State& state) {
  const auto cls = static_cast<HostClass>(state.range(0));
  trace::TraceConfig cfg;
  trace::HostTrace tr;
  for (auto _ : state) {
    tr = trace::synthesize_host(cls, cfg, 4242 + state.range(0));
  }
  const double total_mb = static_cast<double>(tr.total_kb) / 1024.0;

  int high = 0, low = 0;
  double min_mb = total_mb;
  for (const auto& s : tr.samples) {
    const double mb =
        static_cast<double>(s.available_kb(tr.total_kb)) / 1024.0;
    if (mb > total_mb / 2) ++high;
    if (mb < total_mb / 4) ++low;
    if (mb < min_mb) min_mb = mb;
  }
  const double n = static_cast<double>(tr.samples.size());
  const int dips = tr.dips_below(0.25);
  const double days = to_seconds(cfg.duration) / 86400.0;

  {
    auto& exporter = dodo::bench::json_exporter("fig2_host_availability");
    dodo::bench::record_reference_trace(exporter);
    const std::string key = "fig2." + std::to_string(tr.total_kb / 1024) +
                            "mb";
    exporter.set_scalar(key + ".mean_avail_kb",
                        static_cast<std::int64_t>(std::llround(
                            tr.mean_available_mb() * 1024.0)));
    exporter.set_milli(key + ".frac_above_half",
                       static_cast<double>(high) / n);
    exporter.set_scalar(key + ".dips", dips);
  }
  state.counters["mean_avail_mb"] = tr.mean_available_mb();
  state.counters["frac_above_half"] = static_cast<double>(high) / n;
  state.counters["dips_per_day"] = static_cast<double>(dips) / days;

  static bool header = false;
  if (!header) {
    std::printf(
        "\n=== Figure 2: per-workstation availability over two weeks ===\n"
        "host    mean-avail  min-avail  %%time>50%%  %%time<25%%  dips/day\n");
    header = true;
  }
  std::printf("%3.0fMB %9.1fMB %9.1fMB %9.1f%% %10.1f%% %9.1f\n", total_mb,
              tr.mean_available_mb(), min_mb,
              100.0 * static_cast<double>(high) / n,
              100.0 * static_cast<double>(low) / n,
              static_cast<double>(dips) / days);
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Fig2)
    ->Arg(static_cast<long>(HostClass::k32))
    ->Arg(static_cast<long>(HostClass::k64))
    ->Arg(static_cast<long>(HostClass::k128))
    ->Arg(static_cast<long>(HostClass::k256))
    ->Iterations(1);

BENCHMARK_MAIN();
