// Figure 7: speedup for the two real applications.
#include <cmath>
//
//   lu    - out-of-core dense LU (536 MB, 64-column slabs over 8 files),
//           triangle-scan reads, first-in policy, compute-bound (paper:
//           speedup 1.2 with U-Net, 1.15 with UDP).
//   dmine - association mining over 1 GB of transactions, 128 KB reads,
//           first-in policy, *persistent* regions: the first run populates
//           remote memory and shows no speedup; subsequent runs avoid the
//           disk entirely (paper: 3.2 with U-Net, 2.6 with UDP).
//
// Both run at DODO_BENCH_SCALE of the paper's sizes with modeled compute
// (the real algorithms are exercised at small scale in tests/ and
// examples/).
#include <benchmark/benchmark.h>

#include <map>

#include "apps/dmine.hpp"
#include "apps/lu.hpp"
#include "bench_util.hpp"

namespace {

using namespace dodo;
using dodo::operator""_GiB;
using dodo::operator""_KiB;

constexpr Duration kDminePerBlockCompute = 3 * kMillisecond;

apps::LuConfig scaled_lu() {
  apps::LuConfig cfg;
  // N scales as sqrt(scale) so the matrix footprint scales linearly; keep N
  // a multiple of slab_cols * files.
  const double want = 8192.0 * std::sqrt(dodo::bench::scale());
  const int quantum = cfg.slab_cols * cfg.files;  // 512
  cfg.n = std::max(quantum, static_cast<int>(want) / quantum * quantum);
  return cfg;
}

struct Fig7Row {
  const char* app;
  const char* net;
  double base_s;
  double run1_s;  // dmine only
  double dodo_s;
  double paper_speedup;
};

void print_row(const Fig7Row& r) {
  dodo::bench::print_header_once(
      "Figure 7: application speedups",
      "app    net    baseline(s) dodo-run1(s) dodo(s)  speedup  paper");
  const double speedup = r.base_s / r.dodo_s;
  std::printf("%-6s %-5s %11.1f %12.1f %8.1f %7.2fx  %.2fx\n", r.app, r.net,
              r.base_s, r.run1_s, r.dodo_s, speedup, r.paper_speedup);
  std::fflush(stdout);
}

void BM_Fig7_Dmine(benchmark::State& state) {
  auto& exporter = dodo::bench::json_exporter("fig7_applications");
  const bool unet = state.range(0) != 0;
  const Bytes64 dataset = dodo::bench::scaled(1_GiB);
  const Bytes64 block = 128_KiB;

  double base_s = 0, run1_s = 0, run2_s = 0;
  for (auto _ : state) {
    {  // baseline
      cluster::Cluster c(dodo::bench::paper_config(
          false, unet, manage::Policy::kFirstIn));
      const int fd = c.create_dataset("txns", dataset);
      apps::FsBlockIo io(c.fs(), fd);
      apps::RunStats st;
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                         kDminePerBlockCompute, 42, &st);
      });
      base_s = to_seconds(st.total());
    }
    {  // Dodo: run 1 populates remote memory, run 2 measures steady state
      cluster::Cluster c(dodo::bench::paper_config(
          true, unet, manage::Policy::kFirstIn));
      const int fd = c.create_dataset("txns", dataset);
      apps::RunStats st1, st2;
      {
        apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
        c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
          co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                           kDminePerBlockCompute, 42, &st1);
        });
        c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
          co_await cl.dodo()->detach();
        });
      }
      c.restart_client();
      {
        apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
        c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
          co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                           kDminePerBlockCompute, 42, &st2);
        });
      }
      run1_s = to_seconds(st1.total());
      run2_s = to_seconds(st2.total());
      exporter.record_traces(c);
      exporter.record_timeline(c);
      exporter.absorb(c.metrics_snapshot());
    }
  }
  {
    const std::string key = std::string("fig7.dmine.") +
                            (unet ? "unet" : "udp");
    exporter.set_milli(key + ".speedup", base_s / run2_s);
    exporter.set_milli(key + ".speedup_run1", base_s / run1_s);
  }
  state.counters["speedup"] = base_s / run2_s;
  state.counters["speedup_run1"] = base_s / run1_s;
  print_row({"dmine", unet ? "U-Net" : "UDP", base_s, run1_s, run2_s,
             unet ? 3.2 : 2.6});
}

// Stripe-width ablation on dmine's steady-state run: every 128 KiB region is
// striped across `width` imds (32 KiB min fragment, so width 4 reads four
// 32 KiB fragments in parallel). Width 1 is the paper's single-imd placement;
// the ratio reported is run-2 time at width 1 over run-2 time at this width.
void BM_Fig7_DmineStripe(benchmark::State& state) {
  auto& exporter = dodo::bench::json_exporter("fig7_applications");
  const int width = static_cast<int>(state.range(0));
  const bool unet = state.range(1) != 0;
  const Bytes64 dataset = dodo::bench::scaled(1_GiB);
  const Bytes64 block = 128_KiB;

  double run2_s = 0;
  std::uint64_t fragments = 0;
  for (auto _ : state) {
    cluster::ClusterConfig cfg =
        dodo::bench::paper_config(true, unet, manage::Policy::kFirstIn);
    cfg.cmd.stripe_width = width;
    cfg.cmd.stripe_min_fragment = 32_KiB;
    cluster::Cluster c(cfg);
    const int fd = c.create_dataset("txns", dataset);
    apps::RunStats st1, st2;
    {
      apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                         kDminePerBlockCompute, 42, &st1);
      });
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await cl.dodo()->detach();
      });
    }
    c.restart_client();
    {
      apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                         kDminePerBlockCompute, 42, &st2);
      });
    }
    run2_s = to_seconds(st2.total());
    fragments = c.metrics_snapshot().counter_value("cmd.fragments_placed");
  }

  static std::map<bool, double> width1_s;
  double speedup_x = 1.0;
  if (width == 1) {
    width1_s[unet] = run2_s;
  } else if (width1_s.count(unet) != 0) {
    speedup_x = width1_s[unet] / run2_s;
  }

  const std::string key = std::string("fig7.dmine.stripe.w") +
                          std::to_string(width) + "." + (unet ? "unet" : "udp");
  exporter.set_milli(key + ".run2_s", run2_s);
  exporter.set_milli(key + ".speedup_x", speedup_x);
  state.counters["run2_s"] = run2_s;
  state.counters["speedup_x_vs_w1"] = speedup_x;
  state.counters["fragments"] = static_cast<double>(fragments);

  dodo::bench::print_header_once(
      "Figure 7: application speedups",
      "app    net    baseline(s) dodo-run1(s) dodo(s)  speedup  paper");
  std::printf("dmine stripe w=%d %-5s steady run %8.1f s  %5.2fx vs w1\n",
              width, unet ? "U-Net" : "UDP", run2_s, speedup_x);
  std::fflush(stdout);
}

// Replica-count ablation on dmine's steady-state run: every region carries
// `rc` copies on distinct imds. This is the COST side of replication, by
// design: dmine's block reads sweep a large dataset with no hot spot, so
// extra copies buy nothing on the read path while consuming pool capacity —
// at rc=2 only half the working set stays resident and the displaced blocks
// degrade to disk-and-repush. The ablation documents that capacity trade
// (replicate shared hot regions, not private sweeps); the hot-spot scaling
// claim lives in fig8's replica ablation.
void BM_Fig7_DmineReplica(benchmark::State& state) {
  auto& exporter = dodo::bench::json_exporter("fig7_applications");
  const int rc = static_cast<int>(state.range(0));
  const bool unet = state.range(1) != 0;
  const Bytes64 dataset = dodo::bench::scaled(1_GiB);
  const Bytes64 block = 128_KiB;

  double run2_s = 0;
  std::uint64_t replicas = 0;
  for (auto _ : state) {
    cluster::ClusterConfig cfg =
        dodo::bench::paper_config(true, unet, manage::Policy::kFirstIn);
    cfg.cmd.replica_count = rc;
    cluster::Cluster c(cfg);
    const int fd = c.create_dataset("txns", dataset);
    apps::RunStats st1, st2;
    {
      apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                         kDminePerBlockCompute, 42, &st1);
      });
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await cl.dodo()->detach();
      });
    }
    c.restart_client();
    {
      apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_dmine_modeled(cl, io, dataset, block,
                                         kDminePerBlockCompute, 42, &st2);
      });
    }
    run2_s = to_seconds(st2.total());
    replicas = c.metrics_snapshot().counter_value("cmd.replicas_placed");
  }

  static std::map<bool, double> rc1_s;
  double speedup_x = 1.0;
  if (rc == 1) {
    rc1_s[unet] = run2_s;
  } else if (rc1_s.count(unet) != 0) {
    speedup_x = rc1_s[unet] / run2_s;
  }

  const std::string key = std::string("fig7.dmine.replica.rc") +
                          std::to_string(rc) + "." + (unet ? "unet" : "udp");
  exporter.set_milli(key + ".run2_s", run2_s);
  exporter.set_milli(key + ".speedup_x", speedup_x);
  state.counters["run2_s"] = run2_s;
  state.counters["speedup_x_vs_rc1"] = speedup_x;
  state.counters["replicas"] = static_cast<double>(replicas);

  dodo::bench::print_header_once(
      "Figure 7: application speedups",
      "app    net    baseline(s) dodo-run1(s) dodo(s)  speedup  paper");
  std::printf("dmine replica rc=%d %-5s steady run %8.1f s  %5.2fx vs rc1\n",
              rc, unet ? "U-Net" : "UDP", run2_s, speedup_x);
  std::fflush(stdout);
}

void BM_Fig7_Lu(benchmark::State& state) {
  auto& exporter = dodo::bench::json_exporter("fig7_applications");
  const bool unet = state.range(0) != 0;
  const apps::LuConfig lu = scaled_lu();

  double base_s = 0, dodo_s = 0;
  for (auto _ : state) {
    {
      cluster::Cluster c(dodo::bench::paper_config(
          false, unet, manage::Policy::kFirstIn));
      const int fd = c.create_dataset("matrix", lu.total_bytes());
      apps::FsBlockIo io(c.fs(), fd);
      apps::RunStats st;
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_lu_modeled(cl, io, lu, &st);
      });
      base_s = to_seconds(st.total());
    }
    {
      cluster::Cluster c(dodo::bench::paper_config(
          true, unet, manage::Policy::kFirstIn));
      const int fd = c.create_dataset("matrix", lu.total_bytes());
      apps::DodoBlockIo io(*c.manager(), fd, lu.total_bytes(),
                           lu.chunk_bytes());
      apps::RunStats st;
      c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
        co_await apps::run_lu_modeled(cl, io, lu, &st);
      });
      dodo_s = to_seconds(st.total());
      exporter.record_traces(c);
      exporter.record_timeline(c);
      exporter.absorb(c.metrics_snapshot());
    }
  }
  exporter.set_milli(std::string("fig7.lu.") + (unet ? "unet" : "udp") +
                         ".speedup",
                     base_s / dodo_s);
  state.counters["speedup"] = base_s / dodo_s;
  print_row({"lu", unet ? "U-Net" : "UDP", base_s, 0.0, dodo_s,
             unet ? 1.2 : 1.15});
}

}  // namespace

BENCHMARK(BM_Fig7_Lu)->Arg(0)->Arg(1)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig7_Dmine)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig7_DmineStripe)
    ->ArgsProduct({{1, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig7_DmineReplica)
    ->ArgsProduct({{1, 2}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
