// Control-plane scaling under many-client open-loop load (ISSUE: sharded
// cmd directory). A fleet of 1200 clients offers Poisson mopen->mread->
// mclose sessions at a fixed rate chosen to saturate a single cmd: the
// paper's one-manager layout completes only what its serve loop can admit,
// while sharding the directory 2/4/8 ways multiplies the admission rate
// until the offered load (or the app node's shared NIC) is the limit.
//
// Sessions move 1 KiB of phantom data each, so the shared application-node
// link stays far from saturation and the measured knee is the directory,
// not the data plane. Reported per shard count: offered/completed session
// rates, mopen/mread latency histograms, and per-shard peak in-flight
// depth; plus the 1->8 completed-throughput scaling ratio the acceptance
// gate checks. All exported values are integers, byte-identical per seed.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "apps/loadgen.hpp"
#include "bench_util.hpp"

namespace {

using dodo::Bytes64;
using dodo::kSecond;
using dodo::operator""_KiB;
using dodo::operator""_MiB;

constexpr int kClients = 1200;
constexpr double kOfferedPerSec = 32000.0;
constexpr std::uint64_t kSeed = 42;

dodo::cluster::ClusterConfig cluster_config(int shards) {
  dodo::cluster::ClusterConfig cfg;
  cfg.imd_hosts = 16;
  cfg.cmd_shards = shards;
  cfg.imd_pool = 32_MiB;
  // Keep-alive idles during the window: every client holds regions on
  // every shard, so ping volume would otherwise grow with the shard count
  // and charge the shared app-node link for traffic that is not admission.
  cfg.cmd.keepalive_interval = 30 * kSecond;
  cfg.materialize = false;  // phantom data; loadgen reads with null buffers
  cfg.record_spans = false;
  cfg.telemetry.sample_interval = dodo::millis(250.0);
  cfg.seed = kSeed;
  return cfg;
}

dodo::apps::LoadgenConfig loadgen_config() {
  dodo::apps::LoadgenConfig lc;
  lc.clients = kClients;
  lc.offered_rate = kOfferedPerSec;
  lc.duration = 2 * kSecond;
  lc.slots_per_client = 4;
  lc.region = 8_KiB;
  lc.read_len = 256;
  lc.seed = kSeed;
  return lc;
}

std::map<int, double> g_completed_per_sec;

void BM_Loadgen(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto& exporter = dodo::bench::json_exporter("loadgen");
  dodo::apps::LoadgenReport rep;
  double dur_s = 0;
  for (auto _ : state) {
    dodo::cluster::Cluster c(cluster_config(shards));
    const dodo::apps::LoadgenConfig lc = loadgen_config();
    dur_s = dodo::to_seconds(lc.duration);
    dodo::apps::LoadGenerator gen(c, lc);
    rep = {};
    c.run_app([&](dodo::cluster::Cluster&) -> dodo::sim::Co<void> {
      co_await gen.run(&rep);
    });
    const std::string p = "shards" + std::to_string(shards) + ".";
    exporter.record_timeline(c, "shards" + std::to_string(shards));
    exporter.absorb(rep.snapshot().prefixed(p));
    exporter.absorb(c.metrics_snapshot().prefixed(p));
    exporter.set_scalar(
        p + "offered_per_sec",
        std::llround(static_cast<double>(rep.offered) / dur_s));
    exporter.set_scalar(
        p + "completed_per_sec",
        std::llround(static_cast<double>(rep.completed) / dur_s));
  }
  const double completed_rate = static_cast<double>(rep.completed) / dur_s;
  g_completed_per_sec[shards] = completed_rate;
  if (shards == 8 && g_completed_per_sec.count(1) != 0) {
    exporter.set_milli("loadgen.scaling_1_to_8",
                       completed_rate / g_completed_per_sec[1]);
  }
  state.counters["offered_per_s"] = static_cast<double>(rep.offered) / dur_s;
  state.counters["completed_per_s"] = completed_rate;
  state.counters["failed"] = static_cast<double>(rep.failed);

  dodo::bench::print_header_once(
      "Loadgen: open-loop session throughput vs cmd shards",
      "shards  clients  offered/s  completed/s  failed");
  std::printf("%6d %8d %10.0f %12.0f %7llu\n", shards, kClients,
              static_cast<double>(rep.offered) / dur_s, completed_rate,
              static_cast<unsigned long long>(rep.failed));
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Loadgen)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

BENCHMARK_MAIN();
