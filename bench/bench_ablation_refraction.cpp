// Ablation: the refraction period (§3.1).
//
// When remote memory is exhausted, every further allocation attempt costs a
// round trip to the central manager (and possibly several imds) just to
// fail. The refraction period suppresses attempts after a failure. This
// bench runs a random workload whose dataset is ~2x the aggregate remote
// memory, sweeping the refraction length, and reports the allocation-RPC
// load on the central manager versus the achieved runtime.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.hpp"

namespace {

using namespace dodo;
using dodo::operator""_GiB;
using dodo::operator""_KiB;

void BM_Refraction(benchmark::State& state) {
  const Duration refraction = millis(state.range(0));

  apps::SyntheticConfig s;
  s.pattern = apps::SyntheticConfig::Pattern::kRandom;
  s.dataset = dodo::bench::scaled(2_GiB);  // ~1.7x the 1.2 GB remote pool
  s.req_size = 32_KiB;
  s.iterations = 2;
  s.compute_per_req = 5 * kMillisecond;
  s.seed = 55;

  auto cfg = dodo::bench::paper_config(true, true, manage::Policy::kLru);
  cfg.client.refraction = refraction;
  cfg.manage_overrides.clone_refraction = refraction;

  auto& exporter = dodo::bench::json_exporter("ablation_refraction");
  double total_s = 0;
  std::uint64_t cmd_mopens = 0;
  std::uint64_t alloc_failures = 0;
  std::uint64_t refraction_skips = 0;
  for (auto _ : state) {
    cluster::Cluster c(cfg);
    const int fd = c.create_dataset("data", s.dataset);
    apps::DodoBlockIo io(*c.manager(), fd, s.dataset, s.req_size);
    apps::RunStats st;
    c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
      co_await apps::run_synthetic(cl, io, s, &st);
    });
    total_s = to_seconds(st.total());
    cmd_mopens = c.cmd().metrics().mopens;
    alloc_failures = c.cmd().metrics().alloc_failures;
    refraction_skips = c.dodo()->metrics().refraction_skips;
    exporter.record_traces(c);
    exporter.record_timeline(c);
    exporter.absorb(c.metrics_snapshot());
  }
  {
    const std::string key =
        "refraction." + std::to_string(state.range(0)) + "ms";
    exporter.set_milli(key + ".total_s", total_s);
    exporter.set_scalar(key + ".cmd_mopens",
                        static_cast<std::int64_t>(cmd_mopens));
    exporter.set_scalar(key + ".refraction_skips",
                        static_cast<std::int64_t>(refraction_skips));
  }
  state.counters["total_s"] = total_s;
  state.counters["cmd_mopens"] = static_cast<double>(cmd_mopens);
  state.counters["refraction_skips"] = static_cast<double>(refraction_skips);

  dodo::bench::print_header_once(
      "Ablation: refraction period (dataset ~1.7x remote memory)",
      "refraction  run(s)   cmd-mopen-RPCs  failed-RPCs  skipped-locally");
  std::printf("%8.1fs %8.1f %15llu %12llu %16llu\n", to_seconds(refraction),
              total_s, static_cast<unsigned long long>(cmd_mopens),
              static_cast<unsigned long long>(alloc_failures),
              static_cast<unsigned long long>(refraction_skips));
  std::fflush(stdout);
}

}  // namespace

// 0, 0.5 s, 5 s (the default), 30 s.
BENCHMARK(BM_Refraction)
    ->Arg(0)
    ->Arg(500)
    ->Arg(5000)
    ->Arg(30000)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
