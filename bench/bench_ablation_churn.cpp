// Ablation: non-dedicated clusters (§5.3.1).
//
// The evaluation platform was a dedicated Beowulf; the paper argues (via
// trace-driven simulation in [2]) that Dodo still yields significant
// speedups when workstation owners come and go. Here hosts follow scripted
// owner activity — staggered busy windows during which the rmd kills the
// imd and the cmd invalidates its regions — and a hotcold workload runs
// against (a) no Dodo, (b) Dodo on the churning cluster, (c) Dodo on a
// dedicated cluster. This exercises the whole failure path at scale:
// epoch invalidation, descriptor drops, re-faulting from disk, re-cloning.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/activity.hpp"

namespace {

using namespace dodo;
using dodo::operator""_GiB;
using dodo::operator""_KiB;

enum class Mode : long { kBaseline = 0, kChurn = 1, kDedicated = 2 };

void BM_Churn(benchmark::State& state) {
  const auto mode = static_cast<Mode>(state.range(0));

  apps::SyntheticConfig s;
  s.pattern = apps::SyntheticConfig::Pattern::kHotcold;
  s.dataset = dodo::bench::scaled(1_GiB);
  s.req_size = 8_KiB;
  s.iterations = 4;
  s.compute_per_req = 10 * kMillisecond;
  s.seed = 99;

  auto cfg = dodo::bench::paper_config(mode != Mode::kBaseline,
                                       /*unet=*/true, manage::Policy::kLru);

  // Owner activity: each host is busy for 8 minutes out of every 40, with
  // staggered phases, so at any moment ~2-3 of the 12 hosts are being
  // reclaimed or re-recruited (5-minute idle threshold delays re-entry).
  std::vector<std::unique_ptr<core::ScriptedActivity>> activities;
  if (mode == Mode::kChurn) {
    for (int h = 0; h < cfg.imd_hosts; ++h) {
      std::vector<std::pair<SimTime, SimTime>> windows;
      const Duration period = seconds(40.0 * 60);
      const Duration busy_len = seconds(8.0 * 60);
      const SimTime phase = h * period / cfg.imd_hosts;
      for (SimTime t = phase; t < 48LL * 3600 * kSecond; t += period) {
        windows.emplace_back(t, t + busy_len);
      }
      activities.push_back(std::make_unique<core::ScriptedActivity>(
          128_MiB, 20_MiB, 80_MiB, std::move(windows)));
    }
    for (const auto& a : activities) cfg.host_activity.push_back(a.get());
    cfg.rmd.start_recruited = false;  // hosts must earn idleness
  }

  auto& exporter = dodo::bench::json_exporter("ablation_churn");
  double total_s = 0, steady_s = 0;
  std::uint64_t evictions = 0, drops = 0, stale = 0;
  for (auto _ : state) {
    cluster::Cluster c(cfg);
    const int fd = c.create_dataset("data", s.dataset);
    std::unique_ptr<apps::BlockIo> io;
    if (mode == Mode::kBaseline) {
      io = std::make_unique<apps::FsBlockIo>(c.fs(), fd);
    } else {
      io = std::make_unique<apps::DodoBlockIo>(*c.manager(), fd, s.dataset,
                                               s.req_size);
    }
    apps::RunStats st;
    c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
      if (cl.config().use_dodo && !cl.config().host_activity.empty()) {
        // Churn mode starts with zero recruited hosts; give the first
        // recruitment wave (5-minute idle threshold) a chance.
        co_await cl.sim().sleep(seconds(5.0 * 60 + 30));
      }
      co_await apps::run_synthetic(cl, *io, s, &st);
    });
    total_s = to_seconds(st.total());
    steady_s = st.steady_seconds();
    if (mode != Mode::kBaseline) {
      for (int h = 0; h < cfg.imd_hosts; ++h) {
        evictions += c.rmd(h).metrics().evictions;
      }
      drops = c.dodo()->metrics().descriptors_dropped;
      stale = c.cmd().metrics().stale_regions_dropped;
    }
    exporter.record_traces(c);
    exporter.record_timeline(c);
    exporter.absorb(c.metrics_snapshot());
  }
  {
    static const char* mode_keys[] = {"baseline", "churn", "dedicated"};
    const std::string key =
        std::string("churn.") + mode_keys[state.range(0)];
    exporter.set_milli(key + ".total_s", total_s);
    exporter.set_milli(key + ".steady_s", steady_s);
    exporter.set_scalar(key + ".evictions",
                        static_cast<std::int64_t>(evictions));
  }
  state.counters["total_s"] = total_s;
  state.counters["steady_s"] = steady_s;
  state.counters["evictions"] = static_cast<double>(evictions);

  static const char* names[] = {"baseline", "dodo+churn", "dodo+dedicated"};
  dodo::bench::print_header_once(
      "Ablation: non-dedicated cluster (hotcold, 8K, owners come and go)",
      "mode            total(s) steady-iter(s)  evictions  desc-drops  "
      "stale-regions");
  std::printf("%-15s %8.1f %10.1f %12llu %11llu %13llu\n",
              names[state.range(0)], total_s, steady_s,
              static_cast<unsigned long long>(evictions),
              static_cast<unsigned long long>(drops),
              static_cast<unsigned long long>(stale));
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Churn)
    ->Arg(static_cast<long>(Mode::kBaseline))
    ->Arg(static_cast<long>(Mode::kChurn))
    ->Arg(static_cast<long>(Mode::kDedicated))
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
