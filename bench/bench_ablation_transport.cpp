// Ablation: transport comparison (the UDP vs U-Net design axis of §4.6).
//
// Measures one-way bulk-transfer time and effective bandwidth across
// message sizes for the three transport profiles: UDP/IP, packet-level
// U-Net, and the batched U-Net profile the paper-scale benchmarks use.
// The batched profile must track packet-level U-Net closely — that is the
// justification for using it at scale — so the delta is printed too.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "net/bulk.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace dodo;
using sim::Co;

SimTime bulk_time(const net::NetParams& params, Bytes64 len,
                  net::BulkStats* stats = nullptr) {
  sim::Simulator sim(1);
  net::Network nw(sim, params, 2);
  auto tx = nw.open_ephemeral(0);
  auto rx = nw.open_ephemeral(1);
  SimTime done = 0;
  net::BulkRecvResult rr;
  Status st;
  net::BulkParams bp;
  bp.stats = stats;
  sim.spawn([](net::Socket& s, net::BulkRecvResult& out, sim::Simulator& sm,
               SimTime& t, net::BulkParams p) -> Co<void> {
    out = co_await net::bulk_recv(s, 1, p);
    t = sm.now();
  }(*rx, rr, sim, done, bp));
  sim.spawn([](net::Socket& s, net::Endpoint dst, Bytes64 n, Status& out,
               net::BulkParams p) -> Co<void> {
    out = co_await net::bulk_send(s, dst, 1, net::BodyView{nullptr, n}, p);
  }(*tx, rx->local(), len, st, bp));
  sim.run(600_s);
  return done;
}

void BM_Transport(benchmark::State& state) {
  const Bytes64 len = state.range(0);
  auto& exporter = dodo::bench::json_exporter("ablation_transport");
  dodo::bench::record_reference_trace(exporter);
  net::BulkStats udp_stats, unet_stats;
  SimTime udp = 0, unet = 0, batched = 0;
  for (auto _ : state) {
    udp = bulk_time(net::NetParams::udp(), len, &udp_stats);
    unet = bulk_time(net::NetParams::unet(), len, &unet_stats);
    batched = bulk_time(net::NetParams::unet_batched(), len);
  }
  {
    const std::string key = "transport." + std::to_string(len) + "B.";
    exporter.set_scalar(key + "udp_us", udp / 1000);
    exporter.set_scalar(key + "unet_us", unet / 1000);
    exporter.set_scalar(key + "batched_us", batched / 1000);
    obs::MetricsSnapshot bulk;
    udp_stats.export_into(bulk, key + "udp.bulk.");
    unet_stats.export_into(bulk, key + "unet.bulk.");
    exporter.absorb(bulk);
  }
  auto mbps = [len](SimTime t) {
    return static_cast<double>(len) / to_seconds(t) / 1e6;
  };
  state.counters["udp_ms"] = to_millis(udp);
  state.counters["unet_ms"] = to_millis(unet);
  state.counters["batched_vs_unet"] =
      static_cast<double>(batched) / static_cast<double>(unet);

  static bool header = false;
  if (!header) {
    std::printf(
        "\n=== Ablation: bulk transfer, UDP vs U-Net ===\n"
        "size      udp(ms)  unet(ms)  udp(MB/s) unet(MB/s)  batched-err\n");
    header = true;
  }
  std::printf("%7lldB %8.3f %9.3f %9.2f %10.2f %10.1f%%\n",
              static_cast<long long>(len), to_millis(udp), to_millis(unet),
              mbps(udp), mbps(unet),
              100.0 * (static_cast<double>(batched - unet) /
                       static_cast<double>(unet)));
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Transport)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(8 * 1024)
    ->Arg(32 * 1024)
    ->Arg(128 * 1024)
    ->Arg(1024 * 1024)
    ->Iterations(1);

BENCHMARK_MAIN();
