// Figure 8: speedup of the three synthetic benchmarks under Dodo for
//   (A) 8 KB requests, 1 GB dataset    (B) 32 KB requests, 1 GB dataset
//   (C) 8 KB requests, 2 GB dataset    (D) 32 KB requests, 2 GB dataset
// each over both UDP and U-Net, 4 iterations, 10 ms compute per request.
//
// Paper shape to reproduce:
//   - sequential shows virtually no speedup (the filesystem streams);
//   - random and hotcold show significant speedups;
//   - U-Net beats UDP everywhere;
//   - 1 GB -> 2 GB: sequential/random speedups drop (2 GB no longer fits
//     the 1.2 GB of remote memory) while hotcold *rises* (its hot set grows
//     but still fits, and the baseline's file cache copes worse).
//
// Reported: whole-run speedup and steady-state speedup (iterations 2-4,
// i.e. after the first iteration has created the remote regions, matching
// the paper's "regions are created during the first iteration").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/channel.hpp"

namespace {

using dodo::Bytes64;
using dodo::operator""_GiB;
using dodo::operator""_KiB;
using dodo::apps::SyntheticConfig;
using Pattern = SyntheticConfig::Pattern;

SyntheticConfig make_config(Pattern p, Bytes64 req_kb, int dataset_gb) {
  SyntheticConfig s;
  s.pattern = p;
  s.dataset = dodo::bench::scaled(static_cast<Bytes64>(dataset_gb) * 1_GiB);
  s.req_size = req_kb * 1_KiB;  // request size is never scaled
  s.iterations = 4;
  s.compute_per_req = 10 * dodo::kMillisecond;
  s.seed = 1234;
  return s;
}

/// Baselines depend only on (pattern, req, dataset): memoize across the
/// UDP and U-Net benchmark instances.
const dodo::bench::SynthOutcome& baseline_for(const SyntheticConfig& cfg) {
  using Key = std::tuple<int, Bytes64, Bytes64>;
  static std::map<Key, dodo::bench::SynthOutcome> cache;
  const Key key{static_cast<int>(cfg.pattern), cfg.req_size, cfg.dataset};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, dodo::bench::run_synthetic_once(
                               cfg, /*use_dodo=*/false, /*unet=*/true,
                               dodo::manage::Policy::kLru))
             .first;
  }
  return it->second;
}

void BM_Fig8(benchmark::State& state) {
  const auto pattern = static_cast<Pattern>(state.range(0));
  const auto req_kb = static_cast<Bytes64>(state.range(1));
  const auto dataset_gb = static_cast<int>(state.range(2));
  const bool unet = state.range(3) != 0;

  const SyntheticConfig cfg = make_config(pattern, req_kb, dataset_gb);
  auto& exporter = dodo::bench::json_exporter("fig8_synthetics");
  dodo::bench::SynthOutcome base, dodo_run;
  for (auto _ : state) {
    base = baseline_for(cfg);
    dodo_run = dodo::bench::run_synthetic_once(
        cfg, /*use_dodo=*/true, unet, dodo::manage::Policy::kLru, &exporter);
  }
  const double speedup_total = base.total_s / dodo_run.total_s;
  const double speedup_steady = base.steady_s / dodo_run.steady_s;
  const double speedup_last = base.stats.last_iteration_seconds() /
                              dodo_run.stats.last_iteration_seconds();
  {
    char key[96];
    std::snprintf(key, sizeof(key), "fig8.%s.%lldk.%dgb.%s",
                  dodo::bench::pattern_name(pattern),
                  static_cast<long long>(req_kb), dataset_gb,
                  unet ? "unet" : "udp");
    exporter.set_milli(std::string(key) + ".speedup_total", speedup_total);
    exporter.set_milli(std::string(key) + ".speedup_steady", speedup_steady);
  }
  state.counters["speedup_total"] = speedup_total;
  state.counters["speedup_steady"] = speedup_steady;
  state.counters["speedup_last_iter"] = speedup_last;
  state.counters["base_s"] = base.total_s;
  state.counters["dodo_s"] = dodo_run.total_s;

  dodo::bench::print_header_once(
      "Figure 8: synthetic benchmark speedups",
      "benchmark    req   dataset net    base(s)   dodo(s)  speedup  "
      "steady  last-iter");
  std::printf("%-11s %3lldK %5dGB  %-5s %9.1f %9.1f %7.2fx %6.2fx %8.2fx\n",
              dodo::bench::pattern_name(pattern),
              static_cast<long long>(req_kb), dataset_gb,
              unet ? "U-Net" : "UDP", base.total_s, dodo_run.total_s,
              speedup_total, speedup_steady, speedup_last);
  std::fflush(stdout);
}

// --- Stripe-width ablation --------------------------------------------------
// Sequential remote reads through libdodo with every region striped K-wide
// across distinct imds (ISSUE: striped multi-imd regions with parallel
// fan-out reads). Width 1 is the single-imd placement the paper describes;
// wider stripes stream each region's fragments from K transmit links at
// once, so the region-sized mread is bounded by one *fragment's* wire time
// instead of the whole region's. Reported per width: remote read bandwidth,
// client.mread p50 over the timed sweep, and an FNV digest of every byte
// read — the digest must be identical across widths for a given seed (the
// fan-out reassembly may not reorder or corrupt anything).

struct StripeOutcome {
  double read_s = 0.0;        // timed sweep, populate excluded
  double mread_p50_ms = 0.0;  // client.mread spans inside the sweep
  std::uint64_t digest = 0;   // FNV-1a over all bytes read, in read order
  std::uint64_t remote_hits = 0;
  std::uint64_t fragments = 0;
};

constexpr Bytes64 kStripeRegion = 512_KiB;
constexpr int kStripeRegions = 16;  // 8 MiB swept per run

StripeOutcome run_stripe_sweep(int width, bool unet) {
  namespace cluster = dodo::cluster;
  namespace sim = dodo::sim;
  cluster::ClusterConfig cfg = dodo::bench::paper_config(
      /*use_dodo=*/true, unet, dodo::manage::Policy::kLru);
  cfg.materialize = true;  // real bytes: digests must match across widths
  cfg.cmd.stripe_width = width;
  cfg.cmd.stripe_min_fragment = 64_KiB;  // 512 KiB regions split K x 128 KiB
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("stripe", kStripeRegions * kStripeRegion);

  StripeOutcome out;
  dodo::SimTime t0 = 0, t1 = 0;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    auto& d = *cl.dodo();
    const auto rsz = static_cast<std::size_t>(kStripeRegion);
    std::vector<int> rds(kStripeRegions, -1);
    std::vector<std::uint8_t> buf(rsz);
    // Populate: write-through puts the bytes in remote memory (and on disk)
    // so the timed sweep below measures pure remote reads.
    for (int r = 0; r < kStripeRegions; ++r) {
      rds[static_cast<std::size_t>(r)] = co_await d.mopen(
          kStripeRegion, fd, static_cast<Bytes64>(r) * kStripeRegion);
      if (rds[static_cast<std::size_t>(r)] < 0) co_return;
      for (std::size_t j = 0; j < rsz; ++j) {
        buf[j] = static_cast<std::uint8_t>((r * 131 + j * 31 + 11) & 0xff);
      }
      co_await d.mwrite(rds[static_cast<std::size_t>(r)], 0, buf.data(),
                        kStripeRegion);
    }
    t0 = cl.sim().now();
    std::uint64_t h = 1469598103934665603ull;
    for (int r = 0; r < kStripeRegions; ++r) {
      co_await d.mread(rds[static_cast<std::size_t>(r)], 0, buf.data(),
                       kStripeRegion);
      for (std::size_t j = 0; j < rsz; ++j) {
        h = (h ^ buf[j]) * 1099511628211ull;
      }
    }
    t1 = cl.sim().now();
    out.digest = h;
    for (int r = 0; r < kStripeRegions; ++r) {
      (void)co_await d.mclose(rds[static_cast<std::size_t>(r)]);
    }
  });

  out.read_s = dodo::to_seconds(t1 - t0);
  std::vector<double> mread_ms;
  for (const dodo::obs::MergedSpan& m : c.merged_spans()) {
    if (m.span.name == "client.mread" && m.span.start >= t0 &&
        m.span.end >= m.span.start) {
      mread_ms.push_back(dodo::to_millis(m.span.end - m.span.start));
    }
  }
  std::sort(mread_ms.begin(), mread_ms.end());
  if (!mread_ms.empty()) out.mread_p50_ms = mread_ms[mread_ms.size() / 2];
  const dodo::obs::MetricsSnapshot snap = c.metrics_snapshot();
  out.remote_hits = snap.counter_value("client.remote_hits");
  out.fragments = snap.counter_value("cmd.fragments_placed");
  return out;
}

void BM_Fig8StripeWidth(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const bool unet = state.range(1) != 0;
  auto& exporter = dodo::bench::json_exporter("fig8_synthetics");

  StripeOutcome out;
  for (auto _ : state) out = run_stripe_sweep(width, unet);

  const double bytes =
      static_cast<double>(kStripeRegions) * static_cast<double>(kStripeRegion);
  const double mbps = bytes / out.read_s / 1e6;

  // Width 1 is the ablation baseline; wider runs report their gain over it.
  static std::map<bool, StripeOutcome> width1;
  double bandwidth_x = 1.0;
  bool bytes_identical = true;
  if (width == 1) {
    width1[unet] = out;
  } else if (width1.count(unet) != 0) {
    bandwidth_x = width1[unet].read_s / out.read_s;
    bytes_identical = out.digest == width1[unet].digest;
  }
  if (!bytes_identical) {
    state.SkipWithError("striped sweep bytes differ from width-1 sweep");
  }

  char key[64];
  std::snprintf(key, sizeof(key), "fig8.stripe.w%d.%s", width,
                unet ? "unet" : "udp");
  exporter.set_milli(std::string(key) + ".read_MBps", mbps);
  exporter.set_milli(std::string(key) + ".mread_p50_ms", out.mread_p50_ms);
  exporter.set_milli(std::string(key) + ".bandwidth_x", bandwidth_x);
  state.counters["read_MBps"] = mbps;
  state.counters["mread_p50_ms"] = out.mread_p50_ms;
  state.counters["bandwidth_x_vs_w1"] = bandwidth_x;
  state.counters["remote_hits"] = static_cast<double>(out.remote_hits);

  dodo::bench::print_header_once(
      "Figure 8: synthetic benchmark speedups",
      "benchmark    req   dataset net    base(s)   dodo(s)  speedup  "
      "steady  last-iter");
  std::printf("stripe w=%d       %3lldK seq     %-5s %8.0f MB/s  p50 %6.2f ms"
              "  %5.2fx vs w1  bytes %s\n",
              width, static_cast<long long>(kStripeRegion / 1_KiB),
              unet ? "U-Net" : "UDP", mbps, out.mread_p50_ms, bandwidth_x,
              bytes_identical ? "identical" : "DIFFER");
  std::fflush(stdout);
}

// --- Replica-count hot-spot ablation ----------------------------------------
// N concurrent readers hammer the same hot region (ISSUE: replicated hot
// regions with adaptive client-side replica selection). With one copy, every
// read serializes on the owner's transmit link; with K copies the
// power-of-two-choices picker spreads the readers across the replica set, so
// aggregate read bandwidth should rise monotonically with replica_count.
// Each reader digests its own byte stream (FNV-1a); the XOR of the per-reader
// digests is interleaving-independent and must be identical across replica
// counts — replica selection may never change the bytes an application sees.

struct ReplicaOutcome {
  double read_s = 0.0;         // concurrent hot phase, populate excluded
  std::uint64_t digest = 0;    // XOR of per-reader FNV-1a digests
  std::uint64_t replicas = 0;  // cmd.replicas_placed
  std::uint64_t replica_hits = 0;
  std::uint64_t failovers = 0;
  std::uint64_t disk_fallbacks = 0;  // any >0 disqualifies the bandwidth claim
  std::uint64_t remote_read_bytes = 0;
};

constexpr Bytes64 kHotRegion = 512_KiB;
constexpr Bytes64 kHotBlock = 64_KiB;  // request size of the hot-spot scan
constexpr int kHotReaders = 8;
constexpr int kHotSweeps = 8;  // per reader

ReplicaOutcome run_replica_hotspot(int replica_count, bool unet) {
  namespace cluster = dodo::cluster;
  namespace sim = dodo::sim;
  cluster::ClusterConfig cfg = dodo::bench::paper_config(
      /*use_dodo=*/true, unet, dodo::manage::Policy::kLru);
  cfg.materialize = true;  // real bytes: digests must match across counts
  cfg.cmd.replica_count = replica_count;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("hot", kHotRegion);

  ReplicaOutcome out;
  dodo::SimTime t0 = 0, t1 = 0;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    auto& d = *cl.dodo();
    const auto rsz = static_cast<std::size_t>(kHotRegion);
    const int rd = co_await d.mopen(kHotRegion, fd, 0);
    if (rd < 0) co_return;
    {
      std::vector<std::uint8_t> buf(rsz);
      for (std::size_t j = 0; j < rsz; ++j) {
        buf[j] = static_cast<std::uint8_t>((j * 31 + 11) & 0xff);
      }
      co_await d.mwrite(rd, 0, buf.data(), kHotRegion);
    }
    t0 = cl.sim().now();
    std::uint64_t combined = 0;
    sim::WaitGroup wg(cl.sim());
    wg.add(kHotReaders);
    for (int i = 0; i < kHotReaders; ++i) {
      // Block-sized requests, like the paper's synthetic scans: each mread
      // picks a replica independently, so the load balancer gets a fresh
      // choice per request instead of one choice per whole-region stream.
      cl.sim().spawn([](dodo::runtime::DodoClient& cli, int reader_rd,
                        std::uint64_t& acc,
                        sim::WaitGroup& g) -> sim::Co<void> {
        const auto bsz = static_cast<std::size_t>(kHotBlock);
        std::vector<std::uint8_t> buf(bsz);
        std::uint64_t h = 1469598103934665603ull;
        for (int s = 0; s < kHotSweeps; ++s) {
          for (Bytes64 off = 0; off < kHotRegion; off += kHotBlock) {
            co_await cli.mread(reader_rd, off, buf.data(), kHotBlock);
            for (std::size_t j = 0; j < bsz; ++j) {
              h = (h ^ buf[j]) * 1099511628211ull;
            }
          }
        }
        acc ^= h;
        g.done();
      }(d, rd, combined, wg));
    }
    co_await wg.wait();
    t1 = cl.sim().now();
    out.digest = combined;
    (void)co_await d.mclose(rd);
  });

  out.read_s = dodo::to_seconds(t1 - t0);
  const dodo::obs::MetricsSnapshot snap = c.metrics_snapshot();
  out.replicas = snap.counter_value("cmd.replicas_placed");
  out.replica_hits = snap.counter_value("client.replica_hits");
  out.failovers = snap.counter_value("client.replica_failovers");
  out.disk_fallbacks = snap.counter_value("client.disk_fallbacks");
  out.remote_read_bytes = snap.counter_value("client.remote_read_bytes");
  return out;
}

void BM_Fig8ReplicaHotspot(benchmark::State& state) {
  const int replica_count = static_cast<int>(state.range(0));
  const bool unet = state.range(1) != 0;
  auto& exporter = dodo::bench::json_exporter("fig8_synthetics");

  ReplicaOutcome out;
  for (auto _ : state) out = run_replica_hotspot(replica_count, unet);

  const double bytes = static_cast<double>(kHotReaders) *
                       static_cast<double>(kHotSweeps) *
                       static_cast<double>(kHotRegion);
  const double mbps = bytes / out.read_s / 1e6;

  // Count 1 is the ablation baseline; replicated runs report their gain
  // over it and must produce byte-identical streams.
  static std::map<bool, ReplicaOutcome> count1;
  double bandwidth_x = 1.0;
  bool bytes_identical = true;
  if (replica_count == 1) {
    count1[unet] = out;
  } else if (count1.count(unet) != 0) {
    bandwidth_x = count1[unet].read_s / out.read_s;
    bytes_identical = out.digest == count1[unet].digest;
  }
  if (!bytes_identical) {
    state.SkipWithError("replicated sweep bytes differ from 1-copy sweep");
  }

  char key[64];
  std::snprintf(key, sizeof(key), "fig8.replica.rc%d.%s", replica_count,
                unet ? "unet" : "udp");
  exporter.set_milli(std::string(key) + ".read_MBps", mbps);
  exporter.set_milli(std::string(key) + ".bandwidth_x", bandwidth_x);
  state.counters["read_MBps"] = mbps;
  state.counters["bandwidth_x_vs_rc1"] = bandwidth_x;
  state.counters["replica_hits"] = static_cast<double>(out.replica_hits);
  state.counters["failovers"] = static_cast<double>(out.failovers);
  state.counters["disk_fallbacks"] = static_cast<double>(out.disk_fallbacks);
  state.counters["remote_read_MB"] =
      static_cast<double>(out.remote_read_bytes) / 1e6;

  dodo::bench::print_header_once(
      "Figure 8: synthetic benchmark speedups",
      "benchmark    req   dataset net    base(s)   dodo(s)  speedup  "
      "steady  last-iter");
  std::printf("replica rc=%d %2d rdrs hot    %-5s %8.0f MB/s  %5.2fx vs rc1"
              "  bytes %s\n",
              replica_count, kHotReaders, unet ? "U-Net" : "UDP", mbps,
              bandwidth_x, bytes_identical ? "identical" : "DIFFER");
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Fig8StripeWidth)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig8ReplicaHotspot)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig8)
    ->ArgsProduct({{static_cast<long>(Pattern::kSequential),
                    static_cast<long>(Pattern::kHotcold),
                    static_cast<long>(Pattern::kRandom)},
                   {8, 32},
                   {1, 2},
                   {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
