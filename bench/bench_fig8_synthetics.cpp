// Figure 8: speedup of the three synthetic benchmarks under Dodo for
//   (A) 8 KB requests, 1 GB dataset    (B) 32 KB requests, 1 GB dataset
//   (C) 8 KB requests, 2 GB dataset    (D) 32 KB requests, 2 GB dataset
// each over both UDP and U-Net, 4 iterations, 10 ms compute per request.
//
// Paper shape to reproduce:
//   - sequential shows virtually no speedup (the filesystem streams);
//   - random and hotcold show significant speedups;
//   - U-Net beats UDP everywhere;
//   - 1 GB -> 2 GB: sequential/random speedups drop (2 GB no longer fits
//     the 1.2 GB of remote memory) while hotcold *rises* (its hot set grows
//     but still fits, and the baseline's file cache copes worse).
//
// Reported: whole-run speedup and steady-state speedup (iterations 2-4,
// i.e. after the first iteration has created the remote regions, matching
// the paper's "regions are created during the first iteration").
#include <benchmark/benchmark.h>

#include <map>
#include <tuple>

#include "bench_util.hpp"

namespace {

using dodo::Bytes64;
using dodo::operator""_GiB;
using dodo::operator""_KiB;
using dodo::apps::SyntheticConfig;
using Pattern = SyntheticConfig::Pattern;

SyntheticConfig make_config(Pattern p, Bytes64 req_kb, int dataset_gb) {
  SyntheticConfig s;
  s.pattern = p;
  s.dataset = dodo::bench::scaled(static_cast<Bytes64>(dataset_gb) * 1_GiB);
  s.req_size = req_kb * 1_KiB;  // request size is never scaled
  s.iterations = 4;
  s.compute_per_req = 10 * dodo::kMillisecond;
  s.seed = 1234;
  return s;
}

/// Baselines depend only on (pattern, req, dataset): memoize across the
/// UDP and U-Net benchmark instances.
const dodo::bench::SynthOutcome& baseline_for(const SyntheticConfig& cfg) {
  using Key = std::tuple<int, Bytes64, Bytes64>;
  static std::map<Key, dodo::bench::SynthOutcome> cache;
  const Key key{static_cast<int>(cfg.pattern), cfg.req_size, cfg.dataset};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, dodo::bench::run_synthetic_once(
                               cfg, /*use_dodo=*/false, /*unet=*/true,
                               dodo::manage::Policy::kLru))
             .first;
  }
  return it->second;
}

void BM_Fig8(benchmark::State& state) {
  const auto pattern = static_cast<Pattern>(state.range(0));
  const auto req_kb = static_cast<Bytes64>(state.range(1));
  const auto dataset_gb = static_cast<int>(state.range(2));
  const bool unet = state.range(3) != 0;

  const SyntheticConfig cfg = make_config(pattern, req_kb, dataset_gb);
  auto& exporter = dodo::bench::json_exporter("fig8_synthetics");
  dodo::bench::SynthOutcome base, dodo_run;
  for (auto _ : state) {
    base = baseline_for(cfg);
    dodo_run = dodo::bench::run_synthetic_once(
        cfg, /*use_dodo=*/true, unet, dodo::manage::Policy::kLru, &exporter);
  }
  const double speedup_total = base.total_s / dodo_run.total_s;
  const double speedup_steady = base.steady_s / dodo_run.steady_s;
  const double speedup_last = base.stats.last_iteration_seconds() /
                              dodo_run.stats.last_iteration_seconds();
  {
    char key[96];
    std::snprintf(key, sizeof(key), "fig8.%s.%lldk.%dgb.%s",
                  dodo::bench::pattern_name(pattern),
                  static_cast<long long>(req_kb), dataset_gb,
                  unet ? "unet" : "udp");
    exporter.set_milli(std::string(key) + ".speedup_total", speedup_total);
    exporter.set_milli(std::string(key) + ".speedup_steady", speedup_steady);
  }
  state.counters["speedup_total"] = speedup_total;
  state.counters["speedup_steady"] = speedup_steady;
  state.counters["speedup_last_iter"] = speedup_last;
  state.counters["base_s"] = base.total_s;
  state.counters["dodo_s"] = dodo_run.total_s;

  dodo::bench::print_header_once(
      "Figure 8: synthetic benchmark speedups",
      "benchmark    req   dataset net    base(s)   dodo(s)  speedup  "
      "steady  last-iter");
  std::printf("%-11s %3lldK %5dGB  %-5s %9.1f %9.1f %7.2fx %6.2fx %8.2fx\n",
              dodo::bench::pattern_name(pattern),
              static_cast<long long>(req_kb), dataset_gb,
              unet ? "U-Net" : "UDP", base.total_s, dodo_run.total_s,
              speedup_total, speedup_steady, speedup_last);
  std::fflush(stdout);
}

}  // namespace

BENCHMARK(BM_Fig8)
    ->ArgsProduct({{static_cast<long>(Pattern::kSequential),
                    static_cast<long>(Pattern::kHotcold),
                    static_cast<long>(Pattern::kRandom)},
                   {8, 32},
                   {1, 2},
                   {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
