// Ablation: the imd pool allocator (§4.2).
//
// The paper chose first-fit with *periodic* coalescing and predicted that
// fragmentation would not be a problem because regions are large and freed
// rarely. This bench quantifies that: allocation throughput (real host
// time, the one benchmark here that measures wall-clock), and external
// fragmentation under region-sized vs small-object workloads, with and
// without the periodic coalescing pass.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <type_traits>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/buddy_allocator.hpp"
#include "core/pool_allocator.hpp"

namespace {

using namespace dodo;
using core::PoolAllocator;

/// Steady-state churn: keep ~75% of the pool allocated, random free/alloc.
struct ChurnResult {
  double failure_rate;
  double fragmentation;
  std::size_t free_blocks;
  Bytes64 internal_waste = 0;
};

template <typename Alloc>
ChurnResult churn_with(Alloc& p, Bytes64 target_live, Bytes64 min_sz,
                       Bytes64 max_sz, int steps, int coalesce_every,
                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Bytes64, Bytes64>> live;
  Bytes64 live_bytes = 0;
  int failures = 0, attempts = 0;
  for (int i = 0; i < steps; ++i) {
    const bool want_alloc =
        live_bytes < target_live || (live.empty() || rng.chance(0.3));
    if (want_alloc) {
      const Bytes64 len = rng.range(min_sz, max_sz);
      ++attempts;
      if (auto off = p.alloc(len)) {
        live.emplace_back(*off, len);
        live_bytes += len;
      } else {
        ++failures;
      }
    } else {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      p.free(live[idx].first);
      live_bytes -= live[idx].second;
      live[idx] = live.back();
      live.pop_back();
    }
    if (coalesce_every > 0 && i % coalesce_every == 0) p.coalesce();
  }
  ChurnResult r{static_cast<double>(failures) / attempts,
                p.external_fragmentation(), p.free_block_count()};
  if constexpr (std::is_same_v<Alloc, core::BuddyAllocator>) {
    r.internal_waste = p.internal_fragmentation_bytes();
  }
  return r;
}

// Both allocators get the same 128 MiB physical pool (a power of two, so
// buddy wastes nothing at the top level) and the same requested-bytes
// target, making failure rates directly comparable.
constexpr Bytes64 kPool = 128 * 1024 * 1024;

ChurnResult churn(Bytes64 target_live, Bytes64 min_sz, Bytes64 max_sz,
                  int steps, int coalesce_every, std::uint64_t seed) {
  PoolAllocator p(kPool);
  return churn_with(p, target_live, min_sz, max_sz, steps, coalesce_every,
                    seed);
}

ChurnResult churn_buddy(Bytes64 target_live, Bytes64 min_sz, Bytes64 max_sz,
                        int steps, std::uint64_t seed) {
  core::BuddyAllocator p(kPool, 4096);
  return churn_with(p, target_live, min_sz, max_sz, steps, 0, seed);
}

void BM_AllocThroughput(benchmark::State& state) {
  // Real time: how fast the imd's allocator handles a region-sized mix.
  PoolAllocator p(100 * 1024 * 1024);
  Rng rng(1);
  std::vector<Bytes64> live;
  for (auto _ : state) {
    const Bytes64 len = rng.range(64 * 1024, 1024 * 1024);
    if (auto off = p.alloc(len)) {
      live.push_back(*off);
    } else if (!live.empty()) {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      p.free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
      p.coalesce();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Fragmentation(benchmark::State& state) {
  const bool region_sized = state.range(0) != 0;
  const int coalesce_every = static_cast<int>(state.range(1));
  const int pressure_pct = static_cast<int>(state.range(2));
  const Bytes64 min_sz = region_sized ? 128 * 1024 : 256;
  const Bytes64 max_sz = region_sized ? 4 * 1024 * 1024 : 64 * 1024;
  ChurnResult r{};
  for (auto _ : state) {
    r = churn(kPool * pressure_pct / 100, min_sz, max_sz, 60000,
              coalesce_every, 7);
  }
  {
    auto& exporter = dodo::bench::json_exporter("ablation_allocator");
    dodo::bench::record_reference_trace(exporter);
    char key[96];
    std::snprintf(key, sizeof(key), "allocator.first_fit.%s.c%d.p%d",
                  region_sized ? "region" : "small", coalesce_every,
                  pressure_pct);
    exporter.set_milli(std::string(key) + ".fail_rate", r.failure_rate);
    exporter.set_milli(std::string(key) + ".fragmentation", r.fragmentation);
    exporter.set_scalar(std::string(key) + ".free_blocks",
                        static_cast<std::int64_t>(r.free_blocks));
  }
  state.counters["fail_rate"] = r.failure_rate;
  state.counters["fragmentation"] = r.fragmentation;
  state.counters["free_blocks"] = static_cast<double>(r.free_blocks);

  static bool header = false;
  if (!header) {
    std::printf(
        "\n=== Ablation: imd pool allocators under churn (128 MiB pool) "
        "===\n"
        "workload      allocator          load  fail-rate  fragmentation  "
        "free-blocks\n");
    header = true;
  }
  char name[32];
  std::snprintf(name, sizeof(name), "first-fit/%s",
                coalesce_every == 0  ? "never"
                : coalesce_every == 1 ? "always"
                                      : "periodic");
  std::printf("%-13s %-17s %3d%% %9.3f%% %13.3f %12zu\n",
              region_sized ? "region-sized" : "small-objects", name,
              pressure_pct, 100.0 * r.failure_rate, r.fragmentation,
              r.free_blocks);
  std::fflush(stdout);
}

}  // namespace

void BM_FragmentationBuddy(benchmark::State& state) {
  // The paper's §4.2 fallback: "we plan to switch to a buddy-based
  // allocation scheme" if first-fit fragmentation becomes a problem. Buddy
  // eliminates external fragmentation but pays ~33% internal waste on
  // uniformly-sized requests, which costs it dearly at high load.
  const bool region_sized = state.range(0) != 0;
  const int pressure_pct = static_cast<int>(state.range(1));
  const Bytes64 min_sz = region_sized ? 128 * 1024 : 256;
  const Bytes64 max_sz = region_sized ? 4 * 1024 * 1024 : 64 * 1024;
  ChurnResult r{};
  for (auto _ : state) {
    r = churn_buddy(kPool * pressure_pct / 100, min_sz, max_sz, 60000, 7);
  }
  {
    auto& exporter = dodo::bench::json_exporter("ablation_allocator");
    char key[96];
    std::snprintf(key, sizeof(key), "allocator.buddy.%s.p%d",
                  region_sized ? "region" : "small", pressure_pct);
    exporter.set_milli(std::string(key) + ".fail_rate", r.failure_rate);
    exporter.set_milli(std::string(key) + ".fragmentation", r.fragmentation);
    exporter.set_scalar(std::string(key) + ".internal_waste",
                        static_cast<std::int64_t>(r.internal_waste));
  }
  state.counters["fail_rate"] = r.failure_rate;
  state.counters["fragmentation"] = r.fragmentation;
  state.counters["internal_waste_mb"] =
      static_cast<double>(r.internal_waste) / 1e6;
  std::printf(
      "%-13s %-17s %3d%% %9.3f%% %13.3f %12zu  (internal waste %.1f MB)\n",
      region_sized ? "region-sized" : "small-objects", "buddy",
      pressure_pct, 100.0 * r.failure_rate, r.fragmentation, r.free_blocks,
      static_cast<double>(r.internal_waste) / 1e6);
  std::fflush(stdout);
}

BENCHMARK(BM_AllocThroughput);
BENCHMARK(BM_Fragmentation)
    ->ArgsProduct({{1, 0}, {0, 64, 1}, {50, 75}})
    ->Iterations(1);
BENCHMARK(BM_FragmentationBuddy)
    ->ArgsProduct({{1, 0}, {50, 75}})
    ->Iterations(1);

BENCHMARK_MAIN();
