#!/bin/sh
# Line-coverage report for the tier-1 test suite, using the `coverage` CMake
# preset (gcov instrumentation, -O0). The container ships plain gcov only —
# no lcov/gcovr — so this aggregates gcov's own per-file summaries into a
# ranked table plus a total.
#
# Usage:
#   tools/coverage.sh [label]
#   tools/coverage.sh --labels
#
#   label     optional ctest -L filter (e.g. "obs" to cover only the
#             observability suite). Default: run every tier-1 test.
#   --labels  list the labels registered with CTest and exit. Labels are
#             enumerated from the build itself (`ctest --print-labels`),
#             never from a hard-coded list, so suites added later show up
#             here automatically.
#
# Output: per-file "Lines executed" table (sorted, src/ files only) and a
# repo-wide total, printed to stdout. Raw .gcov files land in
# build-coverage/coverage-report/ for line-by-line inspection.
set -eu

label="${1:-}"

cd "$(dirname "$0")/.."
cmake --preset coverage
cmake --build --preset coverage -j"$(nproc)"

# The authoritative label set comes from CTest, not a list in this script:
# `ctest --print-labels` prints "All Labels:" followed by one indented label
# per line.
known_labels="$(ctest --test-dir build-coverage --print-labels \
  | awk '/^ /{gsub(/^ +| +$/, ""); print}')"

if [ "$label" = "--labels" ]; then
  echo "$known_labels"
  exit 0
fi

if [ -n "$label" ]; then
  if ! printf '%s\n' "$known_labels" | grep -qx "$label"; then
    echo "coverage: unknown label '$label'; available labels:" >&2
    printf '%s\n' "$known_labels" | sed 's/^/  /' >&2
    exit 2
  fi
fi

# Stale counters from a previous run would inflate the numbers.
find build-coverage -name '*.gcda' -delete

if [ -n "$label" ]; then
  ctest --test-dir build-coverage -L "$label" --output-on-failure -j"$(nproc)"
else
  ctest --test-dir build-coverage --output-on-failure -j"$(nproc)"
fi

report_dir="build-coverage/coverage-report"
rm -rf "$report_dir"
mkdir -p "$report_dir"

# gcov writes .gcov files into cwd; run it from the report dir against every
# counter file. (CMake compiles with absolute source paths, so gcov's -r
# filter would drop everything — the awk below filters to src/ instead.)
find "$(pwd)/build-coverage" -name '*.gcda' | sort > "$report_dir/gcda.txt"
(
  cd "$report_dir"
  while IFS= read -r f; do
    gcov "$f" >> gcov.log 2>&1 || true
  done < gcda.txt
)

# Summarise: each .gcov names its source in line 0 ("Source:<path>"); count
# executable (non '-') and executed (not '#####'/'=====') lines per file.
awk -F: '
  FNR == 1 { src = "" }
  $2 ~ /^ *0$/ && $3 == "Source" { src = $4; next }
  src !~ /\/repo\/src\// { next }
  {
    gsub(/^ +/, "", $1)
    if ($1 == "-") next
    total[src]++
    if ($1 != "#####" && $1 != "=====") hit[src]++
  }
  END {
    gt = gh = 0
    for (f in total) {
      pct = 100.0 * hit[f] / total[f]
      f2 = f
      sub(/^.*\/repo\//, "", f2)
      printf "%6.2f%%  %5d/%-5d  %s\n", pct, hit[f], total[f], f2
      gt += total[f]; gh += hit[f]
    }
    if (gt > 0)
      printf "%6.2f%%  %5d/%-5d  TOTAL (src/)\n", 100.0 * gh / gt, gh, gt
  }' "$report_dir"/*.gcov | sort -n

echo "coverage: raw .gcov files in $report_dir/"
