#!/bin/sh
# Telemetry determinism smoke: runs each bench binary twice with the same
# seed and asserts (via tools/bench_diff at tolerance 0) that the BENCH and
# TELEM exports are identical — the byte-identical-per-seed guarantee every
# exporter in this repo makes.
#
# Usage:
#   tools/telemetry_smoke.sh [bench_binary...]
#
#   bench_binary  path(s) (relative to the build dir) of the benches to run.
#                 Default: bench/bench_flashcrowd (the timeline that
#                 resolves the steady/reclaim/storm phases) and
#                 bench/bench_smallops (the batched data path, whose
#                 window=0 arm pins the unbatched wire).
#
# Exit status: 0 = all runs identical, 1 = drift found, 2 = setup failure.
set -eu

if [ "$#" -gt 0 ]; then
  benches="$*"
else
  benches="bench/bench_flashcrowd bench/bench_smallops"
fi

cd "$(dirname "$0")/.."
cmake --preset default >/dev/null
# shellcheck disable=SC2046  # word-splitting the target list is the point
cmake --build --preset default -j"$(nproc)" --target \
  $(for b in $benches; do basename "$b"; done) bench_diff >/dev/null

status=0
for bench in $benches; do
  name="$(basename "$bench" | sed 's/^bench_//')"
  out="$(mktemp -d)"
  mkdir -p "$out/a" "$out/b"

  DODO_BENCH_JSON_DIR="$out/a" "build/$bench" \
    --benchmark_min_time=0.01 >/dev/null 2>&1
  DODO_BENCH_JSON_DIR="$out/b" "build/$bench" \
    --benchmark_min_time=0.01 >/dev/null 2>&1

  for kind in BENCH TELEM; do
    a="$out/a/${kind}_${name}.json"
    b="$out/b/${kind}_${name}.json"
    if [ ! -f "$a" ] || [ ! -f "$b" ]; then
      echo "telemetry_smoke: missing ${kind}_${name}.json" >&2
      rm -rf "$out"
      exit 2
    fi
    if build/tools/bench_diff "$a" "$b" --tol 0; then
      echo "telemetry_smoke: ${kind}_${name}.json deterministic"
    else
      status=1
    fi
  done
  # The TSV rendering must match byte for byte as well.
  if ! cmp -s "$out/a/TELEM_${name}.tsv" "$out/b/TELEM_${name}.tsv"; then
    echo "telemetry_smoke: TELEM_${name}.tsv differs between runs" >&2
    status=1
  fi
  rm -rf "$out"
done
exit "$status"
