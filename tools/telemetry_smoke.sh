#!/bin/sh
# Telemetry determinism smoke: runs one bench binary twice with the same
# seed and asserts (via tools/bench_diff at tolerance 0) that the BENCH and
# TELEM exports are identical — the byte-identical-per-seed guarantee every
# exporter in this repo makes.
#
# Usage:
#   tools/telemetry_smoke.sh [bench_binary]
#
#   bench_binary  path (relative to the build dir) of the bench to run.
#                 Default: bench/bench_flashcrowd — the one whose timeline
#                 resolves the steady/reclaim/storm phases.
#
# Exit status: 0 = both runs identical, 1 = drift found, 2 = setup failure.
set -eu

bench="${1:-bench/bench_flashcrowd}"

cd "$(dirname "$0")/.."
cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)" --target \
  "$(basename "$bench")" bench_diff >/dev/null

name="$(basename "$bench" | sed 's/^bench_//')"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
mkdir -p "$out/a" "$out/b"

DODO_BENCH_JSON_DIR="$out/a" "build/$bench" \
  --benchmark_min_time=0.01 >/dev/null 2>&1
DODO_BENCH_JSON_DIR="$out/b" "build/$bench" \
  --benchmark_min_time=0.01 >/dev/null 2>&1

status=0
for kind in BENCH TELEM; do
  a="$out/a/${kind}_${name}.json"
  b="$out/b/${kind}_${name}.json"
  if [ ! -f "$a" ] || [ ! -f "$b" ]; then
    echo "telemetry_smoke: missing ${kind}_${name}.json" >&2
    exit 2
  fi
  if build/tools/bench_diff "$a" "$b" --tol 0; then
    echo "telemetry_smoke: ${kind}_${name}.json deterministic"
  else
    status=1
  fi
done
# The TSV rendering must match byte for byte as well.
if ! cmp -s "$out/a/TELEM_${name}.tsv" "$out/b/TELEM_${name}.tsv"; then
  echo "telemetry_smoke: TELEM_${name}.tsv differs between runs" >&2
  status=1
fi
exit "$status"
