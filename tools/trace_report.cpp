// Offline critical-path report over a merged trace TSV.
//
//   trace_report FILE.tsv [--chrome OUT.json] [--top N]
//       Parse a "# dodo trace v1" dump (Cluster::trace_tsv(), or the TSV the
//       stats_drill example writes), print per-root-operation latency
//       attribution (count, p50/p99 end-to-end, p50/p99 per segment), and
//       list the N slowest traces with their segment split. --chrome also
//       renders the same spans as Chrome trace-event JSON for Perfetto.
//
// Exit status: 0 = report printed, 1 = I/O failure, 2 = usage/parse error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/trace_merge.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_report FILE.tsv [--chrome OUT.json] [--top N]\n");
  return 2;
}

double ms(dodo::Duration ns) { return static_cast<double>(ns) / 1e6; }

dodo::Duration pct(std::vector<dodo::Duration> v, int p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx = (static_cast<std::size_t>(p) * v.size() + 99) / 100;
  if (idx > 0) --idx;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const char* in_path = nullptr;
  const char* chrome_path = nullptr;
  int top = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chrome") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (in_path == nullptr) {
      in_path = argv[i];
    } else {
      return usage();
    }
  }
  if (in_path == nullptr) return usage();

  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", in_path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  std::vector<dodo::obs::MergedSpan> spans;
  std::string error;
  if (!dodo::obs::TraceDomain::from_tsv(text.str(), spans, &error)) {
    std::fprintf(stderr, "trace_report: %s: %s\n", in_path, error.c_str());
    return 2;
  }

  const std::vector<dodo::obs::TraceSummary> traces =
      dodo::obs::analyze_traces(spans);
  std::printf("%s: %zu spans, %zu traces\n", in_path, spans.size(),
              traces.size());

  // -- per-operation aggregate ----------------------------------------------
  std::map<std::string, std::vector<const dodo::obs::TraceSummary*>> by_root;
  for (const auto& t : traces) by_root[t.root_name].push_back(&t);
  std::printf("\n%-22s %7s %10s %10s  per-segment p50/p99 (ms)\n", "operation",
              "count", "p50(ms)", "p99(ms)");
  for (const auto& [root, list] : by_root) {
    std::vector<dodo::Duration> totals;
    totals.reserve(list.size());
    for (const auto* t : list) totals.push_back(t->end - t->start);
    std::printf("%-22s %7zu %10.3f %10.3f ", root.c_str(), list.size(),
                ms(pct(totals, 50)), ms(pct(totals, 99)));
    for (int s = 0; s < dodo::obs::kSegmentCount; ++s) {
      const auto seg = static_cast<dodo::obs::Segment>(s);
      std::vector<dodo::Duration> vals;
      vals.reserve(list.size());
      for (const auto* t : list) vals.push_back(t->segments[seg]);
      if (pct(vals, 99) == 0) continue;  // segment never touched: skip
      std::printf(" %s=%.3f/%.3f", dodo::obs::segment_name(seg),
                  ms(pct(vals, 50)), ms(pct(vals, 99)));
    }
    std::printf("\n");
  }

  // -- slowest traces -------------------------------------------------------
  std::vector<const dodo::obs::TraceSummary*> slow;
  slow.reserve(traces.size());
  for (const auto& t : traces) slow.push_back(&t);
  std::stable_sort(slow.begin(), slow.end(), [](const auto* a, const auto* b) {
    return (a->end - a->start) > (b->end - b->start);
  });
  if (top > 0 && !slow.empty()) {
    std::printf("\nslowest %d traces (critical path):\n",
                std::min<int>(top, static_cast<int>(slow.size())));
    for (int i = 0; i < top && i < static_cast<int>(slow.size()); ++i) {
      const auto* t = slow[static_cast<std::size_t>(i)];
      std::printf("  trace %llu %-18s %9.3f ms @t=%.3f ms:",
                  static_cast<unsigned long long>(t->trace_id),
                  t->root_name.c_str(), ms(t->end - t->start), ms(t->start));
      for (int s = 0; s < dodo::obs::kSegmentCount; ++s) {
        const auto seg = static_cast<dodo::obs::Segment>(s);
        if (t->segments[seg] == 0) continue;
        std::printf(" %s=%.3f", dodo::obs::segment_name(seg),
                    ms(t->segments[seg]));
      }
      std::printf("\n");
    }
  }

  if (chrome_path != nullptr) {
    const std::string json = dodo::obs::TraceDomain::chrome_json(spans);
    std::FILE* f = std::fopen(chrome_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "trace_report: cannot write %s\n", chrome_path);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s (load at https://ui.perfetto.dev)\n", chrome_path);
  }
  return 0;
}
