// Replay/explore driver for the simulation fuzzer.
//
//   fuzz_repro --seed N [--buggy-imd-cache] [--dump]
//       Generate the schedule for seed N and run it with all oracles.
//   fuzz_repro --schedule FILE [--buggy-imd-cache]
//       Replay a serialized .schedule file (e.g. a shrunk failure).
//   fuzz_repro --scan LO HI [--buggy-imd-cache]
//       Run every seed in [LO, HI]; print one line per seed, exit nonzero
//       if any run fails.
//
// Exit status: 0 = all runs green, 1 = violation or incomplete run,
// 2 = usage/parse error. Build it under the fuzz-asan preset to replay a
// failure under AddressSanitizer+UBSan (see DESIGN.md §8).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/generator.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"
#include "fuzz/shrink.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fuzz_repro (--seed N | --schedule FILE | --scan LO HI)"
               " [--buggy-imd-cache] [--dump] [--shrink]\n");
  return 2;
}

int run_one(const dodo::fuzz::Schedule& s, const dodo::fuzz::RunOptions& opt,
            bool dump, bool shrink) {
  if (dump) std::fputs(s.serialize().c_str(), stdout);
  const auto r = dodo::fuzz::run_schedule(s, opt);
  const auto& m = r.client_metrics;
  std::printf(
      "seed=%llu ops=%zu faults=%zu deliveries=%llu mopens=%llu/%llu "
      "pushes=%llu reads=%llu writes=%llu drops=%llu %s%s%s\n",
      static_cast<unsigned long long>(s.seed), r.ops_executed,
      r.faults_applied, static_cast<unsigned long long>(r.deliveries_probed),
      static_cast<unsigned long long>(m.mopens - m.mopen_failures),
      static_cast<unsigned long long>(m.mopens),
      static_cast<unsigned long long>(m.remote_pushes),
      static_cast<unsigned long long>(m.remote_reads),
      static_cast<unsigned long long>(m.remote_writes),
      static_cast<unsigned long long>(m.descriptors_dropped),
      r.completed ? "completed" : "DID-NOT-FINISH",
      r.violation.empty() ? "" : " VIOLATION: ", r.violation.c_str());
  if (!r.ok() && shrink) {
    const auto sr = dodo::fuzz::shrink_schedule(s, [&](const auto& cand) {
      return !dodo::fuzz::run_schedule(cand, opt).ok();
    });
    std::printf("# shrunk %zu -> %zu events in %zu runs\n", sr.initial_size,
                sr.minimal.size(), sr.runs);
    const auto rm = dodo::fuzz::run_schedule(sr.minimal, opt);
    std::printf("# minimal violation: %s\n",
                rm.violation.empty() ? "(did not finish)"
                                     : rm.violation.c_str());
    std::fputs(sr.minimal.serialize().c_str(), stdout);
  }
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  dodo::fuzz::RunOptions opt;
  bool dump = false;
  bool shrink = false;
  long long seed = -1, scan_lo = -1, scan_hi = -1;
  std::string schedule_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::atoll(argv[++i]);
    } else if (arg == "--schedule" && i + 1 < argc) {
      schedule_file = argv[++i];
    } else if (arg == "--scan" && i + 2 < argc) {
      scan_lo = std::atoll(argv[++i]);
      scan_hi = std::atoll(argv[++i]);
    } else if (arg == "--buggy-imd-cache") {
      opt.buggy_imd_reply_cache = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--shrink") {
      shrink = true;
    } else {
      return usage();
    }
  }

  if (!schedule_file.empty()) {
    std::ifstream in(schedule_file);
    if (!in) {
      std::fprintf(stderr, "fuzz_repro: cannot open %s\n",
                   schedule_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    dodo::fuzz::Schedule s;
    std::string err;
    if (!dodo::fuzz::Schedule::parse(text.str(), s, &err)) {
      std::fprintf(stderr, "fuzz_repro: parse error: %s\n", err.c_str());
      return 2;
    }
    return run_one(s, opt, dump, shrink);
  }
  if (seed >= 0) {
    return run_one(dodo::fuzz::generate_schedule(
                       static_cast<std::uint64_t>(seed)),
                   opt, dump, shrink);
  }
  if (scan_lo >= 0 && scan_hi >= scan_lo) {
    int rc = 0;
    for (long long s = scan_lo; s <= scan_hi; ++s) {
      rc |= run_one(dodo::fuzz::generate_schedule(
                        static_cast<std::uint64_t>(s)),
                    opt, dump, shrink);
    }
    return rc;
  }
  return usage();
}
