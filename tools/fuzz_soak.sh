#!/bin/sh
# Soak-scale fuzz scan: builds the requested preset and runs the opt-in
# `fuzz`-labeled ctest configuration (which plain `ctest` never touches).
#
# Usage:
#   tools/fuzz_soak.sh [preset] [seed_base] [seed_count]
#
#   preset      "default" (fast) or "fuzz-asan" (ASan+UBSan). Default: default.
#   seed_base   first seed of the scan window            (default 1)
#   seed_count  number of consecutive seeds to run       (default 500)
#
# Every failing seed is printed with a ready-to-paste reproduction command
# (see README.md "Reporting fuzz failures"); rerun it with
#   build/tools/fuzz_repro --seed N --shrink
# to get the minimal schedule and a regression-test body.
set -eu

preset="${1:-default}"
base="${2:-1}"
count="${3:-500}"

case "$preset" in
  default)   build_dir="build" ;;
  fuzz-asan) build_dir="build-fuzz-asan" ;;
  *) echo "fuzz_soak.sh: unknown preset '$preset' (want default|fuzz-asan)" >&2
     exit 2 ;;
esac

cd "$(dirname "$0")/.."
cmake --preset "$preset"
cmake --build --preset "$preset" -j"$(nproc)"

DODO_FUZZ_SEED_BASE="$base" DODO_FUZZ_SEED_COUNT="$count" \
  ctest --test-dir "$build_dir" -C fuzz -L fuzz --output-on-failure
