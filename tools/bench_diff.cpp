// Regression diff over two bench/telemetry JSON exports.
//
//   bench_diff A.json B.json [--tol FRAC] [--max-report N]
//       Compare two BENCH_*.json or TELEM_*.json files metric by metric.
//       Every numeric leaf is flattened to a dotted path (arrays indexed as
//       [i]); a pair regresses when the relative difference
//       |a-b| / max(|a|,|b|,1) exceeds --tol (default 0: byte-for-byte
//       numeric equality). Keys present in only one file always count as a
//       regression. String leaves must match exactly.
//
// Exit status: 0 = within tolerance, 1 = regression found, 2 = usage/IO/
// parse error. Output is one line per differing leaf (capped by
// --max-report, default 20) plus a summary, so CI logs stay readable.
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff A.json B.json [--tol FRAC] "
               "[--max-report N]\n");
  return 2;
}

/// A flattened leaf: either a number (all repo exports are integers) or a
/// string (the "type" tags in BENCH files).
struct Leaf {
  bool is_number = true;
  std::int64_t num = 0;
  std::string str;
};

using FlatMap = std::map<std::string, Leaf>;

/// Strict recursive-descent reader of exactly the subset the exporters
/// emit: objects, arrays, string keys/values, and integer numbers.
class Flattener {
 public:
  Flattener(const std::string& text, FlatMap& out) : s_(text), out_(out) {}

  bool run() {
    skip_ws();
    if (!value("")) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value(const std::string& path) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(path);
    if (c == '[') return array(path);
    if (c == '"') {
      std::string v;
      if (!string_lit(&v)) return false;
      Leaf leaf;
      leaf.is_number = false;
      leaf.str = std::move(v);
      out_[path] = std::move(leaf);
      return true;
    }
    return number(path);
  }

  bool object(const std::string& path) {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string_lit(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(const std::string& path) {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (std::size_t i = 0;; ++i) {
      char idx[32];
      std::snprintf(idx, sizeof idx, "[%zu]", i);
      if (!value(path + idx)) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool number(const std::string& path) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ == start) return false;
    Leaf leaf;
    leaf.num = std::strtoll(s_.substr(start, pos_ - start).c_str(),
                            nullptr, 10);
    out_[path] = leaf;
    return true;
  }

  bool string_lit(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        ++pos_;
        switch (s_[pos_]) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(s_[pos_]); break;
        }
      } else {
        out->push_back(s_[pos_]);
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  FlatMap& out_;
  std::size_t pos_ = 0;
};

bool load(const char* path, FlatMap& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  Flattener fl(text, out);
  if (!fl.run()) {
    std::fprintf(stderr, "bench_diff: parse error in %s\n", path);
    return false;
  }
  return true;
}

double rel_diff(std::int64_t a, std::int64_t b) {
  const double da = std::abs(static_cast<double>(a));
  const double db = std::abs(static_cast<double>(b));
  const double denom = std::max(1.0, std::max(da, db));
  return std::abs(static_cast<double>(a) - static_cast<double>(b)) / denom;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path_a = nullptr;
  const char* path_b = nullptr;
  double tol = 0.0;
  int max_report = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-report") == 0 && i + 1 < argc) {
      max_report = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path_a == nullptr) {
      path_a = argv[i];
    } else if (path_b == nullptr) {
      path_b = argv[i];
    } else {
      return usage();
    }
  }
  if (path_a == nullptr || path_b == nullptr || tol < 0.0) return usage();

  FlatMap a, b;
  if (!load(path_a, a) || !load(path_b, b)) return 2;

  std::uint64_t regressions = 0;
  int reported = 0;
  auto report = [&](const char* fmt, const std::string& key, double extra) {
    ++regressions;
    if (reported < max_report) {
      std::fprintf(stderr, fmt, key.c_str(), extra);
      ++reported;
    }
  };
  for (const auto& [key, la] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      report("bench_diff: %s only in A%.0s\n", key, 0.0);
      continue;
    }
    const Leaf& lb = it->second;
    if (la.is_number != lb.is_number ||
        (!la.is_number && la.str != lb.str)) {
      report("bench_diff: %s differs in kind or text%.0s\n", key, 0.0);
      continue;
    }
    if (la.is_number && rel_diff(la.num, lb.num) > tol) {
      ++regressions;
      if (reported < max_report) {
        std::fprintf(stderr,
                     "bench_diff: %s A=%" PRId64 " B=%" PRId64
                     " rel=%.4f tol=%.4f\n",
                     key.c_str(), la.num, lb.num, rel_diff(la.num, lb.num),
                     tol);
        ++reported;
      }
    }
  }
  for (const auto& [key, lb] : b) {
    if (a.find(key) == a.end()) report("bench_diff: %s only in B%.0s\n", key, 0.0);
  }

  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %" PRIu64 " differing leaves (%zu vs %zu "
                 "total) above tol %.4f\n",
                 regressions, a.size(), b.size(), tol);
    return 1;
  }
  std::printf("bench_diff: OK — %zu leaves within tol %.4f\n", a.size(), tol);
  return 0;
}
