// Small statistics helpers used by the trace analyzer and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dodo {

/// Welford's online mean/variance.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-boundary histogram for latency-style data. Values outside the range
/// clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    stats_.add(x);
    const double f = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(f * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }

  /// Approximate quantile from bucket boundaries (q in [0,1]).
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  RunningStats stats_;
};

}  // namespace dodo
