#include "common/stats.hpp"

namespace dodo {

double Histogram::quantile(double q) const {
  std::uint64_t total = 0;
  for (const auto c : counts_) total += c;
  if (total == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return lo_ + width * (static_cast<double>(i) + 0.5);
    }
  }
  return hi_;
}

}  // namespace dodo
