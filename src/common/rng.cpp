#include "common/rng.hpp"

#include <cmath>

namespace dodo {

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller. We discard the second variate to keep the generator
  // stateless with respect to call parity (simpler reproducibility story).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace dodo
