#include "common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace dodo {

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
  }
  if (now_fn_ != nullptr) {
    const SimTime t = now_fn_(now_ctx_);
    std::fprintf(stderr, "[%s %12.6fs %.*s] %.*s\n", tag, to_seconds(t),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[%s %.*s] %.*s\n", tag,
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

namespace detail {

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detail

}  // namespace dodo
