// Minimal leveled logger.
//
// Daemons log protocol events at kDebug; tests and benches run at kWarn by
// default so output stays readable. The logger is process-global and not
// thread-safe by design: the simulator is single-threaded, and the only
// multi-threaded component (rtnet) logs nothing on its hot path.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#include "common/units.hpp"

namespace dodo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Sets a callback that supplies the current simulated time for log
  /// prefixes; pass nullptr to clear.
  void set_clock(SimTime (*now_fn)(void*), void* ctx) {
    now_fn_ = now_fn;
    now_ctx_ = ctx;
  }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;

  LogLevel level_ = LogLevel::kWarn;
  SimTime (*now_fn_)(void*) = nullptr;
  void* now_ctx_ = nullptr;
};

namespace detail {
std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define DODO_LOG(level, component, ...)                                  \
  do {                                                                   \
    if (::dodo::Logger::instance().enabled(level)) {                     \
      ::dodo::Logger::instance().write(                                  \
          level, component, ::dodo::detail::format_log(__VA_ARGS__));    \
    }                                                                    \
  } while (0)

#define DODO_DEBUG(component, ...) \
  DODO_LOG(::dodo::LogLevel::kDebug, component, __VA_ARGS__)
#define DODO_INFO(component, ...) \
  DODO_LOG(::dodo::LogLevel::kInfo, component, __VA_ARGS__)
#define DODO_WARN(component, ...) \
  DODO_LOG(::dodo::LogLevel::kWarn, component, __VA_ARGS__)
#define DODO_ERROR(component, ...) \
  DODO_LOG(::dodo::LogLevel::kError, component, __VA_ARGS__)

}  // namespace dodo
