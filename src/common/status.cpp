#include "common/status.hpp"

namespace dodo {

std::string_view err_name(Err e) {
  switch (e) {
    case Err::kOk:
      return "OK";
    case Err::kNoMem:
      return "NOMEM";
    case Err::kInval:
      return "INVAL";
    case Err::kIo:
      return "IO";
    case Err::kTimeout:
      return "TIMEOUT";
    case Err::kUnreachable:
      return "UNREACHABLE";
    case Err::kRefused:
      return "REFUSED";
    case Err::kExists:
      return "EXISTS";
    case Err::kNotFound:
      return "NOT_FOUND";
    case Err::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string s{err_name(code_)};
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

int& dodo_errno() {
  thread_local int value = 0;
  return value;
}

}  // namespace dodo
