// Byte-size and simulated-time units used throughout Dodo.
//
// Simulated time is a signed 64-bit count of nanoseconds. We deliberately do
// not use std::chrono for the simulated clock: sim time is a dimension of the
// model, never of the host, and keeping it a plain integer makes event
// ordering, serialization, and arithmetic in timing models trivial.
#pragma once

#include <cstdint>

namespace dodo {

// ---------------------------------------------------------------------------
// Byte sizes
// ---------------------------------------------------------------------------

using Bytes64 = std::int64_t;

constexpr Bytes64 KiB = 1024;
constexpr Bytes64 MiB = 1024 * KiB;
constexpr Bytes64 GiB = 1024 * MiB;

constexpr Bytes64 operator""_KiB(unsigned long long v) {
  return static_cast<Bytes64>(v) * KiB;
}
constexpr Bytes64 operator""_MiB(unsigned long long v) {
  return static_cast<Bytes64>(v) * MiB;
}
constexpr Bytes64 operator""_GiB(unsigned long long v) {
  return static_cast<Bytes64>(v) * GiB;
}

// ---------------------------------------------------------------------------
// Simulated time
// ---------------------------------------------------------------------------

/// A point on the simulated clock, in nanoseconds since simulation start.
using SimTime = std::int64_t;
/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration operator""_ns(unsigned long long v) {
  return static_cast<Duration>(v);
}
constexpr Duration operator""_us(unsigned long long v) {
  return static_cast<Duration>(v) * kMicrosecond;
}
constexpr Duration operator""_ms(unsigned long long v) {
  return static_cast<Duration>(v) * kMillisecond;
}
constexpr Duration operator""_s(unsigned long long v) {
  return static_cast<Duration>(v) * kSecond;
}

/// Converts a duration expressed in (possibly fractional) seconds.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
/// Converts a duration expressed in (possibly fractional) milliseconds.
constexpr Duration millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
/// Converts a duration expressed in (possibly fractional) microseconds.
constexpr Duration micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Time to move `bytes` at `bytes_per_second`, rounded up to whole ns.
constexpr Duration transfer_time(Bytes64 bytes, double bytes_per_second) {
  if (bytes <= 0 || bytes_per_second <= 0.0) return 0;
  const double sec = static_cast<double>(bytes) / bytes_per_second;
  return static_cast<Duration>(sec * static_cast<double>(kSecond)) + 1;
}

}  // namespace dodo
