// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (seek distances, packet loss,
// workload access patterns, trace synthesis) draws from explicitly seeded
// generators so that every experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <limits>

namespace dodo {

/// SplitMix64: used to expand a single seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it composes with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill here; simple
    // rejection keeps the distribution exact.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed double (Box-Muller, one value per call).
  double normal(double mean, double stddev);

  /// Derive an independent generator for a named substream.
  Rng fork(std::uint64_t stream_id) const {
    SplitMix64 sm(s_[0] ^ (stream_id * 0xd1342543de82ef95ULL));
    return Rng(sm.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace dodo
