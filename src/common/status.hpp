// Error model.
//
// Internals use a typed Status; the public mopen/mread/... API converts it to
// the paper's errno-style convention (-1 + dodo_errno) in src/runtime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace dodo {

/// Error codes for Dodo operations. The first three mirror the errno values
/// the paper's API contract names (ENOMEM, EINVAL, EIO); the rest are
/// internal conditions that the runtime maps onto those before they reach
/// the application.
enum class Err : std::uint8_t {
  kOk = 0,
  kNoMem,        // no memory / region not active (paper: ENOMEM)
  kInval,        // bad arguments / bad descriptor (paper: EINVAL)
  kIo,           // backing-file I/O failed (paper: errno of write())
  kTimeout,      // protocol timeout
  kUnreachable,  // peer host gone / daemon exited
  kRefused,      // daemon refused (e.g. shutting down)
  kExists,       // region key already allocated
  kNotFound,     // no such region / host
  kShutdown,     // component is shutting down
};

std::string_view err_name(Err e);

/// A result code with an optional human-readable detail message.
/// Cheap to copy when ok (empty message).
class [[nodiscard]] Status {
 public:
  Status() = default;
  explicit Status(Err code) : code_(code) {}
  Status(Err code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == Err::kOk; }
  [[nodiscard]] Err code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const;

  explicit operator bool() const { return is_ok(); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Err code_ = Err::kOk;
  std::string message_;
};

/// errno-style side channel for the paper-faithful C API surface.
/// The runtime sets this before returning -1, mirroring §3.2 of the paper.
int& dodo_errno();

/// Values used with dodo_errno(); aliased to the host errno values so that
/// application code written against the paper's contract reads naturally.
inline constexpr int kDodoENOMEM = 12;  // ENOMEM
inline constexpr int kDodoEINVAL = 22;  // EINVAL
inline constexpr int kDodoEIO = 5;      // EIO

}  // namespace dodo
