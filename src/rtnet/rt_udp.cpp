#include "rtnet/rt_udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "net/codec.hpp"

namespace dodo::rtnet {

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      drop_rate_(other.drop_rate_),
      drop_rng_(other.drop_rng_) {
  other.fd_ = -1;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    drop_rate_ = other.drop_rate_;
    drop_rng_ = other.drop_rng_;
    other.fd_ = -1;
  }
  return *this;
}

UdpSocket UdpSocket::open_loopback() {
  UdpSocket s;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return s;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return s;
  }
  s.fd_ = fd;
  s.port_ = ntohs(addr.sin_port);
  return s;
}

bool UdpSocket::send_to(std::uint16_t port, const std::uint8_t* data,
                        std::size_t len) {
  if (fd_ < 0) return false;
  if (drop_rate_ > 0.0 && drop_rng_.chance(drop_rate_)) return true;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const auto n = ::sendto(fd_, data, len, 0,
                          reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  return n == static_cast<ssize_t>(len);
}

std::optional<std::pair<std::vector<std::uint8_t>, std::uint16_t>>
UdpSocket::recv(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r <= 0 || (pfd.revents & POLLIN) == 0) return std::nullopt;
  std::vector<std::uint8_t> buf(65536);
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  const auto n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                            reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n < 0) return std::nullopt;
  buf.resize(static_cast<std::size_t>(n));
  return std::pair{std::move(buf), ntohs(from.sin_port)};
}

// ---------------------------------------------------------------------------
// Bulk protocol, blocking style. Same message kinds and semantics as the
// simulated bulk layer (net/bulk.cpp).
// ---------------------------------------------------------------------------

namespace {

enum class Kind : std::uint8_t {
  kReq = 1,
  kCredit = 2,
  kData = 3,
  kAck = 4,
  kNack = 5,
};

struct Decoded {
  Kind kind{};
  std::uint64_t xfer = 0;
  std::uint64_t seq = 0;
  std::uint64_t nchunks = 0;
  std::uint64_t next_base = 0;
  std::int64_t total_len = 0;
  std::int64_t window = 0;
  std::vector<std::uint64_t> missing;
  std::vector<std::uint8_t> payload;
  bool ok = false;
};

Decoded decode(const std::vector<std::uint8_t>& raw) {
  Decoded d;
  net::Reader r(raw);
  d.kind = static_cast<Kind>(r.u8());
  d.xfer = r.u64();
  switch (d.kind) {
    case Kind::kReq:
      d.total_len = r.i64();
      break;
    case Kind::kCredit:
      d.window = r.i64();
      break;
    case Kind::kData: {
      d.seq = r.u64();
      d.nchunks = r.u64();
      d.total_len = r.i64();
      const auto n = r.u32();
      if (n <= r.remaining()) {
        d.payload.assign(raw.end() - static_cast<std::ptrdiff_t>(n),
                         raw.end());
      }
      break;
    }
    case Kind::kAck:
      d.next_base = r.u64();
      break;
    case Kind::kNack: {
      const auto n = r.u32();
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        d.missing.push_back(r.u64());
      }
      break;
    }
    default:
      return d;
  }
  d.ok = r.ok();
  return d;
}

net::Buf header(Kind kind, std::uint64_t xfer) {
  net::Buf h;
  net::Writer w(h);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(xfer);
  return h;
}

/// Scatter landing state; mirrors the simulated receiver's (net/bulk.cpp).
/// Chunks are deduplicated by the caller, so each logical byte lands once
/// and `remaining` hitting zero is a one-shot completion edge per segment.
struct RtScatter {
  std::vector<RtScatterSeg> segs;
  std::vector<std::uint8_t>* seg_done = nullptr;
  std::vector<std::size_t> start;
  std::vector<std::size_t> remaining;

  void init() {
    std::size_t off = 0;
    start.resize(segs.size());
    remaining.resize(segs.size());
    for (std::size_t i = 0; i < segs.size(); ++i) {
      start[i] = off;
      remaining[i] = segs[i].size;
      off += segs[i].size;
    }
    if (seg_done != nullptr) seg_done->assign(segs.size(), 0);
  }

  void land(std::size_t off, const std::vector<std::uint8_t>& payload) {
    const std::size_t len = payload.size();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const std::size_t s_lo = start[i];
      const std::size_t s_hi = s_lo + segs[i].size;
      const std::size_t lo = std::max(off, s_lo);
      const std::size_t hi = std::min(off + len, s_hi);
      if (lo >= hi) continue;
      if (segs[i].data != nullptr) {
        std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(lo - off),
                    hi - lo, segs[i].data + (lo - s_lo));
      }
      remaining[i] -= hi - lo;
      if (remaining[i] == 0 && seg_done != nullptr) (*seg_done)[i] = 1;
    }
  }
};

}  // namespace

Status rt_bulk_send(UdpSocket& sock, std::uint16_t dst_port,
                    std::uint64_t xfer_id, const std::uint8_t* data,
                    std::size_t len, const RtBulkParams& params) {
  const std::size_t chunk = params.chunk;
  const std::uint64_t nchunks =
      len == 0 ? 1 : (len + chunk - 1) / chunk;

  auto send_data = [&](std::uint64_t seq) {
    const std::size_t off = static_cast<std::size_t>(seq) * chunk;
    const std::size_t n = std::min(chunk, len - off);
    net::Buf msg = header(Kind::kData, xfer_id);
    net::Writer w(msg);
    w.u64(seq);
    w.u64(nchunks);
    w.i64(static_cast<std::int64_t>(len));
    w.u32(static_cast<std::uint32_t>(n));
    if (n > 0) w.bytes(data + off, n);
    sock.send_to(dst_port, msg.data(), msg.size());
  };

  std::uint64_t win_chunks = std::max<std::uint64_t>(
      1, params.window_bytes / chunk);
  if (nchunks > 1) {
    int tries = 0;
    for (;;) {
      net::Buf msg = header(Kind::kReq, xfer_id);
      net::Writer w(msg);
      w.i64(static_cast<std::int64_t>(len));
      sock.send_to(dst_port, msg.data(), msg.size());
      auto reply = sock.recv(params.ack_timeout_ms);
      if (reply) {
        const Decoded d = decode(reply->first);
        if (d.ok && d.xfer == xfer_id && d.kind == Kind::kCredit &&
            d.window >= static_cast<std::int64_t>(chunk)) {
          win_chunks = static_cast<std::uint64_t>(d.window) / chunk;
          break;
        }
        continue;
      }
      if (++tries > params.max_retries) {
        return Status(Err::kTimeout, "rt bulk: no credit");
      }
    }
  }

  std::uint64_t base = 0;
  std::vector<std::uint64_t> missing;
  auto fill_round = [&] {
    missing.clear();
    for (std::uint64_t s = base; s < std::min(nchunks, base + win_chunks);
         ++s) {
      missing.push_back(s);
    }
  };
  fill_round();
  int stalls = 0;
  while (base < nchunks) {
    for (const auto seq : missing) send_data(seq);
    auto reply = sock.recv(params.ack_timeout_ms);
    if (!reply) {
      if (++stalls > params.max_retries) {
        return Status(Err::kTimeout, "rt bulk: receiver silent");
      }
      continue;
    }
    const Decoded d = decode(reply->first);
    if (!d.ok || d.xfer != xfer_id) continue;
    if (d.kind == Kind::kAck && d.next_base > base) {
      base = d.next_base;
      fill_round();
      stalls = 0;
    } else if (d.kind == Kind::kNack) {
      if (!d.missing.empty()) missing = d.missing;
      if (++stalls > params.max_retries) {
        return Status(Err::kTimeout, "rt bulk: no progress");
      }
    }
  }
  return Status::ok();
}

namespace {

/// Shared receive loop for rt_bulk_recv and rt_bulk_recv_sg: sg == nullptr
/// materializes into result.data, otherwise chunks land straight into the
/// scatter segments. Everything the wire can observe is common code.
RtBulkResult rt_bulk_recv_impl(UdpSocket& sock, std::uint64_t xfer_id,
                               const RtBulkParams& params, RtScatter* sg) {
  RtBulkResult result;
  const std::size_t chunk = params.chunk;
  std::int64_t total = -1;
  std::uint64_t nchunks = 0;
  std::uint64_t base = 0;
  std::uint64_t round_end = 0;
  const std::uint64_t win_chunks = std::max<std::uint64_t>(
      1, params.window_bytes / chunk);
  std::vector<bool> have;
  std::uint16_t peer = 0;

  auto send_ack = [&] {
    net::Buf msg = header(Kind::kAck, xfer_id);
    net::Writer w(msg);
    w.u64(base);
    sock.send_to(peer, msg.data(), msg.size());
  };
  auto start_round = [&] {
    round_end = std::min(nchunks, base + win_chunks);
  };
  auto round_complete = [&] {
    for (std::uint64_t s = base; s < round_end; ++s) {
      if (!have[s]) return false;
    }
    return true;
  };

  // Gap timer is an absolute deadline on transfer progress, re-armed only
  // by a credit request, a newly accepted chunk, or a stale chunk answered
  // with a re-ACK — never by duplicates, out-of-window frames, or foreign
  // traffic. Mirrors the simulated receiver in net/bulk.cpp; see the
  // comment there.
  using Clock = std::chrono::steady_clock;
  int idle = 0;
  Clock::time_point armed_at = Clock::now();
  for (;;) {
    const auto remaining_ms =
        static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                             armed_at +
                             std::chrono::milliseconds(
                                 params.recv_gap_timeout_ms) -
                             Clock::now())
                             .count());
    if (remaining_ms <= 0) {
      if (++idle > params.max_retries) {
        result.status = Status(Err::kTimeout, "rt bulk: sender silent");
        return result;
      }
      if (peer != 0 && nchunks > 0) {
        net::Buf msg = header(Kind::kNack, xfer_id);
        net::Writer w(msg);
        std::vector<std::uint64_t> missing;
        for (std::uint64_t s = base; s < round_end; ++s) {
          if (!have[s]) missing.push_back(s);
        }
        w.u32(static_cast<std::uint32_t>(missing.size()));
        for (const auto s : missing) w.u64(s);
        sock.send_to(peer, msg.data(), msg.size());
      }
      armed_at = Clock::now();
      continue;
    }
    auto raw = sock.recv(remaining_ms);
    if (!raw) continue;  // deadline reached; handled above
    const Decoded d = decode(raw->first);
    if (!d.ok || d.xfer != xfer_id) continue;
    peer = raw->second;
    if (d.kind == Kind::kReq) {
      if (total < 0) {
        total = d.total_len;
        nchunks = std::max<std::uint64_t>(
            1, (static_cast<std::uint64_t>(total) + chunk - 1) / chunk);
        have.assign(nchunks, false);
        if (sg == nullptr) {
          result.data.assign(static_cast<std::size_t>(total), 0);
        }
        start_round();
      }
      idle = 0;
      armed_at = Clock::now();
      net::Buf msg = header(Kind::kCredit, xfer_id);
      net::Writer w(msg);
      w.i64(static_cast<std::int64_t>(win_chunks * chunk));
      sock.send_to(peer, msg.data(), msg.size());
    } else if (d.kind == Kind::kData) {
      if (total < 0) {
        total = d.total_len;
        nchunks = std::max<std::uint64_t>(1, d.nchunks);
        have.assign(nchunks, false);
        if (sg == nullptr) {
          result.data.assign(static_cast<std::size_t>(total), 0);
        }
        start_round();
      }
      if (d.seq >= nchunks) continue;
      if (d.seq < base) {
        idle = 0;  // sender is alive, just missed our ACK
        armed_at = Clock::now();
        send_ack();
        continue;
      }
      if (d.seq >= round_end) continue;
      if (!have[d.seq]) {
        idle = 0;
        armed_at = Clock::now();
        have[d.seq] = true;
        const std::size_t off = static_cast<std::size_t>(d.seq) * chunk;
        if (sg != nullptr) {
          sg->land(off, d.payload);
        } else {
          std::copy(d.payload.begin(), d.payload.end(),
                    result.data.begin() + static_cast<std::ptrdiff_t>(off));
        }
      }
      if (round_complete()) {
        base = round_end;
        send_ack();
        if (base >= nchunks) {
          result.size = total < 0 ? 0 : static_cast<std::size_t>(total);
          result.status = Status::ok();
          return result;
        }
        start_round();
      }
    }
  }
}

}  // namespace

RtBulkResult rt_bulk_recv(UdpSocket& sock, std::uint64_t xfer_id,
                          const RtBulkParams& params) {
  return rt_bulk_recv_impl(sock, xfer_id, params, nullptr);
}

RtBulkResult rt_bulk_recv_sg(UdpSocket& sock, std::uint64_t xfer_id,
                             std::vector<RtScatterSeg> segs,
                             std::vector<std::uint8_t>* seg_done,
                             const RtBulkParams& params) {
  RtScatter sg;
  sg.segs = std::move(segs);
  sg.seg_done = seg_done;
  sg.init();
  return rt_bulk_recv_impl(sock, xfer_id, params, &sg);
}

}  // namespace dodo::rtnet
