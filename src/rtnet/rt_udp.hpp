// Real Berkeley-socket UDP transport (loopback) and the §4.4 bulk protocol
// over it.
//
// Everything else in this repository runs on the simulated clock; this
// module demonstrates that the wire protocol itself — blast as much as fits
// in the receiver's window, selective NACK on timeout, ACK advances the
// window — is real code that moves real bytes over real UDP sockets, with
// real packet loss injectable for tests. Blocking style with threads, as
// the 1999 daemons were written.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace dodo::rtnet {

/// A UDP socket bound to 127.0.0.1:<ephemeral>.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Opens and binds; returns an invalid socket (!valid()) when the
  /// environment forbids sockets (tests skip in that case).
  static UdpSocket open_loopback();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Sends one datagram to 127.0.0.1:port. Applies the test-only loss
  /// injection, if configured, *before* the syscall.
  bool send_to(std::uint16_t port, const std::uint8_t* data,
               std::size_t len);

  /// Receives one datagram; timeout in milliseconds (0 = poll). Returns
  /// payload + sender port.
  std::optional<std::pair<std::vector<std::uint8_t>, std::uint16_t>> recv(
      int timeout_ms);

  /// Test hook: drop this fraction of outgoing datagrams.
  void set_drop_rate(double rate, std::uint64_t seed) {
    drop_rate_ = rate;
    drop_rng_.reseed(seed);
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  double drop_rate_ = 0.0;
  Rng drop_rng_{1};
};

struct RtBulkParams {
  std::size_t chunk = 1400;         // payload bytes per datagram
  std::size_t window_bytes = 64 * 1024;
  int recv_gap_timeout_ms = 30;
  int ack_timeout_ms = 60;
  int max_retries = 40;
};

Status rt_bulk_send(UdpSocket& sock, std::uint16_t dst_port,
                    std::uint64_t xfer_id, const std::uint8_t* data,
                    std::size_t len, const RtBulkParams& params = {});

struct RtBulkResult {
  Status status;
  std::vector<std::uint8_t> data;  // empty on the scatter-gather path
  std::size_t size = 0;            // logical bytes transferred
};

RtBulkResult rt_bulk_recv(UdpSocket& sock, std::uint64_t xfer_id,
                          const RtBulkParams& params = {});

/// One landing segment of a scatter-gather receive; the real-socket mirror
/// of net::ScatterSeg. Segment k covers logical offsets
/// [sum(size_0..k-1), sum(size_0..k)); data == nullptr discards the range.
struct RtScatterSeg {
  std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// rt_bulk_recv variant that lands chunk payloads directly in the caller's
/// buffers — zero intermediate copies on the real-socket path too. Wire
/// behaviour is identical to rt_bulk_recv. `seg_done`, when non-null, is
/// reset to segs.size() zeros and each entry set to 1 once that segment's
/// full byte range has arrived (per-segment completion). `result.data`
/// stays empty; `result.size` reports the logical transfer size.
RtBulkResult rt_bulk_recv_sg(UdpSocket& sock, std::uint64_t xfer_id,
                             std::vector<RtScatterSeg> segs,
                             std::vector<std::uint8_t>* seg_done,
                             const RtBulkParams& params = {});

}  // namespace dodo::rtnet
