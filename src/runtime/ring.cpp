#include "runtime/ring.hpp"

#include <algorithm>

namespace dodo::runtime {

DodoRing::DodoRing(sim::Simulator& sim, DodoClient& client, std::size_t depth)
    : sim_(sim),
      client_(client),
      depth_(std::max<std::size_t>(1, depth)),
      cq_(sim),
      slots_(sim) {
  client_.ring_register();
}

bool DodoRing::try_submit(const Sqe& sqe) {
  if (in_flight_ >= depth_) {
    client_.ring_note_reject();
    return false;
  }
  ++in_flight_;
  client_.ring_note_submit(static_cast<std::uint64_t>(in_flight_));
  if (sqe.op == RingOp::kRead && client_.coalescing_enabled()) {
    // The batched path: no coroutine per op. The read joins the
    // descriptor's coalescing queue and this callback fires when the merged
    // flush resolves it (possibly synchronously, on validation failure).
    client_.mread_enqueue(
        sqe.rd, sqe.offset, sqe.buf, sqe.len,
        [this, ud = sqe.user_data](const DodoClient::ReadResult& r) {
          complete_read(ud, r);
        });
  } else {
    // Writes, and reads with coalescing off, run the classic one-op path.
    sim_.spawn(run_op(sqe));
  }
  return true;
}

sim::Co<void> DodoRing::submit(Sqe sqe) {
  while (!try_submit(sqe)) co_await slots_.recv();
}

sim::Co<void> DodoRing::run_op(Sqe sqe) {
  if (sqe.op == RingOp::kRead) {
    const DodoClient::ReadResult r =
        co_await client_.mread_ex(sqe.rd, sqe.offset, sqe.buf, sqe.len);
    complete_read(sqe.user_data, r);
    co_return;
  }
  const Bytes64 n =
      co_await client_.mwrite(sqe.rd, sqe.offset, sqe.wbuf, sqe.len);
  Cqe c;
  c.user_data = sqe.user_data;
  c.n = n;
  c.filled = n >= 0;
  post(std::move(c));
}

void DodoRing::complete_read(std::uint64_t user_data,
                             const DodoClient::ReadResult& r) {
  Cqe c;
  c.user_data = user_data;
  c.n = r.n;
  c.filled = r.filled;
  c.degraded = r.n < 0 || !r.disk_ranges.empty();
  c.disk_ranges = r.disk_ranges;
  post(std::move(c));
}

void DodoRing::post(Cqe c) {
  --in_flight_;
  client_.ring_note_complete();
  cq_.send(std::move(c));
  // Wake every backpressured submit()/drain() to re-check its condition.
  while (slots_.pending_receivers() > 0) slots_.send(0);
}

sim::Co<Cqe> DodoRing::reap() { co_return co_await cq_.recv(); }

std::optional<Cqe> DodoRing::try_reap() { return cq_.try_recv(); }

sim::Co<void> DodoRing::drain() {
  while (in_flight_ > 0) co_await slots_.recv();
}

}  // namespace dodo::runtime
