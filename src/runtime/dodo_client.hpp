// The Dodo runtime library (libdodo), paper §3.2 and §4.4.
//
// Linked into the application; provides the explicit, synchronous remote
// memory API:
//   mopen(len, fd, offset)  - allocate (or re-attach to) a remote region
//                             backed by [offset, offset+len) of an open file
//   mread / mwrite          - move bytes; mwrite goes to the backing file
//                             and the remote region *in parallel*
//   mclose                  - deallocate via the central manager
//   msync                   - block until the region's data is on disk
// plus push_remote(), the remote-only store used by the region-management
// library's cloneRemoteRegion (Figure 5 evicts clean regions to remote
// memory without re-writing them to disk).
//
// Error model is the paper's: failures return -1 and set dodo_errno() to
// ENOMEM (region not active / no memory), EINVAL (bad arguments), or the
// backing write's errno. A failed access to any region on a node drops every
// descriptor hosted on that node (§3.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "core/rpc.hpp"
#include "core/wire.hpp"
#include "disk/filesystem.hpp"
#include "net/bulk.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::runtime {

struct ClientParams {
  std::uint32_t client_id = 1;
  core::RpcParams cmd_rpc{};             // mopen/mclose RPCs
  Duration data_timeout = millis(500);   // waiting for imd Read/Write replies
  Duration refraction = seconds(5.0);    // §3.1 refraction period
  net::BulkParams bulk{};
  /// Keep-alive control port this client binds. Overridable so many clients
  /// (the loadgen fleet) can share one simulated node.
  net::Port ctl_port = core::kClientPort;
  /// Optional trace-span sink (not owned). Null disables span recording.
  obs::SpanRecorder* spans = nullptr;
  /// Optional flight-recorder ring (not owned). Null disables recording.
  obs::FlightRecorder* flight = nullptr;
  /// Request coalescing (DESIGN.md §16): adjacent mreads against one
  /// descriptor queue into a per-descriptor batch and flush as a single
  /// merged fan-out with scatter-gather landing. This is the max merged
  /// span in bytes; 0 disables coalescing entirely — every mread takes the
  /// classic one-op path, byte-identical on the wire to pre-batching
  /// builds.
  Bytes64 coalesce_window_bytes = 0;
  /// Max sim-time the first queued op waits for adjacent joiners before the
  /// batch flushes anyway. Only meaningful when coalesce_window_bytes > 0.
  Duration coalesce_window = micros(200);
};

struct ClientMetrics {
  std::uint64_t mopens = 0;
  std::uint64_t mopen_failures = 0;
  std::uint64_t refraction_skips = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t remote_writes = 0;
  std::uint64_t remote_pushes = 0;
  std::int64_t remote_read_bytes = 0;
  std::int64_t remote_write_bytes = 0;
  std::uint64_t access_failures = 0;
  std::uint64_t nodes_dropped = 0;
  std::uint64_t descriptors_dropped = 0;
  std::uint64_t pings_answered = 0;
  /// Conservation triple: every mread past argument validation lands in
  /// exactly one of remote_hits (every byte came from remote memory) or
  /// mreads_degraded (at least one byte range came from disk), so at
  /// quiesce remote_hits + mreads_degraded == mreads_total (fuzz oracle).
  std::uint64_t mreads_total = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t mreads_degraded = 0;
  /// Fragment-granular: one tick per lost fragment (or per inactive-
  /// descriptor read) whose byte range had to come from disk.
  std::uint64_t disk_fallbacks = 0;
  std::uint64_t mwrites_total = 0;
  std::uint64_t mwrite_remote_failures = 0;
  /// Fragment reads served from a replica set holding more than one copy.
  std::uint64_t replica_hits = 0;
  /// Read attempts that moved to a sibling replica after the selected copy
  /// failed — each tick is a disk fallback avoided (when the sibling works).
  std::uint64_t replica_failovers = 0;
  /// kDropReplicaReq RPCs issued: copies that missed a write and were
  /// reported to the cmd so they are never served stale.
  std::uint64_t invalidations_sent = 0;
  /// Replica-set deltas (add-write-only / activate / drop) applied from the
  /// cmd's kPing piggyback.
  std::uint64_t replica_updates_applied = 0;
  // -- batched data path (all zero unless coalescing / a ring is in use) ---
  /// mreads that went through the per-descriptor coalescing queue. Each is
  /// still one mreads_total tick, so the conservation triple above is
  /// unchanged; batched_reads ≤ mreads_total always.
  std::uint64_t batched_reads = 0;
  /// Batched reads whose flush carried at least one other op — the reads
  /// that actually shared a bulk transfer. coalesced_mreads ≤ batched_reads.
  std::uint64_t coalesced_mreads = 0;
  /// Merged fan-outs issued (≤ batched_reads: every flush carries ≥ 1 op).
  std::uint64_t batch_flushes = 0;
  /// Flushes forced by an mwrite/push_remote/mclose barrier: a write must
  /// never land between queued reads and their flush (staleness contract).
  std::uint64_t batch_write_barriers = 0;
  // -- submission/completion ring (counted here so one snapshot covers the
  // whole runtime; a DodoRing is a separate object wired to this client) --
  std::uint64_t ring_submitted = 0;
  std::uint64_t ring_completed = 0;
  std::uint64_t ring_full_rejects = 0;
  std::uint64_t ring_peak_depth = 0;  // max sqes in flight at once
};

class DodoClient {
 public:
  DodoClient(sim::Simulator& sim, net::Network& net, net::NodeId node,
             net::Endpoint cmd, disk::SimFilesystem& fs,
             ClientParams params = {});
  /// Sharded control plane: cmds[shard_of_key(key, cmds.size())] serves all
  /// control RPCs for `key`. A one-element vector is exactly the single-cmd
  /// constructor above (same code path).
  DodoClient(sim::Simulator& sim, net::Network& net, net::NodeId node,
             std::vector<net::Endpoint> cmds, disk::SimFilesystem& fs,
             ClientParams params = {});
  ~DodoClient();

  DodoClient(const DodoClient&) = delete;
  DodoClient& operator=(const DodoClient&) = delete;

  /// Binds the control port and starts answering keep-alive pings.
  void start();

  /// Clean exit that *leaves regions cached* for a later run (the dmine
  /// persistent-data mode). Without this, the cmd's keep-alive sweep
  /// eventually reclaims everything the client allocated.
  sim::Co<void> detach();

  /// Stops the ping responder without detaching (simulates a crash: the
  /// cmd's keep-alive mechanism must clean up).
  sim::Co<void> halt();

  // -- the paper's API ------------------------------------------------------

  /// Returns a region descriptor >= 0, or -1 with dodo_errno set.
  sim::Co<int> mopen(Bytes64 len, int fd, Bytes64 offset);

  /// mopen plus the central manager's "reused" flag: true when the region
  /// was already cached from a previous run and still holds that data (the
  /// dmine persistent-dataset path). {-1, false} on failure.
  sim::Co<std::pair<int, bool>> mopen_ex(Bytes64 len, int fd, Bytes64 offset);

  /// Returns bytes read, or -1 with dodo_errno set. buf may be nullptr in
  /// phantom (accounting-only) runs.
  sim::Co<Bytes64> mread(int rd, Bytes64 offset, std::uint8_t* buf,
                         Bytes64 len, obs::TraceContext parent = {});

  struct ReadResult {
    Bytes64 n = -1;      // bytes read, or -1
    bool filled = false;  // range lies within the region's written prefix
    /// Request-relative {offset, len} ranges that were served from the
    /// backing file because their fragment's host was lost mid-read. Empty
    /// on a fully remote read. Disk bytes are authoritative (clean-cache
    /// invariant), so they never clear `filled`.
    std::vector<std::pair<Bytes64, Bytes64>> disk_ranges;
  };
  /// mread plus the imd's "filled" flag: false means the remote region was
  /// allocated but the requested range was never written (its content is
  /// meaningless). The region-management library uses this to decide
  /// whether a remote fill can be trusted over the backing file.
  sim::Co<ReadResult> mread_ex(int rd, Bytes64 offset, std::uint8_t* buf,
                               Bytes64 len, obs::TraceContext parent = {});

  /// Queues one read into the descriptor's open coalescing batch (opening
  /// one if needed) without suspending; `on_complete` fires exactly once
  /// when the flush resolves the op — in submission order within a batch.
  /// Argument-validation failures complete before this returns. Requires
  /// coalescing to be enabled (coalesce_window_bytes > 0); DodoRing's
  /// submission path is built on this.
  void mread_enqueue(int rd, Bytes64 offset, std::uint8_t* buf, Bytes64 len,
                     std::function<void(const ReadResult&)> on_complete,
                     obs::TraceContext parent = {});

  [[nodiscard]] bool coalescing_enabled() const {
    return params_.coalesce_window_bytes > 0;
  }

  /// Writes to the backing file and the remote region in parallel; returns
  /// bytes written into the region, or -1 with dodo_errno set.
  sim::Co<Bytes64> mwrite(int rd, Bytes64 offset, const std::uint8_t* buf,
                          Bytes64 len, obs::TraceContext parent = {});

  /// Returns 0, or -1 with dodo_errno = EINVAL.
  sim::Co<int> mclose(int rd);

  /// Blocks until all data in the region is on disk. Returns 0 or -1.
  sim::Co<int> msync(int rd);

  // -- extension for the region-management library --------------------------

  /// Stores bytes into the remote region only (no backing-file write).
  sim::Co<Status> push_remote(int rd, Bytes64 offset, const std::uint8_t* buf,
                              Bytes64 len, obs::TraceContext parent = {});

  /// True if the descriptor exists and has not been dropped.
  [[nodiscard]] bool active(int rd) const;

  /// True if the descriptor exists at all — including one deactivated by a
  /// failed mclose that must be retried before the key can be reopened.
  [[nodiscard]] bool known(int rd) const {
    return regions_.find(rd) != regions_.end();
  }

  [[nodiscard]] const ClientMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const net::BulkStats& bulk_stats() const {
    return bulk_stats_;
  }
  /// Everything the runtime knows about itself, under "client." names.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
  [[nodiscard]] std::uint32_t client_id() const {
    return params_.client_id;
  }
  [[nodiscard]] std::size_t region_table_size() const {
    return regions_.size();
  }

  /// Weakest-link replica depth of an active descriptor: the minimum number
  /// of live (readable) copies across its fragments, 0 when the descriptor
  /// is inactive. libmanage uses this to prefer evicting regions whose
  /// remote copy survives any single host loss.
  [[nodiscard]] std::uint32_t replica_depth(int rd) const;

  // -- DodoRing accounting hooks (src/runtime/ring.hpp) --------------------
  // The ring is a separate object; its counters live in ClientMetrics so a
  // single snapshot covers the whole runtime, gated on ring_attached.
  void ring_register() { ring_attached_ = true; }
  void ring_note_submit(std::uint64_t depth_now) {
    ++metrics_.ring_submitted;
    metrics_.ring_peak_depth = std::max(metrics_.ring_peak_depth, depth_now);
  }
  void ring_note_complete() { ++metrics_.ring_completed; }
  void ring_note_reject() { ++metrics_.ring_full_rejects; }

 private:
  struct Entry {
    core::RegionKey key;
    int fd = -1;
    Bytes64 file_offset = 0;
    Bytes64 len = 0;
    core::StripeMap map;
    bool active = false;
    /// Write-only copies from the cmd's kAddWriteOnly deltas, keyed by
    /// fragment index: writes fan out to them so a pending clone misses
    /// nothing, but reads never touch them until the cmd activates them.
    std::vector<std::pair<std::uint32_t, core::RegionLoc>> write_only;
    /// Read hits since the last kPong report (the cmd's adaptation signal).
    std::uint64_t hits = 0;
  };

  /// Outcome slot one fan-out piece/fragment coroutine reports into.
  struct FragOutcome {
    bool ok = false;
    bool filled = false;
    bool replica_hit = false;  // served from a multi-copy set
    Err err = Err::kTimeout;
    /// Hosts that never answered (timeout or failed bulk transfer) — the
    /// host itself is suspect, so every copy it serves gets pruned.
    std::vector<net::NodeId> failed_hosts;
    /// Copies an imd explicitly rejected (fenced, unknown, stale epoch).
    /// The host answered — it is alive, and under incremental lease
    /// reclamation it still serves its kept regions — so only the one dead
    /// copy is pruned, never the whole host.
    std::vector<core::RegionLoc> failed_copies;
  };

  /// Per-host read-latency state backing replica selection: an EWMA of
  /// observed mread round-trips, inflated by the number of in-flight
  /// transfers to that host (bulk-credit backpressure proxy).
  struct HostScore {
    double ewma_latency = 0.0;  // 0 = no sample yet (optimistic)
    int inflight = 0;
  };
  [[nodiscard]] double host_score(net::NodeId host) const;
  void observe_latency(net::NodeId host, double sample);

  sim::Co<void> ping_loop();
  /// Applies one replica-set delta from the cmd's kPing piggyback to every
  /// descriptor of `key`.
  void apply_replica_update(std::uint8_t op, const core::RegionKey& key,
                            std::uint32_t frag, const core::RegionLoc& loc);

  /// One piece of a fanned-out mread: selects a replica with
  /// power-of-two-choices over host_score(), and on failure fails over to
  /// sibling replicas before reporting failure (the caller's disk path).
  /// With `scatter` null the piece lands in `dst` via the classic
  /// bulk_recv-then-copy path; non-null, it lands straight in the scatter
  /// segments (bulk_recv_sg, zero intermediate copy) and `dst` is unused.
  sim::Co<void> read_piece(core::ReplicaSet set, Bytes64 frag_off,
                           Bytes64 want, std::uint8_t* dst, FragOutcome* out,
                           sim::WaitGroup* wg, obs::TraceContext ctx,
                           const std::vector<net::ScatterSeg>* scatter =
                               nullptr);

  /// One copy of a fanned-out push/mwrite (kWriteReq → WriteGo →
  /// bulk_send → WriteRep against the copy's owner).
  sim::Co<void> write_fragment(core::RegionLoc frag, Bytes64 frag_off,
                               Bytes64 want, const std::uint8_t* src,
                               FragOutcome* out, sim::WaitGroup* wg,
                               obs::TraceContext ctx);

  /// Reports a copy that missed a write to the cmd (kDropReplicaReq) so it
  /// is dropped from the directory before it can serve stale bytes. True
  /// when the cmd answered.
  sim::Co<bool> invalidate_replica(core::RegionKey key, core::RegionLoc loc,
                                   obs::TraceContext ctx);

  /// Removes one specific copy from every descriptor of `key` (local half
  /// of invalidate-on-write). A fragment losing its last copy drops the
  /// descriptor.
  void prune_copy(const core::RegionKey& key, const core::RegionLoc& loc);

  /// §3.1 failure handling, replica-aware: prunes every copy hosted on
  /// `node` from every descriptor's replica sets; a descriptor only drops
  /// when one of its fragments loses its last copy.
  void prune_host(net::NodeId node);

  Entry* lookup_active(int rd);

  // -- request coalescing (DESIGN.md §16) ----------------------------------

  /// One queued read inside a ReadBatch. `len` is already clamped to the
  /// region end; `result` is filled by the flush before `on_complete` runs.
  struct PendingOp {
    Bytes64 offset = 0;
    Bytes64 len = 0;
    std::uint8_t* buf = nullptr;
    SimTime enqueued = 0;
    std::uint64_t span = 0;  // per-op client.mread span (0 = untraced)
    std::function<void(const ReadResult&)> on_complete;
    ReadResult result;
  };

  /// The open (or flushing) batch for one descriptor: a contiguous span
  /// [lo, hi) of queued adjacent reads. Owned by shared_ptr because three
  /// parties can hold it past suspension points: the pending_batches_ map,
  /// the expiry timer coroutine, and the flush coroutine.
  struct ReadBatch {
    explicit ReadBatch(sim::Simulator& sim) : done(sim) { done.add(1); }
    int rd = -1;
    Bytes64 lo = 0;
    Bytes64 hi = 0;
    bool flushed = false;  // no more joiners; the flush coroutine owns it
    std::uint64_t span = 0;       // client.mread_batch span
    obs::TraceContext span_ctx;   // ...as a parent for per-op spans
    std::vector<PendingOp> ops;
    sim::WaitGroup done;  // released once every op completed (barriers wait)
  };

  /// mread_ex's coalescing route: enqueue and suspend until the flush
  /// resolves this op.
  sim::Co<ReadResult> mread_coalesced(int rd, Bytes64 offset,
                                      std::uint8_t* buf, Bytes64 len,
                                      obs::TraceContext parent);

  /// Detaches `b` from pending_batches_ (idempotent) and spawns run_flush.
  void start_flush(const std::shared_ptr<ReadBatch>& b);

  /// Expiry: a batch flushes after coalesce_window even if never filled.
  sim::Co<void> batch_timer(std::shared_ptr<ReadBatch> b);

  /// The merged fan-out: one overlap_pieces walk over [lo, hi), one
  /// read_piece per piece landing via scatter-gather, then per-op
  /// accounting/degradation exactly mirroring mread_ex.
  sim::Co<void> run_flush(std::shared_ptr<ReadBatch> b);

  /// Closes spans, fires callbacks in submission order, releases `done`.
  void finish_batch(ReadBatch& b);

  /// Write/close barrier: flushes rd's pending batch (if any) and waits for
  /// it to complete, so a write can never land between queued reads and
  /// their flush. No-op when nothing is queued.
  sim::Co<void> flush_pending_reads(int rd);

  /// Shard endpoint owning `key`'s directory entry (the only cmd any
  /// control RPC for that key ever talks to).
  [[nodiscard]] const net::Endpoint& shard_endpoint(
      const core::RegionKey& key) const {
    return cmds_[core::shard_of_key(
        key, static_cast<std::uint32_t>(cmds_.size()))];
  }

  sim::Simulator& sim_;
  net::Network& net_;
  net::NodeId node_;
  std::vector<net::Endpoint> cmds_;  // one per directory shard
  disk::SimFilesystem& fs_;
  ClientParams params_;
  ClientMetrics metrics_;
  net::BulkStats bulk_stats_;
  obs::LatencyHistogram mread_latency_;   // successful remote reads only
  obs::LatencyHistogram mwrite_latency_;  // successful parallel writes only
  core::RidSource rids_;
  Rng rng_;  // replica selection (power-of-two-choices)

  std::unordered_map<int, Entry> regions_;
  std::unordered_map<net::NodeId, HostScore> host_scores_;
  /// At most one open batch per descriptor; erased when the flush starts.
  std::unordered_map<int, std::shared_ptr<ReadBatch>> pending_batches_;
  bool ring_attached_ = false;
  int next_desc_ = 0;
  SimTime last_alloc_fail_ = -(1LL << 62);

  std::unique_ptr<net::Socket> ctl_sock_;
  bool running_ = false;
  sim::WaitGroup loops_;
};

}  // namespace dodo::runtime
