// Submission/completion ring over libdodo (DESIGN.md §16), io_uring-style.
//
// The classic API costs one coroutine per op: a loadgen client doing 4 KB
// mreads spends more sim (and host) time in frame churn than in data
// movement. The ring inverts that: the application enqueues mread/mwrite
// *descriptors* (Sqe), the runtime resolves them — reads feed the client's
// coalescing queue, so adjacent small ops merge into one bulk transfer with
// scatter-gather landing — and the application reaps completions (Cqe) from
// a channel whenever it likes. One submitter coroutine can keep `depth` ops
// in flight.
//
// Semantics:
//  - try_submit never suspends; it returns false (and counts a
//    ring_full_reject) when `depth` ops are already in flight.
//  - submit() is the awaitable variant: it backpressures until a slot frees.
//  - Completions are reaped in completion order (reads within one batch
//    complete in submission order; ops of different batches/kinds may
//    reorder, which is why Cqe carries user_data).
//  - With the client's coalescing window at 0, ring reads run through the
//    classic mread_ex path one op at a time — the wire stays byte-identical
//    to a build without the ring (Ring.WindowZeroWireByteIdentity pins it).
//  - Ring counters (submitted/completed/rejects/peak depth) live in the
//    client's metrics so one snapshot covers the whole runtime; they are
//    only exported once a ring has been attached.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::runtime {

enum class RingOp : std::uint8_t {
  kRead = 0,
  kWrite = 1,
};

/// One submission: an mread/mwrite descriptor. Buffers are borrowed and
/// must stay alive until the matching Cqe is reaped.
struct Sqe {
  RingOp op = RingOp::kRead;
  int rd = -1;
  Bytes64 offset = 0;
  Bytes64 len = 0;
  std::uint8_t* buf = nullptr;        // kRead landing (nullptr = phantom)
  const std::uint8_t* wbuf = nullptr;  // kWrite source
  std::uint64_t user_data = 0;         // echoed verbatim in the Cqe
};

/// One completion. For reads, `n`/`filled`/`disk_ranges` mirror
/// DodoClient::ReadResult; for writes `n` is mwrite's return and `filled`
/// is n >= 0.
struct Cqe {
  std::uint64_t user_data = 0;
  Bytes64 n = -1;
  bool filled = false;
  bool degraded = false;  // read served partly (or wholly) from disk
  std::vector<std::pair<Bytes64, Bytes64>> disk_ranges;  // op-relative
};

class DodoRing {
 public:
  DodoRing(sim::Simulator& sim, DodoClient& client, std::size_t depth);

  DodoRing(const DodoRing&) = delete;
  DodoRing& operator=(const DodoRing&) = delete;

  /// Non-blocking submit: false when the ring is full (op not queued).
  bool try_submit(const Sqe& sqe);

  /// Awaitable submit: backpressures until an in-flight slot frees up.
  sim::Co<void> submit(Sqe sqe);

  /// Reaps the next completion, waiting for one if none is pending.
  sim::Co<Cqe> reap();

  /// Non-blocking reap.
  std::optional<Cqe> try_reap();

  /// Waits until every submitted op has completed. Completions stay queued
  /// for reaping — drain() is a barrier, not a discard.
  sim::Co<void> drain();

  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// Completions queued and not yet reaped.
  [[nodiscard]] std::size_t completions_pending() const { return cq_.size(); }

 private:
  sim::Co<void> run_op(Sqe sqe);
  void complete_read(std::uint64_t user_data,
                     const DodoClient::ReadResult& r);
  void post(Cqe c);

  sim::Simulator& sim_;
  DodoClient& client_;
  std::size_t depth_;
  std::size_t in_flight_ = 0;
  sim::Channel<Cqe> cq_;
  /// One token per waiter is sent on every completion, waking submit()/
  /// drain() backpressure loops to re-check their condition.
  sim::Channel<int> slots_;
};

}  // namespace dodo::runtime
