#include "runtime/dodo_client.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace dodo::runtime {

using core::MsgKind;

namespace {

/// The slice of a fanned-out request that one fragment serves: region-
/// relative [lo, lo+want) against `frag`, with the coroutine's outcome slot.
struct Piece {
  Bytes64 lo = 0;    // region-relative start of the slice
  Bytes64 base = 0;  // region-relative start of the fragment
  Bytes64 want = 0;
  core::RegionLoc frag;
};

/// Splits the region-relative range [offset, offset+n) across the stripe's
/// fragments. Fragment i covers [i*frag_len, i*frag_len + frags[i].len).
std::vector<Piece> overlap_pieces(const core::StripeMap& map, Bytes64 offset,
                                  Bytes64 n) {
  std::vector<Piece> out;
  for (std::size_t i = 0; i < map.frags.size(); ++i) {
    const Bytes64 base = map.frag_base(i);
    const Bytes64 lo = std::max(offset, base);
    const Bytes64 hi = std::min(offset + n, base + map.frags[i].len);
    if (hi <= lo) continue;
    out.push_back(Piece{lo, base, hi - lo, map.frags[i]});
  }
  return out;
}

}  // namespace

DodoClient::DodoClient(sim::Simulator& sim, net::Network& net,
                       net::NodeId node, net::Endpoint cmd,
                       disk::SimFilesystem& fs, ClientParams params)
    : sim_(sim),
      net_(net),
      node_(node),
      cmd_(cmd),
      fs_(fs),
      params_(params),
      loops_(sim) {
  // Aggregate every bulk transfer this client runs into one counter set,
  // and record bulk spans under this client's recorder.
  params_.bulk.stats = &bulk_stats_;
  params_.bulk.spans = params_.spans;
}

DodoClient::~DodoClient() = default;

void DodoClient::start() {
  assert(!running_);
  running_ = true;
  ctl_sock_ = net_.open(node_, core::kClientPort);
  loops_.add(1);
  sim_.spawn(ping_loop());
}

sim::Co<void> DodoClient::ping_loop() {
  for (;;) {
    net::Message msg = co_await ctl_sock_->recv();
    auto env = core::peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    if (env->kind == MsgKind::kPing) {
      ++metrics_.pings_answered;
      obs::ScopedSpan span(params_.spans, "client.ping", env->trace);
      ctl_sock_->send(msg.src, core::make_header(MsgKind::kPong, env->rid));
    }
  }
  loops_.done();
}

sim::Co<void> DodoClient::halt() {
  if (!running_) co_return;
  net::Message sentinel;
  sentinel.header = core::make_header(MsgKind::kShutdownSentinel, 0);
  ctl_sock_->inject(std::move(sentinel));
  co_await loops_.wait();
  ctl_sock_.reset();
  running_ = false;
}

sim::Co<void> DodoClient::detach() {
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "client.detach");
  net::Buf h = core::make_header(MsgKind::kDetach, rid, span.ctx());
  net::Writer w(h);
  w.u32(params_.client_id);
  co_await core::rpc_call(net_, node_, cmd_, std::move(h), rid,
                          params_.cmd_rpc);
  co_await halt();
}

DodoClient::Entry* DodoClient::lookup_active(int rd) {
  auto it = regions_.find(rd);
  if (it == regions_.end() || !it->second.active) return nullptr;
  return &it->second;
}

void DodoClient::drop_node(net::NodeId node) {
  ++metrics_.nodes_dropped;
  // Erase, don't just deactivate: a dropped descriptor can never become
  // active again (re-attach goes through a fresh mopen), so keeping the
  // entry only grows regions_ without bound under node churn. The cmd's
  // directory entry is reclaimed separately — by epoch validation when the
  // host was reclaimed, by key reuse on the next mopen, or by the
  // keep-alive sweep when this client dies.
  for (auto it = regions_.begin(); it != regions_.end();) {
    bool hosted = false;
    for (const core::RegionLoc& f : it->second.map.frags) {
      if (f.host == node) {
        hosted = true;
        break;
      }
    }
    if (hosted) {
      ++metrics_.descriptors_dropped;
      it = regions_.erase(it);
    } else {
      ++it;
    }
  }
  DODO_DEBUG("libdodo", "dropped all descriptors on host %u", node);
}

sim::Co<int> DodoClient::mopen(Bytes64 len, int fd, Bytes64 offset) {
  auto [rd, reused] = co_await mopen_ex(len, fd, offset);
  (void)reused;
  co_return rd;
}

sim::Co<std::pair<int, bool>> DodoClient::mopen_ex(Bytes64 len, int fd,
                                                   Bytes64 offset) {
  ++metrics_.mopens;
  // §3.2 argument validation.
  if (len < 1 || offset < 0) {
    dodo_errno() = kDodoEINVAL;
    co_return std::pair{-1, false};
  }
  if (!fs_.fd_valid(fd) || !fs_.fd_writable(fd)) {
    dodo_errno() = kDodoEINVAL;
    co_return std::pair{-1, false};
  }
  // Refraction period: after a failed allocation, don't even ask for a
  // while (§3.1).
  if (sim_.now() - last_alloc_fail_ < params_.refraction) {
    ++metrics_.refraction_skips;
    ++metrics_.mopen_failures;
    dodo_errno() = kDodoENOMEM;
    co_return std::pair{-1, false};
  }

  const core::RegionKey key{fs_.inode_of(fd), offset, params_.client_id};
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "client.mopen");
  obs::ScopedSpan wait(params_.spans, "net.mopen", span.ctx());
  net::Buf h = core::make_header(MsgKind::kMopenReq, rid, wait.ctx());
  net::Writer w(h);
  core::put_key(w, key);
  w.i64(len);
  core::put_endpoint(w, net::Endpoint{node_, core::kClientPort});
  auto rep =
      co_await core::rpc_call(net_, node_, cmd_, std::move(h), rid,
                              params_.cmd_rpc);
  wait.end_now();
  bool ok = false;
  bool reused = false;
  core::StripeMap map;
  if (rep) {
    net::Reader r = core::body_reader(*rep);
    ok = r.u8() != 0;
    reused = r.u8() != 0;
    map = core::get_stripes(r);
    ok = ok && r.ok() && !map.frags.empty() && map.len == len;
  }
  if (!ok) {
    last_alloc_fail_ = sim_.now();
    ++metrics_.mopen_failures;
    dodo_errno() = kDodoENOMEM;
    co_return std::pair{-1, false};
  }
  const int rd = next_desc_++;
  regions_[rd] = Entry{key, fd, offset, len, std::move(map), true};
  co_return std::pair{rd, reused};
}

sim::Co<Bytes64> DodoClient::mread(int rd, Bytes64 offset, std::uint8_t* buf,
                                   Bytes64 len, obs::TraceContext parent) {
  const ReadResult r = co_await mread_ex(rd, offset, buf, len, parent);
  co_return r.n;
}

sim::Co<void> DodoClient::read_fragment(core::RegionLoc frag, Bytes64 frag_off,
                                        Bytes64 want, std::uint8_t* dst,
                                        FragOutcome* out, sim::WaitGroup* wg,
                                        obs::TraceContext ctx) {
  auto sock = net_.open_ephemeral(node_);
  const std::uint64_t rid = rids_.next();
  // The network-wait span covers request-on-the-wire through first reply;
  // the imd's handler span parents to it, so daemon service time nests
  // inside the wait in the merged timeline. Fan-out fragments show up as
  // sibling net.read spans under the one client.mread.
  obs::ScopedSpan wait(params_.spans, "net.read", ctx);
  net::Buf h = core::make_header(MsgKind::kReadReq, rid, wait.ctx());
  net::Writer w(h);
  w.u64(frag.imd_region);
  w.u64(frag.epoch);
  w.i64(frag_off);
  w.i64(want);
  sock->send(net::Endpoint{frag.host, core::kImdDataPort}, std::move(h));

  auto rep = co_await sock->recv_for(params_.data_timeout);
  wait.end_now();
  if (rep) {
    net::Reader r = core::body_reader(*rep);
    const Err code = static_cast<Err>(r.u8());
    const Bytes64 avail = r.i64();
    const bool filled = r.u8() != 0;
    if (r.ok() && code == Err::kOk && avail == want) {
      auto got = co_await net::bulk_recv(*sock, rid, params_.bulk, ctx);
      if (got.status.is_ok() && got.size == want) {
        if (dst != nullptr && !got.data.empty()) {
          std::copy_n(got.data.begin(), static_cast<std::size_t>(want), dst);
        }
        out->ok = true;
        out->filled = filled;
      }
    } else if (r.ok()) {
      out->err = code == Err::kOk ? Err::kNotFound : code;
    }
  }
  wg->done();
}

sim::Co<DodoClient::ReadResult> DodoClient::mread_ex(int rd, Bytes64 offset,
                                                     std::uint8_t* buf,
                                                     Bytes64 len,
                                                     obs::TraceContext parent) {
  Entry* e = lookup_active(rd);
  if (e == nullptr) {
    // A real read attempt that degrades to disk: the caller will fall back.
    ++metrics_.mreads_total;
    ++metrics_.mreads_degraded;
    ++metrics_.disk_fallbacks;
    dodo_errno() = kDodoENOMEM;  // §3.2: region not currently active
    co_return ReadResult{};
  }
  if (offset < 0 || offset >= e->len || len < 0) {
    dodo_errno() = kDodoEINVAL;  // caller bug, not a fallback — uncounted
    co_return ReadResult{};
  }
  if (len == 0) {
    // Satisfied locally: no socket, no remote hit, no conservation entry.
    ReadResult zero;
    zero.n = 0;
    zero.filled = true;
    co_return zero;
  }
  // Copy everything out of the entry before the first suspension: `e`
  // points into regions_, and a concurrent coroutine's drop_node/mclose can
  // erase the entry across any co_await below.
  const int fd = e->fd;
  const Bytes64 file_base = e->file_offset;
  const Bytes64 n = std::min(len, e->len - offset);
  const core::StripeMap map = e->map;
  e = nullptr;

  ++metrics_.mreads_total;
  const SimTime t0 = sim_.now();
  obs::ScopedSpan span(params_.spans, "client.mread", parent);

  std::vector<Piece> pieces = overlap_pieces(map, offset, n);
  std::vector<FragOutcome> outcomes(pieces.size());
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(pieces.size()));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    std::uint8_t* dst = buf == nullptr ? nullptr : buf + (p.lo - offset);
    sim_.spawn(read_fragment(p.frag, p.lo - p.base, p.want, dst,
                             &outcomes[i], &wg, span.ctx()));
  }
  co_await wg.wait();

  bool all_ok = true;
  bool filled = true;
  std::vector<net::NodeId> failed_hosts;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (outcomes[i].ok) {
      filled = filled && outcomes[i].filled;
      ++metrics_.remote_reads;
      metrics_.remote_read_bytes += pieces[i].want;
    } else {
      all_ok = false;
      ++metrics_.access_failures;
      failed_hosts.push_back(pieces[i].frag.host);
    }
  }
  std::sort(failed_hosts.begin(), failed_hosts.end());
  failed_hosts.erase(std::unique(failed_hosts.begin(), failed_hosts.end()),
                     failed_hosts.end());
  for (const net::NodeId h : failed_hosts) drop_node(h);

  // Per-fragment degradation: only the lost fragments' byte ranges come
  // from the backing file; disk is authoritative (clean-cache invariant).
  ReadResult res;
  bool disk_err = false;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (outcomes[i].ok) continue;
    const Piece& p = pieces[i];
    ++metrics_.disk_fallbacks;
    res.disk_ranges.emplace_back(p.lo - offset, p.want);
    obs::ScopedSpan dspan(params_.spans, "disk.read", span.ctx());
    std::uint8_t* dst = buf == nullptr ? nullptr : buf + (p.lo - offset);
    const Bytes64 got = co_await fs_.pread(fd, file_base + p.lo, p.want, dst);
    if (got != p.want) disk_err = true;
  }
  if (disk_err) {
    ++metrics_.mreads_degraded;
    dodo_errno() = kDodoEIO;
    co_return ReadResult{};
  }

  if (all_ok) {
    ++metrics_.remote_hits;
    mread_latency_.observe(sim_.now() - t0);
  } else {
    ++metrics_.mreads_degraded;
  }
  res.n = n;
  res.filled = filled;
  co_return res;
}

sim::Co<void> DodoClient::write_fragment(core::RegionLoc frag,
                                         Bytes64 frag_off, Bytes64 want,
                                         const std::uint8_t* src,
                                         FragOutcome* out, sim::WaitGroup* wg,
                                         obs::TraceContext ctx) {
  auto sock = net_.open_ephemeral(node_);
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan wait(params_.spans, "net.write", ctx);
  net::Buf h = core::make_header(MsgKind::kWriteReq, rid, wait.ctx());
  net::Writer w(h);
  w.u64(frag.imd_region);
  w.u64(frag.epoch);
  w.i64(frag_off);
  w.i64(want);
  sock->send(net::Endpoint{frag.host, core::kImdDataPort}, std::move(h));

  auto go = co_await sock->recv_for(params_.data_timeout);
  wait.end_now();
  if (!go) {
    wg->done();
    co_return;
  }
  auto genv = core::peek_envelope(*go);
  if (!genv || genv->kind != MsgKind::kWriteGo) {
    // The imd refused (stale epoch / unknown region): a WriteRep with an
    // error code arrives instead of the go-ahead.
    out->err = Err::kNotFound;
    wg->done();
    co_return;
  }
  const Status st = co_await net::bulk_send(*sock, go->src, rid,
                                            net::BodyView{src, want},
                                            params_.bulk, ctx);
  if (!st.is_ok()) {
    out->err = st.code();
    wg->done();
    co_return;
  }
  obs::ScopedSpan wait_rep(params_.spans, "net.write_rep", ctx);
  auto rep = co_await sock->recv_for(params_.data_timeout);
  wait_rep.end_now();
  if (rep) {
    net::Reader r = core::body_reader(*rep);
    const Err code = static_cast<Err>(r.u8());
    if (r.ok() && code == Err::kOk) {
      out->ok = true;
    } else if (r.ok()) {
      out->err = code;
    }
  }
  wg->done();
}

sim::Co<Status> DodoClient::push_remote(int rd, Bytes64 offset,
                                        const std::uint8_t* buf, Bytes64 len,
                                        obs::TraceContext parent) {
  Entry* e = lookup_active(rd);
  if (e == nullptr) co_return Status(Err::kNoMem, "region not active");
  if (offset < 0 || offset >= e->len || len < 0) {
    co_return Status(Err::kInval, "bad offset/len");
  }
  if (len == 0) co_return Status::ok();  // nothing to move, no socket
  // Copy before the first suspension — see mread_ex.
  const Bytes64 n = std::min(len, e->len - offset);
  const core::StripeMap map = e->map;
  e = nullptr;
  obs::ScopedSpan span(params_.spans, "client.push_remote", parent);

  std::vector<Piece> pieces = overlap_pieces(map, offset, n);
  std::vector<FragOutcome> outcomes(pieces.size());
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(pieces.size()));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    const std::uint8_t* src =
        buf == nullptr ? nullptr : buf + (p.lo - offset);
    sim_.spawn(write_fragment(p.frag, p.lo - p.base, p.want, src,
                              &outcomes[i], &wg, span.ctx()));
  }
  co_await wg.wait();

  Status res = Status::ok();
  std::vector<net::NodeId> failed_hosts;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (outcomes[i].ok) {
      metrics_.remote_write_bytes += pieces[i].want;
      continue;
    }
    ++metrics_.access_failures;
    failed_hosts.push_back(pieces[i].frag.host);
    if (res.is_ok()) res = Status(outcomes[i].err, "fragment write failed");
  }
  std::sort(failed_hosts.begin(), failed_hosts.end());
  failed_hosts.erase(std::unique(failed_hosts.begin(), failed_hosts.end()),
                     failed_hosts.end());
  for (const net::NodeId h : failed_hosts) drop_node(h);

  if (!res.is_ok()) co_return res;
  ++metrics_.remote_pushes;
  co_return Status::ok();
}

sim::Co<Bytes64> DodoClient::mwrite(int rd, Bytes64 offset,
                                    const std::uint8_t* buf, Bytes64 len,
                                    obs::TraceContext parent) {
  Entry* e = lookup_active(rd);
  if (e == nullptr) {
    dodo_errno() = kDodoENOMEM;
    co_return -1;
  }
  if (offset < 0 || offset >= e->len || len < 0) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  if (len == 0) co_return 0;  // zero-length: no disk write, no sockets
  ++metrics_.mwrites_total;
  const SimTime t0 = sim_.now();
  obs::ScopedSpan span(params_.spans, "client.mwrite", parent);
  const Bytes64 n = std::min(len, e->len - offset);

  // "Writes to remote memory are propagated to disk in parallel to being
  // sent to the remote host." Launch both and join.
  sim::WaitGroup wg(sim_);
  wg.add(2);
  Bytes64 disk_result = 0;
  Status remote_result;
  const int fd = e->fd;
  const Bytes64 file_off = e->file_offset + offset;

  sim_.spawn([](DodoClient& c, int f, Bytes64 off, const std::uint8_t* b,
                Bytes64 nn, Bytes64& out, sim::WaitGroup& g,
                obs::TraceContext ctx) -> sim::Co<void> {
    obs::ScopedSpan dspan(c.params_.spans, "disk.write", ctx);
    out = co_await c.fs_.pwrite(f, off, nn, b);
    g.done();
  }(*this, fd, file_off, buf, n, disk_result, wg, span.ctx()));
  sim_.spawn([](DodoClient& c, int rdesc, Bytes64 off, const std::uint8_t* b,
                Bytes64 nn, Status& out, sim::WaitGroup& g,
                obs::TraceContext ctx) -> sim::Co<void> {
    out = co_await c.push_remote(rdesc, off, b, nn, ctx);
    g.done();
  }(*this, rd, offset, buf, n, remote_result, wg, span.ctx()));
  co_await wg.wait();

  if (disk_result < 0) {
    // §3.2: pass through the backing write's errno.
    dodo_errno() = kDodoEIO;
    co_return -1;
  }
  if (!remote_result.is_ok()) {
    // Disk took the bytes, so the data is durable — failure degrades to
    // disk (§3.2), it does not fail the write. Drop the descriptor (the
    // remote copy is now stale for this range and must never serve a read)
    // and report success. push_remote's failure path usually already
    // dropped every descriptor on the lost host; this erase covers the
    // remaining refusal paths.
    ++metrics_.mwrite_remote_failures;
    if (regions_.erase(rd) != 0) ++metrics_.descriptors_dropped;
    co_return n;
  }
  ++metrics_.remote_writes;
  mwrite_latency_.observe(sim_.now() - t0);
  co_return n;
}

sim::Co<int> DodoClient::mclose(int rd) {
  auto it = regions_.find(rd);
  if (it == regions_.end()) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  // Deactivate now — no new access may route at the region — but keep the
  // entry until the cmd actually answers: erasing first would forget the
  // key on an RPC timeout, leaving the directory entry stuck until the
  // keep-alive sweep. A kept (inactive) descriptor lets the caller retry
  // the mclose with the same rd.
  it->second.active = false;
  const core::RegionKey key = it->second.key;

  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "client.mclose");
  obs::ScopedSpan wait(params_.spans, "net.mfree", span.ctx());
  net::Buf h = core::make_header(MsgKind::kMfreeReq, rid, wait.ctx());
  net::Writer w(h);
  core::put_key(w, key);
  auto rep = co_await core::rpc_call(net_, node_, cmd_, std::move(h), rid,
                                     params_.cmd_rpc);
  wait.end_now();
  if (!rep) {
    dodo_errno() = kDodoEINVAL;  // "not able to contact the central manager"
    co_return -1;  // descriptor kept (inactive) so the free can be retried
  }
  // Any reply — success or already-reclaimed — resolves the key's fate;
  // only now is the local descriptor forgotten. Erase by key, not by `it`:
  // a concurrent drop_node may have invalidated the iterator across the
  // await.
  regions_.erase(rd);
  net::Reader r = core::body_reader(*rep);
  if (r.u8() == 0) {
    dodo_errno() = kDodoEINVAL;  // already reclaimed
    co_return -1;
  }
  co_return 0;
}

sim::Co<int> DodoClient::msync(int rd) {
  auto it = regions_.find(rd);
  if (it == regions_.end()) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  const Status st = co_await fs_.fsync(it->second.fd);
  if (!st.is_ok()) {
    dodo_errno() = kDodoEIO;
    co_return -1;
  }
  co_return 0;
}

obs::MetricsSnapshot DodoClient::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("client.mopens", metrics_.mopens);
  out.set_counter("client.mopen_failures", metrics_.mopen_failures);
  out.set_counter("client.refraction_skips", metrics_.refraction_skips);
  out.set_counter("client.remote_reads", metrics_.remote_reads);
  out.set_counter("client.remote_writes", metrics_.remote_writes);
  out.set_counter("client.remote_pushes", metrics_.remote_pushes);
  out.set_counter("client.remote_read_bytes",
                  static_cast<std::uint64_t>(metrics_.remote_read_bytes));
  out.set_counter("client.remote_write_bytes",
                  static_cast<std::uint64_t>(metrics_.remote_write_bytes));
  out.set_counter("client.access_failures", metrics_.access_failures);
  out.set_counter("client.nodes_dropped", metrics_.nodes_dropped);
  out.set_counter("client.descriptors_dropped",
                  metrics_.descriptors_dropped);
  out.set_counter("client.pings_answered", metrics_.pings_answered);
  out.set_counter("client.mreads_total", metrics_.mreads_total);
  out.set_counter("client.remote_hits", metrics_.remote_hits);
  out.set_counter("client.mreads_degraded", metrics_.mreads_degraded);
  out.set_counter("client.disk_fallbacks", metrics_.disk_fallbacks);
  out.set_counter("client.mwrites_total", metrics_.mwrites_total);
  out.set_counter("client.mwrite_remote_failures",
                  metrics_.mwrite_remote_failures);
  out.set_gauge("client.region_table_size",
                static_cast<std::int64_t>(regions_.size()));
  out.set_histogram("client.mread_latency", mread_latency_);
  out.set_histogram("client.mwrite_latency", mwrite_latency_);
  bulk_stats_.export_into(out, "client.bulk.");
  return out;
}

bool DodoClient::active(int rd) const {
  auto it = regions_.find(rd);
  return it != regions_.end() && it->second.active;
}

}  // namespace dodo::runtime
