#include "runtime/dodo_client.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace dodo::runtime {

using core::MsgKind;

namespace {

/// The slice of a fanned-out request that one fragment serves: region-
/// relative [lo, lo+want) against the fragment's replica set.
struct Piece {
  Bytes64 lo = 0;    // region-relative start of the slice
  Bytes64 base = 0;  // region-relative start of the fragment
  Bytes64 want = 0;
  std::size_t frag_index = 0;
  core::ReplicaSet set;
};

/// Splits the region-relative range [offset, offset+n) across the stripe's
/// fragments. Fragment i covers [i*frag_len, i*frag_len + frags[i].len()).
std::vector<Piece> overlap_pieces(const core::StripeMap& map, Bytes64 offset,
                                  Bytes64 n) {
  std::vector<Piece> out;
  for (std::size_t i = 0; i < map.frags.size(); ++i) {
    const Bytes64 base = map.frag_base(i);
    const Bytes64 lo = std::max(offset, base);
    const Bytes64 hi = std::min(offset + n, base + map.frags[i].len());
    if (hi <= lo) continue;
    out.push_back(Piece{lo, base, hi - lo, i, map.frags[i]});
  }
  return out;
}

bool same_loc(const core::RegionLoc& a, const core::RegionLoc& b) {
  return a.host == b.host && a.epoch == b.epoch &&
         a.imd_region == b.imd_region;
}

}  // namespace

DodoClient::DodoClient(sim::Simulator& sim, net::Network& net,
                       net::NodeId node, net::Endpoint cmd,
                       disk::SimFilesystem& fs, ClientParams params)
    : DodoClient(sim, net, node, std::vector<net::Endpoint>{cmd}, fs,
                 params) {}

DodoClient::DodoClient(sim::Simulator& sim, net::Network& net,
                       net::NodeId node, std::vector<net::Endpoint> cmds,
                       disk::SimFilesystem& fs, ClientParams params)
    : sim_(sim),
      net_(net),
      node_(node),
      cmds_(std::move(cmds)),
      fs_(fs),
      params_(params),
      rng_(sim.rng().fork(0x6c6462u)),  // "ldb"
      loops_(sim) {
  assert(!cmds_.empty());
  // Aggregate every bulk transfer this client runs into one counter set,
  // and record bulk spans under this client's recorder.
  params_.bulk.stats = &bulk_stats_;
  params_.bulk.spans = params_.spans;
}

DodoClient::~DodoClient() = default;

void DodoClient::start() {
  assert(!running_);
  running_ = true;
  ctl_sock_ = net_.open(node_, params_.ctl_port);
  loops_.add(1);
  sim_.spawn(ping_loop());
}

sim::Co<void> DodoClient::ping_loop() {
  for (;;) {
    net::Message msg = co_await ctl_sock_->recv();
    auto env = core::peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    if (env->kind == MsgKind::kPing) {
      ++metrics_.pings_answered;
      obs::ScopedSpan span(params_.spans, "client.ping", env->trace);
      // Apply the cmd's replica-set deltas, then answer with (a) acks for
      // every add-write-only delta — from now on writes fan out to the copy,
      // which is what the cmd's activation proof relies on — and (b) the
      // per-region read-hit deltas driving replica adaptation.
      struct Ack {
        core::RegionKey key;
        std::uint32_t frag = 0;
        core::RegionLoc loc;
      };
      std::vector<Ack> acks;
      net::Reader r = core::body_reader(msg);
      const std::uint32_t nups = r.u32();
      for (std::uint32_t i = 0; i < nups && r.ok(); ++i) {
        const std::uint8_t op = r.u8();
        const core::RegionKey key = core::get_key(r);
        const std::uint32_t frag = r.u32();
        const core::RegionLoc loc = core::get_loc(r);
        if (!r.ok()) break;
        apply_replica_update(op, key, frag, loc);
        if (op ==
            static_cast<std::uint8_t>(core::ReplicaUpdateOp::kAddWriteOnly)) {
          // Ack even when no descriptor matches (closed meanwhile): with no
          // descriptor there are no writes for the clone to miss, and the
          // ack stops the cmd from re-offering forever.
          acks.push_back(Ack{key, frag, loc});
        }
      }
      net::Buf rep = core::make_header(MsgKind::kPong, env->rid);
      net::Writer w(rep);
      w.u32(static_cast<std::uint32_t>(acks.size()));
      for (const Ack& a : acks) {
        core::put_key(w, a.key);
        w.u32(a.frag);
        core::put_loc(w, a.loc);
      }
      // Merge hit deltas across descriptors sharing a key, then reset them.
      // Only keys owned by the pinging shard are reported (and reset): each
      // shard's adaptation loop must see exactly its own regions' hits, and
      // hits for a sibling shard's keys must survive until that shard pings.
      // With one cmd every key trivially passes the filter.
      std::vector<std::pair<core::RegionKey, std::uint64_t>> stats;
      for (auto& [rd, entry] : regions_) {
        if (entry.hits == 0) continue;
        if (shard_endpoint(entry.key).node != msg.src.node) continue;
        bool merged = false;
        for (auto& [key, hits] : stats) {
          if (key == entry.key) {
            hits += entry.hits;
            merged = true;
            break;
          }
        }
        if (!merged) stats.emplace_back(entry.key, entry.hits);
        entry.hits = 0;
      }
      w.u32(static_cast<std::uint32_t>(stats.size()));
      for (const auto& [key, hits] : stats) {
        core::put_key(w, key);
        w.u64(hits);
      }
      ctl_sock_->send(msg.src, std::move(rep));
    }
  }
  loops_.done();
}

void DodoClient::apply_replica_update(std::uint8_t op,
                                      const core::RegionKey& key,
                                      std::uint32_t frag,
                                      const core::RegionLoc& loc) {
  using core::ReplicaUpdateOp;
  for (auto it = regions_.begin(); it != regions_.end();) {
    Entry& e = it->second;
    bool lost = false;
    if (e.key == key && frag < e.map.frags.size()) {
      auto& reps = e.map.frags[frag].replicas;
      auto in_reps = [&] {
        return std::find_if(reps.begin(), reps.end(), [&](const auto& c) {
                 return same_loc(c, loc);
               }) != reps.end();
      };
      auto erase_wo = [&] {
        std::erase_if(e.write_only, [&](const auto& wo) {
          return wo.first == frag && same_loc(wo.second, loc);
        });
      };
      switch (static_cast<ReplicaUpdateOp>(op)) {
        case ReplicaUpdateOp::kAddWriteOnly:
          if (!in_reps()) {
            erase_wo();  // re-offered delta: keep exactly one entry
            e.write_only.emplace_back(frag, loc);
          }
          ++metrics_.replica_updates_applied;
          break;
        case ReplicaUpdateOp::kActivate:
          erase_wo();
          if (!in_reps()) reps.push_back(loc);
          ++metrics_.replica_updates_applied;
          break;
        case ReplicaUpdateOp::kDrop:
          erase_wo();
          std::erase_if(reps,
                        [&](const auto& c) { return same_loc(c, loc); });
          // The cmd never drops a fragment's last copy (shrink keeps the
          // primary), so an emptied set means state skew — drop the
          // descriptor rather than serve through a torn map.
          lost = reps.empty();
          ++metrics_.replica_updates_applied;
          break;
        default:
          break;
      }
    }
    if (lost) {
      ++metrics_.descriptors_dropped;
      it = regions_.erase(it);
    } else {
      ++it;
    }
  }
}

double DodoClient::host_score(net::NodeId host) const {
  auto it = host_scores_.find(host);
  if (it == host_scores_.end()) return 0.0;  // unsampled: optimistic
  // EWMA latency inflated by in-flight transfers: a host that is slow or
  // busy scores high and loses the power-of-two-choices coin toss.
  return it->second.ewma_latency *
         (1.0 + static_cast<double>(it->second.inflight));
}

void DodoClient::observe_latency(net::NodeId host, double sample) {
  auto& s = host_scores_[host];
  s.ewma_latency =
      s.ewma_latency == 0.0 ? sample : 0.8 * s.ewma_latency + 0.2 * sample;
}

sim::Co<void> DodoClient::halt() {
  if (!running_) co_return;
  net::Message sentinel;
  sentinel.header = core::make_header(MsgKind::kShutdownSentinel, 0);
  ctl_sock_->inject(std::move(sentinel));
  co_await loops_.wait();
  ctl_sock_.reset();
  running_ = false;
}

sim::Co<void> DodoClient::detach() {
  // Every shard tracks this client independently (it registered with each
  // shard it ever opened a region through), so the goodbye fans out to all.
  obs::ScopedSpan span(params_.spans, "client.detach");
  for (const net::Endpoint& cmd : cmds_) {
    const std::uint64_t rid = rids_.next();
    net::Buf h = core::make_header(MsgKind::kDetach, rid, span.ctx());
    net::Writer w(h);
    w.u32(params_.client_id);
    co_await core::rpc_call(net_, node_, cmd, std::move(h), rid,
                            params_.cmd_rpc);
  }
  co_await halt();
}

DodoClient::Entry* DodoClient::lookup_active(int rd) {
  auto it = regions_.find(rd);
  if (it == regions_.end() || !it->second.active) return nullptr;
  return &it->second;
}

void DodoClient::prune_host(net::NodeId node) {
  ++metrics_.nodes_dropped;
  obs::frecord(params_.flight, obs::FlightEventType::kHostPrune,
               static_cast<std::int64_t>(node));
  // §3.1 failure handling, softened by replication: losing a host only
  // loses that host's copies. A descriptor dies — erased, not deactivated,
  // since re-attach goes through a fresh mopen — only when one of its
  // fragments has no sibling copy left. The cmd's directory entry is
  // reclaimed separately: by epoch validation when the host was reclaimed,
  // by key reuse on the next mopen, or by the keep-alive sweep when this
  // client dies.
  for (auto it = regions_.begin(); it != regions_.end();) {
    bool lost = false;
    for (core::ReplicaSet& f : it->second.map.frags) {
      std::erase_if(f.replicas,
                    [&](const core::RegionLoc& c) { return c.host == node; });
      if (f.replicas.empty()) lost = true;
    }
    std::erase_if(it->second.write_only,
                  [&](const auto& wo) { return wo.second.host == node; });
    if (lost) {
      ++metrics_.descriptors_dropped;
      it = regions_.erase(it);
    } else {
      ++it;
    }
  }
  host_scores_.erase(node);
  DODO_DEBUG("libdodo", "pruned all copies on host %u", node);
}

void DodoClient::prune_copy(const core::RegionKey& key,
                            const core::RegionLoc& loc) {
  for (auto it = regions_.begin(); it != regions_.end();) {
    bool lost = false;
    if (it->second.key == key) {
      for (core::ReplicaSet& f : it->second.map.frags) {
        std::erase_if(f.replicas, [&](const core::RegionLoc& c) {
          return same_loc(c, loc);
        });
        if (f.replicas.empty()) lost = true;
      }
      std::erase_if(it->second.write_only, [&](const auto& wo) {
        return same_loc(wo.second, loc);
      });
    }
    if (lost) {
      ++metrics_.descriptors_dropped;
      it = regions_.erase(it);
    } else {
      ++it;
    }
  }
}

sim::Co<bool> DodoClient::invalidate_replica(core::RegionKey key,
                                             core::RegionLoc loc,
                                             obs::TraceContext ctx) {
  ++metrics_.invalidations_sent;
  const std::uint64_t rid = rids_.next();
  net::Buf h = core::make_header(MsgKind::kDropReplicaReq, rid, ctx);
  net::Writer w(h);
  core::put_key(w, key);
  core::put_loc(w, loc);
  auto rep = co_await core::rpc_call(net_, node_, shard_endpoint(key),
                                     std::move(h), rid, params_.cmd_rpc);
  co_return rep.has_value();
}

sim::Co<int> DodoClient::mopen(Bytes64 len, int fd, Bytes64 offset) {
  auto [rd, reused] = co_await mopen_ex(len, fd, offset);
  (void)reused;
  co_return rd;
}

sim::Co<std::pair<int, bool>> DodoClient::mopen_ex(Bytes64 len, int fd,
                                                   Bytes64 offset) {
  ++metrics_.mopens;
  // §3.2 argument validation.
  if (len < 1 || offset < 0) {
    dodo_errno() = kDodoEINVAL;
    co_return std::pair{-1, false};
  }
  if (!fs_.fd_valid(fd) || !fs_.fd_writable(fd)) {
    dodo_errno() = kDodoEINVAL;
    co_return std::pair{-1, false};
  }
  // Refraction period: after a failed allocation, don't even ask for a
  // while (§3.1).
  if (sim_.now() - last_alloc_fail_ < params_.refraction) {
    ++metrics_.refraction_skips;
    ++metrics_.mopen_failures;
    dodo_errno() = kDodoENOMEM;
    co_return std::pair{-1, false};
  }

  const core::RegionKey key{fs_.inode_of(fd), offset, params_.client_id};
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "client.mopen");
  obs::ScopedSpan wait(params_.spans, "net.mopen", span.ctx());
  net::Buf h = core::make_header(MsgKind::kMopenReq, rid, wait.ctx());
  net::Writer w(h);
  core::put_key(w, key);
  w.i64(len);
  core::put_endpoint(w, net::Endpoint{node_, params_.ctl_port});
  auto rep =
      co_await core::rpc_call(net_, node_, shard_endpoint(key), std::move(h),
                              rid, params_.cmd_rpc);
  wait.end_now();
  bool ok = false;
  bool reused = false;
  core::StripeMap map;
  if (rep) {
    net::Reader r = core::body_reader(*rep);
    ok = r.u8() != 0;
    reused = r.u8() != 0;
    map = core::get_stripes(r);
    ok = ok && r.ok() && !map.frags.empty() && map.len == len;
  }
  if (!ok) {
    last_alloc_fail_ = sim_.now();
    ++metrics_.mopen_failures;
    dodo_errno() = kDodoENOMEM;
    co_return std::pair{-1, false};
  }
  const int rd = next_desc_++;
  regions_[rd] = Entry{key, fd, offset, len, std::move(map), true};
  co_return std::pair{rd, reused};
}

sim::Co<Bytes64> DodoClient::mread(int rd, Bytes64 offset, std::uint8_t* buf,
                                   Bytes64 len, obs::TraceContext parent) {
  const ReadResult r = co_await mread_ex(rd, offset, buf, len, parent);
  co_return r.n;
}

sim::Co<void> DodoClient::read_piece(
    core::ReplicaSet set, Bytes64 frag_off, Bytes64 want, std::uint8_t* dst,
    FragOutcome* out, sim::WaitGroup* wg, obs::TraceContext ctx,
    const std::vector<net::ScatterSeg>* scatter) {
  // Replica selection: power-of-two-choices over host_score() — two random
  // distinct copies, read from the one whose host looks faster/less loaded.
  // The losers stay in line: a failed attempt fails over to the remaining
  // siblings (in score-agnostic order) before the caller touches disk.
  std::vector<core::RegionLoc> order = std::move(set.replicas);
  if (order.size() > 1) {
    const std::size_t a = static_cast<std::size_t>(rng_.below(order.size()));
    std::size_t b = static_cast<std::size_t>(rng_.below(order.size() - 1));
    if (b >= a) ++b;
    const std::size_t best =
        host_score(order[a].host) <= host_score(order[b].host) ? a : b;
    std::swap(order[0], order[best]);
  }

  for (std::size_t attempt = 0; attempt < order.size(); ++attempt) {
    if (attempt > 0) ++metrics_.replica_failovers;
    const core::RegionLoc frag = order[attempt];
    ++host_scores_[frag.host].inflight;
    const SimTime t0 = sim_.now();

    auto sock = net_.open_ephemeral(node_);
    const std::uint64_t rid = rids_.next();
    // The network-wait span covers request-on-the-wire through first reply;
    // the imd's handler span parents to it, so daemon service time nests
    // inside the wait in the merged timeline. Fan-out pieces show up as
    // sibling net.read spans under the one client.mread.
    obs::ScopedSpan wait(params_.spans, "net.read", ctx);
    net::Buf h = core::make_header(MsgKind::kReadReq, rid, wait.ctx());
    net::Writer w(h);
    w.u64(frag.imd_region);
    w.u64(frag.epoch);
    w.i64(frag_off);
    w.i64(want);
    sock->send(net::Endpoint{frag.host, core::kImdDataPort}, std::move(h));

    bool ok = false;
    bool filled = false;
    bool rejected = false;
    auto rep = co_await sock->recv_for(params_.data_timeout);
    wait.end_now();
    if (rep) {
      net::Reader r = core::body_reader(*rep);
      const Err code = static_cast<Err>(r.u8());
      const Bytes64 avail = r.i64();
      filled = r.u8() != 0;
      if (r.ok() && code == Err::kOk && avail == want) {
        if (scatter != nullptr) {
          // Zero-copy landing: chunks scatter straight into the callers'
          // buffers. A failed attempt may leave partial bytes behind; the
          // sibling retry (or the caller's disk fallback) overwrites the
          // full range, so nothing torn ever escapes.
          auto got = co_await net::bulk_recv_sg(*sock, rid, *scatter,
                                                nullptr, params_.bulk, ctx);
          ok = got.status.is_ok() && got.size == want;
        } else {
          auto got = co_await net::bulk_recv(*sock, rid, params_.bulk, ctx);
          if (got.status.is_ok() && got.size == want) {
            if (dst != nullptr && !got.data.empty()) {
              std::copy_n(got.data.begin(), static_cast<std::size_t>(want),
                          dst);
            }
            ok = true;
          }
        }
      } else if (r.ok()) {
        out->err = code == Err::kOk ? Err::kNotFound : code;
        rejected = true;  // authoritative answer: this copy is gone
      }
    }
    // Re-find: a concurrent prune_host may have erased the score entry
    // (and its inflight count with it) across the awaits.
    if (auto it = host_scores_.find(frag.host); it != host_scores_.end()) {
      --it->second.inflight;
    }
    if (ok) {
      observe_latency(frag.host, static_cast<double>(sim_.now() - t0));
      out->ok = true;
      out->filled = filled;
      out->replica_hit = order.size() > 1;
      break;
    }
    // A reject came from a live, answering imd — the copy is dead, the host
    // is not (under incremental reclamation it still serves what it kept).
    // Silence indicts the whole host, §3.1 style.
    if (rejected) {
      out->failed_copies.push_back(frag);
    } else {
      out->failed_hosts.push_back(frag.host);
    }
  }
  wg->done();
}

sim::Co<DodoClient::ReadResult> DodoClient::mread_ex(int rd, Bytes64 offset,
                                                     std::uint8_t* buf,
                                                     Bytes64 len,
                                                     obs::TraceContext parent) {
  if (coalescing_enabled()) {
    // Batched data path (DESIGN.md §16). With the window at 0 this branch
    // is never taken and everything below stays byte-identical on the wire
    // to pre-batching builds.
    co_return co_await mread_coalesced(rd, offset, buf, len, parent);
  }
  Entry* e = lookup_active(rd);
  if (e == nullptr) {
    // A real read attempt that degrades to disk: the caller will fall back.
    ++metrics_.mreads_total;
    ++metrics_.mreads_degraded;
    ++metrics_.disk_fallbacks;
    obs::frecord(params_.flight, obs::FlightEventType::kDiskFallback,
                 static_cast<std::int64_t>(rd), len);
    dodo_errno() = kDodoENOMEM;  // §3.2: region not currently active
    co_return ReadResult{};
  }
  if (offset < 0 || offset >= e->len || len < 0) {
    dodo_errno() = kDodoEINVAL;  // caller bug, not a fallback — uncounted
    co_return ReadResult{};
  }
  if (len == 0) {
    // Satisfied locally: no socket, no remote hit, no conservation entry.
    ReadResult zero;
    zero.n = 0;
    zero.filled = true;
    co_return zero;
  }
  // Copy everything out of the entry before the first suspension: `e`
  // points into regions_, and a concurrent coroutine's prune_host/mclose can
  // erase the entry across any co_await below.
  const int fd = e->fd;
  const Bytes64 file_base = e->file_offset;
  const Bytes64 n = std::min(len, e->len - offset);
  const core::RegionKey key = e->key;
  const core::StripeMap map = e->map;
  e = nullptr;

  ++metrics_.mreads_total;
  const SimTime t0 = sim_.now();
  obs::ScopedSpan span(params_.spans, "client.mread", parent);

  std::vector<Piece> pieces = overlap_pieces(map, offset, n);
  std::vector<FragOutcome> outcomes(pieces.size());
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(pieces.size()));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    std::uint8_t* dst = buf == nullptr ? nullptr : buf + (p.lo - offset);
    sim_.spawn(read_piece(p.set, p.lo - p.base, p.want, dst, &outcomes[i],
                          &wg, span.ctx()));
  }
  co_await wg.wait();

  bool all_ok = true;
  bool filled = true;
  std::vector<net::NodeId> failed_hosts;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (outcomes[i].ok) {
      filled = filled && outcomes[i].filled;
      ++metrics_.remote_reads;
      metrics_.remote_read_bytes += pieces[i].want;
      if (outcomes[i].replica_hit) ++metrics_.replica_hits;
    } else {
      all_ok = false;
    }
    // Every failed attempt gets pruned, whether or not the piece as a
    // whole recovered: silent hosts lose all their copies, while copies a
    // live imd explicitly rejected are dropped one by one.
    if (!outcomes[i].failed_hosts.empty() ||
        !outcomes[i].failed_copies.empty()) {
      ++metrics_.access_failures;
    }
    failed_hosts.insert(failed_hosts.end(), outcomes[i].failed_hosts.begin(),
                        outcomes[i].failed_hosts.end());
    for (const core::RegionLoc& c : outcomes[i].failed_copies) {
      prune_copy(key, c);
    }
  }
  std::sort(failed_hosts.begin(), failed_hosts.end());
  failed_hosts.erase(std::unique(failed_hosts.begin(), failed_hosts.end()),
                     failed_hosts.end());
  for (const net::NodeId h : failed_hosts) prune_host(h);

  // Per-fragment degradation: only the lost fragments' byte ranges come
  // from the backing file; disk is authoritative (clean-cache invariant).
  ReadResult res;
  bool disk_err = false;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (outcomes[i].ok) continue;
    const Piece& p = pieces[i];
    ++metrics_.disk_fallbacks;
    obs::frecord(params_.flight, obs::FlightEventType::kDiskFallback,
                 static_cast<std::int64_t>(rd), p.want);
    res.disk_ranges.emplace_back(p.lo - offset, p.want);
    obs::ScopedSpan dspan(params_.spans, "disk.read", span.ctx());
    std::uint8_t* dst = buf == nullptr ? nullptr : buf + (p.lo - offset);
    const Bytes64 got = co_await fs_.pread(fd, file_base + p.lo, p.want, dst);
    if (got != p.want) disk_err = true;
  }
  if (disk_err) {
    ++metrics_.mreads_degraded;
    dodo_errno() = kDodoEIO;
    co_return ReadResult{};
  }

  if (all_ok) {
    ++metrics_.remote_hits;
    mread_latency_.observe(sim_.now() - t0);
    // Adaptation signal: re-find the entry (any await above may have
    // dropped it) and count the hit for the next kPong report.
    if (auto it = regions_.find(rd); it != regions_.end()) {
      ++it->second.hits;
    }
  } else {
    ++metrics_.mreads_degraded;
  }
  res.n = n;
  res.filled = filled;
  co_return res;
}

// -- request coalescing (DESIGN.md §16) -------------------------------------

sim::Co<DodoClient::ReadResult> DodoClient::mread_coalesced(
    int rd, Bytes64 offset, std::uint8_t* buf, Bytes64 len,
    obs::TraceContext parent) {
  auto slot = std::make_shared<ReadResult>();
  sim::WaitGroup wg(sim_);
  wg.add(1);
  // The callback may fire synchronously (validation failures) or from the
  // flush coroutine; either way `wg` outlives it — this frame stays alive
  // until the wait below resolves.
  mread_enqueue(
      rd, offset, buf, len,
      [slot, &wg](const ReadResult& r) {
        *slot = r;
        wg.done();
      },
      parent);
  co_await wg.wait();
  co_return *slot;
}

void DodoClient::mread_enqueue(int rd, Bytes64 offset, std::uint8_t* buf,
                               Bytes64 len,
                               std::function<void(const ReadResult&)>
                                   on_complete,
                               obs::TraceContext parent) {
  assert(coalescing_enabled());
  // Validation mirrors mread_ex exactly, including the conservation
  // accounting for an inactive descriptor.
  Entry* e = lookup_active(rd);
  if (e == nullptr) {
    ++metrics_.mreads_total;
    ++metrics_.mreads_degraded;
    ++metrics_.disk_fallbacks;
    obs::frecord(params_.flight, obs::FlightEventType::kDiskFallback,
                 static_cast<std::int64_t>(rd), len);
    dodo_errno() = kDodoENOMEM;
    on_complete(ReadResult{});
    return;
  }
  if (offset < 0 || offset >= e->len || len < 0) {
    dodo_errno() = kDodoEINVAL;
    on_complete(ReadResult{});
    return;
  }
  if (len == 0) {
    ReadResult zero;
    zero.n = 0;
    zero.filled = true;
    on_complete(zero);
    return;
  }
  const Bytes64 n = std::min(len, e->len - offset);
  ++metrics_.mreads_total;
  ++metrics_.batched_reads;

  std::shared_ptr<ReadBatch> b;
  if (auto it = pending_batches_.find(rd); it != pending_batches_.end()) {
    b = it->second;
    // Only strictly forward-adjacent ops join (the dmine scan / lu slab
    // shape); a seek, overlap, or window overflow flushes the open batch
    // and this op starts a fresh one.
    const bool adjacent = offset == b->hi;
    const bool fits = offset + n - b->lo <= params_.coalesce_window_bytes;
    if (!adjacent || !fits) {
      start_flush(b);
      b = nullptr;
    }
  }
  if (b == nullptr) {
    b = std::make_shared<ReadBatch>(sim_);
    b->rd = rd;
    b->lo = offset;
    b->hi = offset;
    if (params_.spans != nullptr) {
      b->span = params_.spans->begin("client.mread_batch", parent);
      b->span_ctx = obs::TraceContext{
          parent.trace_id != 0 ? parent.trace_id : b->span, b->span};
    }
    pending_batches_[rd] = b;
    sim_.spawn(batch_timer(b));
  }
  PendingOp op;
  op.offset = offset;
  op.len = n;
  op.buf = buf;
  op.enqueued = sim_.now();
  op.on_complete = std::move(on_complete);
  if (params_.spans != nullptr) {
    // One client.mread span per ring/batched op, nested under the batch
    // span so the merged transfer's critical path attributes to every op.
    op.span = params_.spans->begin("client.mread", b->span_ctx);
  }
  b->ops.push_back(std::move(op));
  b->hi = offset + n;
  if (b->hi - b->lo >= params_.coalesce_window_bytes) start_flush(b);
}

void DodoClient::start_flush(const std::shared_ptr<ReadBatch>& b) {
  if (b->flushed) return;
  b->flushed = true;
  if (auto it = pending_batches_.find(b->rd);
      it != pending_batches_.end() && it->second == b) {
    pending_batches_.erase(it);
  }
  sim_.spawn(run_flush(b));
}

sim::Co<void> DodoClient::batch_timer(std::shared_ptr<ReadBatch> b) {
  co_await sim_.sleep(params_.coalesce_window);
  start_flush(b);  // no-op when the batch already flushed (full / barrier)
}

sim::Co<void> DodoClient::flush_pending_reads(int rd) {
  auto it = pending_batches_.find(rd);
  if (it == pending_batches_.end()) co_return;
  std::shared_ptr<ReadBatch> b = it->second;
  ++metrics_.batch_write_barriers;
  start_flush(b);
  co_await b->done.wait();
}

sim::Co<void> DodoClient::run_flush(std::shared_ptr<ReadBatch> b) {
  ++metrics_.batch_flushes;
  if (b->ops.size() >= 2) metrics_.coalesced_mreads += b->ops.size();
  const int rd = b->rd;
  Entry* e = lookup_active(rd);
  if (e == nullptr) {
    // The descriptor died between enqueue and flush (pruned host, replica
    // drop, failed write): every queued op degrades exactly like an
    // inactive-descriptor mread. mreads_total already counted at enqueue.
    for (PendingOp& op : b->ops) {
      ++metrics_.mreads_degraded;
      ++metrics_.disk_fallbacks;
      obs::frecord(params_.flight, obs::FlightEventType::kDiskFallback,
                   static_cast<std::int64_t>(rd), op.len);
      dodo_errno() = kDodoENOMEM;
      op.result = ReadResult{};
    }
    finish_batch(*b);
    co_return;
  }
  // Copy every field needed below out of the entry BEFORE the first
  // co_await: `e` points into regions_, and a concurrent prune_host/mclose
  // can erase the entry across any suspension (the PR 5 use-after-
  // suspension rule; Ring.EvictMidBatchIsSafe pins this).
  const int fd = e->fd;
  const Bytes64 file_base = e->file_offset;
  const core::RegionKey key = e->key;
  const core::StripeMap map = e->map;
  e = nullptr;

  const Bytes64 lo = b->lo;
  std::vector<Piece> pieces = overlap_pieces(map, lo, b->hi - lo);

  // Per piece, a scatter list maps the piece's byte range across the ops'
  // buffers, so the bulk chunks land directly in application memory — the
  // whole batch moves with zero intermediate copies.
  std::vector<std::vector<net::ScatterSeg>> scatter(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    for (const PendingOp& op : b->ops) {
      const Bytes64 ov_lo = std::max(p.lo, op.offset);
      const Bytes64 ov_hi = std::min(p.lo + p.want, op.offset + op.len);
      if (ov_lo >= ov_hi) continue;
      net::ScatterSeg seg;
      seg.data = op.buf == nullptr ? nullptr : op.buf + (ov_lo - op.offset);
      seg.size = ov_hi - ov_lo;
      scatter[i].push_back(seg);
    }
  }

  std::vector<FragOutcome> outcomes(pieces.size());
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(pieces.size()));
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Piece& p = pieces[i];
    sim_.spawn(read_piece(p.set, p.lo - p.base, p.want, nullptr,
                          &outcomes[i], &wg, b->span_ctx, &scatter[i]));
  }
  co_await wg.wait();

  // Join exactly as mread_ex: per-piece accounting, then prune every
  // failed attempt (silent hosts wholesale, rejected copies one by one).
  std::vector<net::NodeId> failed_hosts;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (outcomes[i].ok) {
      ++metrics_.remote_reads;
      metrics_.remote_read_bytes += pieces[i].want;
      if (outcomes[i].replica_hit) ++metrics_.replica_hits;
    }
    if (!outcomes[i].failed_hosts.empty() ||
        !outcomes[i].failed_copies.empty()) {
      ++metrics_.access_failures;
    }
    failed_hosts.insert(failed_hosts.end(), outcomes[i].failed_hosts.begin(),
                        outcomes[i].failed_hosts.end());
    for (const core::RegionLoc& c : outcomes[i].failed_copies) {
      prune_copy(key, c);
    }
  }
  std::sort(failed_hosts.begin(), failed_hosts.end());
  failed_hosts.erase(std::unique(failed_hosts.begin(), failed_hosts.end()),
                     failed_hosts.end());
  for (const net::NodeId h : failed_hosts) prune_host(h);

  // Resolve each op independently: only the byte ranges overlapping a LOST
  // piece degrade to the backing file — fragment-granular per op, so one
  // pruned host never disk-fills the whole batch. Each op lands in exactly
  // one of remote_hits / mreads_degraded (conservation triple), and
  // disk_fallbacks ticks once per (op × lost piece) overlap, keeping
  // mreads_degraded ≤ disk_fallbacks.
  std::uint64_t fully_remote = 0;
  for (PendingOp& op : b->ops) {
    bool all_ok = true;
    bool filled = true;
    bool disk_err = false;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      const Piece& p = pieces[i];
      const Bytes64 ov_lo = std::max(p.lo, op.offset);
      const Bytes64 ov_hi = std::min(p.lo + p.want, op.offset + op.len);
      if (ov_lo >= ov_hi) continue;
      if (outcomes[i].ok) {
        filled = filled && outcomes[i].filled;
        continue;
      }
      all_ok = false;
      ++metrics_.disk_fallbacks;
      obs::frecord(params_.flight, obs::FlightEventType::kDiskFallback,
                   static_cast<std::int64_t>(rd), ov_hi - ov_lo);
      op.result.disk_ranges.emplace_back(ov_lo - op.offset, ov_hi - ov_lo);
      obs::ScopedSpan dspan(params_.spans, "disk.read", b->span_ctx);
      std::uint8_t* dst =
          op.buf == nullptr ? nullptr : op.buf + (ov_lo - op.offset);
      const Bytes64 got =
          co_await fs_.pread(fd, file_base + ov_lo, ov_hi - ov_lo, dst);
      if (got != ov_hi - ov_lo) disk_err = true;
    }
    if (disk_err) {
      ++metrics_.mreads_degraded;
      dodo_errno() = kDodoEIO;
      op.result = ReadResult{};
      continue;
    }
    if (all_ok) {
      ++metrics_.remote_hits;
      mread_latency_.observe(sim_.now() - op.enqueued);
      ++fully_remote;
    } else {
      ++metrics_.mreads_degraded;
    }
    op.result.n = op.len;
    op.result.filled = filled;
  }
  // Adaptation signal: re-find the entry (any await above may have dropped
  // it) and count the fully-remote ops for the next kPong report.
  if (fully_remote > 0) {
    if (auto it = regions_.find(rd); it != regions_.end()) {
      it->second.hits += fully_remote;
    }
  }
  finish_batch(*b);
}

void DodoClient::finish_batch(ReadBatch& b) {
  // Close the per-op spans before the batch span (strict nesting), then
  // fire the callbacks in submission order, then release the barrier.
  if (params_.spans != nullptr) {
    for (const PendingOp& op : b.ops) {
      if (op.span != 0) params_.spans->end(op.span);
    }
    if (b.span != 0) params_.spans->end(b.span);
  }
  for (PendingOp& op : b.ops) {
    if (op.on_complete) op.on_complete(op.result);
  }
  b.done.done();
}

sim::Co<void> DodoClient::write_fragment(core::RegionLoc frag,
                                         Bytes64 frag_off, Bytes64 want,
                                         const std::uint8_t* src,
                                         FragOutcome* out, sim::WaitGroup* wg,
                                         obs::TraceContext ctx) {
  auto sock = net_.open_ephemeral(node_);
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan wait(params_.spans, "net.write", ctx);
  net::Buf h = core::make_header(MsgKind::kWriteReq, rid, wait.ctx());
  net::Writer w(h);
  w.u64(frag.imd_region);
  w.u64(frag.epoch);
  w.i64(frag_off);
  w.i64(want);
  sock->send(net::Endpoint{frag.host, core::kImdDataPort}, std::move(h));

  auto go = co_await sock->recv_for(params_.data_timeout);
  wait.end_now();
  if (!go) {
    wg->done();
    co_return;
  }
  auto genv = core::peek_envelope(*go);
  if (!genv || genv->kind != MsgKind::kWriteGo) {
    // The imd refused (stale epoch / unknown region): a WriteRep with an
    // error code arrives instead of the go-ahead.
    out->err = Err::kNotFound;
    wg->done();
    co_return;
  }
  const Status st = co_await net::bulk_send(*sock, go->src, rid,
                                            net::BodyView{src, want},
                                            params_.bulk, ctx);
  if (!st.is_ok()) {
    out->err = st.code();
    wg->done();
    co_return;
  }
  obs::ScopedSpan wait_rep(params_.spans, "net.write_rep", ctx);
  auto rep = co_await sock->recv_for(params_.data_timeout);
  wait_rep.end_now();
  if (rep) {
    net::Reader r = core::body_reader(*rep);
    const Err code = static_cast<Err>(r.u8());
    if (r.ok() && code == Err::kOk) {
      out->ok = true;
    } else if (r.ok()) {
      out->err = code;
    }
  }
  wg->done();
}

sim::Co<Status> DodoClient::push_remote(int rd, Bytes64 offset,
                                        const std::uint8_t* buf, Bytes64 len,
                                        obs::TraceContext parent) {
  // Invalidate-on-write barrier: queued reads must flush (and complete)
  // before any write touches the replica map — see flush_pending_reads.
  co_await flush_pending_reads(rd);
  Entry* e = lookup_active(rd);
  if (e == nullptr) co_return Status(Err::kNoMem, "region not active");
  if (offset < 0 || offset >= e->len || len < 0) {
    co_return Status(Err::kInval, "bad offset/len");
  }
  if (len == 0) co_return Status::ok();  // nothing to move, no socket
  // Copy before the first suspension — see mread_ex.
  const Bytes64 n = std::min(len, e->len - offset);
  const core::RegionKey key = e->key;
  const core::StripeMap map = e->map;
  const auto write_only = e->write_only;
  e = nullptr;
  obs::ScopedSpan span(params_.spans, "client.push_remote", parent);

  // Write-through fan-out: every live replica of every overlapped fragment
  // gets the bytes, plus the write-only copies of pending clones (so an
  // activating clone misses nothing). One coroutine per copy.
  std::vector<Piece> pieces = overlap_pieces(map, offset, n);
  struct Target {
    std::size_t piece = 0;
    core::RegionLoc loc;
    bool live = false;  // serving replica (vs. write-only pending clone)
  };
  std::vector<Target> targets;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (const core::RegionLoc& c : pieces[i].set.replicas) {
      targets.push_back(Target{i, c, true});
    }
    for (const auto& [frag, c] : write_only) {
      if (frag == pieces[i].frag_index) targets.push_back(Target{i, c, false});
    }
  }
  std::vector<FragOutcome> outcomes(targets.size());
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(targets.size()));
  for (std::size_t k = 0; k < targets.size(); ++k) {
    const Piece& p = pieces[targets[k].piece];
    const std::uint8_t* src =
        buf == nullptr ? nullptr : buf + (p.lo - offset);
    sim_.spawn(write_fragment(targets[k].loc, p.lo - p.base, p.want, src,
                              &outcomes[k], &wg, span.ctx()));
  }
  co_await wg.wait();

  // Join with explicit OR of per-copy failure flags: a piece degrades iff
  // NO live copy took the bytes, and the overall status ORs the per-piece
  // flags — a fast sibling's success can never overwrite a failure seen
  // earlier (or later) in the scan.
  std::vector<bool> piece_has_live_ok(pieces.size(), false);
  std::vector<bool> piece_has_failure(pieces.size(), false);
  Err first_err = Err::kOk;
  std::vector<core::RegionLoc> stale_copies;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    if (outcomes[k].ok) {
      metrics_.remote_write_bytes += pieces[targets[k].piece].want;
      if (targets[k].live) piece_has_live_ok[targets[k].piece] = true;
    } else {
      ++metrics_.access_failures;
      piece_has_failure[targets[k].piece] =
          piece_has_failure[targets[k].piece] || true;
      if (first_err == Err::kOk) first_err = outcomes[k].err;
      stale_copies.push_back(targets[k].loc);
    }
  }
  bool degraded = false;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    degraded = degraded || !piece_has_live_ok[i];
  }

  // Invalidate-on-write: every copy that missed the bytes leaves the local
  // map AND the cmd directory before it can serve a stale read. An
  // unanswered invalidation is promoted to full degradation — the caller
  // drops the descriptor, and the copy dies at the cmd by epoch validation
  // or key reuse before any read can route to it through a fresh mopen of
  // this (per-client) key.
  for (const core::RegionLoc& c : stale_copies) {
    prune_copy(key, c);
    if (!co_await invalidate_replica(key, c, span.ctx())) degraded = true;
  }

  if (degraded) {
    co_return Status(first_err == Err::kOk ? Err::kTimeout : first_err,
                     "fragment write failed");
  }
  ++metrics_.remote_pushes;
  co_return Status::ok();
}

sim::Co<Bytes64> DodoClient::mwrite(int rd, Bytes64 offset,
                                    const std::uint8_t* buf, Bytes64 len,
                                    obs::TraceContext parent) {
  // Invalidate-on-write barrier: an mwrite landing between queued mreads
  // and their flush would let the flush read through a replica map this
  // write is about to prune — a copy that missed the write could serve
  // pre-invalidation bytes. Flush and wait before even looking up the
  // entry (regression: Replica.WriteBarrierFlushesPendingBatch).
  co_await flush_pending_reads(rd);
  Entry* e = lookup_active(rd);
  if (e == nullptr) {
    dodo_errno() = kDodoENOMEM;
    co_return -1;
  }
  if (offset < 0 || offset >= e->len || len < 0) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  if (len == 0) co_return 0;  // zero-length: no disk write, no sockets
  ++metrics_.mwrites_total;
  const SimTime t0 = sim_.now();
  obs::ScopedSpan span(params_.spans, "client.mwrite", parent);
  const Bytes64 n = std::min(len, e->len - offset);

  // "Writes to remote memory are propagated to disk in parallel to being
  // sent to the remote host." Launch both and join.
  sim::WaitGroup wg(sim_);
  wg.add(2);
  Bytes64 disk_result = 0;
  Status remote_result;
  const int fd = e->fd;
  const Bytes64 file_off = e->file_offset + offset;

  sim_.spawn([](DodoClient& c, int f, Bytes64 off, const std::uint8_t* b,
                Bytes64 nn, Bytes64& out, sim::WaitGroup& g,
                obs::TraceContext ctx) -> sim::Co<void> {
    obs::ScopedSpan dspan(c.params_.spans, "disk.write", ctx);
    out = co_await c.fs_.pwrite(f, off, nn, b);
    g.done();
  }(*this, fd, file_off, buf, n, disk_result, wg, span.ctx()));
  sim_.spawn([](DodoClient& c, int rdesc, Bytes64 off, const std::uint8_t* b,
                Bytes64 nn, Status& out, sim::WaitGroup& g,
                obs::TraceContext ctx) -> sim::Co<void> {
    out = co_await c.push_remote(rdesc, off, b, nn, ctx);
    g.done();
  }(*this, rd, offset, buf, n, remote_result, wg, span.ctx()));
  co_await wg.wait();

  if (disk_result < 0) {
    // §3.2: pass through the backing write's errno.
    dodo_errno() = kDodoEIO;
    co_return -1;
  }
  if (!remote_result.is_ok()) {
    // Disk took the bytes, so the data is durable — failure degrades to
    // disk (§3.2), it does not fail the write. Drop the descriptor (the
    // remote copy is now stale for this range and must never serve a read)
    // and report success. push_remote's failure path usually already
    // dropped every descriptor on the lost host; this erase covers the
    // remaining refusal paths.
    ++metrics_.mwrite_remote_failures;
    if (regions_.erase(rd) != 0) ++metrics_.descriptors_dropped;
    co_return n;
  }
  ++metrics_.remote_writes;
  mwrite_latency_.observe(sim_.now() - t0);
  co_return n;
}

sim::Co<int> DodoClient::mclose(int rd) {
  // Queued reads still hold the descriptor: flush them before deactivating
  // so they resolve against a live entry instead of racing the close.
  co_await flush_pending_reads(rd);
  auto it = regions_.find(rd);
  if (it == regions_.end()) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  // Deactivate now — no new access may route at the region — but keep the
  // entry until the cmd actually answers: erasing first would forget the
  // key on an RPC timeout, leaving the directory entry stuck until the
  // keep-alive sweep. A kept (inactive) descriptor lets the caller retry
  // the mclose with the same rd.
  it->second.active = false;
  const core::RegionKey key = it->second.key;

  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "client.mclose");
  obs::ScopedSpan wait(params_.spans, "net.mfree", span.ctx());
  net::Buf h = core::make_header(MsgKind::kMfreeReq, rid, wait.ctx());
  net::Writer w(h);
  core::put_key(w, key);
  auto rep = co_await core::rpc_call(net_, node_, shard_endpoint(key),
                                     std::move(h), rid, params_.cmd_rpc);
  wait.end_now();
  if (!rep) {
    dodo_errno() = kDodoEINVAL;  // "not able to contact the central manager"
    co_return -1;  // descriptor kept (inactive) so the free can be retried
  }
  // Any reply — success or already-reclaimed — resolves the key's fate;
  // only now is the local descriptor forgotten. Erase by key, not by `it`:
  // a concurrent prune_host may have invalidated the iterator across the
  // await.
  regions_.erase(rd);
  net::Reader r = core::body_reader(*rep);
  if (r.u8() == 0) {
    dodo_errno() = kDodoEINVAL;  // already reclaimed
    co_return -1;
  }
  co_return 0;
}

sim::Co<int> DodoClient::msync(int rd) {
  auto it = regions_.find(rd);
  if (it == regions_.end()) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  const Status st = co_await fs_.fsync(it->second.fd);
  if (!st.is_ok()) {
    dodo_errno() = kDodoEIO;
    co_return -1;
  }
  co_return 0;
}

obs::MetricsSnapshot DodoClient::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("client.mopens", metrics_.mopens);
  out.set_counter("client.mopen_failures", metrics_.mopen_failures);
  out.set_counter("client.refraction_skips", metrics_.refraction_skips);
  out.set_counter("client.remote_reads", metrics_.remote_reads);
  out.set_counter("client.remote_writes", metrics_.remote_writes);
  out.set_counter("client.remote_pushes", metrics_.remote_pushes);
  out.set_counter("client.remote_read_bytes",
                  static_cast<std::uint64_t>(metrics_.remote_read_bytes));
  out.set_counter("client.remote_write_bytes",
                  static_cast<std::uint64_t>(metrics_.remote_write_bytes));
  out.set_counter("client.access_failures", metrics_.access_failures);
  out.set_counter("client.nodes_dropped", metrics_.nodes_dropped);
  out.set_counter("client.descriptors_dropped",
                  metrics_.descriptors_dropped);
  out.set_counter("client.pings_answered", metrics_.pings_answered);
  out.set_counter("client.mreads_total", metrics_.mreads_total);
  out.set_counter("client.remote_hits", metrics_.remote_hits);
  out.set_counter("client.mreads_degraded", metrics_.mreads_degraded);
  out.set_counter("client.disk_fallbacks", metrics_.disk_fallbacks);
  out.set_counter("client.mwrites_total", metrics_.mwrites_total);
  out.set_counter("client.mwrite_remote_failures",
                  metrics_.mwrite_remote_failures);
  out.set_counter("client.replica_hits", metrics_.replica_hits);
  out.set_counter("client.replica_failovers", metrics_.replica_failovers);
  out.set_counter("client.invalidations_sent", metrics_.invalidations_sent);
  out.set_counter("client.replica_updates_applied",
                  metrics_.replica_updates_applied);
  // Batched-data-path keys are gated on the features being wired up, so a
  // client that never batches exports the pre-batching key set and its
  // JSON stays byte-identical per seed (the PR 9 telemetry-off pin).
  if (coalescing_enabled() || ring_attached_) {
    out.set_counter("client.batched_reads", metrics_.batched_reads);
    out.set_counter("client.coalesced_mreads", metrics_.coalesced_mreads);
    out.set_counter("client.batch_flushes", metrics_.batch_flushes);
    out.set_counter("client.batch_write_barriers",
                    metrics_.batch_write_barriers);
  }
  if (ring_attached_) {
    out.set_counter("client.ring_submitted", metrics_.ring_submitted);
    out.set_counter("client.ring_completed", metrics_.ring_completed);
    out.set_counter("client.ring_full_rejects", metrics_.ring_full_rejects);
    out.set_gauge("client.ring_depth",
                  static_cast<std::int64_t>(metrics_.ring_peak_depth));
  }
  out.set_gauge("client.region_table_size",
                static_cast<std::int64_t>(regions_.size()));
  out.set_histogram("client.mread_latency", mread_latency_);
  out.set_histogram("client.mwrite_latency", mwrite_latency_);
  bulk_stats_.export_into(out, "client.bulk.");
  return out;
}

bool DodoClient::active(int rd) const {
  auto it = regions_.find(rd);
  return it != regions_.end() && it->second.active;
}

std::uint32_t DodoClient::replica_depth(int rd) const {
  auto it = regions_.find(rd);
  if (it == regions_.end() || !it->second.active) return 0;
  std::uint32_t depth = 0;
  bool first = true;
  for (const core::ReplicaSet& f : it->second.map.frags) {
    const auto n = static_cast<std::uint32_t>(f.replicas.size());
    if (first || n < depth) depth = n;
    first = false;
  }
  return first ? 0 : depth;
}

}  // namespace dodo::runtime
