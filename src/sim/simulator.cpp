#include "sim/simulator.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

namespace dodo::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() { destroy_detached(); }

void Simulator::destroy_detached() {
  for (auto h : detached_) {
    if (h) h.destroy();
  }
  detached_.clear();
}

void Simulator::schedule(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_resume(SimTime t, std::coroutine_handle<> h) {
  schedule(t, [h] { h.resume(); });
}

void Simulator::spawn(Co<void> task) {
  auto h = task.release();
  if (!h) return;
  detached_.push_back(h);
  schedule(now_, [h] { h.resume(); });
}

void Simulator::reap_finished_tasks() {
  std::size_t out = 0;
  for (std::size_t i = 0; i < detached_.size(); ++i) {
    auto h = detached_[i];
    if (h.promise().finished) {
      if (h.promise().exception) {
        // A detached daemon died with an exception: that is a bug in the
        // model, never a recoverable condition. Fail loudly.
        try {
          std::rethrow_exception(h.promise().exception);
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "dodo::sim: detached task terminated with exception: "
                       "%s\n",
                       e.what());
        } catch (...) {
          std::fprintf(stderr,
                       "dodo::sim: detached task terminated with unknown "
                       "exception\n");
        }
        std::abort();
      }
      h.destroy();
    } else {
      detached_[out++] = h;
    }
  }
  detached_.resize(out);
}

SimTime Simulator::run(SimTime limit) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_ && !event_limit_hit()) {
    // priority_queue::top() is const; the event is copied out so the handler
    // can schedule new events (which may reallocate the heap) safely.
    Event ev = queue_.top();
    if (ev.time > limit) {
      now_ = limit;
      break;
    }
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++events_processed_;
    if ((events_processed_ & 0x3ff) == 0) reap_finished_tasks();
  }
  reap_finished_tasks();
  return now_;
}

}  // namespace dodo::sim
