// The discrete-event simulator.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order they
// were scheduled. All Dodo daemons and applications execute as detached
// Co<void> coroutines on this loop.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/task.hpp"

namespace dodo::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedules an arbitrary callback at absolute time `t` (clamped to now).
  void schedule(SimTime t, std::function<void()> fn);

  /// Schedules a coroutine resume at absolute time `t` (clamped to now).
  void schedule_resume(SimTime t, std::coroutine_handle<> h);

  /// Detaches a task onto the loop; its body starts at the current time.
  /// Exceptions escaping a detached task abort the simulation (fail fast).
  void spawn(Co<void> task);

  /// Awaitable: suspends the calling coroutine for `d` simulated time.
  [[nodiscard]] auto sleep(Duration d) {
    return SleepAwaiter{*this, now_ + (d > 0 ? d : 0)};
  }

  /// Awaitable: suspends the calling coroutine until absolute time `t`.
  [[nodiscard]] auto sleep_until(SimTime t) {
    return SleepAwaiter{*this, t > now_ ? t : now_};
  }

  /// Runs until the event queue drains, a stop is requested, or the
  /// simulated-time limit is hit. Returns the simulated time at exit.
  SimTime run(SimTime limit = INT64_MAX);

  /// Makes run() return after the event currently being processed.
  void request_stop() { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Number of events processed so far (for budget checks in tests).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Hard cap on total events processed; run() returns once it is reached.
  /// Guards generative (fuzz) runs against schedules that livelock at a
  /// constant sim time, where a time limit alone would never fire. 0 = off.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }
  [[nodiscard]] bool event_limit_hit() const {
    return event_limit_ != 0 && events_processed_ >= event_limit_;
  }

  /// Destroys all still-suspended detached tasks immediately. Call this
  /// before tearing down objects (networks, filesystems) that suspended
  /// coroutine frames may reference from their local variables; must not be
  /// called while run() is executing.
  void destroy_detached();

 private:
  struct SleepAwaiter {
    Simulator& sim;
    SimTime wake_at;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule_resume(wake_at, h);
    }
    void await_resume() const noexcept {}
  };

  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void reap_finished_tasks();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool stop_requested_ = false;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<Co<void>::promise_type>> detached_;
};

}  // namespace dodo::sim
