// Awaitable message channels.
//
// A Channel<T> is an unbounded MPSC/MPMC queue on the simulated loop. send()
// never blocks; recv() suspends the receiving coroutine until a value is
// available; recv_for() additionally wakes with std::nullopt after a timeout.
//
// Implementation note on timeouts: events cannot be removed from the event
// heap, so each pending receive holds a shared "armed" flag. Whichever of
// {value delivery, timer} fires first disarms the flag; the loser sees the
// disarmed flag and does nothing.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"

namespace dodo::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(&sim) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; wakes one pending receiver if any (at current time).
  void send(T value) {
    while (!waiters_.empty()) {
      Waiter w = std::move(waiters_.front());
      waiters_.pop_front();
      if (!*w.armed) continue;  // timed out already; skip the corpse
      *w.armed = false;
      *w.slot = std::move(value);
      sim_->schedule_resume(sim_->now(), w.handle);
      return;
    }
    items_.push_back(std::move(value));
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t pending_receivers() const {
    return waiters_.size();
  }

  /// Awaitable receive; resumes with the next value.
  [[nodiscard]] auto recv() { return RecvAwaiter{*this}; }

  /// Awaitable receive with timeout; resumes with std::nullopt on timeout.
  [[nodiscard]] auto recv_for(Duration timeout) {
    return RecvForAwaiter{*this, timeout};
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
    std::shared_ptr<bool> armed;
  };

  struct RecvAwaiter {
    Channel& ch;
    std::optional<T> slot{};
    std::shared_ptr<bool> armed{};

    bool await_ready() {
      if (!ch.items_.empty()) {
        slot = std::move(ch.items_.front());
        ch.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      armed = std::make_shared<bool>(true);
      ch.waiters_.push_back(Waiter{h, &slot, armed});
    }
    T await_resume() { return std::move(*slot); }
  };

  struct RecvForAwaiter {
    Channel& ch;
    Duration timeout;
    std::optional<T> slot{};
    std::shared_ptr<bool> armed{};

    bool await_ready() {
      if (!ch.items_.empty()) {
        slot = std::move(ch.items_.front());
        ch.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      armed = std::make_shared<bool>(true);
      ch.waiters_.push_back(Waiter{h, &slot, armed});
      auto flag = armed;
      ch.sim_->schedule(ch.sim_->now() + timeout, [flag, h] {
        if (!*flag) return;  // value arrived first
        *flag = false;
        h.resume();
      });
    }
    std::optional<T> await_resume() { return std::move(slot); }
  };

  Simulator* sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

/// Counts outstanding work; wait() suspends until the count reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(&sim) {}

  void add(int n = 1) { count_ += n; }

  void done() {
    if (--count_ == 0) {
      for (auto h : waiters_) sim_->schedule_resume(sim_->now(), h);
      waiters_.clear();
    }
  }

  [[nodiscard]] int count() const { return count_; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      WaitGroup& wg;
      bool await_ready() const { return wg.count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        wg.waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator* sim_;
  int count_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace dodo::sim
