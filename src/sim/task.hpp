// Coroutine task type for simulated processes.
//
// Every Dodo daemon, application, and protocol exchange is a `Co<T>`
// coroutine executing on the single-threaded discrete-event simulator.
// `Co<T>` is lazy: the body does not run until the task is either awaited by
// another coroutine or detached onto the simulator with Simulator::spawn().
//
// Ownership: a Co<T> owns its coroutine frame. Awaiting it transfers control
// with symmetric transfer and destroys the frame when the owning Co goes out
// of scope. Detached tasks are owned by the simulator and reaped after they
// finish.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

namespace dodo::sim {

template <typename T = void>
class Co;

namespace detail {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& promise = h.promise();
    promise.finished = true;
    if (promise.continuation) return promise.continuation;
    return std::noop_coroutine();
  }

  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool finished = false;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a value of type T (or void).
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T> value{};

    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.template emplace<1>(std::forward<U>(v));
    }
  };

  Co() = default;
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const {
    return handle_ == nullptr || handle_.promise().finished;
  }

  /// Awaiting a Co starts it (symmetric transfer) and resumes the awaiter
  /// when the task completes, returning its value or rethrowing.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() const noexcept { return handle.promise().finished; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
        return std::move(std::get<1>(promise.value));
      }
    };
    return Awaiter{handle_};
  }

  /// For the simulator's use only: releases ownership of the frame.
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Co() = default;
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const {
    return handle_ == nullptr || handle_.promise().finished;
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      bool await_ready() const noexcept { return handle.promise().finished; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) std::rethrow_exception(promise.exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace dodo::sim
