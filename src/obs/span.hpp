// Lightweight trace spans over the simulation clock.
//
// A span is a named [start, end) interval of sim time with an optional
// parent and a trace id, so nested operations (cread -> fault_in ->
// grim_reaper, or an imd read serving a client mread) reconstruct into a
// tree offline — across process boundaries. Parents are explicit —
// coroutines interleave at every co_await, so an implicit thread-local
// "current span" stack would attribute children to whichever coroutine
// happened to run last. Recording is opt-in per component (a null recorder
// pointer costs one branch) and bounded: past max_spans, new spans are
// counted as dropped instead of growing without limit.
//
// Cross-process causality: a TraceContext {trace_id, parent_span} rides the
// wire header of every RPC and bulk datagram (src/core/wire.hpp,
// src/net/bulk.cpp), so a server-side handler opens its span as a child of
// the originating client span. For that to be meaningful, every recorder in
// one deployment draws ids from a shared SpanIdAllocator (see TraceDomain in
// obs/trace_merge.hpp), making span ids unique cluster-wide. A trace id is
// simply the span id of the trace's root span.
//
// Serialization follows src/trace's TSV convention: a "# dodo spans v2"
// header, then one row per span, with the same strict "line N: why" parser
// discipline as trace_from_tsv.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace dodo::obs {

/// The causal context carried on the wire: which trace a request belongs to
/// and which span caused it. {0, 0} means "untraced" (recording disabled at
/// the origin); handlers then open root spans of their own.
struct TraceContext {
  std::uint64_t trace_id = 0;    // root span id of the trace; 0 = untraced
  std::uint64_t parent_span = 0;  // 0 = no parent

  [[nodiscard]] bool traced() const { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Monotonic span-id source. Shared by every SpanRecorder of one deployment
/// so ids are unique across daemons and wire-propagated parent links resolve
/// unambiguously in the merged timeline.
class SpanIdAllocator {
 public:
  std::uint64_t next() { return next_id_++; }
  /// Highest id handed out so far (0 when none). An id above this was never
  /// allocated anywhere — the orphan-parent check in SpanRecorder::begin.
  [[nodiscard]] std::uint64_t issued() const { return next_id_ - 1; }

 private:
  std::uint64_t next_id_ = 1;
};

struct SpanRecord {
  std::uint64_t id = 0;      // 1-based, allocation order
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t trace = 0;   // root span id of the owning trace; 0 = none
  SimTime start = 0;
  SimTime end = -1;  // -1 while the span is still open
  std::string name;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

class SpanRecorder {
 public:
  /// `ids` may point at a shared allocator (TraceDomain mode); null gives
  /// the recorder its own private stream.
  explicit SpanRecorder(sim::Simulator& sim, std::size_t max_spans = 1 << 20,
                        SpanIdAllocator* ids = nullptr)
      : sim_(sim), max_spans_(max_spans),
        ids_(ids != nullptr ? ids : &own_ids_) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Opens a span; returns its id (0 when the recorder is full). A parent
  /// (or trace) id that was never allocated is rejected — the span is
  /// recorded as a root instead, and the rejection counted — so the merged
  /// tree never contains edges to nonexistent spans.
  std::uint64_t begin(std::string name, TraceContext parent = {});

  /// Closes an open span; ignores id 0 and unknown/already-closed ids.
  void end(std::uint64_t id);

  /// Force-closes every still-open span at the current sim time (quiesce).
  /// Returns how many were open, so exports never contain end=-1 rows.
  std::uint64_t close_open();

  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Spans whose parent/trace id had never been allocated (clamped to root).
  [[nodiscard]] std::uint64_t orphans_rejected() const {
    return orphans_rejected_;
  }
  [[nodiscard]] SpanIdAllocator& ids() { return *ids_; }

  /// "# dodo spans v2 <count>" then "id\tparent\ttrace\tstart\tend\tname".
  [[nodiscard]] std::string to_tsv() const;

  /// Strict parser: rejects garbled headers, non-numeric fields, count
  /// mismatches, and unterminated rows. On failure returns false and
  /// (optionally) a "line N: why" message.
  static bool from_tsv(const std::string& text, std::vector<SpanRecord>& out,
                       std::string* error = nullptr);

 private:
  sim::Simulator& sim_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::uint64_t, std::size_t> open_;  // id -> index
  SpanIdAllocator own_ids_;
  std::uint64_t dropped_ = 0;
  std::uint64_t orphans_rejected_ = 0;
  std::size_t max_spans_;
  SpanIdAllocator* ids_;
};

/// RAII span guard, safe to hold across co_await (ends when the owning
/// coroutine frame is destroyed, even on cancellation paths).
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* rec, const char* name, TraceContext parent = {})
      : rec_(rec), id_(rec != nullptr ? rec->begin(name, parent) : 0),
        trace_(parent.trace_id != 0 ? parent.trace_id : id_) {}
  ~ScopedSpan() { end_now(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span before scope exit — e.g. a network-wait span closed the
  /// moment the reply arrives rather than when the enclosing frame unwinds.
  void end_now() {
    if (rec_ != nullptr && id_ != 0 && !ended_) rec_->end(id_);
    ended_ = true;
  }

  /// Pass this as `parent` when opening child spans (locally or over the
  /// wire). For a root span the trace id is the span's own id.
  [[nodiscard]] TraceContext ctx() const { return {trace_, id_}; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  SpanRecorder* rec_;
  std::uint64_t id_;
  std::uint64_t trace_;
  bool ended_ = false;
};

}  // namespace dodo::obs
