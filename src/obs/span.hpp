// Lightweight trace spans over the simulation clock.
//
// A span is a named [start, end) interval of sim time with an optional
// parent, so nested operations (cread -> fault_in -> grim_reaper, or an imd
// read serving a client mread) reconstruct into a tree offline. Parents are
// explicit — coroutines interleave at every co_await, so an implicit
// thread-local "current span" stack would attribute children to whichever
// coroutine happened to run last. Recording is opt-in per component (a null
// recorder pointer costs one branch) and bounded: past max_spans, new spans
// are counted as dropped instead of growing without limit.
//
// Serialization follows src/trace's TSV convention: a "# dodo spans v1"
// header, then one row per span, with the same strict "line N: why" parser
// discipline as trace_from_tsv.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace dodo::obs {

struct SpanRecord {
  std::uint64_t id = 0;      // 1-based, allocation order
  std::uint64_t parent = 0;  // 0 = root
  SimTime start = 0;
  SimTime end = -1;  // -1 while the span is still open
  std::string name;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

class SpanRecorder {
 public:
  explicit SpanRecorder(sim::Simulator& sim, std::size_t max_spans = 1 << 20)
      : sim_(sim), max_spans_(max_spans) {}

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Opens a span; returns its id (0 when the recorder is full).
  std::uint64_t begin(std::string name, std::uint64_t parent = 0);

  /// Closes an open span; ignores id 0 and unknown/already-closed ids.
  void end(std::uint64_t id);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// "# dodo spans v1 <count>" then "id\tparent\tstart\tend\tname" rows.
  [[nodiscard]] std::string to_tsv() const;

  /// Strict parser: rejects garbled headers, non-numeric fields, count
  /// mismatches, and unterminated rows. On failure returns false and
  /// (optionally) a "line N: why" message.
  static bool from_tsv(const std::string& text, std::vector<SpanRecord>& out,
                       std::string* error = nullptr);

 private:
  sim::Simulator& sim_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::uint64_t, std::size_t> open_;  // id -> index
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::size_t max_spans_;
};

/// RAII span guard, safe to hold across co_await (ends when the owning
/// coroutine frame is destroyed, even on cancellation paths).
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder* rec, const char* name, std::uint64_t parent = 0)
      : rec_(rec), id_(rec != nullptr ? rec->begin(name, parent) : 0) {}
  ~ScopedSpan() {
    if (rec_ != nullptr && id_ != 0) rec_->end(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Pass this as `parent` when opening child spans.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  SpanRecorder* rec_;
  std::uint64_t id_;
};

}  // namespace dodo::obs
