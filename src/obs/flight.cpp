#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>

namespace dodo::obs {

const char* flight_event_name(FlightEventType t) {
  switch (t) {
    case FlightEventType::kFaultInjected:
      return "fault";
    case FlightEventType::kRecruit:
      return "recruit";
    case FlightEventType::kEvict:
      return "evict";
    case FlightEventType::kPressureTransition:
      return "pressure";
    case FlightEventType::kShrinkScheduled:
      return "shrink_scheduled";
    case FlightEventType::kLeaseGrant:
      return "lease_grant";
    case FlightEventType::kLeaseCap:
      return "lease_cap";
    case FlightEventType::kLeaseFence:
      return "lease_fence";
    case FlightEventType::kLeaseRenewReject:
      return "lease_renew_reject";
    case FlightEventType::kExpiryNotice:
      return "expiry_notice";
    case FlightEventType::kProactiveCopy:
      return "proactive_copy";
    case FlightEventType::kReplicaGrow:
      return "replica_grow";
    case FlightEventType::kReplicaShrink:
      return "replica_shrink";
    case FlightEventType::kHostPrune:
      return "host_prune";
    case FlightEventType::kDiskFallback:
      return "disk_fallback";
    case FlightEventType::kHealthViolation:
      return "health_violation";
  }
  return "?";
}

void FlightRecorder::record(FlightEventType type, std::int64_t a,
                            std::int64_t b, std::int64_t c,
                            std::string detail) {
  FlightEvent ev{sim_.now(), type, a, b, c, std::move(detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

FlightRecorder* FlightDomain::recorder(const std::string& name) {
  auto it = recorders_.find(name);
  if (it == recorders_.end()) {
    it = recorders_
             .emplace(name,
                      std::make_unique<FlightRecorder>(sim_, name, capacity_))
             .first;
  }
  return it->second.get();
}

std::uint64_t FlightDomain::total_events() const {
  std::uint64_t n = 0;
  for (const auto& [name, rec] : recorders_) n += rec->total();
  return n;
}

std::uint64_t FlightDomain::dropped() const {
  std::uint64_t n = 0;
  for (const auto& [name, rec] : recorders_) n += rec->dropped();
  return n;
}

std::string FlightDomain::dump(const std::string& reason) const {
  std::string out = "# dodo flight v1 reason=" + reason + "\n";
  struct Row {
    SimTime t;
    const std::string* rec;
    std::size_t order;  // position within its recorder (ties stay stable)
    const FlightEvent* ev;
  };
  std::vector<std::vector<FlightEvent>> held;
  held.reserve(recorders_.size());  // rows keep pointers into held
  std::vector<Row> rows;
  for (const auto& [name, rec] : recorders_) {
    out += "# recorder " + name + " total=" + std::to_string(rec->total()) +
           " dropped=" + std::to_string(rec->dropped()) + "\n";
    held.push_back(rec->events());
    const std::vector<FlightEvent>& evs = held.back();
    for (std::size_t i = 0; i < evs.size(); ++i) {
      rows.push_back(Row{evs[i].t, &name, i, &evs[i]});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    if (x.t != y.t) return x.t < y.t;
    if (*x.rec != *y.rec) return *x.rec < *y.rec;
    return x.order < y.order;
  });
  for (const Row& row : rows) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%lld\t%s\t%s\t%lld\t%lld\t%lld\t",
                  static_cast<long long>(row.t), row.rec->c_str(),
                  flight_event_name(row.ev->type),
                  static_cast<long long>(row.ev->a),
                  static_cast<long long>(row.ev->b),
                  static_cast<long long>(row.ev->c));
    out += buf;
    out += row.ev->detail;
    out.push_back('\n');
  }
  return out;
}

}  // namespace dodo::obs
