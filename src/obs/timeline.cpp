#include "obs/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdio>

namespace dodo::obs {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_i64_array(std::string& out, const std::vector<std::int64_t>& xs) {
  out.push_back('[');
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_i64(out, xs[i]);
  }
  out.push_back(']');
}

bool all_zero(const std::vector<std::int64_t>& xs) {
  return std::all_of(xs.begin(), xs.end(),
                     [](std::int64_t v) { return v == 0; });
}

/// Inclusive-upper-bound quantile over one interval's bucket deltas.
/// `pct` is the percentile in [1, 100]; negative bucket deltas (a daemon
/// death shrank the merged histogram) are clamped out of the estimate.
std::int64_t bucket_quantile(const MetricValue& hist,
                             const MetricValue* prev, int pct) {
  std::vector<std::int64_t> delta(hist.counts.size(), 0);
  std::int64_t total = 0;
  for (std::size_t j = 0; j < hist.counts.size(); ++j) {
    std::int64_t d = static_cast<std::int64_t>(hist.counts[j]);
    if (prev != nullptr && prev->counts.size() == hist.counts.size()) {
      d -= static_cast<std::int64_t>(prev->counts[j]);
    }
    if (d < 0) d = 0;
    delta[j] = d;
    total += d;
  }
  if (total <= 0 || hist.bounds.empty()) return 0;
  const std::int64_t rank = (total * pct + 99) / 100;  // ceil(total*pct/100)
  std::int64_t cum = 0;
  for (std::size_t j = 0; j < delta.size(); ++j) {
    cum += delta[j];
    if (cum >= rank) {
      // The overflow bucket has no upper bound; report one decade past the
      // last bound so the estimate stays on the bucket scale.
      return j < hist.bounds.size() ? hist.bounds[j]
                                    : hist.bounds.back() * 10;
    }
  }
  return hist.bounds.back() * 10;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

void TelemetryTimeline::add_sample(SimTime t, const MetricsSnapshot& snap) {
  assert(times_.empty() || t > times_.back());
  times_.push_back(t);
  samples_.push_back(snap);
  if (times_.size() == 2) interval_ = times_[1] - times_[0];
}

std::vector<std::string> TelemetryTimeline::series_names() const {
  std::map<std::string, MetricValue::Type> types;
  for (const MetricsSnapshot& s : samples_) {
    for (const auto& [name, v] : s.values()) types.emplace(name, v.type);
  }
  std::vector<std::string> out;
  for (const auto& [name, type] : types) {
    switch (type) {
      case MetricValue::Type::kCounter:
        out.push_back(name + ".delta");
        break;
      case MetricValue::Type::kGauge:
        out.push_back(name);
        break;
      case MetricValue::Type::kHistogram:
        out.push_back(name + ".count.delta");
        out.push_back(name + ".p50");
        out.push_back(name + ".p99");
        break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t TelemetryTimeline::value_at(const std::string& name,
                                         std::size_t i) const {
  const MetricsSnapshot& s = samples_[i];
  const MetricsSnapshot* prev = i > 0 ? &samples_[i - 1] : nullptr;
  // A gauge exports under its own name; everything else is a derived name.
  if (const MetricValue* v = s.find(name);
      v != nullptr && v->type == MetricValue::Type::kGauge) {
    return v->gauge;
  }
  // A gauge that vanished from this sample (daemon death) reads as 0.
  if (const MetricValue* v = prev != nullptr ? prev->find(name) : nullptr;
      v != nullptr && v->type == MetricValue::Type::kGauge) {
    return 0;
  }
  auto counter_at = [&](const std::string& base,
                        const MetricsSnapshot* snap) -> std::int64_t {
    if (snap == nullptr) return 0;
    const MetricValue* v = snap->find(base);
    return v != nullptr && v->type == MetricValue::Type::kCounter
               ? static_cast<std::int64_t>(v->counter)
               : 0;
  };
  auto hist_at = [&](const std::string& base,
                     const MetricsSnapshot* snap) -> const MetricValue* {
    if (snap == nullptr) return nullptr;
    const MetricValue* v = snap->find(base);
    return v != nullptr && v->type == MetricValue::Type::kHistogram ? v
                                                                    : nullptr;
  };
  if (ends_with(name, ".count.delta")) {
    const std::string base = name.substr(0, name.size() - 12);
    if (const MetricValue* h = hist_at(base, &s)) {
      const MetricValue* ph = hist_at(base, prev);
      return static_cast<std::int64_t>(h->count) -
             (ph != nullptr ? static_cast<std::int64_t>(ph->count) : 0);
    }
    if (const MetricValue* ph = hist_at(base, prev)) {
      return -static_cast<std::int64_t>(ph->count);
    }
  }
  if (ends_with(name, ".delta")) {
    const std::string base = name.substr(0, name.size() - 6);
    return counter_at(base, &s) - counter_at(base, prev);
  }
  if (ends_with(name, ".p50") || ends_with(name, ".p99")) {
    const int pct = ends_with(name, ".p50") ? 50 : 99;
    const std::string base = name.substr(0, name.size() - 4);
    if (const MetricValue* h = hist_at(base, &s)) {
      return bucket_quantile(*h, hist_at(base, prev), pct);
    }
  }
  return 0;
}

std::vector<std::int64_t> TelemetryTimeline::series(
    const std::string& name) const {
  std::vector<std::int64_t> out(times_.size(), 0);
  for (std::size_t i = 0; i < times_.size(); ++i) out[i] = value_at(name, i);
  return out;
}

std::int64_t TelemetryTimeline::window_sum(const std::string& name,
                                           SimTime lo, SimTime hi) const {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] > lo && times_[i] <= hi) sum += value_at(name, i);
  }
  return sum;
}

std::int64_t TelemetryTimeline::window_max(const std::string& name,
                                           SimTime lo, SimTime hi) const {
  std::int64_t best = 0;
  bool any = false;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] > lo && times_[i] <= hi) {
      const std::int64_t v = value_at(name, i);
      if (!any || v > best) best = v;
      any = true;
    }
  }
  return best;
}

std::string TelemetryTimeline::export_json(
    const std::map<std::string, const TelemetryTimeline*>& labelled) {
  std::string out = "{\n\"v\":1,\n\"timelines\":{";
  std::size_t li = 0;
  for (const auto& [label, tl] : labelled) {
    out.push_back('\n');
    append_escaped(out, label);
    out += ":{\n\"t\":";
    std::vector<std::int64_t> ts(tl->times().begin(), tl->times().end());
    append_i64_array(out, ts);
    out += ",\n\"series\":{";
    std::vector<std::pair<std::string, std::vector<std::int64_t>>> kept;
    for (const std::string& name : tl->series_names()) {
      std::vector<std::int64_t> vals = tl->series(name);
      if (!all_zero(vals)) kept.emplace_back(name, std::move(vals));
    }
    for (std::size_t i = 0; i < kept.size(); ++i) {
      out.push_back('\n');
      append_escaped(out, kept[i].first);
      out.push_back(':');
      append_i64_array(out, kept[i].second);
      if (i + 1 < kept.size()) out.push_back(',');
    }
    out += kept.empty() ? "}\n}" : "\n}\n}";
    if (++li < labelled.size()) out.push_back(',');
  }
  out += "\n}\n}\n";
  return out;
}

std::string TelemetryTimeline::export_tsv(
    const std::map<std::string, const TelemetryTimeline*>& labelled) {
  std::string out;
  for (const auto& [label, tl] : labelled) {
    std::vector<std::pair<std::string, std::vector<std::int64_t>>> kept;
    for (const std::string& name : tl->series_names()) {
      std::vector<std::int64_t> vals = tl->series(name);
      if (!all_zero(vals)) kept.emplace_back(name, std::move(vals));
    }
    out += "# dodo telemetry v1 label=" + label +
           " samples=" + std::to_string(tl->sample_count()) + "\n";
    out += "t_ns";
    for (const auto& [name, vals] : kept) {
      out.push_back('\t');
      out += name;
    }
    out.push_back('\n');
    for (std::size_t i = 0; i < tl->sample_count(); ++i) {
      append_i64(out, tl->times()[i]);
      for (const auto& [name, vals] : kept) {
        out.push_back('\t');
        append_i64(out, vals[i]);
      }
      out.push_back('\n');
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Strict parser for the export_json() subset.
// ---------------------------------------------------------------------------

namespace {

class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text) {}

  bool fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  [[nodiscard]] const std::string& error() const { return error_; }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        if (e == '"' || e == '\\') {
          c = e;
        } else {
          return fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;
    return true;
  }

  bool integer(std::int64_t& out) {
    skip_ws();
    bool neg = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= s_.size() ||
        std::isdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
      return fail("expected integer");
    }
    std::uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    out = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
    return true;
  }

  bool int_array(std::vector<std::int64_t>& out) {
    if (!expect('[')) return false;
    out.clear();
    if (peek(']')) return expect(']');
    for (;;) {
      std::int64_t v = 0;
      if (!integer(v)) return false;
      out.push_back(v);
      if (peek(']')) return expect(']');
      if (!expect(',')) return false;
    }
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool parse_timeline(Reader& r, TelemetryTimeline::Parsed& out) {
  if (!r.expect('{')) return false;
  bool have_t = false;
  bool have_series = false;
  std::string field;
  for (;;) {
    if (!r.string(field) || !r.expect(':')) return false;
    if (field == "t") {
      if (!r.int_array(out.t)) return false;
      have_t = true;
    } else if (field == "series") {
      if (!r.expect('{')) return false;
      if (!r.peek('}')) {
        for (;;) {
          std::string name;
          std::vector<std::int64_t> vals;
          if (!r.string(name) || !r.expect(':') || !r.int_array(vals)) {
            return false;
          }
          out.series[name] = std::move(vals);
          if (r.peek('}')) break;
          if (!r.expect(',')) return false;
        }
      }
      if (!r.expect('}')) return false;
      have_series = true;
    } else {
      return r.fail("unknown timeline field \"" + field + "\"");
    }
    if (r.peek('}')) break;
    if (!r.expect(',')) return false;
  }
  if (!r.expect('}')) return false;
  if (!have_t || !have_series) return r.fail("timeline missing t/series");
  for (const auto& [name, vals] : out.series) {
    if (vals.size() != out.t.size()) {
      return r.fail("series \"" + name + "\" length != t length");
    }
  }
  return true;
}

}  // namespace

bool TelemetryTimeline::parse_export(const std::string& text,
                                     ParsedExport& out, std::string* error) {
  Reader r(text);
  out.clear();
  auto bail = [&] {
    if (error != nullptr) *error = r.error();
    return false;
  };
  if (!r.expect('{')) return bail();
  std::string field;
  if (!r.string(field) || field != "v" || !r.expect(':')) {
    r.fail("expected \"v\"");
    return bail();
  }
  std::int64_t version = 0;
  if (!r.integer(version)) return bail();
  if (version != 1) {
    r.fail("unsupported telemetry version " + std::to_string(version));
    return bail();
  }
  if (!r.expect(',')) return bail();
  if (!r.string(field) || field != "timelines" || !r.expect(':')) {
    r.fail("expected \"timelines\"");
    return bail();
  }
  if (!r.expect('{')) return bail();
  if (!r.peek('}')) {
    for (;;) {
      std::string label;
      if (!r.string(label) || !r.expect(':')) return bail();
      Parsed tl;
      if (!parse_timeline(r, tl)) return bail();
      out[label] = std::move(tl);
      if (r.peek('}')) break;
      if (!r.expect(',')) return bail();
    }
  }
  if (!r.expect('}')) return bail();
  if (!r.expect('}')) return bail();
  if (!r.at_end()) {
    r.fail("trailing input");
    return bail();
  }
  return true;
}

}  // namespace dodo::obs
