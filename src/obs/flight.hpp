// Per-daemon flight recorder: a bounded ring of recent structured events.
//
// Metrics say *how much*, traces say *how long*; neither says *what just
// happened* when a chaos oracle goes red. The flight recorder is the black
// box: every daemon records its rare-but-decisive events — faults injected,
// lease grants/caps/fences, pressure transitions, replica grow/shrink, host
// prunes, disk fallbacks — into a bounded ring (oldest evicted, evictions
// counted), and when an oracle fails or the health watchdog trips, the
// merged time-sorted tail is dumped so a red test explains itself instead
// of demanding a rerun under a debugger.
//
// Structure mirrors the span layer: daemons hold a nullable FlightRecorder*
// in their params (one branch when disabled), FlightDomain owns one
// recorder per (host, daemon) and produces the merged dump. Events carry a
// typed tag plus three int64 operands and a short detail string; rendering
// is one line per event, so dumps diff cleanly across runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace dodo::obs {

enum class FlightEventType : std::uint8_t {
  kFaultInjected = 0,     // detail = fault kind; a = host/shard index
  kRecruit,               // a = epoch
  kEvict,                 // a = epoch
  kPressureTransition,    // a = old level, b = new level
  kShrinkScheduled,       // a = target bytes, b = bytes scheduled
  kLeaseGrant,            // a = region id, b = len, c = expiry
  kLeaseCap,              // a = region id, b = capped expiry (shrink victim)
  kLeaseFence,            // a = region id, b = len
  kLeaseRenewReject,      // a = region id
  kExpiryNotice,          // a = regions in the notice, b = bytes
  kProactiveCopy,         // a = dst host, b = len
  kReplicaGrow,           // a = host, b = len
  kReplicaShrink,         // a = host, b = len
  kHostPrune,             // a = host, b = copies pruned
  kDiskFallback,          // a = descriptor, b = len
  kHealthViolation,       // detail = rule: why
};

/// Stable lowercase tag for dumps ("lease_fence", "pressure", ...).
const char* flight_event_name(FlightEventType t);

struct FlightEvent {
  SimTime t = 0;
  FlightEventType type = FlightEventType::kFaultInjected;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::string detail;
};

class FlightRecorder {
 public:
  FlightRecorder(sim::Simulator& sim, std::string name,
                 std::size_t capacity = 256)
      : sim_(sim), name_(std::move(name)),
        capacity_(capacity == 0 ? 1 : capacity) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightEventType type, std::int64_t a = 0, std::int64_t b = 0,
              std::int64_t c = 0, std::string detail = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Events ever recorded (including since-evicted ones).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events evicted from the ring to make room.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(ring_.size());
  }
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;

 private:
  sim::Simulator& sim_;
  std::string name_;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;  // circular once full; next_ is the head
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// Records into `rec` when non-null — the one-branch disabled path every
/// daemon call site uses.
inline void frecord(FlightRecorder* rec, FlightEventType type,
                    std::int64_t a = 0, std::int64_t b = 0,
                    std::int64_t c = 0, std::string detail = {}) {
  if (rec != nullptr) rec->record(type, a, b, c, std::move(detail));
}

/// Owns one FlightRecorder per (host, daemon) of a deployment and renders
/// the merged dump. Mirrors TraceDomain: recorders are created on demand in
/// construction order, so the dump layout is identical run to run.
class FlightDomain {
 public:
  explicit FlightDomain(sim::Simulator& sim, std::size_t capacity_per_recorder)
      : sim_(sim), capacity_(capacity_per_recorder) {}

  FlightDomain(const FlightDomain&) = delete;
  FlightDomain& operator=(const FlightDomain&) = delete;

  /// Create-or-get the named recorder ("cmd0", "host3.imd", "client", ...).
  FlightRecorder* recorder(const std::string& name);

  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// The black-box dump: a header with `reason`, per-recorder totals/drops,
  /// then every retained event merged and sorted by (time, recorder, order).
  /// One event per line:  <t_ns>\t<recorder>\t<tag>\t<a>\t<b>\t<c>\t<detail>
  [[nodiscard]] std::string dump(const std::string& reason) const;

 private:
  sim::Simulator& sim_;
  std::size_t capacity_;
  std::map<std::string, std::unique_ptr<FlightRecorder>> recorders_;
};

}  // namespace dodo::obs
