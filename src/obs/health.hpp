// Online invariant watchdog over telemetry samples.
//
// PR 2/3 proved the conservation invariants offline: fuzz oracles check
// them after quiesce, when nothing is in flight. HealthMonitor promotes the
// subset that holds at *any* instant into live rules evaluated on every
// telemetry sample, plus rate-anomaly rules over successive samples — so a
// broken invariant trips within one sample interval of the corruption, in
// any test or bench that turns the watchdog on, not just under the fuzzer.
//
// Live rules (exact statements in DESIGN.md §15):
//   conservation.mreads    remote_hits + mreads_degraded <= mreads_total
//                          (in-flight mreads are counted in the total but
//                          not yet resolved, hence <=, not ==)
//   conservation.degraded  mreads_degraded <= disk_fallbacks (fallbacks are
//                          fragment-granular; a degraded mread has >= 1)
//   conservation.pool      imd.pool_used_bytes == imd.pool_region_bytes
//                          (the cluster adds the region-sum gauge to the
//                          watchdog sample from direct imd inspection)
//   lease.no_resurrection  imd.lease_live_fenced == 0 (no live region id is
//                          in any imd's fenced set)
// Rate rules (each disabled by a zero threshold):
//   rate.disk_fallback_spike    per-sample disk_fallbacks delta > threshold
//   rate.replica_shortfall      per-sample replica_shortfalls delta > thresh
//   rate.span_leak              obs.spans_open grew strictly for N samples
//
// The monitor is a pure function of the sample stream — no cluster
// dependency — so it unit-tests on hand-built snapshots. Violations are
// returned to the caller (the cluster's telemetry loop), which fires the
// flight-recorder dump; counts export as `health.*` series.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace dodo::obs {

struct HealthConfig {
  /// Per-sample delta of client.disk_fallbacks above which the storm is an
  /// anomaly. 0 disables the rule.
  std::int64_t disk_fallback_spike = 0;
  /// Per-sample delta of cmd.replica_shortfalls above which placement is
  /// failing. 0 disables the rule.
  std::int64_t replica_shortfall_growth = 0;
  /// Consecutive samples of strictly-growing obs.spans_open that indicate a
  /// span leak. 0 disables the rule.
  int span_leak_samples = 0;
};

struct HealthViolation {
  std::string rule;    // "conservation.pool", "rate.span_leak", ...
  std::string detail;  // the numbers that broke it

  friend bool operator==(const HealthViolation&,
                         const HealthViolation&) = default;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg) : cfg_(cfg) {}

  /// Evaluates every rule against `snap` (and the previous sample for rate
  /// rules). Returns the violations, rule order fixed; records them in the
  /// exported counters.
  std::vector<HealthViolation> on_sample(SimTime t,
                                         const MetricsSnapshot& snap);

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] bool last_sample_ok() const { return last_ok_; }

  /// `health.samples`, `health.violations`, `health.ok`, plus one
  /// `health.violations.<rule>` counter per rule that ever fired.
  [[nodiscard]] MetricsSnapshot health_snapshot() const;

 private:
  HealthConfig cfg_;
  MetricsSnapshot prev_;
  bool have_prev_ = false;
  bool last_ok_ = true;
  std::uint64_t samples_ = 0;
  std::uint64_t violations_ = 0;
  int span_growth_streak_ = 0;
  std::map<std::string, std::uint64_t> by_rule_;
};

}  // namespace dodo::obs
