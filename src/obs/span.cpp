#include "obs/span.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dodo::obs {

std::uint64_t SpanRecorder::begin(std::string name, TraceContext parent) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  SpanRecord rec;
  rec.id = ids_->next();
  // Orphan rejection: an id the allocator never issued cannot name a real
  // span (a corrupted wire context, or a caller passing a stale id from a
  // different deployment). Recording it would put a dangling edge in the
  // merged tree; record a root instead and count the rejection.
  const std::uint64_t limit = ids_->issued();
  if (parent.parent_span >= rec.id ||
      (parent.parent_span != 0 && parent.parent_span > limit) ||
      (parent.trace_id != 0 && parent.trace_id > limit)) {
    ++orphans_rejected_;
    parent = TraceContext{};
  }
  rec.parent = parent.parent_span;
  rec.trace = parent.trace_id != 0 ? parent.trace_id : rec.id;
  rec.start = sim_.now();
  // Tabs and newlines would corrupt the TSV rows; names are code-supplied
  // identifiers, so flatten rather than reject.
  for (char& c : name) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  rec.name = std::move(name);
  open_.emplace(rec.id, spans_.size());
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void SpanRecorder::end(std::uint64_t id) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].end = sim_.now();
  open_.erase(it);
}

std::uint64_t SpanRecorder::close_open() {
  const std::uint64_t n = open_.size();
  for (const auto& [id, index] : open_) {
    spans_[index].end = sim_.now();
  }
  open_.clear();
  return n;
}

std::string SpanRecorder::to_tsv() const {
  std::string out = "# dodo spans v2 " + std::to_string(spans_.size()) + "\n";
  char buf[120];
  for (const SpanRecord& s : spans_) {
    std::snprintf(buf, sizeof(buf), "%llu\t%llu\t%llu\t%lld\t%lld\t",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<unsigned long long>(s.trace),
                  static_cast<long long>(s.start),
                  static_cast<long long>(s.end));
    out += buf;
    out += s.name;
    out.push_back('\n');
  }
  return out;
}

namespace {

/// Splits off the next line; returns false at end of input.
bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
  if (pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) {
    line = text.substr(pos);
    pos = text.size();
  } else {
    line = text.substr(pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

bool fail(std::string* error, int line_no, const char* why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool parse_int(const std::string& s, std::size_t& pos, long long& out) {
  char* end = nullptr;
  const char* start = s.c_str() + pos;
  out = std::strtoll(start, &end, 10);
  if (end == start) return false;
  pos += static_cast<std::size_t>(end - start);
  return true;
}

bool eat_tab(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '\t') return false;
  ++pos;
  return true;
}

}  // namespace

bool SpanRecorder::from_tsv(const std::string& text,
                            std::vector<SpanRecord>& out, std::string* error) {
  out.clear();
  std::size_t pos = 0;
  std::string line;
  int line_no = 1;
  if (!next_line(text, pos, line)) {
    return fail(error, 1, "empty input");
  }
  long long expected = -1;
  {
    constexpr const char* kPrefix = "# dodo spans v2 ";
    if (line.rfind(kPrefix, 0) != 0) {
      return fail(error, 1, "missing \"# dodo spans v2\" header");
    }
    std::size_t p = std::strlen(kPrefix);
    if (!parse_int(line, p, expected) || p != line.size() || expected < 0) {
      return fail(error, 1, "bad span count in header");
    }
  }
  while (next_line(text, pos, line)) {
    ++line_no;
    if (line.empty()) {
      return fail(error, line_no, "empty row");
    }
    SpanRecord rec;
    std::size_t p = 0;
    long long id = 0;
    long long parent = 0;
    long long trace = 0;
    long long start = 0;
    long long end = 0;
    if (!parse_int(line, p, id) || id <= 0 || !eat_tab(line, p) ||
        !parse_int(line, p, parent) || parent < 0 || !eat_tab(line, p) ||
        !parse_int(line, p, trace) || trace < 0 || !eat_tab(line, p) ||
        !parse_int(line, p, start) || !eat_tab(line, p) ||
        !parse_int(line, p, end) || !eat_tab(line, p)) {
      return fail(error, line_no, "malformed id/parent/trace/start/end fields");
    }
    rec.id = static_cast<std::uint64_t>(id);
    rec.parent = static_cast<std::uint64_t>(parent);
    rec.trace = static_cast<std::uint64_t>(trace);
    rec.start = start;
    rec.end = end;
    rec.name = line.substr(p);
    if (rec.name.empty()) {
      return fail(error, line_no, "empty span name");
    }
    out.push_back(std::move(rec));
  }
  if (expected != static_cast<long long>(out.size())) {
    return fail(error, line_no, "row count does not match header");
  }
  return true;
}

}  // namespace dodo::obs
