#include "obs/span.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dodo::obs {

std::uint64_t SpanRecorder::begin(std::string name, std::uint64_t parent) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.start = sim_.now();
  // Tabs and newlines would corrupt the TSV rows; names are code-supplied
  // identifiers, so flatten rather than reject.
  for (char& c : name) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  rec.name = std::move(name);
  open_.emplace(rec.id, spans_.size());
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void SpanRecorder::end(std::uint64_t id) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].end = sim_.now();
  open_.erase(it);
}

std::string SpanRecorder::to_tsv() const {
  std::string out = "# dodo spans v1 " + std::to_string(spans_.size()) + "\n";
  char buf[96];
  for (const SpanRecord& s : spans_) {
    std::snprintf(buf, sizeof(buf), "%llu\t%llu\t%lld\t%lld\t",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<long long>(s.start),
                  static_cast<long long>(s.end));
    out += buf;
    out += s.name;
    out.push_back('\n');
  }
  return out;
}

namespace {

/// Splits off the next line; returns false at end of input.
bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
  if (pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) {
    line = text.substr(pos);
    pos = text.size();
  } else {
    line = text.substr(pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

bool fail(std::string* error, int line_no, const char* why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool parse_int(const std::string& s, std::size_t& pos, long long& out) {
  char* end = nullptr;
  const char* start = s.c_str() + pos;
  out = std::strtoll(start, &end, 10);
  if (end == start) return false;
  pos += static_cast<std::size_t>(end - start);
  return true;
}

bool eat_tab(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '\t') return false;
  ++pos;
  return true;
}

}  // namespace

bool SpanRecorder::from_tsv(const std::string& text,
                            std::vector<SpanRecord>& out, std::string* error) {
  out.clear();
  std::size_t pos = 0;
  std::string line;
  int line_no = 1;
  if (!next_line(text, pos, line)) {
    return fail(error, 1, "empty input");
  }
  long long expected = -1;
  {
    constexpr const char* kPrefix = "# dodo spans v1 ";
    if (line.rfind(kPrefix, 0) != 0) {
      return fail(error, 1, "missing \"# dodo spans v1\" header");
    }
    std::size_t p = std::strlen(kPrefix);
    if (!parse_int(line, p, expected) || p != line.size() || expected < 0) {
      return fail(error, 1, "bad span count in header");
    }
  }
  while (next_line(text, pos, line)) {
    ++line_no;
    if (line.empty()) {
      return fail(error, line_no, "empty row");
    }
    SpanRecord rec;
    std::size_t p = 0;
    long long id = 0;
    long long parent = 0;
    long long start = 0;
    long long end = 0;
    if (!parse_int(line, p, id) || id <= 0 || !eat_tab(line, p) ||
        !parse_int(line, p, parent) || parent < 0 || !eat_tab(line, p) ||
        !parse_int(line, p, start) || !eat_tab(line, p) ||
        !parse_int(line, p, end) || !eat_tab(line, p)) {
      return fail(error, line_no, "malformed id/parent/start/end fields");
    }
    rec.id = static_cast<std::uint64_t>(id);
    rec.parent = static_cast<std::uint64_t>(parent);
    rec.start = start;
    rec.end = end;
    rec.name = line.substr(p);
    if (rec.name.empty()) {
      return fail(error, line_no, "empty span name");
    }
    out.push_back(std::move(rec));
  }
  if (expected != static_cast<long long>(out.size())) {
    return fail(error, line_no, "row count does not match header");
  }
  return true;
}

}  // namespace dodo::obs
