// Critical-path latency attribution over merged span trees.
//
// For each completed trace (one mread, one mwrite, one mopen...), the
// analyzer walks the cross-process span tree and partitions the root span's
// wall time into segments — client-side work, network waits, daemon service,
// bulk transfer, disk I/O — such that the segment durations sum EXACTLY to
// the root's end-to-end duration. That invariant is what lets a bench say
// "p99 mread = 180us, of which 110us bulk transfer" without double counting
// or leaks.
//
// The partition rule: walk the tree with a cursor. Time inside a child's
// interval belongs to the child's segment (recursively); time between
// children (and before/after them) belongs to the parent's segment. Children
// may outlive their parent (an imd's span ends after the client has the
// data, because the final bulk ACK is still in flight); such drain time is
// clipped to the parent's window, so attribution never exceeds end-to-end.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"

namespace dodo::obs {

/// Latency segment taxonomy, keyed off the span-name prefix (see
/// classify_span). Order is the export order in every report.
enum class Segment {
  kClient = 0,  // client./manage. — local queueing, lookup, bookkeeping
  kNetwork,     // net. — waiting on the wire for a control reply
  kDaemon,      // imd./cmd./rmd. — daemon-side service time
  kBulk,        // bulk. — packetized data transfer
  kDisk,        // disk. — disk fallback / writeback
  kOther,       // anything else
};
inline constexpr int kSegmentCount = 6;

[[nodiscard]] const char* segment_name(Segment s);

/// Maps a span name to its segment by prefix.
[[nodiscard]] Segment classify_span(const std::string& name);

struct SegmentBreakdown {
  std::array<Duration, kSegmentCount> ns{};  // indexed by Segment

  [[nodiscard]] Duration& operator[](Segment s) {
    return ns[static_cast<int>(s)];
  }
  [[nodiscard]] Duration operator[](Segment s) const {
    return ns[static_cast<int>(s)];
  }
  [[nodiscard]] Duration total() const {
    Duration t = 0;
    for (const Duration d : ns) t += d;
    return t;
  }
};

/// One analyzed trace: the root span plus its exact segment partition.
/// segments.total() == end - start always holds (the analyzer's invariant).
struct TraceSummary {
  std::uint64_t trace_id = 0;
  std::string root_name;
  SimTime start = 0;
  SimTime end = 0;
  SegmentBreakdown segments;
};

/// Groups `spans` by trace id and partitions each trace rooted at the span
/// whose id equals the trace id. Traces without such a root (possible only
/// if the recorder dropped it at capacity) are skipped. Spans whose parent
/// lies outside their trace's id set are treated as direct children of the
/// root. Output order is ascending trace id — deterministic.
[[nodiscard]] std::vector<TraceSummary> analyze_traces(
    const std::vector<SpanRecord>& spans);

[[nodiscard]] std::vector<TraceSummary> analyze_traces(
    const std::vector<MergedSpan>& spans);

/// Aggregates summaries by root-span name and exports nearest-rank p50/p99
/// gauges per segment into `out`:
///   latency_breakdown.<root>.<segment>.p50_ns / .p99_ns
///   latency_breakdown.<root>.total.p50_ns / .p99_ns
///   latency_breakdown.<root>.count
/// plus latency_breakdown.traces (always present, 0 when none).
void export_latency_breakdown(const std::vector<TraceSummary>& traces,
                              MetricsSnapshot& out);

}  // namespace dodo::obs
