#include "obs/health.hpp"

namespace dodo::obs {

std::vector<HealthViolation> HealthMonitor::on_sample(
    SimTime t, const MetricsSnapshot& snap) {
  (void)t;
  std::vector<HealthViolation> out;
  auto violate = [&](const char* rule, std::string detail) {
    out.push_back(HealthViolation{rule, std::move(detail)});
  };
  auto i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };

  // -- live conservation rules (hold at any instant) ------------------------
  const std::int64_t total = i64(snap.counter_value("client.mreads_total"));
  const std::int64_t hits = i64(snap.counter_value("client.remote_hits"));
  const std::int64_t degraded =
      i64(snap.counter_value("client.mreads_degraded"));
  const std::int64_t fallbacks =
      i64(snap.counter_value("client.disk_fallbacks"));
  if (hits + degraded > total) {
    violate("conservation.mreads",
            "remote_hits(" + std::to_string(hits) + ") + mreads_degraded(" +
                std::to_string(degraded) + ") > mreads_total(" +
                std::to_string(total) + ")");
  }
  if (degraded > fallbacks) {
    violate("conservation.degraded",
            "mreads_degraded(" + std::to_string(degraded) +
                ") > disk_fallbacks(" + std::to_string(fallbacks) + ")");
  }
  // The region-sum gauge exists only in watchdog-augmented samples; with no
  // recruited imd both gauges are absent and read 0 == 0.
  if (snap.find("imd.pool_region_bytes") != nullptr) {
    const std::int64_t used = snap.gauge_value("imd.pool_used_bytes");
    const std::int64_t regions = snap.gauge_value("imd.pool_region_bytes");
    if (used != regions) {
      violate("conservation.pool",
              "imd.pool_used_bytes(" + std::to_string(used) +
                  ") != region sum(" + std::to_string(regions) + ")");
    }
    const std::int64_t fenced = snap.gauge_value("imd.lease_live_fenced");
    if (fenced != 0) {
      violate("lease.no_resurrection",
              std::to_string(fenced) + " live region(s) in a fenced set");
    }
  }

  // -- rate-anomaly rules (need a previous sample) --------------------------
  if (have_prev_) {
    if (cfg_.disk_fallback_spike > 0) {
      const std::int64_t d =
          fallbacks - i64(prev_.counter_value("client.disk_fallbacks"));
      if (d > cfg_.disk_fallback_spike) {
        violate("rate.disk_fallback_spike",
                "+" + std::to_string(d) + " fallbacks in one interval (cap " +
                    std::to_string(cfg_.disk_fallback_spike) + ")");
      }
    }
    if (cfg_.replica_shortfall_growth > 0) {
      const std::int64_t d =
          i64(snap.counter_value("cmd.replica_shortfalls")) -
          i64(prev_.counter_value("cmd.replica_shortfalls"));
      if (d > cfg_.replica_shortfall_growth) {
        violate("rate.replica_shortfall",
                "+" + std::to_string(d) + " shortfalls in one interval (cap " +
                    std::to_string(cfg_.replica_shortfall_growth) + ")");
      }
    }
  }
  if (cfg_.span_leak_samples > 0) {
    const std::int64_t open = snap.gauge_value("obs.spans_open");
    const std::int64_t prev_open =
        have_prev_ ? prev_.gauge_value("obs.spans_open") : 0;
    span_growth_streak_ = open > prev_open ? span_growth_streak_ + 1 : 0;
    if (span_growth_streak_ >= cfg_.span_leak_samples) {
      violate("rate.span_leak",
              "obs.spans_open grew " + std::to_string(span_growth_streak_) +
                  " consecutive samples (now " + std::to_string(open) + ")");
      span_growth_streak_ = 0;  // re-arm instead of firing every sample
    }
  }

  ++samples_;
  violations_ += out.size();
  for (const HealthViolation& v : out) ++by_rule_[v.rule];
  last_ok_ = out.empty();
  prev_ = snap;
  have_prev_ = true;
  return out;
}

MetricsSnapshot HealthMonitor::health_snapshot() const {
  MetricsSnapshot out;
  out.set_counter("health.samples", samples_);
  out.set_counter("health.violations", violations_);
  out.set_gauge("health.ok", last_ok_ ? 1 : 0);
  for (const auto& [rule, n] : by_rule_) {
    out.set_counter("health.violations." + rule, n);
  }
  return out;
}

}  // namespace dodo::obs
