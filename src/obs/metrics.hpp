// Sim-clock-aware observability primitives (metrics).
//
// Everything here is deterministic by construction: counters and gauges are
// plain integers, latency histograms bucket exact sim-time durations (int64
// nanoseconds — never wall clock), and JSON export iterates sorted names
// with integer-only formatting. Two runs of the same seeded simulation
// therefore produce byte-identical exports, which is what lets tests and the
// fuzzer assert on metric values instead of eyeballing them.
//
// The paper's evaluation is entirely measured behaviour (hit ratios,
// reclamations, bytes over UDP vs U-Net); these are the instruments. Related
// disaggregated-memory systems (Ditto, Memtrade) scrape the same classes of
// metric — hit/eviction counters, pool occupancy gauges, latency
// distributions — to drive adaptive policies; this library gives every Dodo
// daemon the equivalent substrate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dodo::obs {

/// The one latency-bucket scale every histogram in the tree shares: 1us to
/// 10s, one decade apart, inclusive upper bounds in sim nanoseconds. Client,
/// imd, bulk, and loadgen instrumentation all bucket against this array (via
/// LatencyHistogram's default constructor), which is what makes snapshot
/// merges across daemons well-defined — merge() requires identical bounds.
/// Changing a bound is a wire/export format change; tests pin these values.
inline constexpr Duration kLatencyBucketBounds[] = {
    1'000,      10'000,      100'000,       1'000'000,
    10'000'000, 100'000'000, 1'000'000'000, 10'000'000'000};
inline constexpr std::size_t kLatencyBucketCount =
    sizeof(kLatencyBucketBounds) / sizeof(kLatencyBucketBounds[0]);

/// Monotonic event counter. inc() only; resets never happen within a
/// daemon's lifetime (a restarted daemon is a new object, hence zero).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time signed level (pool occupancy, directory size, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_ = v; }
  void add(std::int64_t d) { v_ += d; }
  [[nodiscard]] std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Fixed-bucket histogram over sim-time durations. A value lands in the
/// first bucket whose upper bound is >= the value (bounds are inclusive);
/// values above the last bound land in the implicit overflow bucket, so
/// counts() has bounds().size() + 1 entries. Sum/min/max are exact int64
/// nanoseconds — no doubles anywhere, so exports are byte-stable.
class LatencyHistogram {
 public:
  /// Default bounds: kLatencyBucketBounds — wide enough for every simulated
  /// path from a local memcpy to a multi-round bulk transfer.
  LatencyHistogram() : LatencyHistogram(default_bounds()) {}
  explicit LatencyHistogram(std::vector<Duration> upper_bounds);

  /// kLatencyBucketBounds as a vector (the shared constant is the truth).
  static std::vector<Duration> default_bounds();

  void observe(Duration d);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Duration sum() const { return sum_; }
  [[nodiscard]] Duration min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] Duration max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] const std::vector<Duration>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::vector<Duration> bounds_;          // sorted ascending upper bounds
  std::vector<std::uint64_t> counts_;     // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  Duration sum_ = 0;
  Duration min_ = 0;
  Duration max_ = 0;
};

/// One exported metric value. Histograms carry their full shape so merges
/// and round-trips lose nothing.
struct MetricValue {
  enum class Type : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  Type type = Type::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  // Histogram shape (only meaningful when type == kHistogram).
  std::vector<Duration> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  Duration sum = 0;
  Duration min = 0;
  Duration max = 0;

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// An immutable-ish view of named metrics at one instant. Names sort
/// lexicographically (std::map), which fixes the JSON field order.
class MetricsSnapshot {
 public:
  void set_counter(const std::string& name, std::uint64_t v);
  void set_gauge(const std::string& name, std::int64_t v);
  void set_histogram(const std::string& name, const LatencyHistogram& h);

  /// Folds `other` in: counters and gauges add (so per-host snapshots
  /// aggregate into cluster-wide totals), histograms add bucket-wise.
  /// Histogram merges require identical bucket bounds — every histogram in
  /// the tree uses LatencyHistogram::default_bounds(), so a mismatch means
  /// corrupted input and the entry keeps its existing shape.
  void merge(const MetricsSnapshot& other);

  /// Copy with `prefix` prepended to every name (per-host namespacing).
  [[nodiscard]] MetricsSnapshot prefixed(const std::string& prefix) const;

  /// Copy without the all-zero entries: counters at 0, gauges at 0, and
  /// histograms that never observed a value. Sharded bench exports carry
  /// hundreds of structurally-present-but-untouched series (e.g. the
  /// `shardN.*` block for every idle shard); this is the `--suppress-zeros`
  /// filter applied to them at export time. Never applied by default — the
  /// full export stays byte-identical.
  [[nodiscard]] MetricsSnapshot without_zeros() const;

  /// Deterministic JSON: one metric per line, names sorted, integers only.
  [[nodiscard]] std::string to_json() const;

  /// Strict parser for exactly the to_json() subset. Returns false and
  /// (optionally) a "why" message on any deviation.
  static bool from_json(const std::string& text, MetricsSnapshot& out,
                        std::string* error = nullptr);

  [[nodiscard]] const std::map<std::string, MetricValue>& values() const {
    return values_;
  }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Lookup helpers for assertions; return 0 / default when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] std::int64_t gauge_value(const std::string& name) const;
  [[nodiscard]] const MetricValue* find(const std::string& name) const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;

 private:
  std::map<std::string, MetricValue> values_;
};

/// Named live metrics plus absorbed external snapshots; the bench binaries
/// use one of these to gather their scalars and every component's export
/// into a single deterministic JSON blob.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Merges an externally built snapshot into the registry's export.
  void absorb(const MetricsSnapshot& s);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }

 private:
  struct Cell {
    MetricValue::Type type = MetricValue::Type::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<LatencyHistogram> hist;
  };

  std::map<std::string, Cell> cells_;
  MetricsSnapshot absorbed_;
};

}  // namespace dodo::obs
