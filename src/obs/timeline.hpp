// Phase-resolved telemetry: a deterministic time series over metric
// snapshots.
//
// The PR-3 observability layer sees endpoints only — one snapshot at
// quiesce — while Dodo's harvesting economics are temporal: idle windows
// open and close, pressure grades from idle to urgent, reclaim storms come
// and go. TelemetryTimeline turns the same MetricsSnapshot the kStats
// responders serve into a sampled curve: the owner (cluster::Cluster's
// telemetry loop) feeds it one snapshot per sample_interval of sim time,
// and the timeline derives per-interval series from successive samples:
//
//   counter  c        ->  "c.delta"        signed per-interval delta
//   gauge    g        ->  "g"              raw sampled level
//   histogram h       ->  "h.count.delta"  per-interval observation count
//                         "h.p50", "h.p99" per-interval quantile estimates
//
// Counter deltas are *signed* deliberately: a daemon death removes its
// counters from the merged snapshot, which reads as a negative delta — a
// visible discontinuity, not silent corruption. Histogram quantiles come
// from per-interval bucket-count deltas: the estimate is the inclusive
// upper bound of the bucket where the cumulative interval count crosses the
// quantile (the overflow bucket reports 10x the last bound). Integer math
// throughout, so exports are byte-identical per seed.
//
// Exports: a versioned JSON document (one series per line, labels and names
// sorted, all-zero series dropped) plus a TSV block per label for plotting.
// A strict parser (parse_export) reads the JSON back for tools/bench_diff
// and round-trip tests, with the same "fail loudly with a why" discipline
// as MetricsSnapshot::from_json.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace dodo::obs {

class TelemetryTimeline {
 public:
  /// Records one sample. `t` must be strictly increasing call to call.
  void add_sample(SimTime t, const MetricsSnapshot& snap);

  [[nodiscard]] std::size_t sample_count() const { return times_.size(); }
  [[nodiscard]] const std::vector<SimTime>& times() const { return times_; }
  [[nodiscard]] Duration interval() const { return interval_; }

  /// All derived series names, sorted, including all-zero ones (exports
  /// drop those; assertions may still want them).
  [[nodiscard]] std::vector<std::string> series_names() const;

  /// Derived series values, one per sample (see the header comment for the
  /// derivation rules). Unknown names yield an all-zero series.
  [[nodiscard]] std::vector<std::int64_t> series(
      const std::string& name) const;

  /// Sum of a derived series over samples with lo < t <= hi — the natural
  /// window for delta series, where sample i covers (t[i-1], t[i]].
  [[nodiscard]] std::int64_t window_sum(const std::string& name, SimTime lo,
                                        SimTime hi) const;
  /// Max of the same window (0 when the window holds no samples).
  [[nodiscard]] std::int64_t window_max(const std::string& name, SimTime lo,
                                        SimTime hi) const;

  /// Raw sampled snapshots, oldest first (the watchdog replays these).
  [[nodiscard]] const std::vector<MetricsSnapshot>& samples() const {
    return samples_;
  }

  // -- export ---------------------------------------------------------------

  /// One parsed timeline as exported: explicit times plus derived series.
  struct Parsed {
    std::vector<std::int64_t> t;
    std::map<std::string, std::vector<std::int64_t>> series;

    friend bool operator==(const Parsed&, const Parsed&) = default;
  };
  /// Label -> timeline; a bench may record several arms (e.g. flashcrowd's
  /// "wholesale" and "leases").
  using ParsedExport = std::map<std::string, Parsed>;

  /// Deterministic JSON for a set of labelled timelines:
  ///   {"v":1,"timelines":{"<label>":{"t":[...],"series":{"<name>":[...]}}}}
  /// Labels and series names sort lexicographically; all-zero series are
  /// dropped (a TELEM file carries signal, not schema).
  static std::string export_json(
      const std::map<std::string, const TelemetryTimeline*>& labelled);

  /// TSV for the same set: per label a "# dodo telemetry v1" header line,
  /// a tab-separated column header (t_ns then series names), one row per
  /// sample. Columns match the JSON (all-zero series dropped).
  static std::string export_tsv(
      const std::map<std::string, const TelemetryTimeline*>& labelled);

  /// Strict parser for exactly the export_json() subset. Returns false and
  /// (optionally) a "why" on any deviation.
  static bool parse_export(const std::string& text, ParsedExport& out,
                           std::string* error = nullptr);

 private:
  [[nodiscard]] std::int64_t value_at(const std::string& name,
                                      std::size_t i) const;

  std::vector<SimTime> times_;
  std::vector<MetricsSnapshot> samples_;
  Duration interval_ = 0;  // t[1] - t[0] once two samples exist
};

}  // namespace dodo::obs
