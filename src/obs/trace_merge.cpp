#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dodo::obs {

SpanRecorder* TraceDomain::recorder(int host, const std::string& daemon) {
  for (auto& t : tracks_) {
    if (t.host == host && t.daemon == daemon) return t.rec.get();
  }
  tracks_.push_back(Track{host, daemon,
                          std::make_unique<SpanRecorder>(sim_, max_spans_,
                                                         &ids_)});
  return tracks_.back().rec.get();
}

std::uint64_t TraceDomain::close_open_spans() {
  std::uint64_t n = 0;
  for (auto& t : tracks_) n += t.rec->close_open();
  return n;
}

std::vector<MergedSpan> TraceDomain::merged() const {
  std::vector<MergedSpan> out;
  std::size_t total = 0;
  for (const auto& t : tracks_) total += t.rec->spans().size();
  out.reserve(total);
  for (const auto& t : tracks_) {
    for (const SpanRecord& s : t.rec->spans()) {
      out.push_back(MergedSpan{s, t.host, t.daemon});
    }
  }
  // Ids are unique across tracks (shared allocator) and issued in
  // begin-time order, so this yields one deterministic global timeline.
  std::sort(out.begin(), out.end(), [](const MergedSpan& a,
                                       const MergedSpan& b) {
    return a.span.id < b.span.id;
  });
  return out;
}

std::uint64_t TraceDomain::dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t.rec->dropped();
  return n;
}

std::uint64_t TraceDomain::orphans_rejected() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t.rec->orphans_rejected();
  return n;
}

std::size_t TraceDomain::open_count() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.rec->open_count();
  return n;
}

std::size_t TraceDomain::total_spans() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.rec->spans().size();
  return n;
}

std::string TraceDomain::to_tsv() const {
  const std::vector<MergedSpan> all = merged();
  std::string out = "# dodo trace v1 " + std::to_string(all.size()) + "\n";
  char buf[160];
  for (const MergedSpan& m : all) {
    const SpanRecord& s = m.span;
    std::snprintf(buf, sizeof(buf), "%llu\t%llu\t%llu\t%lld\t%lld\t%d\t",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<unsigned long long>(s.trace),
                  static_cast<long long>(s.start),
                  static_cast<long long>(s.end), m.host);
    out += buf;
    out += m.daemon;
    out.push_back('\t');
    out += s.name;
    out.push_back('\n');
  }
  return out;
}

namespace {

bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
  if (pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) {
    line = text.substr(pos);
    pos = text.size();
  } else {
    line = text.substr(pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

bool fail(std::string* error, int line_no, const char* why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool parse_int(const std::string& s, std::size_t& pos, long long& out) {
  char* end = nullptr;
  const char* start = s.c_str() + pos;
  out = std::strtoll(start, &end, 10);
  if (end == start) return false;
  pos += static_cast<std::size_t>(end - start);
  return true;
}

bool eat_tab(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '\t') return false;
  ++pos;
  return true;
}

/// Appends `ns` rendered as microseconds with exactly three decimals
/// ("123.456"), by integer math only: Chrome trace timestamps are in us and
/// float formatting would invite platform-dependent output.
void append_us(std::string& out, SimTime ns) {
  if (ns < 0) ns = 0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

bool TraceDomain::from_tsv(const std::string& text,
                           std::vector<MergedSpan>& out, std::string* error) {
  out.clear();
  std::size_t pos = 0;
  std::string line;
  int line_no = 1;
  if (!next_line(text, pos, line)) {
    return fail(error, 1, "empty input");
  }
  long long expected = -1;
  {
    constexpr const char* kPrefix = "# dodo trace v1 ";
    if (line.rfind(kPrefix, 0) != 0) {
      return fail(error, 1, "missing \"# dodo trace v1\" header");
    }
    std::size_t p = std::strlen(kPrefix);
    if (!parse_int(line, p, expected) || p != line.size() || expected < 0) {
      return fail(error, 1, "bad span count in header");
    }
  }
  while (next_line(text, pos, line)) {
    ++line_no;
    if (line.empty()) {
      return fail(error, line_no, "empty row");
    }
    MergedSpan rec;
    std::size_t p = 0;
    long long id = 0;
    long long parent = 0;
    long long trace = 0;
    long long start = 0;
    long long end = 0;
    long long host = 0;
    if (!parse_int(line, p, id) || id <= 0 || !eat_tab(line, p) ||
        !parse_int(line, p, parent) || parent < 0 || !eat_tab(line, p) ||
        !parse_int(line, p, trace) || trace < 0 || !eat_tab(line, p) ||
        !parse_int(line, p, start) || !eat_tab(line, p) ||
        !parse_int(line, p, end) || !eat_tab(line, p) ||
        !parse_int(line, p, host) || host < 0 || !eat_tab(line, p)) {
      return fail(error, line_no, "malformed numeric fields");
    }
    const std::size_t daemon_end = line.find('\t', p);
    if (daemon_end == std::string::npos) {
      return fail(error, line_no, "missing daemon/name fields");
    }
    rec.span.id = static_cast<std::uint64_t>(id);
    rec.span.parent = static_cast<std::uint64_t>(parent);
    rec.span.trace = static_cast<std::uint64_t>(trace);
    rec.span.start = start;
    rec.span.end = end;
    rec.host = static_cast<int>(host);
    rec.daemon = line.substr(p, daemon_end - p);
    rec.span.name = line.substr(daemon_end + 1);
    if (rec.daemon.empty() || rec.span.name.empty()) {
      return fail(error, line_no, "empty daemon or span name");
    }
    out.push_back(std::move(rec));
  }
  if (expected != static_cast<long long>(out.size())) {
    return fail(error, line_no, "row count does not match header");
  }
  return true;
}

std::string TraceDomain::to_chrome_json() const { return chrome_json(merged()); }

std::string TraceDomain::chrome_json(const std::vector<MergedSpan>& spans) {
  // Track table in first-appearance order; each (host, daemon) pair becomes
  // one thread of the host's process. tid must be unique per process only,
  // but a globally unique tid keeps the file trivially diffable.
  struct TrackKey {
    int host;
    std::string daemon;
    int tid;
  };
  std::vector<TrackKey> tracks;
  auto tid_of = [&](int host, const std::string& daemon) {
    for (const auto& t : tracks) {
      if (t.host == host && t.daemon == daemon) return t.tid;
    }
    tracks.push_back(TrackKey{host, daemon,
                              static_cast<int>(tracks.size()) + 1});
    return tracks.back().tid;
  };
  for (const MergedSpan& m : spans) tid_of(m.host, m.daemon);

  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };

  std::vector<int> named_hosts;
  for (const TrackKey& t : tracks) {
    if (std::find(named_hosts.begin(), named_hosts.end(), t.host) ==
        named_hosts.end()) {
      named_hosts.push_back(t.host);
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                    "\"tid\":0,\"args\":{\"name\":\"host%d\"}}",
                    t.host, t.host);
      out += buf;
    }
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":",
                  t.host, t.tid);
    out += buf;
    append_json_string(out, t.daemon);
    out += "}}";
  }

  for (const MergedSpan& m : spans) {
    const SpanRecord& s = m.span;
    comma();
    out += "{\"ph\":\"X\",\"name\":";
    append_json_string(out, s.name);
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d,\"ts\":", m.host,
                  tid_of(m.host, m.daemon));
    out += buf;
    append_us(out, s.start);
    out += ",\"dur\":";
    append_us(out, s.end >= s.start ? s.end - s.start : 0);
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"id\":%llu,\"parent\":%llu,\"trace\":%llu}}",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<unsigned long long>(s.trace));
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace dodo::obs
