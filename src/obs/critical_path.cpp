#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace dodo::obs {

const char* segment_name(Segment s) {
  switch (s) {
    case Segment::kClient: return "client";
    case Segment::kNetwork: return "network";
    case Segment::kDaemon: return "daemon";
    case Segment::kBulk: return "bulk";
    case Segment::kDisk: return "disk";
    case Segment::kOther: return "other";
  }
  return "other";
}

Segment classify_span(const std::string& name) {
  auto has = [&](const char* prefix) { return name.rfind(prefix, 0) == 0; };
  if (has("client.") || has("manage.")) return Segment::kClient;
  if (has("net.")) return Segment::kNetwork;
  if (has("imd.") || has("cmd.") || has("rmd.")) return Segment::kDaemon;
  if (has("bulk.")) return Segment::kBulk;
  if (has("disk.")) return Segment::kDisk;
  return Segment::kOther;
}

namespace {

struct Node {
  const SpanRecord* span = nullptr;
  std::vector<std::size_t> children;  // indices into the trace's node table
  SimTime end_eff = 0;                // max(own end, children's end_eff)
};

/// Attributes [lo, hi) of wall time: intervals covered by a child belong to
/// the child (recursively), the rest to `node`'s own segment. The cursor
/// sweep guarantees the pieces tile [lo, hi) exactly — no gap, no overlap —
/// which is the sum invariant the tests assert.
void partition(const std::vector<Node>& nodes, std::size_t idx, SimTime lo,
               SimTime hi, SegmentBreakdown& out) {
  const Node& node = nodes[idx];
  const Segment own = classify_span(node.span->name);
  SimTime cursor = lo;
  for (const std::size_t ci : node.children) {
    const Node& child = nodes[ci];
    const SimTime cs = std::max(child.span->start, cursor);
    const SimTime ce = std::min(child.end_eff, hi);
    if (ce <= cursor) continue;  // fully before the cursor or clipped away
    if (cs > cursor) out[own] += cs - cursor;
    partition(nodes, ci, cs, ce, out);
    cursor = ce;
  }
  if (hi > cursor) out[own] += hi - cursor;
}

}  // namespace

std::vector<TraceSummary> analyze_traces(const std::vector<SpanRecord>& spans) {
  // Group by trace id; std::map gives ascending-trace-id output order.
  std::map<std::uint64_t, std::vector<const SpanRecord*>> by_trace;
  for (const SpanRecord& s : spans) {
    if (s.trace == 0) continue;
    by_trace[s.trace].push_back(&s);
  }

  std::vector<TraceSummary> out;
  out.reserve(by_trace.size());
  for (auto& [trace_id, members] : by_trace) {
    // Node table in ascending-id order. A child always has a larger id than
    // its parent (it begins later and ids are issued in begin order), which
    // makes the bottom-up end_eff pass a simple reverse sweep.
    std::sort(members.begin(), members.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->id < b->id;
              });
    std::vector<Node> nodes(members.size());
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(members.size());
    std::size_t root = members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      nodes[i].span = members[i];
      nodes[i].end_eff = members[i]->end;
      index.emplace(members[i]->id, i);
      if (members[i]->id == trace_id) root = i;
    }
    if (root == members.size()) continue;  // root dropped at capacity; skip
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i == root) continue;
      const auto it = index.find(nodes[i].span->parent);
      // A parent outside this trace's recorded set (dropped span) degrades
      // to a direct child of the root: its time still attributes somewhere.
      const std::size_t pi = it != index.end() ? it->second : root;
      nodes[pi == i ? root : pi].children.push_back(i);
    }
    for (std::size_t i = nodes.size(); i-- > 0;) {
      for (const std::size_t ci : nodes[i].children) {
        nodes[i].end_eff = std::max(nodes[i].end_eff, nodes[ci].end_eff);
      }
    }
    for (Node& n : nodes) {
      std::sort(n.children.begin(), n.children.end(),
                [&](std::size_t a, std::size_t b) {
                  if (nodes[a].span->start != nodes[b].span->start) {
                    return nodes[a].span->start < nodes[b].span->start;
                  }
                  return nodes[a].span->id < nodes[b].span->id;
                });
    }

    TraceSummary t;
    t.trace_id = trace_id;
    t.root_name = nodes[root].span->name;
    t.start = nodes[root].span->start;
    // End-to-end includes async drain: a server span that outlives the
    // client root (final bulk ACK in flight) extends the trace.
    t.end = std::max(nodes[root].end_eff, t.start);
    partition(nodes, root, t.start, t.end, t.segments);
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<TraceSummary> analyze_traces(const std::vector<MergedSpan>& spans) {
  std::vector<SpanRecord> flat;
  flat.reserve(spans.size());
  for (const MergedSpan& m : spans) flat.push_back(m.span);
  return analyze_traces(flat);
}

namespace {

std::int64_t nearest_rank(std::vector<Duration>& values, int pct) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  std::size_t idx =
      (static_cast<std::size_t>(pct) * n + 99) / 100;  // ceil(pct*n/100)
  if (idx > 0) --idx;
  if (idx >= n) idx = n - 1;
  return values[idx];
}

}  // namespace

void export_latency_breakdown(const std::vector<TraceSummary>& traces,
                              MetricsSnapshot& out) {
  out.set_gauge("latency_breakdown.traces",
                static_cast<std::int64_t>(traces.size()));
  std::map<std::string, std::vector<const TraceSummary*>> by_root;
  for (const TraceSummary& t : traces) by_root[t.root_name].push_back(&t);
  for (const auto& [root, group] : by_root) {
    const std::string base = "latency_breakdown." + root + ".";
    out.set_gauge(base + "count", static_cast<std::int64_t>(group.size()));
    std::vector<Duration> values;
    values.reserve(group.size());
    for (int seg = -1; seg < kSegmentCount; ++seg) {
      values.clear();
      for (const TraceSummary* t : group) {
        values.push_back(seg < 0 ? t->end - t->start
                                 : t->segments.ns[static_cast<std::size_t>(
                                       seg)]);
      }
      const std::string key =
          base + (seg < 0 ? "total" : segment_name(static_cast<Segment>(seg)));
      out.set_gauge(key + ".p50_ns", nearest_rank(values, 50));
      out.set_gauge(key + ".p99_ns", nearest_rank(values, 99));
    }
  }
}

}  // namespace dodo::obs
