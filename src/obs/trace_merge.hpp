// Cluster-wide trace merge (the "collector" half of distributed tracing).
//
// A TraceDomain owns one SpanRecorder per (host, daemon) track, all drawing
// span ids from a single shared allocator, so the per-daemon span trees knit
// into one cluster-wide timeline: a span recorded by an imd can name a span
// recorded by the client as its parent (the id arrived in the wire-level
// TraceContext) and the merged view resolves the edge.
//
// Two deterministic exports:
//   - to_tsv(): "# dodo trace v1" rows with host/daemon columns, the
//     interchange format consumed by tools/trace_report.
//   - to_chrome_json(): Chrome trace-event JSON (Perfetto-loadable), one
//     "process" per host, one "thread" per daemon track, one complete ("X")
//     event per span. All numbers are formatted by integer math, so two
//     same-seed runs produce byte-identical files.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "sim/simulator.hpp"

namespace dodo::obs {

/// One span plus the track it was recorded on.
struct MergedSpan {
  SpanRecord span;
  int host = 0;        // "process" in the Chrome export
  std::string daemon;  // "thread" in the Chrome export

  friend bool operator==(const MergedSpan&, const MergedSpan&) = default;
};

class TraceDomain {
 public:
  explicit TraceDomain(sim::Simulator& sim,
                       std::size_t max_spans_per_track = 1 << 20)
      : sim_(sim), max_spans_(max_spans_per_track) {}

  TraceDomain(const TraceDomain&) = delete;
  TraceDomain& operator=(const TraceDomain&) = delete;

  /// Find-or-create the recorder for one (host, daemon) track. Creation
  /// order fixes the track order in every export, so callers must create
  /// tracks deterministically (the cluster harness does).
  SpanRecorder* recorder(int host, const std::string& daemon);

  [[nodiscard]] SpanIdAllocator& ids() { return ids_; }

  /// Force-closes every open span on every track at the current sim time.
  /// Returns the total number that were open (the spans_open_at_quiesce
  /// gauge), so exports never contain end=-1 rows.
  std::uint64_t close_open_spans();

  /// Every span of every track, sorted by span id (= allocation order,
  /// which is also start-time order under one simulator).
  [[nodiscard]] std::vector<MergedSpan> merged() const;

  /// Sum of per-track drop/orphan counters.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t orphans_rejected() const;
  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] std::size_t total_spans() const;

  /// "# dodo trace v1 <count>" then
  /// "id\tparent\ttrace\tstart\tend\thost\tdaemon\tname" rows.
  [[nodiscard]] std::string to_tsv() const;

  /// Strict parser for the to_tsv() format ("line N: why" errors).
  static bool from_tsv(const std::string& text, std::vector<MergedSpan>& out,
                       std::string* error = nullptr);

  [[nodiscard]] std::string to_chrome_json() const;

  /// Chrome trace-event JSON for an arbitrary merged span list (the
  /// trace_report tool renders parsed TSV through this).
  static std::string chrome_json(const std::vector<MergedSpan>& spans);

 private:
  struct Track {
    int host;
    std::string daemon;
    std::unique_ptr<SpanRecorder> rec;
  };

  sim::Simulator& sim_;
  std::size_t max_spans_;
  SpanIdAllocator ids_;
  std::vector<Track> tracks_;  // creation order
};

}  // namespace dodo::obs
