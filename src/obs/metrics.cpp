#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdio>
#include <iterator>

namespace dodo::obs {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

std::vector<Duration> LatencyHistogram::default_bounds() {
  return {std::begin(kLatencyBucketBounds), std::end(kLatencyBucketBounds)};
}

LatencyHistogram::LatencyHistogram(std::vector<Duration> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::observe(Duration d) {
  if (d < 0) d = 0;  // durations are elapsed sim time; clamp defensively
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), d);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || d < min_) min_ = d;
  if (count_ == 0 || d > max_) max_ = d;
  ++count_;
  sum_ += d;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

void MetricsSnapshot::set_counter(const std::string& name, std::uint64_t v) {
  MetricValue& m = values_[name];
  m = MetricValue{};
  m.type = MetricValue::Type::kCounter;
  m.counter = v;
}

void MetricsSnapshot::set_gauge(const std::string& name, std::int64_t v) {
  MetricValue& m = values_[name];
  m = MetricValue{};
  m.type = MetricValue::Type::kGauge;
  m.gauge = v;
}

void MetricsSnapshot::set_histogram(const std::string& name,
                                    const LatencyHistogram& h) {
  MetricValue& m = values_[name];
  m = MetricValue{};
  m.type = MetricValue::Type::kHistogram;
  m.bounds = h.bounds();
  m.counts = h.counts();
  m.count = h.count();
  m.sum = h.sum();
  m.min = h.min();
  m.max = h.max();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, theirs] : other.values_) {
    auto [it, fresh] = values_.try_emplace(name, theirs);
    if (fresh) continue;
    MetricValue& mine = it->second;
    if (mine.type != theirs.type) continue;  // corrupted input; keep ours
    switch (mine.type) {
      case MetricValue::Type::kCounter:
        mine.counter += theirs.counter;
        break;
      case MetricValue::Type::kGauge:
        mine.gauge += theirs.gauge;
        break;
      case MetricValue::Type::kHistogram: {
        if (mine.bounds != theirs.bounds) break;  // shape mismatch; keep ours
        for (std::size_t i = 0; i < mine.counts.size(); ++i) {
          mine.counts[i] += theirs.counts[i];
        }
        if (theirs.count > 0) {
          mine.min = mine.count == 0 ? theirs.min
                                     : std::min(mine.min, theirs.min);
          mine.max = mine.count == 0 ? theirs.max
                                     : std::max(mine.max, theirs.max);
        }
        mine.count += theirs.count;
        mine.sum += theirs.sum;
        break;
      }
    }
  }
}

MetricsSnapshot MetricsSnapshot::prefixed(const std::string& prefix) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : values_) out.values_[prefix + name] = v;
  return out;
}

MetricsSnapshot MetricsSnapshot::without_zeros() const {
  MetricsSnapshot out;
  for (const auto& [name, v] : values_) {
    switch (v.type) {
      case MetricValue::Type::kCounter:
        if (v.counter == 0) continue;
        break;
      case MetricValue::Type::kGauge:
        if (v.gauge == 0) continue;
        break;
      case MetricValue::Type::kHistogram:
        if (v.count == 0) continue;
        break;
    }
    out.values_[name] = v;
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const MetricValue* m = find(name);
  return m != nullptr && m->type == MetricValue::Type::kCounter ? m->counter
                                                                : 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  const MetricValue* m = find(name);
  return m != nullptr && m->type == MetricValue::Type::kGauge ? m->gauge : 0;
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

template <typename T, typename Fn>
void append_array(std::string& out, const std::vector<T>& xs, Fn append_one) {
  out.push_back('[');
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_one(out, xs[i]);
  }
  out.push_back(']');
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n";
  std::size_t i = 0;
  for (const auto& [name, m] : values_) {
    append_escaped(out, name);
    out += ":{";
    switch (m.type) {
      case MetricValue::Type::kCounter:
        out += "\"type\":\"counter\",\"value\":";
        append_u64(out, m.counter);
        break;
      case MetricValue::Type::kGauge:
        out += "\"type\":\"gauge\",\"value\":";
        append_i64(out, m.gauge);
        break;
      case MetricValue::Type::kHistogram:
        out += "\"type\":\"histogram\",\"count\":";
        append_u64(out, m.count);
        out += ",\"sum\":";
        append_i64(out, m.sum);
        out += ",\"min\":";
        append_i64(out, m.min);
        out += ",\"max\":";
        append_i64(out, m.max);
        out += ",\"bounds\":";
        append_array(out, m.bounds, append_i64);
        out += ",\"counts\":";
        append_array(out, m.counts,
                     [](std::string& o, std::uint64_t v) { append_u64(o, v); });
        break;
    }
    out.push_back('}');
    if (++i < values_.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON parser — a strict recursive-descent reader of exactly the subset
// to_json() emits (string keys, integer values, integer arrays, one level of
// nesting). No floats, no bools, no null.
// ---------------------------------------------------------------------------

namespace {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  [[nodiscard]] const std::string& error() const { return error_; }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        if (e == '"' || e == '\\') {
          c = e;
        } else if (e == 'u') {
          if (pos_ + 4 > s_.size()) return fail("short \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          c = static_cast<char>(v);
        } else {
          return fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool integer(std::int64_t& out) {
    skip_ws();
    bool neg = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= s_.size() || std::isdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
      return fail("expected integer");
    }
    std::uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    out = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
    return true;
  }

  template <typename T>
  bool int_array(std::vector<T>& out) {
    if (!expect('[')) return false;
    out.clear();
    if (peek(']')) return expect(']');
    for (;;) {
      std::int64_t v = 0;
      if (!integer(v)) return false;
      out.push_back(static_cast<T>(v));
      if (peek(']')) return expect(']');
      if (!expect(',')) return false;
    }
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool parse_metric(JsonReader& r, MetricValue& m) {
  if (!r.expect('{')) return false;
  bool have_type = false;
  std::string field;
  for (;;) {
    if (!r.string(field) || !r.expect(':')) return false;
    if (field == "type") {
      std::string t;
      if (!r.string(t)) return false;
      if (t == "counter") {
        m.type = MetricValue::Type::kCounter;
      } else if (t == "gauge") {
        m.type = MetricValue::Type::kGauge;
      } else if (t == "histogram") {
        m.type = MetricValue::Type::kHistogram;
      } else {
        return r.fail("unknown metric type \"" + t + "\"");
      }
      have_type = true;
    } else if (field == "value") {
      std::int64_t v = 0;
      if (!r.integer(v)) return false;
      m.counter = static_cast<std::uint64_t>(v);
      m.gauge = v;
    } else if (field == "count") {
      std::int64_t v = 0;
      if (!r.integer(v)) return false;
      m.count = static_cast<std::uint64_t>(v);
    } else if (field == "sum") {
      if (!r.integer(m.sum)) return false;
    } else if (field == "min") {
      if (!r.integer(m.min)) return false;
    } else if (field == "max") {
      if (!r.integer(m.max)) return false;
    } else if (field == "bounds") {
      if (!r.int_array(m.bounds)) return false;
    } else if (field == "counts") {
      if (!r.int_array(m.counts)) return false;
    } else {
      return r.fail("unknown field \"" + field + "\"");
    }
    if (r.peek('}')) break;
    if (!r.expect(',')) return false;
  }
  if (!r.expect('}')) return false;
  if (!have_type) return r.fail("metric without \"type\"");
  // Normalize: a counter/gauge parse may have touched both views of
  // "value"; clear the one that does not apply so equality is exact.
  if (m.type == MetricValue::Type::kCounter) {
    m.gauge = 0;
  } else if (m.type == MetricValue::Type::kGauge) {
    m.counter = 0;
  } else if (m.counts.size() != m.bounds.size() + 1) {
    return r.fail("histogram counts/bounds size mismatch");
  }
  return true;
}

}  // namespace

bool MetricsSnapshot::from_json(const std::string& text, MetricsSnapshot& out,
                                std::string* error) {
  JsonReader r(text);
  out = MetricsSnapshot{};
  auto bail = [&] {
    if (error != nullptr) *error = r.error();
    return false;
  };
  if (!r.expect('{')) return bail();
  if (!r.peek('}')) {
    for (;;) {
      std::string name;
      if (!r.string(name) || !r.expect(':')) return bail();
      MetricValue m;
      if (!parse_metric(r, m)) return bail();
      out.values_[name] = std::move(m);
      if (r.peek('}')) break;
      if (!r.expect(',')) return bail();
    }
  }
  if (!r.expect('}')) return bail();
  if (!r.at_end()) {
    r.fail("trailing input");
    return bail();
  }
  return true;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  Cell& c = cells_[name];
  c.type = MetricValue::Type::kCounter;
  return c.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Cell& c = cells_[name];
  c.type = MetricValue::Type::kGauge;
  return c.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  Cell& c = cells_[name];
  c.type = MetricValue::Type::kHistogram;
  if (c.hist == nullptr) c.hist = std::make_unique<LatencyHistogram>();
  return *c.hist;
}

void MetricsRegistry::absorb(const MetricsSnapshot& s) { absorbed_.merge(s); }

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out = absorbed_;
  MetricsSnapshot own;
  for (const auto& [name, c] : cells_) {
    switch (c.type) {
      case MetricValue::Type::kCounter:
        own.set_counter(name, c.counter.value());
        break;
      case MetricValue::Type::kGauge:
        own.set_gauge(name, c.gauge.value());
        break;
      case MetricValue::Type::kHistogram:
        own.set_histogram(name, *c.hist);
        break;
    }
  }
  out.merge(own);
  return out;
}

}  // namespace dodo::obs
