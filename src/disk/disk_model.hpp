// Disk service-time model, calibrated to the paper's testbed disk.
//
// The evaluation platform used a 3.2 GB Quantum Fireball ST3.2A (avg seek
// 10/11 ms read/write, 5400 RPM) and reports three application-level
// bandwidth points through the filesystem:
//     sequential 8/32 KB reads : 7.75 MB/s
//     random 8 KB reads        : 0.57 MB/s   (=> 14.0 ms per request)
//     random 32 KB reads       : 1.56 MB/s   (=> 20.1 ms per request)
// Those three points pin the model: discontiguous requests pay a sampled
// seek (mean 6.5 ms — dataset-local seeks are shorter than the full-stroke
// average) plus rotational latency (uniform over one 11.1 ms revolution)
// plus transfer at an effective 4.09 MB/s; contiguous requests stream at
// 7.75 MB/s with no positioning cost. tests/test_calibration.cpp asserts the
// model reproduces the paper's numbers, so the constants cannot drift.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::disk {

struct DiskParams {
  Duration seek_mean_read = micros(6460);
  Duration seek_mean_write = micros(7460);  // paper: writes seek ~1 ms slower
  Duration rot_period = micros(11111);      // 5400 RPM
  double media_rate_Bps = 4.31e6;           // transfer term, discontiguous
  // Streaming rate is set slightly above the app-level 7.75 MB/s so that the
  // *end-to-end* rate through syscall + page-cache copy lands on 7.75.
  double seq_rate_Bps = 8.77e6;
};

struct DiskMetrics {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t seq_ops = 0;
  std::uint64_t rand_ops = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  Duration busy_time = 0;
};

/// One disk. Requests are serviced FIFO; concurrent requesters queue on the
/// device. Head position is tracked as the byte offset following the last
/// transfer, which is what decides sequential vs. random service.
class DiskModel {
 public:
  DiskModel(sim::Simulator& sim, DiskParams params = {})
      : sim_(sim), params_(params), rng_(sim.rng().fork(0x6469736bu)) {}

  /// Performs one transfer; resumes when the data is on/off the platters.
  /// `locus` is the absolute position on the device (we map each file to a
  /// disjoint extent, see SimFilesystem).
  sim::Co<void> access(std::int64_t locus, Bytes64 len, bool is_write);

  /// Pure service-time query (no queueing, no state change); used by tests.
  [[nodiscard]] Duration service_time(std::int64_t locus, Bytes64 len,
                                      bool is_write, double rot_fraction) const;

  [[nodiscard]] const DiskMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const DiskParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  DiskParams params_;
  Rng rng_;
  DiskMetrics metrics_;
  std::int64_t head_ = -1;   // byte offset after the previous transfer
  SimTime free_at_ = 0;      // device busy until
};

}  // namespace dodo::disk
