#include "disk/file_cache.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace dodo::disk {

FileCache::FileCache(sim::Simulator& sim, DiskModel& disk,
                     FileCacheParams params)
    : sim_(sim), disk_(disk), params_(params) {
  assert(params_.page_size > 0);
}

void FileCache::insert(
    PageKey key, std::int64_t locus, bool dirty,
    std::vector<std::pair<std::int64_t, Bytes64>>& writebacks) {
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    it->second->dirty = it->second->dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  // Make room first.
  while (!lru_.empty() &&
         (static_cast<Bytes64>(lru_.size()) + 1) * params_.page_size >
             params_.capacity) {
    Page victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim.key);
    ++metrics_.evicted_pages;
    if (victim.dirty) {
      ++metrics_.writeback_pages;
      writebacks.emplace_back(victim.disk_locus, params_.page_size);
    }
  }
  if (static_cast<Bytes64>(lru_.size() + 1) * params_.page_size >
      params_.capacity) {
    return;  // cache smaller than one page: uncached
  }
  lru_.push_front(Page{key, locus, dirty});
  pages_[key] = lru_.begin();
}

sim::Co<void> FileCache::read(FileId file, std::int64_t base,
                              Bytes64 file_size, Bytes64 off, Bytes64 len) {
  if (len <= 0) co_return;
  const Bytes64 ps = params_.page_size;

  // Sequential stream detection drives readahead, as in the Linux VFS.
  auto& last_end = last_read_end_[file];
  const bool streaming = off == last_end;
  last_end = off + len;

  Bytes64 fetch_end = off + len;
  if (streaming) {
    fetch_end = std::max(fetch_end, off + params_.readahead);
  }
  fetch_end = std::min(fetch_end, file_size);

  const std::int64_t p0 = off / ps;
  const std::int64_t p1 = (std::max(fetch_end, off + 1) - 1) / ps;
  const std::int64_t preq = (off + len - 1) / ps;

  std::vector<std::pair<std::int64_t, Bytes64>> writebacks;
  std::vector<std::pair<std::int64_t, std::int64_t>> runs;  // [first,last]
  for (std::int64_t p = p0; p <= p1; ++p) {
    const PageKey key{file, p};
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      if (p <= preq) ++metrics_.hit_pages;
      lru_.splice(lru_.begin(), lru_, it->second);
      continue;
    }
    if (p <= preq) {
      ++metrics_.miss_pages;
    } else {
      ++metrics_.readahead_pages;
    }
    if (!runs.empty() && runs.back().second == p - 1) {
      runs.back().second = p;
    } else {
      runs.emplace_back(p, p);
    }
    insert(key, base + p * ps, /*dirty=*/false, writebacks);
  }

  for (const auto& [locus, wlen] : writebacks) {
    co_await disk_.access(locus, wlen, /*is_write=*/true);
  }
  for (const auto& [first, last] : runs) {
    co_await disk_.access(base + first * ps, (last - first + 1) * ps,
                          /*is_write=*/false);
  }
  // Copy from the page cache to the caller's buffer.
  co_await sim_.sleep(transfer_time(len, params_.copy_rate_Bps));
}

sim::Co<void> FileCache::write(FileId file, std::int64_t base,
                               Bytes64 file_size, Bytes64 off, Bytes64 len) {
  (void)file_size;
  if (len <= 0) co_return;
  const Bytes64 ps = params_.page_size;
  const std::int64_t p0 = off / ps;
  const std::int64_t p1 = (off + len - 1) / ps;
  std::vector<std::pair<std::int64_t, Bytes64>> writebacks;
  for (std::int64_t p = p0; p <= p1; ++p) {
    insert(PageKey{file, p}, base + p * ps, /*dirty=*/true, writebacks);
  }
  for (const auto& [locus, wlen] : writebacks) {
    co_await disk_.access(locus, wlen, /*is_write=*/true);
  }
  co_await sim_.sleep(transfer_time(len, params_.copy_rate_Bps));
}

sim::Co<void> FileCache::sync(FileId file) {
  // Collect dirty extents, then write them in ascending order so contiguous
  // pages coalesce into streaming transfers.
  std::vector<std::int64_t> dirty_loci;
  for (auto& page : lru_) {
    if (page.key.file == file && page.dirty) {
      dirty_loci.push_back(page.disk_locus);
      page.dirty = false;
    }
  }
  std::sort(dirty_loci.begin(), dirty_loci.end());
  std::size_t i = 0;
  while (i < dirty_loci.size()) {
    std::size_t j = i;
    while (j + 1 < dirty_loci.size() &&
           dirty_loci[j + 1] == dirty_loci[j] + params_.page_size) {
      ++j;
    }
    const Bytes64 len =
        static_cast<Bytes64>(j - i + 1) * params_.page_size;
    metrics_.writeback_pages += (j - i + 1);
    co_await disk_.access(dirty_loci[i], len, /*is_write=*/true);
    i = j + 1;
  }
}

void FileCache::invalidate(FileId file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file == file) {
      pages_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  last_read_end_.erase(file);
}

}  // namespace dodo::disk
