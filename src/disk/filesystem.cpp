#include "disk/filesystem.hpp"

#include <algorithm>
#include <cassert>

namespace dodo::disk {

namespace {
constexpr std::int64_t kExtentAlign = 1 << 20;  // files start on 1 MiB edges
}

SimFilesystem::SimFilesystem(sim::Simulator& sim, FsParams params)
    : sim_(sim),
      params_(params),
      disk_(sim, params.disk),
      cache_(sim, disk_, params.cache) {}

std::uint32_t SimFilesystem::create(const std::string& name, Bytes64 size,
                                    std::unique_ptr<DataStore> store) {
  assert(by_name_.find(name) == by_name_.end() && "file exists");
  if (!store) store = std::make_unique<MaterializedStore>(size);
  assert(store->size() >= size);
  const std::uint32_t inode = next_inode_++;
  File f{inode, name, size, next_base_, std::move(store)};
  next_base_ += ((size + kExtentAlign - 1) / kExtentAlign) * kExtentAlign +
                kExtentAlign;
  by_name_[name] = inode;
  files_.emplace(inode, std::move(f));
  return inode;
}

bool SimFilesystem::exists(const std::string& name) const {
  return by_name_.count(name) != 0;
}

int SimFilesystem::open(const std::string& name, OpenMode mode) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    dodo_errno() = kDodoEINVAL;
    return -1;
  }
  const int fd = next_fd_++;
  fds_[fd] = OpenFile{it->second, mode};
  return fd;
}

void SimFilesystem::close(int fd) { fds_.erase(fd); }

bool SimFilesystem::fd_valid(int fd) const { return fds_.count(fd) != 0; }

bool SimFilesystem::fd_writable(int fd) const {
  auto it = fds_.find(fd);
  return it != fds_.end() && it->second.mode == OpenMode::kReadWrite;
}

std::uint32_t SimFilesystem::inode_of(int fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? 0 : it->second.inode;
}

Bytes64 SimFilesystem::size_of(int fd) const {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return -1;
  return files_.at(it->second.inode).size;
}

SimFilesystem::File* SimFilesystem::file_of(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return nullptr;
  return &files_.at(it->second.inode);
}

sim::Co<Bytes64> SimFilesystem::pread(int fd, Bytes64 off, Bytes64 len,
                                      std::uint8_t* out) {
  File* f = file_of(fd);
  if (f == nullptr || off < 0 || len < 0) co_return -1;
  const Bytes64 n = std::min(len, std::max<Bytes64>(0, f->size - off));
  if (n <= 0) co_return 0;
  co_await sim_.sleep(params_.syscall_overhead);
  co_await cache_.read(f->inode, f->base, f->size, off, n);
  f->store->read(off, n, out);
  co_return n;
}

sim::Co<Bytes64> SimFilesystem::pwrite(int fd, Bytes64 off, Bytes64 len,
                                       const std::uint8_t* in) {
  File* f = file_of(fd);
  if (f == nullptr || off < 0 || len < 0 || !fd_writable(fd)) co_return -1;
  const Bytes64 n = std::min(len, std::max<Bytes64>(0, f->size - off));
  if (n <= 0) co_return 0;
  co_await sim_.sleep(params_.syscall_overhead);
  f->store->write(off, n, in);
  co_await cache_.write(f->inode, f->base, f->size, off, n);
  co_return n;
}

sim::Co<Status> SimFilesystem::fsync(int fd) {
  File* f = file_of(fd);
  if (f == nullptr) co_return Status(Err::kInval, "bad fd");
  co_await cache_.sync(f->inode);
  co_return Status::ok();
}

DataStore* SimFilesystem::store_of_inode(std::uint32_t inode) {
  auto it = files_.find(inode);
  return it == files_.end() ? nullptr : it->second.store.get();
}

}  // namespace dodo::disk
