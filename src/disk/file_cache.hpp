// Page cache with sequential readahead — the model of the Linux buffer
// cache that the paper's baseline runs against.
//
// The cache tracks page *presence and dirtiness* only; bytes live in each
// file's DataStore (see store.hpp). Misses cluster into contiguous disk
// transfers; a detected sequential stream extends misses by the readahead
// window, which is what makes the `sequential` benchmark run at streaming
// bandwidth and shows (as the paper observes) essentially no benefit from
// remote memory.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.hpp"
#include "disk/disk_model.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::disk {

using FileId = std::uint32_t;

struct FileCacheParams {
  Bytes64 capacity = 64 * 1024 * 1024;
  Bytes64 page_size = 4096;
  Bytes64 readahead = 128 * 1024;  // max readahead extent
  double copy_rate_Bps = 80e6;     // 1999-era memcpy for cache hits
};

struct FileCacheMetrics {
  std::uint64_t hit_pages = 0;
  std::uint64_t miss_pages = 0;
  std::uint64_t readahead_pages = 0;
  std::uint64_t evicted_pages = 0;
  std::uint64_t writeback_pages = 0;
};

class FileCache {
 public:
  FileCache(sim::Simulator& sim, DiskModel& disk, FileCacheParams params = {});

  /// Charges the time for reading [off, off+len) of `file` whose data lives
  /// at absolute disk position `base + off`. file_size clips readahead.
  sim::Co<void> read(FileId file, std::int64_t base, Bytes64 file_size,
                     Bytes64 off, Bytes64 len);

  /// Charges the time for writing [off, off+len): pages become resident and
  /// dirty; the disk is touched later (writeback on eviction or sync).
  sim::Co<void> write(FileId file, std::int64_t base, Bytes64 file_size,
                      Bytes64 off, Bytes64 len);

  /// Flushes all dirty pages of `file` to disk (fsync).
  sim::Co<void> sync(FileId file);

  /// Drops every page of `file` (used when a file is deleted).
  void invalidate(FileId file);

  [[nodiscard]] const FileCacheMetrics& metrics() const { return metrics_; }
  [[nodiscard]] Bytes64 resident_bytes() const {
    return static_cast<Bytes64>(lru_.size()) * params_.page_size;
  }

  /// Shrinks/grows capacity at runtime (the Dodo configuration donates app
  /// memory to the region cache, squeezing the page cache).
  void set_capacity(Bytes64 capacity) { params_.capacity = capacity; }

 private:
  struct PageKey {
    FileId file;
    std::int64_t page;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.file) << 40) ^
          static_cast<std::uint64_t>(k.page));
    }
  };
  struct Page {
    PageKey key;
    std::int64_t disk_locus;  // absolute device offset of this page
    bool dirty = false;
  };
  using LruList = std::list<Page>;

  /// Makes `page` resident (no disk I/O; caller has already charged it).
  void insert(PageKey key, std::int64_t locus, bool dirty,
              std::vector<std::pair<std::int64_t, Bytes64>>& writebacks);

  sim::Co<void> evict_for(Bytes64 needed);

  sim::Simulator& sim_;
  DiskModel& disk_;
  FileCacheParams params_;
  FileCacheMetrics metrics_;
  LruList lru_;  // front = most recent
  std::unordered_map<PageKey, LruList::iterator, PageKeyHash> pages_;
  std::unordered_map<FileId, Bytes64> last_read_end_;  // stream detection
};

}  // namespace dodo::disk
