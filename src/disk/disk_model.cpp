#include "disk/disk_model.hpp"

namespace dodo::disk {

Duration DiskModel::service_time(std::int64_t locus, Bytes64 len,
                                 bool is_write, double rot_fraction) const {
  if (len <= 0) return 0;
  const bool contiguous = locus == head_;
  if (contiguous) {
    return transfer_time(len, params_.seq_rate_Bps);
  }
  const Duration seek_mean =
      is_write ? params_.seek_mean_write : params_.seek_mean_read;
  // Seeks are sampled uniformly on [0.3, 1.7] * mean to give realistic
  // variance while preserving the calibrated mean exactly.
  const auto seek = static_cast<Duration>(
      static_cast<double>(seek_mean) * (0.3 + 1.4 * rot_fraction));
  const auto rot = static_cast<Duration>(
      static_cast<double>(params_.rot_period) * rot_fraction);
  return seek + rot + transfer_time(len, params_.media_rate_Bps);
}

sim::Co<void> DiskModel::access(std::int64_t locus, Bytes64 len,
                                bool is_write) {
  const double u = rng_.uniform();
  const Duration service = service_time(locus, len, is_write, u);
  const bool contiguous = locus == head_;

  if (is_write) {
    ++metrics_.writes;
    metrics_.bytes_written += len;
  } else {
    ++metrics_.reads;
    metrics_.bytes_read += len;
  }
  if (contiguous) {
    ++metrics_.seq_ops;
  } else {
    ++metrics_.rand_ops;
  }
  metrics_.busy_time += service;

  head_ = locus + len;
  const SimTime start = sim_.now() > free_at_ ? sim_.now() : free_at_;
  free_at_ = start + service;
  co_await sim_.sleep_until(free_at_);
}

}  // namespace dodo::disk
