// Simulated per-node filesystem: files with stable inodes laid out on one
// DiskModel, accessed through the FileCache, POSIX-ish pread/pwrite/fsync.
//
// This is the substrate both sides of every experiment run on: the baseline
// reads its dataset through this filesystem, and Dodo uses it for backing
// files (mwrite write-through, msync, and region reloads after failures).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "disk/disk_model.hpp"
#include "disk/file_cache.hpp"
#include "disk/store.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::disk {

struct FsParams {
  DiskParams disk{};
  FileCacheParams cache{};
  Duration syscall_overhead = micros(20);  // per pread/pwrite, 1999 kernel
};

enum class OpenMode : std::uint8_t { kRead, kReadWrite };

class SimFilesystem {
 public:
  explicit SimFilesystem(sim::Simulator& sim, FsParams params = {});

  /// Creates a file of fixed size with the given content store (defaults to
  /// a zeroed MaterializedStore). Returns its inode number.
  std::uint32_t create(const std::string& name, Bytes64 size,
                       std::unique_ptr<DataStore> store = nullptr);

  [[nodiscard]] bool exists(const std::string& name) const;

  /// Opens a file; returns fd >= 3, or -1 (sets dodo_errno to EINVAL).
  int open(const std::string& name, OpenMode mode);
  void close(int fd);

  [[nodiscard]] bool fd_valid(int fd) const;
  [[nodiscard]] bool fd_writable(int fd) const;
  /// inode of an open fd (0 if invalid). Region keys are built from this.
  [[nodiscard]] std::uint32_t inode_of(int fd) const;
  [[nodiscard]] Bytes64 size_of(int fd) const;

  /// Reads up to len bytes; returns bytes read (clipped at EOF), -1 on bad
  /// fd. `out` may be nullptr for phantom (accounting-only) reads.
  sim::Co<Bytes64> pread(int fd, Bytes64 off, Bytes64 len, std::uint8_t* out);

  /// Writes up to len bytes; returns bytes written (clipped at file size),
  /// -1 on bad fd or read-only fd. `in` may be nullptr (phantom).
  sim::Co<Bytes64> pwrite(int fd, Bytes64 off, Bytes64 len,
                          const std::uint8_t* in);

  /// Flushes dirty pages of the file behind fd.
  sim::Co<Status> fsync(int fd);

  /// Direct store access for test verification (no timing).
  [[nodiscard]] DataStore* store_of_inode(std::uint32_t inode);

  [[nodiscard]] DiskModel& disk() { return disk_; }
  [[nodiscard]] FileCache& cache() { return cache_; }

 private:
  struct File {
    std::uint32_t inode;
    std::string name;
    Bytes64 size;
    std::int64_t base;  // absolute device offset
    std::unique_ptr<DataStore> store;
  };
  struct OpenFile {
    std::uint32_t inode;
    OpenMode mode;
  };

  File* file_of(int fd);

  sim::Simulator& sim_;
  FsParams params_;
  DiskModel disk_;
  FileCache cache_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
  std::unordered_map<std::uint32_t, File> files_;
  std::unordered_map<int, OpenFile> fds_;
  std::uint32_t next_inode_ = 1;
  int next_fd_ = 3;
  std::int64_t next_base_ = 0;
};

}  // namespace dodo::disk
