// Content stores.
//
// Timing (what the simulator charges) and content (what bytes exist) are
// deliberately decoupled: caches and disks model *time*, a DataStore holds
// *bytes*. Correctness tests use MaterializedStore; paper-scale benchmarks
// use PatternStore, whose content is a pure function of position, so a
// 2 GB dataset costs no host memory yet reads can still be verified.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"

namespace dodo::disk {

class DataStore {
 public:
  virtual ~DataStore() = default;

  [[nodiscard]] virtual Bytes64 size() const = 0;
  [[nodiscard]] virtual bool materialized() const = 0;

  /// Fills out[0..len) from content at `off`. `out` may be nullptr in
  /// phantom flows (accounting only).
  virtual void read(Bytes64 off, Bytes64 len, std::uint8_t* out) const = 0;

  /// Stores in[0..len) at `off`. `in` may be nullptr in phantom flows.
  virtual void write(Bytes64 off, Bytes64 len, const std::uint8_t* in) = 0;
};

/// Real bytes, zero-initialized.
class MaterializedStore final : public DataStore {
 public:
  explicit MaterializedStore(Bytes64 size)
      : data_(static_cast<std::size_t>(size), 0) {}

  [[nodiscard]] Bytes64 size() const override {
    return static_cast<Bytes64>(data_.size());
  }
  [[nodiscard]] bool materialized() const override { return true; }

  void read(Bytes64 off, Bytes64 len, std::uint8_t* out) const override;
  void write(Bytes64 off, Bytes64 len, const std::uint8_t* in) override;

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return data_;
  }

 private:
  std::vector<std::uint8_t> data_;
};

/// Deterministic synthetic content: byte(i) = mix(seed, i). Writes are
/// accepted but not retained (read-mostly benchmark datasets).
class PatternStore final : public DataStore {
 public:
  PatternStore(Bytes64 size, std::uint64_t seed) : size_(size), seed_(seed) {}

  [[nodiscard]] Bytes64 size() const override { return size_; }
  [[nodiscard]] bool materialized() const override { return false; }

  void read(Bytes64 off, Bytes64 len, std::uint8_t* out) const override;
  void write(Bytes64 off, Bytes64 len, const std::uint8_t* in) override {
    (void)off;
    (void)len;
    (void)in;
  }

  /// The expected byte at a position (for verification in tests).
  [[nodiscard]] std::uint8_t byte_at(Bytes64 i) const {
    std::uint64_t x = seed_ ^ (static_cast<std::uint64_t>(i) >> 3);
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<std::uint8_t>(x >> ((i & 7) * 8));
  }

 private:
  Bytes64 size_;
  std::uint64_t seed_;
};

}  // namespace dodo::disk
