#include "disk/store.hpp"

#include <algorithm>
#include <cassert>

namespace dodo::disk {

void MaterializedStore::read(Bytes64 off, Bytes64 len,
                             std::uint8_t* out) const {
  if (out == nullptr || len <= 0) return;
  assert(off >= 0 && off + len <= size());
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(off),
              static_cast<std::size_t>(len), out);
}

void MaterializedStore::write(Bytes64 off, Bytes64 len,
                              const std::uint8_t* in) {
  if (len <= 0) return;
  assert(off >= 0 && off + len <= size());
  if (in == nullptr) return;  // phantom write: content unspecified
  std::copy_n(in, static_cast<std::size_t>(len),
              data_.begin() + static_cast<std::ptrdiff_t>(off));
}

void PatternStore::read(Bytes64 off, Bytes64 len, std::uint8_t* out) const {
  if (out == nullptr || len <= 0) return;
  for (Bytes64 i = 0; i < len; ++i) {
    out[i] = byte_at(off + i);
  }
}

}  // namespace dodo::disk
