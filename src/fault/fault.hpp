// Deterministic fault-injection subsystem.
//
// Dodo's central guarantee (§3.1, §5) is that remote memory is a *clean
// cache*: a reclaimed host, crashed daemon, severed link, or blacked-out
// manager must silently degrade to disk with byte-exact results. The
// uniform NetParams::loss_rate can only probe IID loss; this library
// schedules *adversarial* fault sequences against the simulated clock so
// chaos tests can prove the degradation property under correlated bursts,
// partitions, kill/restart cycles with epoch bumps, and reclaim storms —
// reproducibly, from a seed.
//
// Usage:
//   fault::FaultPlan plan;
//   plan.loss_burst(1_s, 2_s, 0.3).imd_crash(800_ms, 0).imd_restart(3_s, 0);
//   fault::FaultInjector inj(cluster, plan);
//   inj.arm();                       // spawns the driver on cluster.sim()
//   cluster.run_app(...);
//   EXPECT_EQ(inj.log().size(), plan.size());   // no silent no-ops
//
// Every applied fault is appended to a structured FaultLog carrying the sim
// timestamp, so post-hoc assertions can check that each planned fault
// actually fired (and when). The injector never consumes simulator RNG:
// a plan perturbs a run only through the faults themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "net/address.hpp"
#include "sim/task.hpp"

namespace dodo::fault {

enum class FaultKind : std::uint8_t {
  kLossBurstBegin,   // raise the uniform datagram loss rate
  kLossBurstEnd,     // restore the base loss rate
  kPartitionBegin,   // sever one bidirectional link
  kPartitionEnd,     // restore it
  kImdCrash,         // host drops off the network (daemons become zombies)
  kImdRestart,       // network back + zombie torn down + re-recruit (epoch++)
  kHostEvict,        // graceful owner-return reclaim; host held out
  kHostRecruit,      // re-recruit an evicted host (epoch++)
  kCmdBlackoutBegin, // cmd node unreachable
  kCmdBlackoutEnd,   // cmd node reachable again
  kCmdRestart,       // cmd cold stop + warm restart (directories survive)
  kCmdShardCrash,    // one cmd shard's node drops (host = shard index)
  kCmdShardRestart,  // shard back with empty directory; partition re-recruits
  /// Graded memory pressure on a harvested host (lease_epochs only; a no-op
  /// otherwise). `a` carries the core::PressureLevel ordinal, `rate` the
  /// keep fraction for a kRising incremental shrink. Level 2 (urgent) holds
  /// the host out of service like kHostEvict until kHostRecruit.
  kHostPressure,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Inverse of to_string, for parsing serialized schedules. Returns false on
/// an unrecognized name (out is left untouched).
[[nodiscard]] bool fault_kind_from_string(const std::string& name,
                                          FaultKind& out);

/// One scheduled fault. `host` indexes harvested hosts (0..imd_hosts-1) for
/// imd/host faults; `a`/`b` are raw node ids for partitions; `rate` is the
/// burst loss probability.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind{};
  int host = -1;
  net::NodeId a = 0;
  net::NodeId b = 0;
  double rate = 0.0;
};

/// Declarative fault schedule. Builder methods append paired begin/end
/// events for window faults; events may be added in any order (the injector
/// sorts by time, ties broken by insertion order).
class FaultPlan {
 public:
  FaultPlan& loss_burst(SimTime at, Duration dur, double rate);
  FaultPlan& partition(SimTime at, Duration dur, net::NodeId a, net::NodeId b);
  FaultPlan& imd_crash(SimTime at, int host);
  FaultPlan& imd_restart(SimTime at, int host);
  FaultPlan& host_evict(SimTime at, int host);
  FaultPlan& host_recruit(SimTime at, int host);
  FaultPlan& cmd_blackout(SimTime at, Duration dur);
  FaultPlan& cmd_restart(SimTime at);
  FaultPlan& cmd_shard_crash(SimTime at, int shard);
  FaultPlan& cmd_shard_restart(SimTime at, int shard);
  /// level: core::PressureLevel ordinal (0 idle, 1 rising, 2 urgent);
  /// keep_frac: fraction of live pool bytes a rising shrink keeps.
  FaultPlan& host_pressure(SimTime at, int host, int level, double keep_frac);

  /// Appends a raw event (fuzz schedules rebuild plans event-by-event when
  /// replaying or shrinking, where the paired builder calls above would
  /// re-couple begin/end events the shrinker must vary independently).
  FaultPlan& add(FaultEvent ev) {
    events_.push_back(ev);
    return *this;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// One applied fault: when it actually fired (>= the planned time; coroutine
/// faults like a graceful evict complete in-flight transfers first), what it
/// was, and a human-readable detail line.
struct FaultRecord {
  SimTime t = 0;
  FaultKind kind{};
  int host = -1;
  std::string detail;
};

class FaultLog {
 public:
  void record(SimTime t, FaultKind kind, int host, std::string detail);

  [[nodiscard]] const std::vector<FaultRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t count(FaultKind kind) const;
  /// Multi-line "t=1.000s imd-crash host 2: ..." dump for test diagnostics.
  [[nodiscard]] std::string dump() const;

 private:
  std::vector<FaultRecord> records_;
};

/// Executes a FaultPlan against a live Cluster. arm() spawns the driver
/// coroutine; it sleeps to each event's time, applies it through the
/// cluster/network hooks, and appends to the log. The injector must outlive
/// the simulation run.
class FaultInjector {
 public:
  FaultInjector(cluster::Cluster& cluster, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Spawns the driver. Call once, before (or during) the run.
  void arm();

  [[nodiscard]] const FaultLog& log() const { return log_; }
  /// True once every planned event has been applied.
  [[nodiscard]] bool done() const { return applied_ == events_.size(); }

 private:
  sim::Co<void> run();
  sim::Co<void> apply(const FaultEvent& ev);

  cluster::Cluster& cluster_;
  std::vector<FaultEvent> events_;  // time-sorted
  FaultLog log_;
  double base_loss_rate_ = 0.0;
  std::size_t applied_ = 0;
  bool armed_ = false;
};

/// Leak audit: cross-checks every running imd's live regions against the
/// central manager's region directory. Returns an empty string when
/// consistent, else a report of every orphaned or dangling region. A pool
/// block held by an imd that the directory does not map (same host, same
/// epoch) can never be freed by anyone — that is the leak the reply-cache
/// bug produced. Hosts currently crashed (node down) are skipped.
[[nodiscard]] std::string leak_report(cluster::Cluster& cluster);

}  // namespace dodo::fault
