#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/log.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "core/rmd.hpp"

namespace dodo::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLossBurstBegin: return "loss-burst-begin";
    case FaultKind::kLossBurstEnd: return "loss-burst-end";
    case FaultKind::kPartitionBegin: return "partition-begin";
    case FaultKind::kPartitionEnd: return "partition-end";
    case FaultKind::kImdCrash: return "imd-crash";
    case FaultKind::kImdRestart: return "imd-restart";
    case FaultKind::kHostEvict: return "host-evict";
    case FaultKind::kHostRecruit: return "host-recruit";
    case FaultKind::kCmdBlackoutBegin: return "cmd-blackout-begin";
    case FaultKind::kCmdBlackoutEnd: return "cmd-blackout-end";
    case FaultKind::kCmdRestart: return "cmd-restart";
    case FaultKind::kCmdShardCrash: return "cmd-shard-crash";
    case FaultKind::kCmdShardRestart: return "cmd-shard-restart";
    case FaultKind::kHostPressure: return "host-pressure";
  }
  return "unknown";
}

bool fault_kind_from_string(const std::string& name, FaultKind& out) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kLossBurstBegin, FaultKind::kLossBurstEnd,
      FaultKind::kPartitionBegin, FaultKind::kPartitionEnd,
      FaultKind::kImdCrash,       FaultKind::kImdRestart,
      FaultKind::kHostEvict,      FaultKind::kHostRecruit,
      FaultKind::kCmdBlackoutBegin, FaultKind::kCmdBlackoutEnd,
      FaultKind::kCmdRestart,       FaultKind::kCmdShardCrash,
      FaultKind::kCmdShardRestart,  FaultKind::kHostPressure,
  };
  for (FaultKind k : kAll) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

FaultPlan& FaultPlan::loss_burst(SimTime at, Duration dur, double rate) {
  events_.push_back({at, FaultKind::kLossBurstBegin, -1, 0, 0, rate});
  events_.push_back({at + dur, FaultKind::kLossBurstEnd, -1, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::partition(SimTime at, Duration dur, net::NodeId a,
                                net::NodeId b) {
  events_.push_back({at, FaultKind::kPartitionBegin, -1, a, b, 0.0});
  events_.push_back({at + dur, FaultKind::kPartitionEnd, -1, a, b, 0.0});
  return *this;
}

FaultPlan& FaultPlan::imd_crash(SimTime at, int host) {
  events_.push_back({at, FaultKind::kImdCrash, host, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::imd_restart(SimTime at, int host) {
  events_.push_back({at, FaultKind::kImdRestart, host, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::host_evict(SimTime at, int host) {
  events_.push_back({at, FaultKind::kHostEvict, host, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::host_recruit(SimTime at, int host) {
  events_.push_back({at, FaultKind::kHostRecruit, host, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::cmd_blackout(SimTime at, Duration dur) {
  events_.push_back({at, FaultKind::kCmdBlackoutBegin, -1, 0, 0, 0.0});
  events_.push_back({at + dur, FaultKind::kCmdBlackoutEnd, -1, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::cmd_restart(SimTime at) {
  events_.push_back({at, FaultKind::kCmdRestart, -1, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::cmd_shard_crash(SimTime at, int shard) {
  events_.push_back({at, FaultKind::kCmdShardCrash, shard, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::cmd_shard_restart(SimTime at, int shard) {
  events_.push_back({at, FaultKind::kCmdShardRestart, shard, 0, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::host_pressure(SimTime at, int host, int level,
                                    double keep_frac) {
  events_.push_back({at, FaultKind::kHostPressure, host,
                     static_cast<net::NodeId>(level), 0, keep_frac});
  return *this;
}

void FaultLog::record(SimTime t, FaultKind kind, int host,
                      std::string detail) {
  records_.push_back({t, kind, host, std::move(detail)});
}

std::size_t FaultLog::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

std::string FaultLog::dump() const {
  std::string out;
  char line[256];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof(line), "t=%.6fs %s host=%d: %s\n",
                  to_seconds(r.t), to_string(r.kind), r.host,
                  r.detail.c_str());
    out += line;
  }
  return out;
}

FaultInjector::FaultInjector(cluster::Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), events_(plan.events()) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  base_loss_rate_ = cluster_.network().params().loss_rate;
  cluster_.sim().spawn(run());
}

sim::Co<void> FaultInjector::run() {
  for (const FaultEvent& ev : events_) {
    co_await cluster_.sim().sleep_until(ev.at);
    co_await apply(ev);
    ++applied_;
  }
}

sim::Co<void> FaultInjector::apply(const FaultEvent& ev) {
  auto& net = cluster_.network();
  char detail[160];
  detail[0] = '\0';
  switch (ev.kind) {
    case FaultKind::kLossBurstBegin:
      net.set_loss_rate(ev.rate);
      std::snprintf(detail, sizeof(detail), "loss_rate=%.3f", ev.rate);
      break;
    case FaultKind::kLossBurstEnd:
      net.set_loss_rate(base_loss_rate_);
      std::snprintf(detail, sizeof(detail), "loss_rate=%.3f (base)",
                    base_loss_rate_);
      break;
    case FaultKind::kPartitionBegin:
      net.set_link_cut(ev.a, ev.b, true);
      std::snprintf(detail, sizeof(detail), "link %u<->%u cut", ev.a, ev.b);
      break;
    case FaultKind::kPartitionEnd:
      net.set_link_cut(ev.a, ev.b, false);
      std::snprintf(detail, sizeof(detail), "link %u<->%u restored", ev.a,
                    ev.b);
      break;
    case FaultKind::kImdCrash:
      cluster_.crash_host(ev.host);
      std::snprintf(detail, sizeof(detail), "node %u down",
                    cluster_.host_node(ev.host));
      break;
    case FaultKind::kImdRestart:
      co_await cluster_.restart_host(ev.host);
      std::snprintf(detail, sizeof(detail), "node %u up, epoch=%llu",
                    cluster_.host_node(ev.host),
                    static_cast<unsigned long long>(
                        cluster_.rmd(ev.host).current_epoch()));
      break;
    case FaultKind::kHostEvict:
      co_await cluster_.evict_host(ev.host);
      std::snprintf(detail, sizeof(detail), "node %u reclaimed by owner",
                    cluster_.host_node(ev.host));
      break;
    case FaultKind::kHostRecruit:
      cluster_.recruit_host(ev.host);
      std::snprintf(detail, sizeof(detail), "node %u re-recruited, epoch=%llu",
                    cluster_.host_node(ev.host),
                    static_cast<unsigned long long>(
                        cluster_.rmd(ev.host).current_epoch()));
      break;
    case FaultKind::kCmdBlackoutBegin:
      net.set_node_up(cluster_.cmd_node(), false);
      std::snprintf(detail, sizeof(detail), "cmd node %u down",
                    cluster_.cmd_node());
      break;
    case FaultKind::kCmdBlackoutEnd:
      net.set_node_up(cluster_.cmd_node(), true);
      std::snprintf(detail, sizeof(detail), "cmd node %u up",
                    cluster_.cmd_node());
      break;
    case FaultKind::kCmdRestart:
      co_await cluster_.restart_cmd();
      detail[0] = '\0';
      break;
    case FaultKind::kCmdShardCrash:
      cluster_.crash_cmd_shard(ev.host);
      std::snprintf(detail, sizeof(detail), "cmd shard %d (node %u) down",
                    ev.host, cluster_.shard_node(ev.host));
      break;
    case FaultKind::kCmdShardRestart:
      co_await cluster_.restart_cmd_shard(ev.host);
      std::snprintf(detail, sizeof(detail),
                    "cmd shard %d (node %u) up, partition re-recruited",
                    ev.host, cluster_.shard_node(ev.host));
      break;
    case FaultKind::kHostPressure:
      co_await cluster_.pressure_host(ev.host, static_cast<int>(ev.a),
                                      ev.rate);
      std::snprintf(detail, sizeof(detail),
                    "node %u pressure level %u keep_frac=%.2f",
                    cluster_.host_node(ev.host), ev.a, ev.rate);
      break;
  }
  log_.record(cluster_.sim().now(), ev.kind, ev.host, detail);
  DODO_DEBUG("fault", "applied %s host=%d (%s)", to_string(ev.kind), ev.host,
             detail);
}

std::string leak_report(cluster::Cluster& cluster) {
  std::string out;
  char line[256];
  // Directory entries grouped by (host, epoch, region id) for the reverse
  // check: a live-epoch directory entry whose region the imd does not hold
  // is dangling (it would route reads at nonexistent memory).
  struct RdEntry {
    Bytes64 len;
    bool seen_in_imd = false;
  };
  std::map<std::pair<net::NodeId, std::uint64_t>,
           std::map<std::uint64_t, RdEntry>>
      by_host;
  // Hosts partition across the cmd shards, so the union of the per-shard
  // directories is still keyed uniquely by (host, epoch, region).
  for (int s = 0; s < cluster.shard_count(); ++s) {
    for (const auto& [key, loc] : cluster.cmd(s).rd_snapshot()) {
      by_host[{loc.host, loc.epoch}][loc.imd_region] = RdEntry{loc.len};
    }
  }

  for (int h = 0; h < cluster.config().imd_hosts; ++h) {
    if (!cluster.network().node_up(cluster.host_node(h))) continue;  // crashed
    auto& rmd = cluster.rmd(h);
    core::IdleMemoryDaemon* imd = rmd.imd();
    if (imd == nullptr || !imd->running()) continue;
    auto* rd_regions =
        [&]() -> std::map<std::uint64_t, RdEntry>* {
      auto it = by_host.find({imd->node(), imd->epoch()});
      return it == by_host.end() ? nullptr : &it->second;
    }();
    Bytes64 live_bytes = 0;
    for (const auto& [id, len] : imd->region_list()) {
      live_bytes += len;
      RdEntry* e = nullptr;
      if (rd_regions != nullptr) {
        auto it = rd_regions->find(id);
        if (it != rd_regions->end()) e = &it->second;
      }
      if (e == nullptr) {
        std::snprintf(line, sizeof(line),
                      "orphan: host %u epoch %llu region %llu (%lld B) not in "
                      "cmd directory\n",
                      imd->node(),
                      static_cast<unsigned long long>(imd->epoch()),
                      static_cast<unsigned long long>(id),
                      static_cast<long long>(len));
        out += line;
      } else {
        e->seen_in_imd = true;
        if (e->len != len) {
          std::snprintf(line, sizeof(line),
                        "length mismatch: host %u region %llu imd=%lld "
                        "rd=%lld\n",
                        imd->node(), static_cast<unsigned long long>(id),
                        static_cast<long long>(len),
                        static_cast<long long>(e->len));
          out += line;
        }
      }
    }
    if (rd_regions != nullptr) {
      for (const auto& [id, e] : *rd_regions) {
        if (!e.seen_in_imd) {
          std::snprintf(line, sizeof(line),
                        "dangling: cmd maps host %u epoch %llu region %llu "
                        "(%lld B) the imd does not hold\n",
                        imd->node(),
                        static_cast<unsigned long long>(imd->epoch()),
                        static_cast<unsigned long long>(id),
                        static_cast<long long>(e.len));
          out += line;
        }
      }
    }
    if (imd->allocated_bytes() != live_bytes) {
      std::snprintf(line, sizeof(line),
                    "pool accounting: host %u allocated %lld B but regions "
                    "sum to %lld B\n",
                    imd->node(),
                    static_cast<long long>(imd->allocated_bytes()),
                    static_cast<long long>(live_bytes));
      out += line;
    }
  }
  return out;
}

}  // namespace dodo::fault
