#include "apps/block_io.hpp"

#include <cassert>

namespace dodo::apps {

int DodoBlockIo::region_of(Bytes64 off, Bytes64 len) {
  (void)len;  // only used by the assertions below
  assert(off >= 0 && off + len <= dataset_);
  const auto idx = static_cast<std::size_t>(off / region_size_);
  assert((off + len - 1) / region_size_ == static_cast<Bytes64>(idx) &&
         "request spans regions");
  if (cds_[idx] < 0) {
    const Bytes64 start = static_cast<Bytes64>(idx) * region_size_;
    const Bytes64 rlen = std::min(region_size_, dataset_ - start);
    cds_[idx] = mgr_.copen(rlen, fd_, start);
    assert(cds_[idx] >= 0);
  }
  return cds_[idx];
}

sim::Co<Bytes64> DodoBlockIo::read(Bytes64 off, std::uint8_t* buf,
                                   Bytes64 len) {
  const int cd = region_of(off, len);
  co_return co_await mgr_.cread(cd, off % region_size_, buf, len);
}

sim::Co<Bytes64> DodoBlockIo::write(Bytes64 off, const std::uint8_t* buf,
                                    Bytes64 len) {
  const int cd = region_of(off, len);
  co_return co_await mgr_.cwrite(cd, off % region_size_, buf, len);
}

}  // namespace dodo::apps
