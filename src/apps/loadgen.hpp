// Open-loop many-client load generator for the sharded control plane.
//
// Drives a fleet of real DodoClient instances sharing the application node
// (each with its own client id and keep-alive control port) against the
// cluster's cmd shards. A single dispatcher coroutine draws Poisson session
// arrivals on the simulated clock — open-loop, so offered load does not slow
// down when the control plane queues — and each session performs the
// cmd-gated cycle mopen -> mread -> mclose on a zipf-popular region slot.
// Because mopen/mclose serialize in a shard's serve loop while mreads ride
// the direct imd data path, completed session throughput is exactly what
// directory sharding is supposed to scale.
//
// Everything is deterministic per (config, seed): arrivals come from a
// private forked rng stream, sessions carry no randomness of their own, and
// the report exports integer counters/histograms only.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/channel.hpp"
#include "sim/task.hpp"

namespace dodo::apps {

struct LoadgenConfig {
  int clients = 100;            // fleet size (all on the app node)
  double offered_rate = 1000;   // sessions/s across the fleet, Poisson
  Duration duration = 5 * kSecond;  // dispatch window (sessions then drain)
  int slots_per_client = 8;     // distinct region slots per client
  Bytes64 region = 64_KiB;      // slot size (mopen length)
  Bytes64 read_len = 16_KiB;    // bytes each session mreads
  double zipf_s = 0.99;         // slot popularity skew (0 = uniform)
  std::uint64_t seed = 1;       // arrival/selection stream seed
  /// Ring mode (DESIGN.md §16): when > 0 each session drives its read phase
  /// through a DodoRing of this depth, splitting read_len into ring_op-sized
  /// submissions (which the client coalesces when its window allows). 0
  /// keeps the classic single-mread session, byte-identical to pre-ring
  /// builds.
  int ring_depth = 0;
  Bytes64 ring_op = 4_KiB;      // per-submission size in ring mode
};

/// What the run measured. All values are simulation-deterministic.
struct LoadgenReport {
  std::uint64_t offered = 0;    // sessions dispatched
  std::uint64_t completed = 0;  // mopen+mread+mclose all succeeded
  std::uint64_t failed = 0;     // any step failed (offered = completed+failed)
  obs::LatencyHistogram mopen_latency;  // successful mopens only
  obs::LatencyHistogram mread_latency;  // successful mreads only
  struct ShardLoad {
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::int64_t peak_inflight = 0;  // max concurrently-open sessions
  };
  std::vector<ShardLoad> shards;  // indexed by directory shard

  /// Integer export under "loadgen." names (per-shard under
  /// "loadgen.shardN."), byte-deterministic per seed via the snapshot's
  /// sorted serialization.
  [[nodiscard]] obs::MetricsSnapshot snapshot() const;
};

class LoadGenerator {
 public:
  /// Builds the client fleet (client ids 1000+c, control ports 20000+c) and
  /// the shared phantom dataset. The cluster should run materialize=false —
  /// sessions read with null buffers (accounting-only).
  LoadGenerator(cluster::Cluster& cluster, LoadgenConfig cfg);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Dispatches sessions for cfg.duration, drains every in-flight session,
  /// then detaches the fleet (so shard keep-alive sweeps never serially
  /// time out against a thousand dead control ports). Run via
  /// Cluster::run_app; `out` must outlive the coroutine.
  sim::Co<void> run(LoadgenReport* out);

 private:
  sim::Co<void> session(int client, int slot);
  [[nodiscard]] int pick_slot();

  cluster::Cluster& cluster_;
  LoadgenConfig cfg_;
  Rng rng_;                      // arrivals + client/slot selection
  std::vector<double> zipf_cdf_;  // cumulative slot popularity
  int fd_ = -1;
  std::uint32_t inode_ = 0;
  std::vector<std::unique_ptr<runtime::DodoClient>> clients_;
  LoadgenReport* report_ = nullptr;
  std::vector<std::int64_t> inflight_;  // per shard, for peak tracking
  sim::WaitGroup sessions_;
};

}  // namespace dodo::apps
