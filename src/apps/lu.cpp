#include "apps/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace dodo::apps {

std::vector<double> lu_make_matrix(const LuConfig& cfg) {
  const int n = cfg.n;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  Rng rng(cfg.seed);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  // Diagonal dominance so factoring without pivoting is stable.
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i) * n + i] += static_cast<double>(n);
  }
  return a;
}

namespace {

}  // namespace

void lu_store_matrix(disk::DataStore& store, const LuConfig& cfg,
                     const std::vector<double>& a) {
  const int rpf = cfg.rows_per_file();
  const int w = cfg.slab_cols;
  const int n = cfg.n;
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(cfg.chunk_bytes()));
  auto* d = reinterpret_cast<double*>(buf.data());
  for (int f = 0; f < cfg.files; ++f) {
    for (int j = 0; j < cfg.slabs(); ++j) {
      for (int c = 0; c < w; ++c) {
        const int gc = j * w + c;
        std::copy_n(&a[static_cast<std::size_t>(gc) * n + f * rpf], rpf,
                    &d[static_cast<std::size_t>(c) * rpf]);
      }
      store.write(cfg.chunk_offset(f, j), cfg.chunk_bytes(), buf.data());
    }
  }
}

std::vector<double> lu_load_matrix(const disk::DataStore& store,
                                   const LuConfig& cfg) {
  const int rpf = cfg.rows_per_file();
  const int w = cfg.slab_cols;
  const int n = cfg.n;
  std::vector<double> a(static_cast<std::size_t>(cfg.n) * cfg.n);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(cfg.chunk_bytes()));
  const auto* d = reinterpret_cast<const double*>(buf.data());
  for (int f = 0; f < cfg.files; ++f) {
    for (int j = 0; j < cfg.slabs(); ++j) {
      store.read(cfg.chunk_offset(f, j), cfg.chunk_bytes(), buf.data());
      for (int c = 0; c < w; ++c) {
        const int gc = j * w + c;
        std::copy_n(&d[static_cast<std::size_t>(c) * rpf], rpf,
                    &a[static_cast<std::size_t>(gc) * n + f * rpf]);
      }
    }
  }
  return a;
}

double lu_verify(const std::vector<double>& packed_lu,
                 const std::vector<double>& original, int n) {
  double max_err = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // (L*U)(i,j) = sum_k L(i,k) * U(k,j); L unit lower, U upper.
      double sum = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        const double l =
            (k == i) ? 1.0
                     : packed_lu[static_cast<std::size_t>(k) * n + i];
        const double u = packed_lu[static_cast<std::size_t>(j) * n + k];
        sum += l * u;
      }
      max_err = std::max(
          max_err,
          std::fabs(sum - original[static_cast<std::size_t>(j) * n + i]));
    }
  }
  return max_err;
}

namespace {

/// Slab buffer: full N x W columns, plus BlockIo-backed load/store.
struct SlabBuf {
  std::vector<double> cols;  // column-major N x W

  double& at(int r, int local_c, int n) {
    return cols[static_cast<std::size_t>(local_c) * n + r];
  }
};

sim::Co<void> load_slab(BlockIo& io, const LuConfig& cfg, int j, SlabBuf& s) {
  const int rpf = cfg.rows_per_file();
  s.cols.assign(static_cast<std::size_t>(cfg.n) * cfg.slab_cols, 0.0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(cfg.chunk_bytes()));
  for (int f = 0; f < cfg.files; ++f) {
    const Bytes64 got =
        co_await io.read(cfg.chunk_offset(f, j), buf.data(), cfg.chunk_bytes());
    assert(got == cfg.chunk_bytes());
    (void)got;
    const auto* d = reinterpret_cast<const double*>(buf.data());
    for (int c = 0; c < cfg.slab_cols; ++c) {
      std::copy_n(&d[static_cast<std::size_t>(c) * rpf], rpf,
                  &s.at(f * rpf, c, cfg.n));
    }
  }
}

sim::Co<void> store_slab(BlockIo& io, const LuConfig& cfg, int j, SlabBuf& s) {
  const int rpf = cfg.rows_per_file();
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(cfg.chunk_bytes()));
  for (int f = 0; f < cfg.files; ++f) {
    auto* d = reinterpret_cast<double*>(buf.data());
    for (int c = 0; c < cfg.slab_cols; ++c) {
      std::copy_n(&s.at(f * rpf, c, cfg.n), rpf,
                  &d[static_cast<std::size_t>(c) * rpf]);
    }
    const Bytes64 put = co_await io.write(cfg.chunk_offset(f, j), buf.data(),
                                          cfg.chunk_bytes());
    assert(put == cfg.chunk_bytes());
    (void)put;
  }
}

}  // namespace

sim::Co<void> run_lu_real(cluster::Cluster& cluster, BlockIo& io,
                          LuConfig cfg, RunStats* stats) {
  auto& sim = cluster.sim();
  const int n = cfg.n;
  const int w = cfg.slab_cols;
  const SimTime t0 = sim.now();
  SlabBuf mj, mk;
  for (int j = 0; j < cfg.slabs(); ++j) {
    co_await load_slab(io, cfg, j, mj);
    stats->requests += static_cast<std::uint64_t>(cfg.files);
    // Triangle: re-read every earlier slab and apply its updates.
    for (int k = 0; k < j; ++k) {
      co_await load_slab(io, cfg, k, mk);
      stats->requests += static_cast<std::uint64_t>(cfg.files);
      for (int pl = 0; pl < w; ++pl) {
        const int p = k * w + pl;
        for (int c = 0; c < w; ++c) {
          const double u = mj.at(p, c, n);  // U(p, jW+c), fully updated
          if (u == 0.0) continue;
          for (int r = p + 1; r < n; ++r) {
            mj.at(r, c, n) -= mk.at(r, pl, n) * u;
          }
        }
      }
    }
    // Factor the slab's own columns.
    for (int pl = 0; pl < w; ++pl) {
      const int p = j * w + pl;
      const double pivot = mj.at(p, pl, n);
      assert(pivot != 0.0);
      for (int r = p + 1; r < n; ++r) {
        mj.at(r, pl, n) /= pivot;
      }
      for (int c = pl + 1; c < w; ++c) {
        const double u = mj.at(p, c, n);
        if (u == 0.0) continue;
        for (int r = p + 1; r < n; ++r) {
          mj.at(r, c, n) -= mj.at(r, pl, n) * u;
        }
      }
    }
    co_await store_slab(io, cfg, j, mj);
    stats->requests += static_cast<std::uint64_t>(cfg.files);
  }
  stats->iteration_time.push_back(sim.now() - t0);
  // lu deletes its regions at completion (temporary data).
  co_await io.finish(/*keep_cached=*/false);
}

sim::Co<void> run_lu_modeled(cluster::Cluster& cluster, BlockIo& io,
                             LuConfig cfg, RunStats* stats) {
  auto& sim = cluster.sim();
  const int n = cfg.n;
  const int w = cfg.slab_cols;
  const int rpf = cfg.rows_per_file();
  const SimTime t0 = sim.now();
  auto compute = [&](double flops) -> Duration {
    return seconds(flops / cfg.flop_rate);
  };
  for (int j = 0; j < cfg.slabs(); ++j) {
    // Load slab j in full.
    for (int f = 0; f < cfg.files; ++f) {
      co_await io.read(cfg.chunk_offset(f, j), nullptr, cfg.chunk_bytes());
      ++stats->requests;
    }
    for (int k = 0; k < j; ++k) {
      // Only rows >= k*W of slab k matter (L is below the diagonal): the
      // partial reads that give the paper's 12..516 KB request range.
      const int first_row = k * w;
      for (int f = 0; f < cfg.files; ++f) {
        const int f_lo = f * rpf;
        const int f_hi = f_lo + rpf;
        const int from = std::max(first_row, f_lo);
        if (from >= f_hi) continue;
        const Bytes64 bytes =
            static_cast<Bytes64>(f_hi - from) * w * 8;
        co_await io.read(cfg.chunk_offset(f, k), nullptr, bytes);
        ++stats->requests;
      }
      // Rank-W update of slab j by slab k.
      co_await sim.sleep(compute(2.0 * w * w * (n - first_row)));
    }
    co_await sim.sleep(compute(2.0 * w * w * (n - j * w)));  // own factor
    for (int f = 0; f < cfg.files; ++f) {
      co_await io.write(cfg.chunk_offset(f, j), nullptr, cfg.chunk_bytes());
      ++stats->requests;
    }
  }
  stats->iteration_time.push_back(sim.now() - t0);
  co_await io.finish(/*keep_cached=*/false);
}

}  // namespace dodo::apps
