#include "apps/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/wire.hpp"
#include "runtime/ring.hpp"

namespace dodo::apps {

LoadGenerator::LoadGenerator(cluster::Cluster& cluster, LoadgenConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      rng_(Rng(cfg.seed).fork(0x6c6f6164)),  // "load"
      sessions_(cluster.sim()) {
  cfg_.clients = std::max(1, cfg_.clients);
  cfg_.slots_per_client = std::max(1, cfg_.slots_per_client);
  cfg_.offered_rate = std::max(1.0, cfg_.offered_rate);

  // Slot popularity: zipf(s) over slots_per_client ranks, as a cumulative
  // table for one binary search per arrival. All clients share the rank
  // distribution but their region keys differ by client id, so "hot" slots
  // still spread across every shard.
  zipf_cdf_.resize(static_cast<std::size_t>(cfg_.slots_per_client));
  double total = 0;
  for (std::size_t i = 0; i < zipf_cdf_.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), cfg_.zipf_s);
    zipf_cdf_[i] = total;
  }
  for (double& v : zipf_cdf_) v /= total;

  // One shared dataset file: keys are (inode, offset, client), so every
  // client addressing the same offsets still owns distinct regions.
  fd_ = cluster_.create_dataset(
      "loadgen.dat",
      static_cast<Bytes64>(cfg_.slots_per_client) * cfg_.region);
  inode_ = cluster_.fs().inode_of(fd_);

  std::vector<net::Endpoint> cmds;
  cmds.reserve(static_cast<std::size_t>(cluster_.shard_count()));
  for (int s = 0; s < cluster_.shard_count(); ++s) {
    cmds.push_back(cluster_.cmd(s).endpoint());
  }

  clients_.reserve(static_cast<std::size_t>(cfg_.clients));
  for (int c = 0; c < cfg_.clients; ++c) {
    runtime::ClientParams p = cluster_.config().client;
    p.client_id = static_cast<std::uint32_t>(1000 + c);
    p.ctl_port = static_cast<net::Port>(20000 + c);
    // A thousand clients sharing one node cannot each sit out a multi-second
    // refraction: a single overloaded-shard failure would idle the whole
    // fleet. Keep it just long enough to damp retry storms.
    p.refraction = 50 * kMillisecond;
    clients_.push_back(std::make_unique<runtime::DodoClient>(
        cluster_.sim(), cluster_.network(), cluster_.app_node(), cmds,
        cluster_.fs(), p));
  }
}

LoadGenerator::~LoadGenerator() = default;

int LoadGenerator::pick_slot() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int>(std::min(
      static_cast<std::size_t>(it - zipf_cdf_.begin()), zipf_cdf_.size() - 1));
}

sim::Co<void> LoadGenerator::session(int client, int slot) {
  runtime::DodoClient& cl = *clients_[static_cast<std::size_t>(client)];
  const Bytes64 offset = static_cast<Bytes64>(slot) * cfg_.region;
  const int shard = static_cast<int>(core::shard_of_key(
      core::RegionKey{inode_, offset, cl.client_id()},
      static_cast<std::uint32_t>(cluster_.shard_count())));
  auto& sh = report_->shards[static_cast<std::size_t>(shard)];
  ++report_->offered;
  ++sh.offered;
  auto& inflight = inflight_[static_cast<std::size_t>(shard)];
  sh.peak_inflight = std::max(sh.peak_inflight, ++inflight);

  sim::Simulator& sim = cluster_.sim();
  bool ok = false;
  const SimTime t_open = sim.now();
  const auto [rd, reused] = co_await cl.mopen_ex(cfg_.region, fd_, offset);
  if (rd >= 0) {
    report_->mopen_latency.observe(sim.now() - t_open);
    const SimTime t_read = sim.now();
    bool read_ok;
    if (cfg_.ring_depth > 0) {
      // Ring mode: split the read into ring_op-sized submissions and reap
      // completions in bulk — no coroutine per op on the coalesced path.
      runtime::DodoRing ring(sim, cl,
                             static_cast<std::size_t>(cfg_.ring_depth));
      const Bytes64 step = std::max<Bytes64>(1, cfg_.ring_op);
      std::uint64_t nops = 0;
      for (Bytes64 off = 0; off < cfg_.read_len; off += step, ++nops) {
        runtime::Sqe sqe;
        sqe.op = runtime::RingOp::kRead;
        sqe.rd = rd;
        sqe.offset = off;
        sqe.len = std::min(step, cfg_.read_len - off);
        sqe.user_data = nops;
        co_await ring.submit(sqe);
      }
      co_await ring.drain();
      read_ok = true;
      for (std::uint64_t i = 0; i < nops; ++i) {
        const auto cqe = ring.try_reap();
        if (!cqe.has_value() || cqe->n < 0) read_ok = false;
      }
    } else {
      const Bytes64 n = co_await cl.mread(rd, 0, nullptr, cfg_.read_len);
      read_ok = n >= 0;
    }
    if (read_ok) report_->mread_latency.observe(sim.now() - t_read);
    const int closed = co_await cl.mclose(rd);
    ok = read_ok && closed == 0;
  }
  if (ok) {
    ++report_->completed;
    ++sh.completed;
  } else {
    ++report_->failed;
  }
  --inflight;
  sessions_.done();
}

sim::Co<void> LoadGenerator::run(LoadgenReport* out) {
  report_ = out;
  report_->shards.assign(static_cast<std::size_t>(cluster_.shard_count()), {});
  inflight_.assign(static_cast<std::size_t>(cluster_.shard_count()), 0);
  for (auto& cl : clients_) cl->start();

  sim::Simulator& sim = cluster_.sim();
  const SimTime end = sim.now() + cfg_.duration;
  const double mean_gap = static_cast<double>(kSecond) / cfg_.offered_rate;
  while (true) {
    const auto gap = std::max<Duration>(
        1, static_cast<Duration>(rng_.exponential(mean_gap)));
    if (sim.now() + gap >= end) break;
    co_await sim.sleep(gap);
    const int client =
        static_cast<int>(rng_.below(static_cast<std::uint64_t>(cfg_.clients)));
    const int slot = pick_slot();
    sessions_.add();
    sim.spawn(session(client, slot));
  }
  // Open-loop ends at the dispatch horizon, but sessions already in flight
  // get to finish: completed/failed then partition offered exactly.
  co_await sessions_.wait();
  for (auto& cl : clients_) co_await cl->detach();
}

obs::MetricsSnapshot LoadgenReport::snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("loadgen.sessions_offered", offered);
  out.set_counter("loadgen.sessions_completed", completed);
  out.set_counter("loadgen.sessions_failed", failed);
  out.set_histogram("loadgen.mopen_latency", mopen_latency);
  out.set_histogram("loadgen.mread_latency", mread_latency);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string p = "loadgen.shard" + std::to_string(s) + ".";
    out.set_counter(p + "sessions_offered", shards[s].offered);
    out.set_counter(p + "sessions_completed", shards[s].completed);
    out.set_gauge(p + "peak_inflight", shards[s].peak_inflight);
  }
  return out;
}

}  // namespace dodo::apps
