#include "apps/synthetic.hpp"

#include <cassert>

namespace dodo::apps {

std::vector<Bytes64> synthetic_trace(const SyntheticConfig& cfg,
                                     int iteration) {
  const Bytes64 blocks = cfg.dataset / cfg.req_size;
  assert(blocks > 0);
  std::vector<Bytes64> trace;
  trace.reserve(static_cast<std::size_t>(blocks));
  Rng rng(cfg.seed * 1000003ULL + static_cast<std::uint64_t>(iteration));
  const auto hot_blocks = static_cast<Bytes64>(
      cfg.hot_fraction * static_cast<double>(blocks));
  for (Bytes64 i = 0; i < blocks; ++i) {
    switch (cfg.pattern) {
      case SyntheticConfig::Pattern::kSequential:
        trace.push_back(i);
        break;
      case SyntheticConfig::Pattern::kRandom:
        trace.push_back(static_cast<Bytes64>(
            rng.below(static_cast<std::uint64_t>(blocks))));
        break;
      case SyntheticConfig::Pattern::kHotcold:
        if (hot_blocks > 0 && rng.chance(cfg.hot_prob)) {
          trace.push_back(static_cast<Bytes64>(
              rng.below(static_cast<std::uint64_t>(hot_blocks))));
        } else {
          trace.push_back(
              hot_blocks +
              static_cast<Bytes64>(rng.below(
                  static_cast<std::uint64_t>(blocks - hot_blocks))));
        }
        break;
    }
  }
  return trace;
}

sim::Co<void> run_synthetic(cluster::Cluster& cluster, BlockIo& io,
                            SyntheticConfig cfg, RunStats* out) {
  auto& sim = cluster.sim();
  std::vector<std::uint8_t> buf;
  std::uint8_t* bufp = nullptr;
  if (cluster.config().materialize) {
    buf.resize(static_cast<std::size_t>(cfg.req_size));
    bufp = buf.data();
  }
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    const SimTime t0 = sim.now();
    const auto trace = synthetic_trace(cfg, iter);
    for (const Bytes64 block : trace) {
      const Bytes64 got =
          co_await io.read(block * cfg.req_size, bufp, cfg.req_size);
      assert(got == cfg.req_size);
      (void)got;
      ++out->requests;
      co_await sim.sleep(cfg.compute_per_req);
    }
    out->iteration_time.push_back(sim.now() - t0);
  }
  // "All remote memory regions ... deleted at its completion."
  co_await io.finish(/*keep_cached=*/false);
}

}  // namespace dodo::apps
