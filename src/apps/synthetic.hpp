// The three synthetic benchmarks of §5.2.2.
//
// Each performs num_iter iterations; in each iteration it reads its entire
// dataset with req_size requests and a constant 10 ms of compute between
// requests:
//   sequential - reads the dataset in order
//   hotcold    - 20% "hot" region takes 80% of (random) references
//   random     - uniform random requests over the whole dataset
// All remote memory regions are created during the first iteration and
// deleted at completion, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/block_io.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/task.hpp"

namespace dodo::apps {

struct SyntheticConfig {
  enum class Pattern { kSequential, kHotcold, kRandom };

  Pattern pattern = Pattern::kRandom;
  Bytes64 dataset = 1_GiB;
  Bytes64 req_size = 8_KiB;
  int iterations = 4;
  Duration compute_per_req = 10 * kMillisecond;
  double hot_fraction = 0.2;
  double hot_prob = 0.8;
  std::uint64_t seed = 7;
};

struct RunStats {
  std::vector<SimTime> iteration_time;
  std::uint64_t requests = 0;

  [[nodiscard]] SimTime total() const {
    SimTime t = 0;
    for (const auto it : iteration_time) t += it;
    return t;
  }
  /// Duration of the final iteration (fully steady regime).
  [[nodiscard]] double last_iteration_seconds() const {
    return iteration_time.empty() ? 0.0
                                  : to_seconds(iteration_time.back());
  }

  /// Mean of iterations 2..n — the regime after remote regions exist.
  [[nodiscard]] double steady_seconds() const {
    if (iteration_time.size() < 2) return to_seconds(total());
    SimTime t = 0;
    for (std::size_t i = 1; i < iteration_time.size(); ++i) {
      t += iteration_time[i];
    }
    return to_seconds(t) / static_cast<double>(iteration_time.size() - 1);
  }
};

/// The block index sequence is a pure function of (config, iteration), so
/// baseline and Dodo runs replay identical request streams.
std::vector<Bytes64> synthetic_trace(const SyntheticConfig& cfg,
                                     int iteration);

/// Runs the benchmark over the given BlockIo (baseline or Dodo).
sim::Co<void> run_synthetic(cluster::Cluster& cluster, BlockIo& io,
                            SyntheticConfig cfg, RunStats* out);

}  // namespace dodo::apps
