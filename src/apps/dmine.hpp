// dmine: association-rule mining over retail transactions (§5.2.1).
//
// The paper's dmine mines 10 M transactions (1 GB, avg 20 items, maximal
// potentially-frequent set size 3) with a multi-scan pattern of 128 KB
// reads, a first-in replacement policy, and *persistent* remote regions: the
// first run populates remote memory, subsequent runs avoid the disk
// entirely.
//
// We provide (a) an IBM-Quest-style transaction generator, (b) a real
// Apriori miner that runs over BlockIo at small scale (verified against a
// brute-force counter in the tests and used by the examples), and (c) a
// modeled paper-scale run for the Figure 7 benchmark: one partitioned scan
// per run — 128 KB blocks visited in a data-dependent (shuffled) order with
// a fixed per-block compute cost.
//
// A note recorded in EXPERIMENTS.md: the paper's dmine speedup (3.2x) is
// unreachable for purely streaming reads given its own disk (7.75 MB/s
// sequential) and network (12.5 MB/s) figures, so its 128 KB requests were
// evidently not disk-contiguous; the partitioned scan order models that.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "apps/block_io.hpp"
#include "apps/synthetic.hpp"  // RunStats
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/task.hpp"

namespace dodo::apps {

struct DmineConfig {
  std::uint32_t num_transactions = 5000;
  double avg_items = 10.0;
  std::uint32_t num_items = 200;  // item universe
  int num_patterns = 10;          // embedded frequent patterns
  int pattern_len = 3;            // maximal potentially-frequent set size
  double pattern_prob = 0.25;     // chance a transaction contains a pattern
  double min_support = 0.05;      // fraction of transactions
  Bytes64 block = 128 * 1024;     // the paper's read size
  std::uint64_t seed = 11;
};

using Transaction = std::vector<std::uint32_t>;
using ItemSet = std::vector<std::uint32_t>;  // sorted

/// Generates transactions with embedded frequent patterns.
std::vector<Transaction> generate_transactions(const DmineConfig& cfg);

/// Encodes transactions into 128 KB-aligned blocks (records never span a
/// block; the remainder of a block is padded). Returns the byte image.
std::vector<std::uint8_t> encode_transactions(
    const std::vector<Transaction>& txns, Bytes64 block);

/// Decodes one block.
std::vector<Transaction> decode_block(const std::uint8_t* data, Bytes64 len);

/// In-memory reference miner (exhaustive per-level counting) for tests.
std::vector<std::vector<ItemSet>> apriori_reference(
    const std::vector<Transaction>& txns, double min_support);

/// Real Apriori over BlockIo: one scan per level, blocks visited in the
/// partitioned order. Fills `levels` with the frequent itemsets.
sim::Co<void> run_dmine_real(cluster::Cluster& cluster, BlockIo& io,
                             const DmineConfig& cfg, Bytes64 dataset_bytes,
                             RunStats* stats,
                             std::vector<std::vector<ItemSet>>* levels);

/// Modeled paper-scale run: one partitioned scan of `dataset` in `block`
/// reads with `compute_per_block` between reads. Regions persist
/// (keep_cached) so the next run hits remote memory.
sim::Co<void> run_dmine_modeled(cluster::Cluster& cluster, BlockIo& io,
                                Bytes64 dataset, Bytes64 block,
                                Duration compute_per_block,
                                std::uint64_t scan_seed, RunStats* stats);

}  // namespace dodo::apps
