// lu: out-of-core dense LU decomposition (§5.2.1).
//
// The paper factors an 8192x8192 double matrix (536 MB) with 64-column
// slabs, the data striped over 8 files, giving a triangle-scan I/O pattern
// with requests from 12 KB to 516 KB (average 330 KB), ~9% I/O time, and a
// first-in replacement policy.
//
// Layout: slab j = columns [j*W, (j+1)*W); file f = rows
// [f*N/F, (f+1)*N/F). Each (file, slab) pair is one contiguous chunk —
// column-major within the chunk — and one caching region (512 KB at paper
// scale, matching the paper's 516 KB maximum request).
//
// Left-looking factorization (Doolittle, no pivoting — test matrices are
// made diagonally dominant): to factor slab j, slabs 0..j-1 are re-read
// (the triangle scan), each contributing rank-W updates; then the slab's
// own columns are factored and written back.
//
// run_lu_real does the actual arithmetic (verified against L*U
// reconstruction in the tests); run_lu_modeled replays the same I/O pattern
// with partial (below-diagonal) chunk reads and a flops/rate compute model
// for the paper-scale benchmark.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/block_io.hpp"
#include "apps/synthetic.hpp"  // RunStats
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "sim/task.hpp"

namespace dodo::apps {

struct LuConfig {
  int n = 8192;
  int slab_cols = 64;
  int files = 8;
  double flop_rate = 9e6;  // calibrated so the Dodo run spends ~9% of its time in I/O (paper §5.3)
  std::uint64_t seed = 5;

  [[nodiscard]] int slabs() const { return n / slab_cols; }
  [[nodiscard]] int rows_per_file() const { return n / files; }
  [[nodiscard]] Bytes64 chunk_bytes() const {
    return static_cast<Bytes64>(rows_per_file()) * slab_cols * 8;
  }
  /// Dataset offset of chunk (file f, slab j).
  [[nodiscard]] Bytes64 chunk_offset(int f, int j) const {
    return (static_cast<Bytes64>(f) * slabs() + j) * chunk_bytes();
  }
  [[nodiscard]] Bytes64 total_bytes() const {
    return static_cast<Bytes64>(n) * n * 8;
  }
};

/// Fills `a` (n*n column-major) with a random diagonally-dominant matrix.
std::vector<double> lu_make_matrix(const LuConfig& cfg);

/// Writes a column-major matrix into the dataset layout (direct store
/// access, no simulated time — test/example setup).
void lu_store_matrix(disk::DataStore& store, const LuConfig& cfg,
                     const std::vector<double>& a);

/// Reads the factored matrix back out of the dataset layout.
std::vector<double> lu_load_matrix(const disk::DataStore& store,
                                   const LuConfig& cfg);

/// Reconstructs L*U from a packed factorization (unit lower diagonal) and
/// returns the max abs error against `original`.
double lu_verify(const std::vector<double>& packed_lu,
                 const std::vector<double>& original, int n);

/// Real out-of-core factorization through BlockIo.
sim::Co<void> run_lu_real(cluster::Cluster& cluster, BlockIo& io,
                          LuConfig cfg, RunStats* stats);

/// Paper-scale modeled run: same triangle I/O (partial chunk reads below
/// the diagonal), compute charged at cfg.flop_rate.
sim::Co<void> run_lu_modeled(cluster::Cluster& cluster, BlockIo& io,
                             LuConfig cfg, RunStats* stats);

}  // namespace dodo::apps
