// Block I/O abstraction for the workloads.
//
// Every benchmark runs twice: the baseline reads its dataset straight
// through the filesystem (the paper's "without Dodo" bars), the Dodo run
// goes through the region-management library. Workload code is written once
// against BlockIo so both sides issue byte-identical request streams.
//
// DodoBlockIo maps the dataset onto fixed-size regions (the unit of caching
// and migration) and lazily copens them on first touch; requests must not
// span region boundaries, which all our workloads honor by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "manage/region_manager.hpp"
#include "sim/task.hpp"

namespace dodo::apps {

class BlockIo {
 public:
  virtual ~BlockIo() = default;
  virtual sim::Co<Bytes64> read(Bytes64 off, std::uint8_t* buf,
                                Bytes64 len) = 0;
  virtual sim::Co<Bytes64> write(Bytes64 off, const std::uint8_t* buf,
                                 Bytes64 len) = 0;
  /// End of run. keep_cached leaves remote copies for a later run.
  virtual sim::Co<void> finish(bool keep_cached) = 0;
};

/// Baseline: plain filesystem access.
class FsBlockIo final : public BlockIo {
 public:
  FsBlockIo(disk::SimFilesystem& fs, int fd) : fs_(fs), fd_(fd) {}

  sim::Co<Bytes64> read(Bytes64 off, std::uint8_t* buf, Bytes64 len) override {
    return fs_.pread(fd_, off, len, buf);
  }
  sim::Co<Bytes64> write(Bytes64 off, const std::uint8_t* buf,
                         Bytes64 len) override {
    return fs_.pwrite(fd_, off, len, buf);
  }
  sim::Co<void> finish(bool) override { (void)co_await fs_.fsync(fd_); }

 private:
  disk::SimFilesystem& fs_;
  int fd_;
};

/// Dodo: dataset carved into regions served by the region manager.
class DodoBlockIo final : public BlockIo {
 public:
  DodoBlockIo(manage::RegionManager& mgr, int fd, Bytes64 dataset,
              Bytes64 region_size)
      : mgr_(mgr),
        fd_(fd),
        dataset_(dataset),
        region_size_(region_size),
        cds_((static_cast<std::size_t>((dataset + region_size - 1) /
                                       region_size)),
             -1) {}

  sim::Co<Bytes64> read(Bytes64 off, std::uint8_t* buf, Bytes64 len) override;
  sim::Co<Bytes64> write(Bytes64 off, const std::uint8_t* buf,
                         Bytes64 len) override;
  sim::Co<void> finish(bool keep_cached) override {
    return mgr_.close_all(keep_cached);
  }

 private:
  int region_of(Bytes64 off, Bytes64 len);

  manage::RegionManager& mgr_;
  int fd_;
  Bytes64 dataset_;
  Bytes64 region_size_;
  std::vector<int> cds_;  // region index -> copen descriptor (-1 = not yet)
};

}  // namespace dodo::apps
