#include "apps/dmine.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace dodo::apps {

namespace {

/// Marker for "no more records in this block".
constexpr std::uint16_t kEndOfBlock = 0xFFFF;

/// Deterministic shuffled block order (the "partitioned" scan).
std::vector<Bytes64> partition_order(Bytes64 nblocks, std::uint64_t seed) {
  std::vector<Bytes64> order(static_cast<std::size_t>(nblocks));
  for (Bytes64 i = 0; i < nblocks; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  return order;
}

}  // namespace

std::vector<Transaction> generate_transactions(const DmineConfig& cfg) {
  Rng rng(cfg.seed);
  // Embedded patterns a la the IBM Quest generator: a pool of small itemsets
  // that recur across transactions, plus uniform noise items.
  std::vector<ItemSet> patterns;
  for (int p = 0; p < cfg.num_patterns; ++p) {
    std::set<std::uint32_t> s;
    while (s.size() < static_cast<std::size_t>(cfg.pattern_len)) {
      s.insert(static_cast<std::uint32_t>(rng.below(cfg.num_items)));
    }
    patterns.emplace_back(s.begin(), s.end());
  }
  std::vector<Transaction> txns;
  txns.reserve(cfg.num_transactions);
  for (std::uint32_t t = 0; t < cfg.num_transactions; ++t) {
    std::set<std::uint32_t> items;
    if (!patterns.empty() && rng.chance(cfg.pattern_prob)) {
      const auto& pat = patterns[rng.below(patterns.size())];
      items.insert(pat.begin(), pat.end());
    }
    const auto target = static_cast<std::size_t>(
        std::max(1.0, rng.exponential(cfg.avg_items)));
    while (items.size() < std::min<std::size_t>(target, cfg.num_items)) {
      items.insert(static_cast<std::uint32_t>(rng.below(cfg.num_items)));
    }
    txns.emplace_back(items.begin(), items.end());
  }
  return txns;
}

std::vector<std::uint8_t> encode_transactions(
    const std::vector<Transaction>& txns, Bytes64 block) {
  std::vector<std::uint8_t> out;
  auto put16 = [&out](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  auto put32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  Bytes64 block_used = 0;
  auto pad_block = [&] {
    if (block_used > 0) {
      // end-of-block marker + zero fill
      put16(kEndOfBlock);
      block_used += 2;
      while (block_used < block) {
        out.push_back(0);
        ++block_used;
      }
      block_used = 0;
    }
  };
  for (const auto& txn : txns) {
    const Bytes64 rec = 2 + 4 * static_cast<Bytes64>(txn.size());
    assert(rec + 2 <= block && "transaction larger than a block");
    if (block_used + rec + 2 > block) pad_block();
    put16(static_cast<std::uint16_t>(txn.size()));
    for (const auto item : txn) put32(item);
    block_used += rec;
  }
  pad_block();
  return out;
}

std::vector<Transaction> decode_block(const std::uint8_t* data, Bytes64 len) {
  std::vector<Transaction> txns;
  Bytes64 pos = 0;
  while (pos + 2 <= len) {
    const std::uint16_t n = static_cast<std::uint16_t>(
        data[pos] | (data[pos + 1] << 8));
    pos += 2;
    if (n == kEndOfBlock || pos + 4 * static_cast<Bytes64>(n) > len) break;
    Transaction txn;
    txn.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
      std::uint32_t v = 0;
      for (int b = 0; b < 4; ++b) {
        v |= static_cast<std::uint32_t>(data[pos + b]) << (8 * b);
      }
      pos += 4;
      txn.push_back(v);
    }
    txns.push_back(std::move(txn));
  }
  return txns;
}

namespace {

bool contains_all(const Transaction& txn, const ItemSet& set) {
  // Both sorted.
  return std::includes(txn.begin(), txn.end(), set.begin(), set.end());
}

/// Apriori candidate generation: join Lk with itself, prune.
std::vector<ItemSet> gen_candidates(const std::vector<ItemSet>& lk) {
  std::vector<ItemSet> out;
  const std::set<ItemSet> lk_set(lk.begin(), lk.end());
  for (std::size_t i = 0; i < lk.size(); ++i) {
    for (std::size_t j = i + 1; j < lk.size(); ++j) {
      const auto& a = lk[i];
      const auto& b = lk[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) continue;
      ItemSet cand(a);
      cand.push_back(b.back());
      if (cand[cand.size() - 2] > cand.back()) {
        std::swap(cand[cand.size() - 2], cand.back());
      }
      // Prune: every (k-1)-subset must be frequent.
      bool ok = true;
      for (std::size_t drop = 0; ok && drop < cand.size(); ++drop) {
        ItemSet sub;
        for (std::size_t x = 0; x < cand.size(); ++x) {
          if (x != drop) sub.push_back(cand[x]);
        }
        ok = lk_set.count(sub) != 0;
      }
      if (ok) out.push_back(std::move(cand));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<std::vector<ItemSet>> apriori_reference(
    const std::vector<Transaction>& txns, double min_support) {
  const auto threshold = static_cast<std::uint64_t>(
      min_support * static_cast<double>(txns.size()));
  std::vector<std::vector<ItemSet>> levels;

  // L1.
  std::map<std::uint32_t, std::uint64_t> item_counts;
  for (const auto& t : txns) {
    for (const auto item : t) ++item_counts[item];
  }
  std::vector<ItemSet> lk;
  for (const auto& [item, count] : item_counts) {
    if (count >= threshold) lk.push_back({item});
  }
  while (!lk.empty()) {
    levels.push_back(lk);
    auto candidates = gen_candidates(lk);
    if (candidates.empty()) break;
    std::map<ItemSet, std::uint64_t> counts;
    for (const auto& t : txns) {
      for (const auto& c : candidates) {
        if (contains_all(t, c)) ++counts[c];
      }
    }
    lk.clear();
    for (const auto& [set, count] : counts) {
      if (count >= threshold) lk.push_back(set);
    }
    std::sort(lk.begin(), lk.end());
  }
  return levels;
}

sim::Co<void> run_dmine_real(cluster::Cluster& cluster, BlockIo& io,
                             const DmineConfig& cfg, Bytes64 dataset_bytes,
                             RunStats* stats,
                             std::vector<std::vector<ItemSet>>* levels) {
  auto& sim = cluster.sim();
  const Bytes64 nblocks = dataset_bytes / cfg.block;
  const std::uint64_t total_txns = cfg.num_transactions;
  const auto threshold = static_cast<std::uint64_t>(
      cfg.min_support * static_cast<double>(total_txns));
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(cfg.block));
  levels->clear();

  // Level 1 candidates are implicit (all items); later levels generated.
  std::vector<ItemSet> candidates;
  int level = 1;
  for (;;) {
    const SimTime t0 = sim.now();
    std::map<std::uint32_t, std::uint64_t> item_counts;
    std::map<ItemSet, std::uint64_t> set_counts;
    const auto order =
        partition_order(nblocks, cfg.seed * 77 +
                                     static_cast<std::uint64_t>(level));
    for (const auto blk : order) {
      const Bytes64 got =
          co_await io.read(blk * cfg.block, buf.data(), cfg.block);
      ++stats->requests;
      const auto txns = decode_block(buf.data(), got);
      for (const auto& t : txns) {
        if (level == 1) {
          for (const auto item : t) ++item_counts[item];
        } else {
          for (const auto& c : candidates) {
            if (contains_all(t, c)) ++set_counts[c];
          }
        }
      }
    }
    std::vector<ItemSet> lk;
    if (level == 1) {
      for (const auto& [item, count] : item_counts) {
        if (count >= threshold) lk.push_back({item});
      }
    } else {
      for (const auto& [set, count] : set_counts) {
        if (count >= threshold) lk.push_back(set);
      }
      std::sort(lk.begin(), lk.end());
    }
    stats->iteration_time.push_back(sim.now() - t0);
    if (lk.empty()) break;
    levels->push_back(lk);
    candidates = gen_candidates(lk);
    ++level;
    if (candidates.empty()) break;
  }
  // dmine keeps its regions cached for the next run.
  co_await io.finish(/*keep_cached=*/true);
}

sim::Co<void> run_dmine_modeled(cluster::Cluster& cluster, BlockIo& io,
                                Bytes64 dataset, Bytes64 block,
                                Duration compute_per_block,
                                std::uint64_t scan_seed, RunStats* stats) {
  auto& sim = cluster.sim();
  const Bytes64 nblocks = dataset / block;
  const SimTime t0 = sim.now();
  const auto order = partition_order(nblocks, scan_seed);
  for (const auto blk : order) {
    co_await io.read(blk * block, nullptr, block);
    ++stats->requests;
    co_await sim.sleep(compute_per_block);
  }
  stats->iteration_time.push_back(sim.now() - t0);
  co_await io.finish(/*keep_cached=*/true);
}

}  // namespace dodo::apps
