#include "manage/region_manager.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/log.hpp"

namespace dodo::manage {

RegionManager::RegionManager(sim::Simulator& sim, runtime::DodoClient& dodo,
                             disk::SimFilesystem& fs, ManageParams params)
    : sim_(sim), dodo_(dodo), fs_(fs), params_(params) {}

int RegionManager::copen(Bytes64 len, int fd, Bytes64 offset) {
  if (len < 1 || offset < 0 || !fs_.fd_valid(fd) || !fs_.fd_writable(fd)) {
    dodo_errno() = kDodoEINVAL;
    return -1;
  }
  const int cd = next_cd_++;
  Region r;
  r.len = len;
  r.fd = fd;
  r.file_offset = offset;
  regions_[cd] = std::move(r);
  return cd;
}

RegionManager::Region* RegionManager::lookup(int cd) {
  auto it = regions_.find(cd);
  return it == regions_.end() ? nullptr : &it->second;
}

bool RegionManager::resident(int cd) const {
  auto it = regions_.find(cd);
  return it != regions_.end() && it->second.resident;
}

bool RegionManager::has_remote(int cd) const {
  auto it = regions_.find(cd);
  return it != regions_.end() && it->second.rdesc >= 0 &&
         dodo_.active(it->second.rdesc);
}

int RegionManager::csetPolicy(Policy policy) {
  params_.policy = policy;
  return 0;
}

int RegionManager::select_victim(int incoming_cd) const {
  switch (params_.policy) {
    case Policy::kFirstIn:
      // First-in never displaces a cached region: the incoming region
      // itself loses and bypasses the local cache.
      return -1;
    case Policy::kLru:
    case Policy::kMru: {
      int victim = -1;
      std::uint64_t best = 0;
      for (const auto& [cd, r] : regions_) {
        if (!r.resident || cd == incoming_cd) continue;
        const bool better =
            victim < 0 || (params_.policy == Policy::kLru
                               ? r.last_access < best
                               : r.last_access > best);
        if (better) {
          victim = cd;
          best = r.last_access;
        }
      }
      return victim;
    }
  }
  return -1;
}

int RegionManager::select_safe_victim(int incoming_cd) const {
  if (params_.policy == Policy::kFirstIn) return -1;  // never displaces
  int victim = -1;
  std::uint64_t best = 0;
  for (const auto& [cd, r] : regions_) {
    if (!r.resident || cd == incoming_cd) continue;
    if (r.dirty || !r.remote_valid) continue;
    if (r.rdesc < 0 || dodo_.replica_depth(r.rdesc) < 2) continue;
    if (victim < 0 || r.last_access < best) {
      victim = cd;
      best = r.last_access;
    }
  }
  return victim;
}

sim::Co<void> RegionManager::write_to_disk(int cd, Region& r,
                                           obs::TraceContext ctx) {
  (void)cd;
  ++metrics_.dirty_writebacks;
  const std::uint8_t* src = r.local.empty() ? nullptr : r.local.data();
  obs::ScopedSpan dspan(params_.spans, "disk.write", ctx);
  co_await fs_.pwrite(r.fd, r.file_offset, r.len, src);
  r.dirty = false;
}

sim::Co<bool> RegionManager::ensure_remote_desc(Region& r) {
  if (r.rdesc >= 0 && dodo_.active(r.rdesc)) co_return true;
  r.rdesc = -1;
  r.remote_valid = false;
  auto [rd, reused] = co_await dodo_.mopen_ex(r.len, r.fd, r.file_offset);
  if (rd < 0) co_return false;
  r.rdesc = rd;
  // A reused region still holds the data a previous run (or a previous
  // incarnation of this region) pushed; a fresh one holds nothing yet.
  r.remote_valid = reused;
  co_return true;
}

sim::Co<void> RegionManager::scrap_remote(Region& r) {
  if (r.rdesc >= 0) {
    co_await dodo_.mclose(r.rdesc);
    r.rdesc = -1;
  }
  r.remote_valid = false;
}

sim::Co<bool> RegionManager::clone_remote(int cd, Region& r,
                                          obs::TraceContext ctx) {
  (void)cd;
  // Refraction: after a failed clone, skip clone attempts for a while
  // (Figure 5's lastFailTime / refractionPeriod logic).
  if (sim_.now() - last_clone_fail_ < params_.clone_refraction) {
    ++metrics_.clone_refraction_skips;
    co_return false;
  }
  if (!co_await ensure_remote_desc(r)) {
    last_clone_fail_ = sim_.now();
    ++metrics_.clone_failures;
    co_return false;
  }
  if (r.remote_valid) co_return true;  // remote copy already current
  const std::uint8_t* src = r.local.empty() ? nullptr : r.local.data();
  const Status st = co_await dodo_.push_remote(r.rdesc, 0, src, r.len, ctx);
  if (!st.is_ok()) {
    last_clone_fail_ = sim_.now();
    ++metrics_.clone_failures;
    co_await scrap_remote(r);
    co_return false;
  }
  r.remote_valid = true;
  ++metrics_.clones;
  co_return true;
}

sim::Co<void> RegionManager::drop_local(int cd, Region& r) {
  (void)cd;
  if (!r.resident) co_return;
  if (r.dirty) co_await write_to_disk(cd, r);
  r.local.clear();
  r.local.shrink_to_fit();
  r.resident = false;
  resident_bytes_ -= r.len;
  ++metrics_.evictions;
}

sim::Co<bool> RegionManager::grim_reaper(int incoming_cd, Bytes64 need,
                                         obs::TraceContext parent) {
  if (need > params_.local_cache_bytes) co_return false;  // can never fit
  obs::ScopedSpan span(params_.spans, "manage.grim_reaper", parent);
  while (params_.local_cache_bytes - resident_bytes_ < need) {
    // Replica-aware pre-pass: a clean resident whose remote copy is current
    // on >= 2 live replicas drops for free, so take it ahead of the policy
    // victim (which may need a writeback or a clone to leave safely).
    int victim_cd = select_safe_victim(incoming_cd);
    const bool safe = victim_cd >= 0;
    if (!safe) victim_cd = select_victim(incoming_cd);
    if (victim_cd < 0) co_return false;  // first-in: incoming loses
    Region& victim = regions_.at(victim_cd);
    ++metrics_.reaper_victims;
    if (safe) ++metrics_.replica_safe_evictions;
    if (victim.dirty) co_await write_to_disk(victim_cd, victim, span.ctx());
    // best effort migration
    co_await clone_remote(victim_cd, victim, span.ctx());
    co_await drop_local(victim_cd, victim);
  }
  co_return true;
}

sim::Co<bool> RegionManager::fault_in(int cd, Region& r,
                                      obs::TraceContext parent) {
  if (r.resident) co_return true;
  obs::ScopedSpan span(params_.spans, "manage.fault_in", parent);
  // Attach to remote memory on a fault with no usable descriptor. If the
  // central manager still has this key cached (persistent datasets across
  // runs), the attach comes back "reused" and the fill below comes from
  // remote memory instead of disk. The runtime's refraction period makes
  // repeated attempts after an allocation failure cheap (no RPC).
  if (r.rdesc < 0 || !dodo_.active(r.rdesc)) {
    co_await ensure_remote_desc(r);
  }
  if (!co_await grim_reaper(cd, r.len, span.ctx())) co_return false;

  std::uint8_t* dst = nullptr;
  if (params_.materialize) {
    r.local.assign(static_cast<std::size_t>(r.len), 0);
    dst = r.local.data();
  }
  bool filled = false;
  if (r.rdesc >= 0 && dodo_.active(r.rdesc) && r.remote_valid) {
    const auto got = co_await dodo_.mread_ex(r.rdesc, 0, dst, r.len,
                                             span.ctx());
    if (got.n == r.len && got.filled) {
      filled = true;
      // A degraded read served some fragments' byte ranges from the
      // backing file (clean-cache: disk bytes equal remote bytes), so
      // split the accounting by source.
      Bytes64 from_disk = 0;
      for (const auto& [off, rlen] : got.disk_ranges) from_disk += rlen;
      if (from_disk == 0) {
        ++metrics_.remote_fills;
      } else {
        ++metrics_.mixed_fills;
        metrics_.bytes_from_disk += from_disk;
      }
      metrics_.bytes_from_remote += got.n - from_disk;
    } else if (got.n >= 0) {
      // The remote region exists but was never (fully) written — the
      // "reused" hint from mopen was about the allocation, not the data.
      r.remote_valid = false;
    }
    // On failure libdodo has dropped the node's descriptors; fall to disk.
  }
  if (!filled) {
    obs::ScopedSpan dspan(params_.spans, "disk.read", span.ctx());
    co_await fs_.pread(r.fd, r.file_offset, r.len, dst);
    ++metrics_.disk_fills;
    metrics_.bytes_from_disk += r.len;
  }
  r.resident = true;
  r.dirty = false;
  r.admitted_at = ++access_clock_;
  resident_bytes_ += r.len;
  co_return true;
}

sim::Co<Bytes64> RegionManager::cread(int cd, Bytes64 offset,
                                      std::uint8_t* buf, Bytes64 len) {
  Region* r = lookup(cd);
  if (r == nullptr) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  if (offset < 0 || offset >= r->len || len < 0) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  const Bytes64 n = std::min(len, r->len - offset);
  obs::ScopedSpan span(params_.spans, "manage.cread");
  const auto pol = static_cast<std::size_t>(params_.policy);
  if (r->resident) ++policy_hits_[pol]; else ++policy_misses_[pol];
  r->last_access = ++access_clock_;

  if (!r->resident && !co_await fault_in(cd, *r, span.ctx())) {
    co_await serve_bypass_read(*r, offset, buf, n, span.ctx());
    co_return n;
  }

  // Serve from the local region cache.
  if (buf != nullptr && !r->local.empty()) {
    std::copy_n(r->local.begin() + static_cast<std::ptrdiff_t>(offset),
                static_cast<std::size_t>(n), buf);
  }
  co_await sim_.sleep(transfer_time(n, params_.copy_rate_Bps));
  ++metrics_.local_hits;
  metrics_.bytes_from_local += n;
  co_return n;
}

sim::Co<void> RegionManager::serve_bypass_read(Region& r, Bytes64 offset,
                                               std::uint8_t* buf, Bytes64 n,
                                               obs::TraceContext ctx) {
  // Serve without caching locally (the policy refused admission).
  if (r.rdesc >= 0 && dodo_.active(r.rdesc) && r.remote_valid) {
    const auto got = co_await dodo_.mread_ex(r.rdesc, offset, buf, n, ctx);
    if (got.n == n && got.filled) {
      Bytes64 from_disk = 0;
      for (const auto& [off, rlen] : got.disk_ranges) from_disk += rlen;
      ++metrics_.remote_passthrough;
      metrics_.bytes_from_remote += n - from_disk;
      metrics_.bytes_from_disk += from_disk;
      co_return;
    }
    if (got.n >= 0) r.remote_valid = false;  // allocated, never written
  }
  // Disk path. This is also where first-in pushes the overflow of the local
  // cache into the remote tier: read the whole region once and clone it, so
  // later scans hit remote memory (dmine's "entire dataset in remote memory
  // during the first run").
  const bool try_migrate =
      !r.remote_valid &&
      sim_.now() - last_clone_fail_ >= params_.clone_refraction;
  if (try_migrate && co_await ensure_remote_desc(r) && !r.remote_valid) {
    net::Buf whole;
    std::uint8_t* dst = nullptr;
    if (params_.materialize) {
      whole.assign(static_cast<std::size_t>(r.len), 0);
      dst = whole.data();
    }
    {
      obs::ScopedSpan dspan(params_.spans, "disk.read", ctx);
      co_await fs_.pread(r.fd, r.file_offset, r.len, dst);
    }
    ++metrics_.disk_passthrough;
    metrics_.bytes_from_disk += n;
    const Status st = co_await dodo_.push_remote(
        r.rdesc, 0, dst == nullptr ? nullptr : dst, r.len, ctx);
    if (st.is_ok()) {
      r.remote_valid = true;
      ++metrics_.clones;
    } else {
      last_clone_fail_ = sim_.now();
      ++metrics_.clone_failures;
      co_await scrap_remote(r);
    }
    if (buf != nullptr && dst != nullptr) {
      std::copy_n(whole.begin() + static_cast<std::ptrdiff_t>(offset),
                  static_cast<std::size_t>(n), buf);
    }
    co_return;
  }
  if (try_migrate) {
    last_clone_fail_ = sim_.now();
  }
  {
    obs::ScopedSpan dspan(params_.spans, "disk.read", ctx);
    co_await fs_.pread(r.fd, r.file_offset + offset, n, buf);
  }
  ++metrics_.disk_passthrough;
  metrics_.bytes_from_disk += n;
}

sim::Co<Bytes64> RegionManager::cwrite(int cd, Bytes64 offset,
                                       const std::uint8_t* buf, Bytes64 len) {
  Region* r = lookup(cd);
  if (r == nullptr) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  if (offset < 0 || offset >= r->len || len < 0) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  const Bytes64 n = std::min(len, r->len - offset);
  obs::ScopedSpan span(params_.spans, "manage.cwrite");
  const auto pol = static_cast<std::size_t>(params_.policy);
  if (r->resident) ++policy_hits_[pol]; else ++policy_misses_[pol];
  r->last_access = ++access_clock_;

  if (!r->resident && !co_await fault_in(cd, *r, span.ctx())) {
    // Bypass: write through to disk and, if a valid remote copy exists,
    // keep it coherent too (libdodo's parallel write-through).
    if (r->rdesc >= 0 && dodo_.active(r->rdesc) && r->remote_valid) {
      const Bytes64 got =
          co_await dodo_.mwrite(r->rdesc, offset, buf, n, span.ctx());
      if (got == n) co_return n;
      r->remote_valid = false;
    }
    obs::ScopedSpan dspan(params_.spans, "disk.write", span.ctx());
    co_await fs_.pwrite(r->fd, r->file_offset + offset, n, buf);
    co_return n;
  }

  if (buf != nullptr && !r->local.empty()) {
    std::copy_n(buf, static_cast<std::size_t>(n),
                r->local.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  co_await sim_.sleep(transfer_time(n, params_.copy_rate_Bps));
  r->dirty = true;
  r->remote_valid = false;  // local copy diverged from any remote clone
  co_return n;
}

sim::Co<bool> RegionManager::flush_to_remote(Region& r) {
  if (!co_await ensure_remote_desc(r)) co_return false;
  if (r.remote_valid) co_return true;
  net::Buf tmp;
  const std::uint8_t* src = nullptr;
  if (r.resident) {
    src = r.local.empty() ? nullptr : r.local.data();
  } else {
    std::uint8_t* dst = nullptr;
    if (params_.materialize) {
      tmp.assign(static_cast<std::size_t>(r.len), 0);
      dst = tmp.data();
    }
    co_await fs_.pread(r.fd, r.file_offset, r.len, dst);
    src = dst;
  }
  const Status st = co_await dodo_.push_remote(r.rdesc, 0, src, r.len);
  if (!st.is_ok()) {
    ++metrics_.clone_failures;
    co_await scrap_remote(r);
    co_return false;
  }
  r.remote_valid = true;
  ++metrics_.clones;
  co_return true;
}

sim::Co<int> RegionManager::csync(int cd) {
  Region* r = lookup(cd);
  if (r == nullptr) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  // "Blocks till the region has been written to remote memory and to disk."
  if (r->resident && r->dirty) {
    co_await write_to_disk(cd, *r);
  }
  co_await fs_.fsync(r->fd);
  co_await flush_to_remote(*r);
  co_return 0;
}

sim::Co<int> RegionManager::cclose(int cd) {
  Region* r = lookup(cd);
  if (r == nullptr) {
    dodo_errno() = kDodoEINVAL;
    co_return -1;
  }
  if (r->resident && r->dirty) {
    co_await write_to_disk(cd, *r);
  }
  if (r->resident) {
    resident_bytes_ -= r->len;
  }
  if (r->rdesc >= 0 && dodo_.active(r->rdesc)) {
    co_await dodo_.mclose(r->rdesc);
  }
  regions_.erase(cd);
  co_return 0;
}

sim::Co<void> RegionManager::close_all(bool keep_remote) {
  std::vector<int> cds;
  cds.reserve(regions_.size());
  for (const auto& [cd, r] : regions_) cds.push_back(cd);
  std::sort(cds.begin(), cds.end());
  for (const int cd : cds) {
    if (keep_remote) {
      Region& r = regions_.at(cd);
      if (r.resident && r.dirty) co_await write_to_disk(cd, r);
      // Persistence contract: a remote region left behind must hold the
      // region's real content, otherwise the next run's mopen-reuse would
      // serve garbage. Flush stragglers; release what cannot be flushed.
      const bool remote_ok = co_await flush_to_remote(r);
      if (!remote_ok && r.rdesc >= 0 && dodo_.active(r.rdesc)) {
        co_await dodo_.mclose(r.rdesc);
      }
      if (r.resident) resident_bytes_ -= r.len;
      regions_.erase(cd);  // leave the remote copy cached for the next run
    } else {
      co_await cclose(cd);
    }
  }
}

obs::MetricsSnapshot RegionManager::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("manage.local_hits", metrics_.local_hits);
  out.set_counter("manage.remote_fills", metrics_.remote_fills);
  out.set_counter("manage.mixed_fills", metrics_.mixed_fills);
  out.set_counter("manage.disk_fills", metrics_.disk_fills);
  out.set_counter("manage.remote_passthrough", metrics_.remote_passthrough);
  out.set_counter("manage.disk_passthrough", metrics_.disk_passthrough);
  out.set_counter("manage.evictions", metrics_.evictions);
  out.set_counter("manage.reaper_victims", metrics_.reaper_victims);
  out.set_counter("manage.replica_safe_evictions",
                  metrics_.replica_safe_evictions);
  out.set_counter("manage.clones", metrics_.clones);
  out.set_counter("manage.clone_failures", metrics_.clone_failures);
  out.set_counter("manage.clone_refraction_skips",
                  metrics_.clone_refraction_skips);
  out.set_counter("manage.dirty_writebacks", metrics_.dirty_writebacks);
  out.set_counter("manage.bytes_from_local",
                  static_cast<std::uint64_t>(metrics_.bytes_from_local));
  out.set_counter("manage.bytes_from_remote",
                  static_cast<std::uint64_t>(metrics_.bytes_from_remote));
  out.set_counter("manage.bytes_from_disk",
                  static_cast<std::uint64_t>(metrics_.bytes_from_disk));
  static constexpr const char* kPolicyNames[] = {"lru", "mru", "first_in"};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string base = std::string("manage.policy.") + kPolicyNames[i];
    out.set_counter(base + ".hits", policy_hits_[i]);
    out.set_counter(base + ".misses", policy_misses_[i]);
  }
  out.set_gauge("manage.resident_bytes", resident_bytes_);
  out.set_gauge("manage.regions", static_cast<std::int64_t>(regions_.size()));
  return out;
}

}  // namespace dodo::manage
