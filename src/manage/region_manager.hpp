// The region-management library (libmanage), paper §3.3 / §4.5.
//
// Layered on top of libdodo for applications with well-defined access
// patterns. Manages a local cache of memory regions; every region is in one
// of four states: (1) cached locally, (2) cached remotely, (3) cached both
// locally and remotely, (4) on disk only. When the local pool runs short,
// the grimReaper (Figure 5) picks victims with the configured replacement
// policy, writes dirty victims to disk, clones clean victims to remote
// memory (rate-limited by a refraction period after a failed clone), and
// drops them locally.
//
// Policies (pluggable per §3.3's policy-module interface):
//   LRU      - evict the least recently used region.
//   MRU      - evict the most recently used region.
//   first-in - regions are cached in the order first accessed and never
//              replaced: when the cache is full the *incoming* region is the
//              victim, i.e. it bypasses the local cache (and flows to remote
//              memory instead). Motivated by sequential/triangle multi-scan
//              workloads (dmine, lu).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.hpp"
#include "common/units.hpp"
#include "disk/filesystem.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::manage {

enum class Policy : std::uint8_t { kLru = 0, kMru = 1, kFirstIn = 2 };

struct ManageParams {
  Bytes64 local_cache_bytes = 80 * 1024 * 1024;  // the paper's 80 MB
  double copy_rate_Bps = 80e6;  // local memcpy when serving from cache
  Duration clone_refraction = seconds(5.0);  // Figure 5's refractionPeriod
  bool materialize = true;
  Policy policy = Policy::kLru;  // "If no policy is specified, LRU"
  /// Optional trace-span sink (not owned). Null disables span recording.
  obs::SpanRecorder* spans = nullptr;
};

struct ManageMetrics {
  std::uint64_t local_hits = 0;
  std::uint64_t remote_fills = 0;    // whole-region faults, fully remote
  std::uint64_t mixed_fills = 0;     // faults with lost-fragment disk ranges
  std::uint64_t disk_fills = 0;      // whole-region faults from disk
  std::uint64_t remote_passthrough = 0;  // uncached partial remote reads
  std::uint64_t disk_passthrough = 0;    // uncached partial disk reads
  std::uint64_t evictions = 0;
  std::uint64_t clones = 0;          // regions migrated to remote memory
  std::uint64_t clone_failures = 0;
  std::uint64_t clone_refraction_skips = 0;
  std::uint64_t dirty_writebacks = 0;
  std::int64_t bytes_from_local = 0;
  std::int64_t bytes_from_remote = 0;
  std::int64_t bytes_from_disk = 0;
  /// Residents displaced by the grimReaper (Figure 5 victim count). Differs
  /// from `evictions`, which also counts drops from cclose/close_all.
  std::uint64_t reaper_victims = 0;
  /// Reaper victims chosen by the replica-aware fast path: clean residents
  /// whose remote copy is current on >= 2 live replicas (free to drop, and
  /// the fill-back survives any single host loss).
  std::uint64_t replica_safe_evictions = 0;
};

class RegionManager {
 public:
  RegionManager(sim::Simulator& sim, runtime::DodoClient& dodo,
                disk::SimFilesystem& fs, ManageParams params = {});

  // -- the paper's Figure 4 API ---------------------------------------------

  /// Registers a region backed by [offset, offset+len) of fd. Cheap: no I/O
  /// happens until the first access. Returns a descriptor >= 0 or -1/EINVAL.
  int copen(Bytes64 len, int fd, Bytes64 offset);

  sim::Co<Bytes64> cread(int cd, Bytes64 offset, std::uint8_t* buf,
                         Bytes64 len);
  sim::Co<Bytes64> cwrite(int cd, Bytes64 offset, const std::uint8_t* buf,
                          Bytes64 len);

  /// Flushes (disk + remote if present) and forgets the region.
  sim::Co<int> cclose(int cd);

  /// Forces the region to remote memory and disk; blocks until both done.
  sim::Co<int> csync(int cd);

  int csetPolicy(Policy policy);

  // -- extras ----------------------------------------------------------------

  /// Closes every region (end-of-run cleanup); keep_remote leaves remote
  /// copies cached (persistent datasets, dmine mode).
  sim::Co<void> close_all(bool keep_remote);

  [[nodiscard]] const ManageMetrics& metrics() const { return metrics_; }
  [[nodiscard]] Bytes64 resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] Policy policy() const { return params_.policy; }

  /// Per-policy cache accounting: every cread/cwrite that reaches the cache
  /// is a hit (region resident) or a miss, booked under the policy active
  /// at access time — csetPolicy mid-run splits the counts.
  [[nodiscard]] std::uint64_t policy_hits(Policy p) const {
    return policy_hits_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t policy_misses(Policy p) const {
    return policy_misses_[static_cast<std::size_t>(p)];
  }

  /// Everything the library knows about itself, under "manage." names.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  /// Test hooks.
  [[nodiscard]] bool resident(int cd) const;
  [[nodiscard]] bool has_remote(int cd) const;

 private:
  struct Region {
    Bytes64 len = 0;
    int fd = -1;
    Bytes64 file_offset = 0;
    net::Buf local;        // materialized local copy (empty in phantom mode)
    bool resident = false;
    bool dirty = false;
    int rdesc = -1;        // libdodo descriptor, -1 if never cloned
    bool remote_valid = false;  // remote copy matches current content
    std::uint64_t last_access = 0;
    std::uint64_t admitted_at = 0;
  };

  Region* lookup(int cd);

  /// Figure 5: frees local space for `incoming` (needs `need` bytes).
  /// Returns true if the incoming region may be admitted.
  sim::Co<bool> grim_reaper(int incoming_cd, Bytes64 need,
                            obs::TraceContext parent = {});

  /// Picks the victim per the current policy; -1 = evict nothing (first-in
  /// refuses to displace residents for the incoming region).
  [[nodiscard]] int select_victim(int incoming_cd) const;

  /// Replica-aware pre-pass (LRU/MRU only): the LRU resident that is clean
  /// and whose remote copy is current on >= 2 live replicas. Dropping it
  /// costs no I/O and the data outlives any single idle-host reclaim; -1
  /// when no such region exists (fall through to the policy victim).
  [[nodiscard]] int select_safe_victim(int incoming_cd) const;

  sim::Co<void> write_to_disk(int cd, Region& r, obs::TraceContext ctx = {});
  sim::Co<bool> clone_remote(int cd, Region& r, obs::TraceContext ctx = {});

  /// Makes the remote copy hold the region's current content, sourcing from
  /// the local copy if resident, else from disk. Unlike clone_remote this is
  /// not refraction-gated: it backs the explicit csync/close flush paths.
  sim::Co<bool> flush_to_remote(Region& r);
  sim::Co<bool> fault_in(int cd, Region& r, obs::TraceContext parent = {});
  sim::Co<void> drop_local(int cd, Region& r);

  /// Releases a region's remote copy after a failed push: a never-filled
  /// remote region must not stay registered at the cmd, or a later
  /// re-attach would see it as "reused" and trust unwritten memory.
  sim::Co<void> scrap_remote(Region& r);

  /// Ensures a remote descriptor exists (mopen; honors refraction). On a
  /// fresh attach, remote_valid is set from the cmd's "reused" flag so a
  /// previous run's cached data is served from remote memory.
  sim::Co<bool> ensure_remote_desc(Region& r);

  /// Uncached service of [offset, offset+n) for a region the policy refused
  /// to admit; opportunistically migrates the region into remote memory.
  sim::Co<void> serve_bypass_read(Region& r, Bytes64 offset,
                                  std::uint8_t* buf, Bytes64 n,
                                  obs::TraceContext ctx = {});

  sim::Simulator& sim_;
  runtime::DodoClient& dodo_;
  disk::SimFilesystem& fs_;
  ManageParams params_;
  ManageMetrics metrics_;
  std::array<std::uint64_t, 3> policy_hits_{};    // indexed by Policy
  std::array<std::uint64_t, 3> policy_misses_{};

  std::unordered_map<int, Region> regions_;
  int next_cd_ = 0;
  Bytes64 resident_bytes_ = 0;
  std::uint64_t access_clock_ = 0;
  SimTime last_clone_fail_ = -(1LL << 62);
};

}  // namespace dodo::manage
