#include "trace/memory_trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

namespace dodo::trace {

HostClassStats paper_stats(HostClass cls) {
  // Table 1 of the paper, verbatim (KB).
  switch (cls) {
    case HostClass::k32:
      return {32 * 1024, 10310, 1133, 2402, 2257, 3746, 2686, 16310, 3844};
    case HostClass::k64:
      return {64 * 1024, 16347, 2081, 4093, 3776, 10017, 6982, 35079, 8030};
    case HostClass::k128:
      return {128 * 1024, 25512, 3257, 8216, 10271, 12583, 12621,
              84761,      17623};
    case HostClass::k256:
      return {256 * 1024, 50109, 8625, 7384, 7821, 17606, 23335,
              187045,     47535};
  }
  return {};
}

double HostTrace::mean_available_mb() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples) {
    sum += static_cast<double>(s.available_kb(total_kb));
  }
  return sum / static_cast<double>(samples.size()) / 1024.0;
}

double HostTrace::idle_fraction() const {
  if (samples.empty()) return 0.0;
  double idle = 0.0;
  for (const auto& s : samples) idle += s.idle ? 1.0 : 0.0;
  return idle / static_cast<double>(samples.size());
}

int HostTrace::dips_below(double frac) const {
  const auto threshold =
      static_cast<Bytes64>(frac * static_cast<double>(total_kb));
  int dips = 0;
  bool in_dip = false;
  for (const auto& s : samples) {
    const bool low = s.available_kb(total_kb) < threshold;
    if (low && !in_dip) ++dips;
    in_dip = low;
  }
  return dips;
}

namespace {

/// Mean-reverting AR(1) step with stationary (mean, sd).
double ar1_step(double x, double mean, double sd, double phi, Rng& rng) {
  const double innovation_sd = sd * std::sqrt(1.0 - phi * phi);
  return mean + phi * (x - mean) + rng.normal(0.0, innovation_sd);
}

/// Hour-of-day from a SimTime (the trace clock starts at midnight).
double hour_of_day(SimTime t) {
  const double h = to_seconds(t) / 3600.0;
  return h - 24.0 * std::floor(h / 24.0);
}

}  // namespace

HostTrace synthesize_host(HostClass cls, const TraceConfig& cfg,
                          std::uint64_t host_seed) {
  const HostClassStats st = paper_stats(cls);
  Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + host_seed);

  HostTrace trace;
  trace.cls = cls;
  trace.total_kb = st.total_kb;

  double kernel = st.kernel_mean;
  double fcache = st.fcache_mean;
  double proc = st.proc_mean;

  bool busy = false;
  SimTime state_until = 0;
  bool surging = false;
  SimTime surge_until = 0;

  const auto n = static_cast<std::size_t>(cfg.duration / cfg.sample_interval);
  trace.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SimTime t = static_cast<SimTime>(i) * cfg.sample_interval;

    kernel = ar1_step(kernel, st.kernel_mean, st.kernel_sd, cfg.ar_phi, rng);
    fcache = ar1_step(fcache, st.fcache_mean, st.fcache_sd, cfg.ar_phi, rng);
    proc = ar1_step(proc, st.proc_mean, st.proc_sd, cfg.ar_phi, rng);

    // Console activity: alternating renewal with a day-shaped busy rate.
    if (t >= state_until) {
      const double h = hour_of_day(t);
      const bool working_hours = h >= 9.0 && h < 18.0;
      const double busy_frac =
          working_hours ? cfg.busy_frac_day : cfg.busy_frac_night;
      busy = rng.chance(busy_frac);
      const double mean_len = static_cast<double>(cfg.busy_mean_len);
      state_until =
          t + static_cast<Duration>(rng.exponential(mean_len)) + kSecond;
    }
    // Occasional surges: someone runs something big (Figure 2's dips).
    if (!surging) {
      const double p_per_sample =
          cfg.surge_per_day * to_seconds(cfg.sample_interval) / 86400.0;
      if (rng.chance(p_per_sample)) {
        surging = true;
        surge_until = t + static_cast<Duration>(rng.exponential(
                              static_cast<double>(cfg.surge_mean_len)));
      }
    } else if (t >= surge_until) {
      surging = false;
    }

    Sample s;
    s.t = t;
    s.kernel_kb = static_cast<Bytes64>(std::max(0.0, kernel));
    s.fcache_kb = static_cast<Bytes64>(std::max(0.0, fcache));
    double p = std::max(0.0, proc);
    if (surging) {
      // A surge consumes most of what was free.
      const double free_kb = std::max(
          0.0, static_cast<double>(st.total_kb) - kernel - fcache - p);
      p += 0.85 * free_kb;
    }
    s.proc_kb = static_cast<Bytes64>(p);
    // Cap the sum at physical memory.
    const Bytes64 sum = s.kernel_kb + s.fcache_kb + s.proc_kb;
    if (sum > st.total_kb) {
      s.proc_kb -= (sum - st.total_kb);
      if (s.proc_kb < 0) s.proc_kb = 0;
    }
    s.idle = !busy && !surging;
    trace.samples.push_back(s);
  }
  return trace;
}

std::vector<HostClass> cluster_a_hosts() {
  // 29 hosts; mix chosen so the expected aggregate availability lands on
  // the paper's 3549 MB (all hosts): 13x256 + 13x128 + 3x64.
  std::vector<HostClass> hosts;
  for (int i = 0; i < 13; ++i) hosts.push_back(HostClass::k256);
  for (int i = 0; i < 13; ++i) hosts.push_back(HostClass::k128);
  for (int i = 0; i < 3; ++i) hosts.push_back(HostClass::k64);
  return hosts;
}

std::vector<HostClass> cluster_b_hosts() {
  // 23 hosts targeting 852 MB: 1x256 + 2x128 + 9x64 + 11x32.
  std::vector<HostClass> hosts;
  hosts.push_back(HostClass::k256);
  for (int i = 0; i < 2; ++i) hosts.push_back(HostClass::k128);
  for (int i = 0; i < 9; ++i) hosts.push_back(HostClass::k64);
  for (int i = 0; i < 11; ++i) hosts.push_back(HostClass::k32);
  return hosts;
}

double ClusterSeries::mean_all() const {
  double s = 0.0;
  for (const auto v : all_hosts_mb) s += v;
  return all_hosts_mb.empty() ? 0.0
                              : s / static_cast<double>(all_hosts_mb.size());
}

double ClusterSeries::mean_idle() const {
  double s = 0.0;
  for (const auto v : idle_hosts_mb) s += v;
  return idle_hosts_mb.empty()
             ? 0.0
             : s / static_cast<double>(idle_hosts_mb.size());
}

ClusterSeries cluster_availability(const std::vector<HostClass>& hosts,
                                   const TraceConfig& cfg,
                                   std::uint64_t seed) {
  std::vector<HostTrace> traces;
  traces.reserve(hosts.size());
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    TraceConfig c = cfg;
    c.seed = seed;
    traces.push_back(synthesize_host(hosts[h], c, h + 1));
  }
  ClusterSeries series;
  if (traces.empty()) return series;
  const std::size_t n = traces[0].samples.size();
  series.t.reserve(n);
  series.all_hosts_mb.reserve(n);
  series.idle_hosts_mb.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double all = 0.0;
    double idle = 0.0;
    for (const auto& tr : traces) {
      const auto avail =
          static_cast<double>(tr.samples[i].available_kb(tr.total_kb)) /
          1024.0;
      all += avail;
      if (tr.samples[i].idle) idle += avail;
    }
    series.t.push_back(traces[0].samples[i].t);
    series.all_hosts_mb.push_back(all);
    series.idle_hosts_mb.push_back(idle);
  }
  return series;
}

std::vector<HostTrace> synthesize_flash_crowd(
    const std::vector<HostClass>& hosts, const FlashCrowdConfig& cfg) {
  std::vector<HostTrace> traces;
  traces.reserve(hosts.size());
  const auto n = static_cast<std::size_t>(cfg.duration / cfg.sample_interval);
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    const HostClassStats st = paper_stats(hosts[h]);
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + h + 1);

    // The owner's return lands inside [crowd_at, crowd_at+spread); drawing
    // it first keeps the arrival independent of the AR(1) draws below.
    const SimTime back_at =
        cfg.crowd_at + static_cast<Duration>(rng.uniform(
                           0.0, static_cast<double>(cfg.arrival_spread)));
    const SimTime busy_at = back_at + cfg.ramp_len;
    const SimTime gone_at = busy_at + cfg.busy_len;

    HostTrace trace;
    trace.cls = hosts[h];
    trace.total_kb = st.total_kb;
    trace.samples.reserve(n);

    double kernel = st.kernel_mean;
    double fcache = st.fcache_mean;
    double proc = st.proc_mean;
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime t = static_cast<SimTime>(i) * cfg.sample_interval;
      kernel =
          ar1_step(kernel, st.kernel_mean, st.kernel_sd, cfg.ar_phi, rng);
      fcache =
          ar1_step(fcache, st.fcache_mean, st.fcache_sd, cfg.ar_phi, rng);
      proc = ar1_step(proc, st.proc_mean, st.proc_sd, cfg.ar_phi, rng);

      const bool crowded = t >= back_at && t < gone_at;
      Sample s;
      s.t = t;
      s.kernel_kb = static_cast<Bytes64>(std::max(0.0, kernel));
      s.fcache_kb = static_cast<Bytes64>(std::max(0.0, fcache));
      double p = std::max(0.0, proc);
      if (crowded) {
        // The claim ramps linearly over ramp_len, then holds: memory fills
        // while the console is still quiet, so a monitor watching active
        // memory sees graded pressure before the binary busy signal.
        double frac = cfg.claim_frac;
        if (cfg.ramp_len > 0 && t < busy_at) {
          frac *= static_cast<double>(t - back_at + cfg.sample_interval) /
                  static_cast<double>(cfg.ramp_len);
          if (frac > cfg.claim_frac) frac = cfg.claim_frac;
        }
        const double free_kb = std::max(
            0.0, static_cast<double>(st.total_kb) - kernel - fcache - p);
        p += frac * free_kb;
      }
      s.proc_kb = static_cast<Bytes64>(p);
      const Bytes64 sum = s.kernel_kb + s.fcache_kb + s.proc_kb;
      if (sum > st.total_kb) {
        s.proc_kb -= (sum - st.total_kb);
        if (s.proc_kb < 0) s.proc_kb = 0;
      }
      s.idle = t < busy_at || t >= gone_at;
      trace.samples.push_back(s);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

Table1Row summarize_class(HostClass cls, int hosts, const TraceConfig& cfg,
                          std::uint64_t seed) {
  Table1Row row;
  for (int h = 0; h < hosts; ++h) {
    TraceConfig c = cfg;
    c.seed = seed;
    const HostTrace tr =
        synthesize_host(cls, c, static_cast<std::uint64_t>(h) + 1000);
    for (const auto& s : tr.samples) {
      row.kernel.add(static_cast<double>(s.kernel_kb));
      row.fcache.add(static_cast<double>(s.fcache_kb));
      row.proc.add(static_cast<double>(s.proc_kb));
      row.avail.add(static_cast<double>(s.available_kb(tr.total_kb)));
    }
  }
  return row;
}

std::string trace_to_tsv(const HostTrace& trace) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "# dodo trace v1 %d %lld\n",
                static_cast<int>(trace.cls),
                static_cast<long long>(trace.total_kb));
  out += line;
  for (const Sample& s : trace.samples) {
    std::snprintf(line, sizeof(line), "%lld\t%lld\t%lld\t%lld\t%d\n",
                  static_cast<long long>(s.t),
                  static_cast<long long>(s.kernel_kb),
                  static_cast<long long>(s.fcache_kb),
                  static_cast<long long>(s.proc_kb), s.idle ? 1 : 0);
    out += line;
  }
  return out;
}

bool trace_from_tsv(const std::string& text, HostTrace& out,
                    std::string* error) {
  auto fail = [&](int lineno, const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + what;
    }
    return false;
  };

  HostTrace tr;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!saw_header) {
      // "# dodo trace v1 <cls> <total_kb>"
      std::istringstream hs(line);
      std::string hash, name, word, version;
      int cls = -1;
      long long total = 0;
      if (!(hs >> hash >> name >> word >> version >> cls >> total) ||
          hash != "#" || name != "dodo" || word != "trace") {
        return fail(lineno, "missing or malformed trace header");
      }
      if (version != "v1") return fail(lineno, "unsupported trace version");
      if (cls < 0 || cls > static_cast<int>(HostClass::k256)) {
        return fail(lineno, "unknown host class");
      }
      if (total <= 0) return fail(lineno, "non-positive total_kb");
      std::string extra;
      if (hs >> extra) return fail(lineno, "trailing header tokens");
      tr.cls = static_cast<HostClass>(cls);
      tr.total_kb = total;
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    long long t = 0, kernel = 0, fcache = 0, proc = 0;
    int idle = 0;
    if (!(ls >> t >> kernel >> fcache >> proc >> idle)) {
      return fail(lineno, "malformed sample row");
    }
    std::string extra;
    if (ls >> extra) return fail(lineno, "trailing tokens");
    if (t < 0) return fail(lineno, "negative timestamp");
    if (!tr.samples.empty() && t <= tr.samples.back().t) {
      return fail(lineno, "non-monotonic timestamp");
    }
    if (kernel < 0 || fcache < 0 || proc < 0) {
      return fail(lineno, "negative memory size");
    }
    if (idle != 0 && idle != 1) return fail(lineno, "idle must be 0 or 1");
    tr.samples.push_back(Sample{t, kernel, fcache, proc, idle == 1});
  }
  if (!saw_header) return fail(lineno, "missing trace header");
  out = std::move(tr);
  return true;
}

const Sample& TraceActivity::sample_at(SimTime t) const {
  assert(!trace_.samples.empty());
  const Duration interval = trace_.samples.size() > 1
                                ? trace_.samples[1].t - trace_.samples[0].t
                                : kSecond;
  auto idx = static_cast<std::size_t>(t / interval);
  if (idx >= trace_.samples.size()) idx = trace_.samples.size() - 1;
  return trace_.samples[idx];
}

}  // namespace dodo::trace
