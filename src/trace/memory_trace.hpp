// Synthesis and analysis of workstation memory-usage traces (paper §2).
//
// The paper's design rests on a measurement study [2] of two production
// Solaris clusters (clusterA: 29 hosts at UCSB, clusterB: 23 hosts at GMU)
// traced for several weeks. The raw traces are long gone, so this module
// synthesizes statistically equivalent ones: per host, the kernel,
// file-cache and process-memory components follow mean-reverting AR(1)
// processes pinned to the published Table 1 means and standard deviations,
// available = total - kernel - fcache - proc (which reproduces Table 1's
// "available" column exactly in expectation); console activity follows an
// alternating idle/busy renewal process with day-shaped busy rates; and
// occasional memory surges produce the availability "dips" of Figure 2.
//
// The TraceActivity adapter feeds these series to the resource monitor
// daemon for non-dedicated-cluster (churn) experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/activity.hpp"

namespace dodo::trace {

enum class HostClass : int { k32 = 0, k64 = 1, k128 = 2, k256 = 3 };

/// Table 1 statistics, in KB: mean (stddev) per memory component.
struct HostClassStats {
  Bytes64 total_kb;
  double kernel_mean, kernel_sd;
  double fcache_mean, fcache_sd;
  double proc_mean, proc_sd;
  double avail_mean, avail_sd;  // derived column, kept for comparison
};

/// The published Table 1 numbers.
HostClassStats paper_stats(HostClass cls);

struct TraceConfig {
  Duration sample_interval = seconds(300.0);
  Duration duration = 14LL * 24 * 3600 * kSecond;  // two weeks
  double ar_phi = 0.98;            // AR(1) persistence per sample
  double busy_frac_day = 0.45;     // busy probability, working hours
  double busy_frac_night = 0.06;
  Duration busy_mean_len = seconds(40.0 * 60);
  double surge_per_day = 2.0;      // Figure 2's availability dips
  Duration surge_mean_len = seconds(20.0 * 60);
  std::uint64_t seed = 1;
};

struct Sample {
  SimTime t;
  Bytes64 kernel_kb;
  Bytes64 fcache_kb;
  Bytes64 proc_kb;
  bool idle;  // console + load quiet

  [[nodiscard]] Bytes64 available_kb(Bytes64 total_kb) const {
    const Bytes64 a = total_kb - kernel_kb - fcache_kb - proc_kb;
    return a > 0 ? a : 0;
  }
};

struct HostTrace {
  HostClass cls{};
  Bytes64 total_kb = 0;
  std::vector<Sample> samples;

  [[nodiscard]] double mean_available_mb() const;
  [[nodiscard]] double idle_fraction() const;
  /// Number of availability dips below `frac` of total memory.
  [[nodiscard]] int dips_below(double frac) const;
};

HostTrace synthesize_host(HostClass cls, const TraceConfig& cfg,
                          std::uint64_t host_seed);

/// Host mixes chosen so the synthesized cluster-wide availability matches
/// the paper's Figure 1 averages (clusterA 3549/2747 MB, clusterB 852/742).
std::vector<HostClass> cluster_a_hosts();  // 29 hosts
std::vector<HostClass> cluster_b_hosts();  // 23 hosts

struct ClusterSeries {
  std::vector<SimTime> t;
  std::vector<double> all_hosts_mb;
  std::vector<double> idle_hosts_mb;

  [[nodiscard]] double mean_all() const;
  [[nodiscard]] double mean_idle() const;
};

ClusterSeries cluster_availability(const std::vector<HostClass>& hosts,
                                   const TraceConfig& cfg,
                                   std::uint64_t seed);

/// The flash-crowd scenario behind the lease-reclamation chaos battery: the
/// cluster idles long enough for deep harvesting, then every owner returns
/// within one short window — the 9am arrival wave — and each claims most of
/// what was free on their machine. Availability collapses cluster-wide at
/// nearly the same instant, which is the worst case for a harvester that
/// must give memory back incrementally rather than die wholesale.
struct FlashCrowdConfig {
  Duration sample_interval = seconds(5.0);
  Duration duration = seconds(3600.0);
  Duration crowd_at = seconds(1200.0);      // first owner's return
  Duration arrival_spread = seconds(30.0);  // all owners back within this
  Duration ramp_len = seconds(60.0);        // memory grows before the console
  Duration busy_len = seconds(900.0);       // console-busy stretch after ramp
  double claim_frac = 0.85;  // fraction of free memory an owner claims
  double ar_phi = 0.98;      // AR(1) persistence of the quiet components
  std::uint64_t seed = 1;
};

/// One trace per host, sharing the sample clock. Host h's owner returns at
/// crowd_at + U[0, arrival_spread) (deterministic in (seed, h)). The return
/// has two phases: a ramp where the owner's jobs claim memory while the
/// console is still quiet — the graded-pressure window where a harvester can
/// shed incrementally — then a console-busy stretch (urgent, wholesale).
/// Afterwards the host settles back to its quiet Table 1 regime.
std::vector<HostTrace> synthesize_flash_crowd(
    const std::vector<HostClass>& hosts, const FlashCrowdConfig& cfg);

/// Text persistence for synthesized traces: header line
/// "# dodo trace v1 <class> <total_kb>" then one "t kernel fcache proc idle"
/// TSV row per sample. Lets an experiment pin the exact trace it ran under
/// instead of a (seed, config) pair that silently shifts when synthesis
/// parameters are tuned.
std::string trace_to_tsv(const HostTrace& trace);

/// Strict parser: rejects missing/garbled headers, non-numeric fields,
/// negative sizes, non-monotonic timestamps, and trailing tokens. On
/// failure returns false and (optionally) a "line N: why" message.
bool trace_from_tsv(const std::string& text, HostTrace& out,
                    std::string* error = nullptr);

/// Per-component summary over many hosts of one class (regenerates a Table 1
/// row from synthesized traces).
struct Table1Row {
  RunningStats kernel, fcache, proc, avail;
};
Table1Row summarize_class(HostClass cls, int hosts, const TraceConfig& cfg,
                          std::uint64_t seed);

/// ActivitySource adapter: drives an rmd from a synthesized trace.
class TraceActivity final : public core::ActivitySource {
 public:
  explicit TraceActivity(HostTrace trace) : trace_(std::move(trace)) {}

  [[nodiscard]] bool console_active(SimTime t) const override {
    return !sample_at(t).idle;
  }
  [[nodiscard]] double load(SimTime t) const override {
    return sample_at(t).idle ? 0.05 : 1.0;
  }
  [[nodiscard]] Bytes64 active_memory(SimTime t) const override {
    const Sample& s = sample_at(t);
    return (s.kernel_kb + s.fcache_kb + s.proc_kb) * 1024;
  }
  [[nodiscard]] Bytes64 total_memory() const override {
    return trace_.total_kb * 1024;
  }

 private:
  [[nodiscard]] const Sample& sample_at(SimTime t) const;

  HostTrace trace_;
};

}  // namespace dodo::trace
