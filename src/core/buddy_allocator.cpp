#include "core/buddy_allocator.hpp"

#include <cassert>

namespace dodo::core {

BuddyAllocator::BuddyAllocator(Bytes64 pool_size, Bytes64 min_block)
    : min_block_(min_block) {
  assert(pool_size >= min_block && min_block > 0);
  assert((min_block & (min_block - 1)) == 0 && "min_block: power of two");
  // Largest power-of-two multiple of min_block that fits.
  Bytes64 size = min_block_;
  int order = 0;
  while (size * 2 <= pool_size) {
    size *= 2;
    ++order;
  }
  pool_size_ = size;
  max_order_ = order;
  total_free_ = size;
  free_lists_.resize(static_cast<std::size_t>(max_order_) + 1);
  free_lists_[static_cast<std::size_t>(max_order_)][0] = true;
}

int BuddyAllocator::order_for(Bytes64 len) const {
  Bytes64 size = min_block_;
  int order = 0;
  while (size < len && order < max_order_) {
    size *= 2;
    ++order;
  }
  return size >= len ? order : -1;
}

std::optional<Bytes64> BuddyAllocator::alloc(Bytes64 len) {
  if (len <= 0 || len > pool_size_) return std::nullopt;
  const int want = order_for(len);
  if (want < 0) return std::nullopt;
  // Find the smallest free block of order >= want.
  int have = -1;
  for (int o = want; o <= max_order_; ++o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) {
      have = o;
      break;
    }
  }
  if (have < 0) return std::nullopt;
  auto& from = free_lists_[static_cast<std::size_t>(have)];
  const Bytes64 offset = from.begin()->first;
  from.erase(from.begin());
  // Split down to the wanted order, freeing the upper buddies.
  for (int o = have; o > want; --o) {
    const Bytes64 buddy = offset + block_size(o - 1);
    free_lists_[static_cast<std::size_t>(o - 1)][buddy] = true;
  }
  allocated_[offset] = {want, len};
  total_free_ -= block_size(want);
  internal_waste_ += block_size(want) - len;
  return offset;
}

bool BuddyAllocator::free(Bytes64 offset) {
  auto it = allocated_.find(offset);
  if (it == allocated_.end()) return false;
  int order = it->second.first;
  internal_waste_ -= block_size(order) - it->second.second;
  total_free_ += block_size(order);
  allocated_.erase(it);

  // Eager merge with the buddy while it is free too.
  Bytes64 off = offset;
  while (order < max_order_) {
    const Bytes64 buddy = off ^ block_size(order);
    auto& list = free_lists_[static_cast<std::size_t>(order)];
    auto bit = list.find(buddy);
    if (bit == list.end()) break;
    list.erase(bit);
    off = off < buddy ? off : buddy;
    ++order;
  }
  free_lists_[static_cast<std::size_t>(order)][off] = true;
  return true;
}

Bytes64 BuddyAllocator::largest_free() const {
  for (int o = max_order_; o >= 0; --o) {
    if (!free_lists_[static_cast<std::size_t>(o)].empty()) {
      return block_size(o);
    }
  }
  return 0;
}

std::size_t BuddyAllocator::free_block_count() const {
  std::size_t n = 0;
  for (const auto& list : free_lists_) n += list.size();
  return n;
}

double BuddyAllocator::external_fragmentation() const {
  if (total_free_ <= 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free()) /
                   static_cast<double>(total_free_);
}

bool BuddyAllocator::check_invariants() const {
  // Blocks (free per order + allocated) must tile the pool exactly.
  std::map<Bytes64, Bytes64> blocks;  // offset -> len
  Bytes64 free_sum = 0;
  for (int o = 0; o <= max_order_; ++o) {
    for (const auto& [off, _] : free_lists_[static_cast<std::size_t>(o)]) {
      if (blocks.count(off) != 0) return false;
      blocks[off] = block_size(o);
      free_sum += block_size(o);
      // Alignment: a block of order o starts on a multiple of its size.
      if (off % block_size(o) != 0) return false;
    }
  }
  for (const auto& [off, meta] : allocated_) {
    if (blocks.count(off) != 0) return false;
    blocks[off] = block_size(meta.first);
    if (off % block_size(meta.first) != 0) return false;
  }
  Bytes64 cursor = 0;
  for (const auto& [off, len] : blocks) {
    if (off != cursor) return false;
    cursor += len;
  }
  return cursor == pool_size_ && free_sum == total_free_;
}

}  // namespace dodo::core
