// Tiny request/reply helper over an ephemeral socket.
//
// UDP semantics end-to-end: the request is retransmitted on timeout and the
// reply is matched by rid. Servers keep a small reply cache keyed by rid so
// retries of non-idempotent operations (alloc!) return the original answer
// instead of executing twice.
#pragma once

#include <optional>
#include <utility>

#include "common/units.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "sim/task.hpp"

namespace dodo::core {

struct RpcParams {
  Duration timeout = millis(200);
  int retries = 3;  // total attempts = retries + 1
};

inline sim::Co<std::optional<net::Message>> rpc_call(net::Network& net,
                                                     net::NodeId from,
                                                     net::Endpoint dst,
                                                     net::Buf header,
                                                     std::uint64_t rid,
                                                     RpcParams params = {}) {
  auto sock = net.open_ephemeral(from);
  for (int attempt = 0; attempt <= params.retries; ++attempt) {
    sock->send(dst, header);
    const SimTime deadline = net.simulator().now() + params.timeout;
    while (net.simulator().now() < deadline) {
      auto msg =
          co_await sock->recv_for(deadline - net.simulator().now());
      if (!msg) break;
      auto env = peek_envelope(*msg);
      if (env && env->rid == rid) co_return std::move(*msg);
      // Stray datagram (stale retransmit answer): keep waiting.
    }
  }
  co_return std::nullopt;
}

/// Monotonic rid source shared by all daemons in one simulation.
class RidSource {
 public:
  std::uint64_t next() { return ++rid_; }

 private:
  std::uint64_t rid_ = 0;
};

}  // namespace dodo::core
