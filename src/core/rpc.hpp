// Tiny request/reply helper over an ephemeral socket.
//
// UDP semantics end-to-end: the request is retransmitted on timeout and the
// reply is matched by rid. Servers keep a bounded FIFO reply cache keyed by
// rid so retries of non-idempotent operations (alloc!) return the original
// answer instead of executing twice.
//
// Retransmits back off exponentially with deterministic rid-seeded jitter:
// when a loss burst or daemon blackout times out many outstanding calls at
// once, their retry schedules decorrelate instead of re-colliding in
// synchronized retransmit storms — while the whole schedule stays a pure
// function of (params, rid), so simulations remain exactly reproducible.
#pragma once

#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "sim/task.hpp"

namespace dodo::core {

struct RpcParams {
  Duration timeout = millis(200);  // first-attempt timeout
  int retries = 3;                 // total attempts = retries + 1
  double backoff = 2.0;            // per-retry timeout multiplier
  Duration max_timeout = seconds(2.0);  // backoff ceiling (pre-jitter)
  double jitter = 0.25;  // max extra fraction of an attempt's timeout
};

/// Timeout for attempt `attempt` (0-based) of the call identified by `rid`:
/// min(timeout * backoff^attempt, max_timeout), stretched by a jitter drawn
/// deterministically from (rid, attempt).
inline Duration rpc_attempt_timeout(const RpcParams& params, std::uint64_t rid,
                                    int attempt) {
  double t = static_cast<double>(params.timeout);
  for (int i = 0; i < attempt; ++i) t *= params.backoff;
  const double cap = static_cast<double>(params.max_timeout);
  if (cap > 0.0 && t > cap) t = cap;
  SplitMix64 sm(rid ^ (static_cast<std::uint64_t>(attempt + 1) *
                       0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return static_cast<Duration>(t * (1.0 + params.jitter * u));
}

inline sim::Co<std::optional<net::Message>> rpc_call(net::Network& net,
                                                     net::NodeId from,
                                                     net::Endpoint dst,
                                                     net::Buf header,
                                                     std::uint64_t rid,
                                                     RpcParams params = {}) {
  auto sock = net.open_ephemeral(from);
  for (int attempt = 0; attempt <= params.retries; ++attempt) {
    sock->send(dst, header);
    const SimTime deadline =
        net.simulator().now() + rpc_attempt_timeout(params, rid, attempt);
    while (net.simulator().now() < deadline) {
      auto msg =
          co_await sock->recv_for(deadline - net.simulator().now());
      if (!msg) break;
      auto env = peek_envelope(*msg);
      if (env && env->rid == rid) co_return std::move(*msg);
      // Stray datagram (stale retransmit answer): keep waiting.
    }
  }
  co_return std::nullopt;
}

/// Monotonic rid source shared by all daemons in one simulation.
class RidSource {
 public:
  std::uint64_t next() { return ++rid_; }

 private:
  std::uint64_t rid_ = 0;
};

}  // namespace dodo::core
