// Binary buddy allocator — the paper's named fallback (§4.2): "If
// [fragmentation] becomes a problem at a later date, we plan to switch to a
// buddy-based allocation scheme."
//
// Classic power-of-two buddy system over the imd pool: requests round up to
// the next power of two (internal fragmentation), blocks split recursively
// on allocation and merge eagerly with their buddy on free, bounding
// external fragmentation. bench_ablation_allocator quantifies the tradeoff
// against the paper's first-fit + periodic coalescing.
//
// Exposes the same surface as PoolAllocator so either can back an imd.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace dodo::core {

class BuddyAllocator {
 public:
  /// pool_size is rounded down to a power of two; min_block bounds split
  /// depth (and metadata size).
  explicit BuddyAllocator(Bytes64 pool_size, Bytes64 min_block = 4096);

  std::optional<Bytes64> alloc(Bytes64 len);
  bool free(Bytes64 offset);

  /// No-op: buddies merge eagerly on free. Present for interface parity
  /// with PoolAllocator.
  void coalesce() {}

  [[nodiscard]] Bytes64 pool_size() const { return pool_size_; }
  /// Free bytes in block terms (includes internal fragmentation headroom).
  [[nodiscard]] Bytes64 total_free() const { return total_free_; }
  [[nodiscard]] Bytes64 largest_free() const;
  [[nodiscard]] std::size_t free_block_count() const;
  [[nodiscard]] std::size_t allocated_block_count() const {
    return allocated_.size();
  }

  /// 0 = a maximal block is free; approaches 1 as free space shatters.
  [[nodiscard]] double external_fragmentation() const;

  /// Bytes lost to rounding (allocated block size - requested size), summed
  /// over live allocations: the cost buddy pays to keep merging trivial.
  [[nodiscard]] Bytes64 internal_fragmentation_bytes() const {
    return internal_waste_;
  }

  [[nodiscard]] bool check_invariants() const;

 private:
  [[nodiscard]] int order_for(Bytes64 len) const;
  [[nodiscard]] Bytes64 block_size(int order) const {
    return min_block_ << order;
  }

  Bytes64 pool_size_;
  Bytes64 min_block_;
  int max_order_ = 0;
  Bytes64 total_free_;
  Bytes64 internal_waste_ = 0;
  // free_lists_[order] = offsets of free blocks of that order.
  std::vector<std::map<Bytes64, bool>> free_lists_;
  // offset -> (order, requested length)
  std::map<Bytes64, std::pair<int, Bytes64>> allocated_;
};

}  // namespace dodo::core
