#include "core/cmd.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace dodo::core {

CentralManager::CentralManager(sim::Simulator& sim, net::Network& net,
                               net::NodeId node, CmdParams params)
    : sim_(sim),
      net_(net),
      node_(node),
      params_(params),
      rng_(sim.rng().fork(0x636d64u)),  // "cmd"
      loops_(sim),
      stop_ch_(sim) {}

CentralManager::~CentralManager() = default;

void CentralManager::start() {
  assert(!running_);
  running_ = true;
  stopping_ = false;
  sock_ = net_.open(node_, kCmdPort);
  loops_.add(2);
  sim_.spawn(serve_loop());
  sim_.spawn(keepalive_loop());
}

sim::Co<void> CentralManager::stop() {
  if (!running_) co_return;
  stopping_ = true;
  net::Message sentinel;
  sentinel.header = make_header(MsgKind::kShutdownSentinel, 0);
  sock_->inject(std::move(sentinel));
  stop_ch_.send(1);
  co_await loops_.wait();
  sock_.reset();
  running_ = false;
}

std::size_t CentralManager::idle_host_count() const {
  std::size_t n = 0;
  for (const auto& [node, info] : iwd_) {
    if (info.idle) ++n;
  }
  return n;
}

void CentralManager::reply_cached(const net::Message& msg, std::uint64_t rid,
                                  net::Buf rep) {
  if (reply_cache_.size() > 8192) reply_cache_.clear();
  reply_cache_[ReplyKey{msg.src, rid}] = rep;
  sock_->send(msg.src, std::move(rep));
}

bool CentralManager::replay_if_duplicate(const net::Message& msg,
                                         std::uint64_t rid) {
  auto it = reply_cache_.find(ReplyKey{msg.src, rid});
  if (it == reply_cache_.end()) return false;
  sock_->send(msg.src, it->second);
  return true;
}

sim::Co<void> CentralManager::serve_loop() {
  for (;;) {
    net::Message msg = co_await sock_->recv();
    auto env = peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    switch (env->kind) {
      case MsgKind::kHostStatus:
        handle_host_status(msg);
        break;
      case MsgKind::kImdRegister:
        handle_imd_register(msg);
        break;
      case MsgKind::kMopenReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          co_await handle_mopen(std::move(msg));
        }
        break;
      case MsgKind::kCheckAllocReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          handle_checkalloc(msg);
        }
        break;
      case MsgKind::kMfreeReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          co_await handle_mfree(std::move(msg));
        }
        break;
      case MsgKind::kDetach: {
        net::Reader r = body_reader(msg);
        const std::uint32_t client = r.u32();
        if (r.ok()) clients_.erase(client);
        sock_->send(msg.src, make_header(MsgKind::kDetach, env->rid));
        break;
      }
      default:
        break;
    }
  }
  loops_.done();
}

void CentralManager::handle_host_status(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const bool idle = r.u8() != 0;
  if (!r.ok()) return;
  auto& info = iwd_[node];
  info.idle = idle;
  if (!idle) info.largest_free = 0;
  DODO_DEBUG("cmd", "host %u now %s", node, idle ? "idle" : "busy");
}

void CentralManager::handle_imd_register(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const std::uint64_t epoch = r.u64();
  const Bytes64 pool = r.i64();
  const Bytes64 largest = r.i64();
  if (!r.ok()) return;
  auto& info = iwd_[node];
  info.idle = true;
  info.epoch = epoch;
  info.pool_total = pool;
  info.largest_free = largest;
  // Ack so the imd's registration RPC completes.
  sock_->send(msg.src, make_header(MsgKind::kImdRegister,
                                   peek_envelope(msg)->rid));
  DODO_DEBUG("cmd", "imd registered: host %u epoch %llu pool %lld", node,
             static_cast<unsigned long long>(epoch),
             static_cast<long long>(pool));
}

RegionLoc* CentralManager::validate_region(const RegionKey& key) {
  auto it = rd_.find(key);
  if (it == rd_.end()) return nullptr;
  auto host = iwd_.find(it->second.host);
  if (host == iwd_.end() || !host->second.idle ||
      host->second.epoch != it->second.epoch) {
    // Stale: the workstation was reclaimed (or re-recruited under a new
    // epoch) since the region was allocated. Delete, per §4.3 checkAlloc.
    rd_.erase(it);
    ++metrics_.stale_regions_dropped;
    return nullptr;
  }
  return &it->second;
}

sim::Co<void> CentralManager::handle_mopen(net::Message msg) {
  const auto env = peek_envelope(msg);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  const Bytes64 len = r.i64();
  const net::Endpoint client_ctl = get_endpoint(r);
  ++metrics_.mopens;

  auto reply_fail = [&] {
    ++metrics_.alloc_failures;
    net::Buf rep = make_header(MsgKind::kMopenRep, env->rid);
    net::Writer w(rep);
    w.u8(0);
    w.u8(0);
    put_loc(w, RegionLoc{});
    reply_cached(msg, env->rid, std::move(rep));
  };
  if (!r.ok() || len <= 0) {
    reply_fail();
    co_return;
  }

  clients_[key.client] = ClientInfo{client_ctl, 0};

  // Persistent-region path: a prior run left this key cached (dmine mode).
  if (RegionLoc* existing = validate_region(key)) {
    if (existing->len == len) {
      ++metrics_.mopen_reuses;
      net::Buf rep = make_header(MsgKind::kMopenRep, env->rid);
      net::Writer w(rep);
      w.u8(1);
      w.u8(1);  // reused: remote copy still holds the previous run's data
      put_loc(w, *existing);
      reply_cached(msg, env->rid, std::move(rep));
      co_return;
    }
    // Length changed: the old cache is useless; drop it and allocate fresh.
    co_await rpc_free_region(key, *existing);
    rd_.erase(key);
  }

  // Random host selection among those believed to have room, verifying with
  // the imd and moving on when the hint was wrong (§4.3 alloc).
  std::vector<net::NodeId> candidates;
  for (const auto& [node, info] : iwd_) {
    if (info.idle && info.largest_free >= len) candidates.push_back(node);
  }
  std::sort(candidates.begin(), candidates.end());  // determinism

  while (!candidates.empty()) {
    const std::size_t pick =
        static_cast<std::size_t>(rng_.below(candidates.size()));
    const net::NodeId host = candidates[pick];
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick));

    ++metrics_.alloc_attempts;
    const std::uint64_t rid = rids_.next();
    net::Buf req = make_header(MsgKind::kAllocReq, rid);
    net::Writer w(req);
    w.i64(len);
    auto rep = co_await rpc_call(net_, node_,
                                 net::Endpoint{host, kImdCtlPort},
                                 std::move(req), rid, params_.imd_rpc);
    if (!rep) {
      // Host gone (shutdown/crash/reclaimed): drop it from the IWD.
      iwd_[host].idle = false;
      continue;
    }
    net::Reader rr = body_reader(*rep);
    const bool ok = rr.u8() != 0;
    const std::uint64_t region_id = rr.u64();
    const std::uint64_t epoch = rr.u64();
    const Bytes64 largest = rr.i64();
    if (!rr.ok()) continue;
    iwd_[host].epoch = epoch;
    iwd_[host].largest_free = largest;  // piggybacked hint refresh
    if (!ok) continue;

    const RegionLoc loc{host, epoch, region_id, len};
    rd_[key] = loc;
    net::Buf out = make_header(MsgKind::kMopenRep, env->rid);
    net::Writer ow(out);
    ow.u8(1);
    ow.u8(0);  // fresh allocation: contents undefined until written
    put_loc(ow, loc);
    reply_cached(msg, env->rid, std::move(out));
    co_return;
  }
  reply_fail();
}

void CentralManager::handle_checkalloc(const net::Message& msg) {
  const auto env = peek_envelope(msg);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  ++metrics_.checkallocs;
  net::Buf rep = make_header(MsgKind::kCheckAllocRep, env->rid);
  net::Writer w(rep);
  if (RegionLoc* loc = r.ok() ? validate_region(key) : nullptr) {
    w.u8(1);
    put_loc(w, *loc);
  } else {
    w.u8(0);
    put_loc(w, RegionLoc{});
  }
  reply_cached(msg, env->rid, std::move(rep));
}

sim::Co<bool> CentralManager::rpc_free_region(const RegionKey& key,
                                              const RegionLoc& loc) {
  (void)key;
  const std::uint64_t rid = rids_.next();
  net::Buf req = make_header(MsgKind::kFreeReq, rid);
  net::Writer w(req);
  w.u64(loc.imd_region);
  auto rep = co_await rpc_call(net_, node_,
                               net::Endpoint{loc.host, kImdCtlPort},
                               std::move(req), rid, params_.imd_rpc);
  if (!rep) co_return false;
  net::Reader rr = body_reader(*rep);
  const bool ok = rr.u8() != 0;
  (void)rr.u64();  // epoch
  const Bytes64 largest = rr.i64();
  if (rr.ok()) iwd_[loc.host].largest_free = largest;
  co_return ok;
}

sim::Co<void> CentralManager::handle_mfree(net::Message msg) {
  const auto env = peek_envelope(msg);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  bool ok = false;
  auto it = r.ok() ? rd_.find(key) : rd_.end();
  if (it != rd_.end()) {
    const RegionLoc loc = it->second;
    rd_.erase(it);
    ++metrics_.frees;
    ok = true;
    co_await rpc_free_region(key, loc);  // best effort; host may be gone
  }
  net::Buf rep = make_header(MsgKind::kMfreeRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  reply_cached(msg, env->rid, std::move(rep));
}

sim::Co<void> CentralManager::reclaim_client(std::uint32_t client) {
  ++metrics_.clients_reclaimed;
  std::vector<std::pair<RegionKey, RegionLoc>> victims;
  for (const auto& [key, loc] : rd_) {
    if (key.client == client) victims.emplace_back(key, loc);
  }
  for (const auto& [key, loc] : victims) {
    rd_.erase(key);
    ++metrics_.regions_reclaimed;
    co_await rpc_free_region(key, loc);
  }
  clients_.erase(client);
  DODO_INFO("cmd", "reclaimed %zu regions of dead client %u", victims.size(),
            client);
}

sim::Co<void> CentralManager::keepalive_loop() {
  for (;;) {
    auto stop = co_await stop_ch_.recv_for(params_.keepalive_interval);
    if (stop.has_value() || stopping_) break;
    // Snapshot: reclaim_client mutates clients_.
    std::vector<std::pair<std::uint32_t, net::Endpoint>> targets;
    targets.reserve(clients_.size());
    for (const auto& [id, info] : clients_) {
      targets.emplace_back(id, info.control);
    }
    for (const auto& [id, control] : targets) {
      const std::uint64_t rid = rids_.next();
      ++metrics_.pings_sent;
      auto rep = co_await rpc_call(net_, node_, control,
                                   make_header(MsgKind::kPing, rid), rid,
                                   params_.ping_rpc);
      auto it = clients_.find(id);
      if (it == clients_.end()) continue;
      if (rep) {
        it->second.missed = 0;
      } else if (++it->second.missed > params_.keepalive_miss_limit) {
        co_await reclaim_client(id);
      }
    }
  }
  loops_.done();
}

}  // namespace dodo::core
