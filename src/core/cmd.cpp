#include "core/cmd.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "common/log.hpp"
#include "net/bulk.hpp"

namespace dodo::core {

CentralManager::CentralManager(sim::Simulator& sim, net::Network& net,
                               net::NodeId node, CmdParams params)
    : sim_(sim),
      net_(net),
      node_(node),
      params_(params),
      rng_(sim.rng().fork(0x636d64u)),  // "cmd"
      loops_(sim),
      stop_ch_(sim) {}

CentralManager::~CentralManager() = default;

void CentralManager::start() {
  assert(!running_);
  running_ = true;
  stopping_ = false;
  sock_ = net_.open(node_, kCmdPort);
  loops_.add(2);
  sim_.spawn(serve_loop());
  sim_.spawn(keepalive_loop());
}

sim::Co<void> CentralManager::stop() {
  if (!running_) co_return;
  stopping_ = true;
  net::Message sentinel;
  sentinel.header = make_header(MsgKind::kShutdownSentinel, 0);
  sock_->inject(std::move(sentinel));
  stop_ch_.send(1);
  co_await loops_.wait();
  sock_.reset();
  running_ = false;
}

std::vector<std::pair<RegionKey, RegionLoc>> CentralManager::rd_snapshot()
    const {
  std::vector<std::pair<RegionKey, RegionLoc>> out;
  out.reserve(rd_.size());
  for (const auto& [key, map] : rd_) {
    for (const ReplicaSet& f : map.frags) {
      for (const RegionLoc& rep : f.replicas) out.emplace_back(key, rep);
    }
  }
  return out;
}

std::vector<std::pair<net::NodeId, std::uint64_t>> CentralManager::iwd_epochs()
    const {
  std::vector<std::pair<net::NodeId, std::uint64_t>> out;
  out.reserve(iwd_.size());
  for (const auto& [node, info] : iwd_) out.emplace_back(node, info.epoch);
  return out;
}

std::size_t CentralManager::idle_host_count() const {
  std::size_t n = 0;
  for (const auto& [node, info] : iwd_) {
    if (info.idle) ++n;
  }
  return n;
}

void CentralManager::reply_cached(const net::Message& msg, std::uint64_t rid,
                                  net::Buf rep) {
  // Bounded FIFO, never clear-all — a clear would re-execute a retried
  // mopen/mfree whose reply is still in flight (see the imd's reply cache).
  const ReplyKey key{msg.src, rid};
  if (reply_cache_.emplace(key, rep).second) {
    reply_order_.push_back(key);
    while (reply_cache_.size() > params_.reply_cache_capacity &&
           !reply_order_.empty()) {
      reply_cache_.erase(reply_order_.front());
      reply_order_.pop_front();
    }
  }
  sock_->send(msg.src, std::move(rep));
}

bool CentralManager::replay_if_duplicate(const net::Message& msg,
                                         std::uint64_t rid) {
  auto it = reply_cache_.find(ReplyKey{msg.src, rid});
  if (it == reply_cache_.end()) return false;
  sock_->send(msg.src, it->second);
  return true;
}

sim::Co<void> CentralManager::serve_loop() {
  for (;;) {
    net::Message msg = co_await sock_->recv();
    auto env = peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    switch (env->kind) {
      case MsgKind::kHostStatus:
        handle_host_status(msg);
        break;
      case MsgKind::kImdRegister:
        handle_imd_register(msg);
        break;
      case MsgKind::kPressureStatus:
        if (params_.lease_epochs) handle_pressure_status(msg);
        break;
      case MsgKind::kLeaseExpiryNotice:
        if (params_.lease_epochs) handle_lease_expiry_notice(msg);
        break;
      case MsgKind::kMopenReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          co_await handle_mopen(std::move(msg));
        }
        break;
      case MsgKind::kCheckAllocReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          handle_checkalloc(msg);
        }
        break;
      case MsgKind::kMfreeReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          co_await handle_mfree(std::move(msg));
        }
        break;
      case MsgKind::kDropReplicaReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          handle_drop_replica(std::move(msg));
        }
        break;
      case MsgKind::kStatsReq: {
        obs::ScopedSpan span(params_.spans, "cmd.stats", env->trace);
        net::Buf rep = make_header(MsgKind::kStatsRep, env->rid);
        net::Writer w(rep);
        w.str(metrics_snapshot().to_json());
        sock_->send(msg.src, std::move(rep));
        break;
      }
      case MsgKind::kDetach: {
        net::Reader r = body_reader(msg);
        const std::uint32_t client = r.u32();
        if (r.ok()) {
          clients_.erase(client);
          client_updates_.erase(client);
        }
        sock_->send(msg.src, make_header(MsgKind::kDetach, env->rid));
        break;
      }
      default:
        break;
    }
  }
  loops_.done();
}

void CentralManager::handle_host_status(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const bool idle = r.u8() != 0;
  if (!r.ok()) return;
  auto& info = iwd_[node];
  info.idle = idle;
  if (!idle) info.largest_free = 0;
  DODO_DEBUG("cmd", "host %u now %s", node, idle ? "idle" : "busy");
}

void CentralManager::handle_pressure_status(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const std::uint8_t level = r.u8();
  if (!r.ok() || level > static_cast<std::uint8_t>(PressureLevel::kUrgent)) {
    return;
  }
  iwd_[node].pressure = level;
  DODO_DEBUG("cmd", "host %u pressure level %u", node, level);
}

void CentralManager::handle_lease_expiry_notice(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId host = r.u32();
  const std::uint64_t epoch = r.u64();
  const std::uint32_t n = r.u32();
  std::vector<ExpiryNotice> parsed;
  parsed.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    const Bytes64 len = r.i64();
    if (r.ok()) parsed.push_back(ExpiryNotice{host, epoch, id, len});
  }
  if (!r.ok()) return;  // all-or-nothing: a torn datagram is dropped whole
  ++metrics_.lease_expiry_notices;
  pending_expiry_notices_.insert(pending_expiry_notices_.end(),
                                 parsed.begin(), parsed.end());
}

void CentralManager::handle_imd_register(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const std::uint64_t epoch = r.u64();
  const Bytes64 pool = r.i64();
  const Bytes64 largest = r.i64();
  if (!r.ok()) return;
  auto& info = iwd_[node];
  if (epoch > info.epoch && info.epoch != 0) ++metrics_.epoch_bumps_seen;
  info.idle = true;
  info.epoch = epoch;
  info.pool_total = pool;
  info.largest_free = largest;
  // Ack so the imd's registration RPC completes.
  sock_->send(msg.src, make_header(MsgKind::kImdRegister,
                                   peek_envelope(msg)->rid));
  DODO_DEBUG("cmd", "imd registered: host %u epoch %llu pool %lld", node,
             static_cast<unsigned long long>(epoch),
             static_cast<long long>(pool));
}

StripeMap* CentralManager::validate_region(const RegionKey& key) {
  auto it = rd_.find(key);
  if (it == rd_.end()) return nullptr;
  // Per-copy §4.3 checkAlloc: a copy is stale as soon as its host left the
  // epoch it was placed under, or went busy (eviction destroys the pool).
  // Stale copies are pruned and the survivors keep serving; the region only
  // dies with a fragment's last copy.
  bool dead = false;
  for (ReplicaSet& f : it->second.frags) {
    auto live = [&](const RegionLoc& c) {
      auto host = iwd_.find(c.host);
      return host != iwd_.end() && host->second.idle &&
             host->second.epoch == c.epoch;
    };
    auto first_stale = std::stable_partition(f.replicas.begin(),
                                             f.replicas.end(), live);
    for (auto c = first_stale; c != f.replicas.end(); ++c) {
      queue_pending_free(*c);
      ++metrics_.replicas_dropped;
    }
    f.replicas.erase(first_stale, f.replicas.end());
    if (f.replicas.empty()) dead = true;
  }
  if (!dead) return &it->second;
  // A fragment lost its last copy: the cached region is gone. Delete, and
  // queue the surviving siblings for the keep-alive scrub so their pool
  // bytes do not leak for the rest of the epoch.
  for (const ReplicaSet& f : it->second.frags) {
    for (const RegionLoc& c : f.replicas) queue_pending_free(c);
  }
  rd_.erase(it);
  ++metrics_.stale_regions_dropped;
  return nullptr;
}

sim::Co<std::optional<RegionLoc>> CentralManager::place_copy(
    Bytes64 flen, const std::vector<net::NodeId>& exclude,
    const std::vector<net::NodeId>& avoid, obs::TraceContext ctx) {
  // Random host selection among those believed to have room, verifying with
  // the imd and moving on when the hint was wrong (§4.3 alloc). `exclude`
  // hosts are never used; `avoid` hosts only when no other host has room.
  auto in = [](const std::vector<net::NodeId>& v, net::NodeId n) {
    return std::find(v.begin(), v.end(), n) != v.end();
  };
  std::vector<net::NodeId> candidates;
  for (const auto& [node, info] : iwd_) {
    if (!info.idle || info.largest_free < flen) continue;
    // A host under graded pressure (lease_epochs; always 0 otherwise) is
    // shedding regions already — placing new ones there just reshuffles the
    // flash crowd, so it joins `avoid`: last resort, never first choice.
    if (in(exclude, node) || in(avoid, node) || info.pressure != 0) continue;
    candidates.push_back(node);
  }
  if (candidates.empty()) {
    for (const auto& [node, info] : iwd_) {
      if (info.idle && info.largest_free >= flen && !in(exclude, node)) {
        candidates.push_back(node);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());  // determinism

  while (!candidates.empty()) {
    const std::size_t pick =
        static_cast<std::size_t>(rng_.below(candidates.size()));
    const net::NodeId host = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));

    ++metrics_.alloc_attempts;
    const std::uint64_t rid = rids_.next();
    const std::uint64_t want_epoch = iwd_[host].epoch;
    net::Buf req = make_header(MsgKind::kAllocReq, rid, ctx);
    net::Writer w(req);
    w.i64(flen);
    // Epoch guard: a retransmit of this request that straddles an imd
    // restart must not allocate under the new epoch — we would book the
    // region under state the imd no longer has, orphaning it.
    w.u64(want_epoch);
    auto rep = co_await rpc_call(net_, node_, net::Endpoint{host, kImdCtlPort},
                                 std::move(req), rid, params_.imd_rpc);
    if (!rep) {
      // No reply proves only unreachability, not reclamation — marking the
      // host busy here would make validate_region drop directory entries
      // for regions the imd still holds, orphaning their pool bytes until
      // the next epoch. Zero the size hint instead: the host stops being an
      // allocation candidate, and the hint self-heals from the next
      // register/alloc/free/cancel ack once the host is reachable again.
      DODO_DEBUG("cmd", "alloc rpc to host %u got no reply", host);
      iwd_[host].largest_free = 0;
      ++metrics_.alloc_suspects;
      suspect_allocs_.push_back(SuspectAlloc{host, want_epoch, rid});
      continue;
    }
    net::Reader rr = body_reader(*rep);
    const bool ok = rr.u8() != 0;
    const std::uint64_t region_id = rr.u64();
    const std::uint64_t epoch = rr.u64();
    const Bytes64 largest = rr.i64();
    if (!rr.ok()) continue;
    iwd_[host].epoch = epoch;
    iwd_[host].largest_free = largest;  // piggybacked hint refresh
    if (!ok) continue;

    co_return RegionLoc{host, epoch, region_id, flen};
  }
  co_return std::nullopt;
}

sim::Co<void> CentralManager::handle_mopen(net::Message msg) {
  const auto env = peek_envelope(msg);
  // Only reached past the replay_if_duplicate guard, so a retried mopen is
  // traced exactly once.
  obs::ScopedSpan span(params_.spans, "cmd.mopen", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  const Bytes64 len = r.i64();
  const net::Endpoint client_ctl = get_endpoint(r);
  ++metrics_.mopens;

  auto reply_fail = [&] {
    ++metrics_.alloc_failures;
    net::Buf rep = make_header(MsgKind::kMopenRep, env->rid);
    net::Writer w(rep);
    w.u8(0);
    w.u8(0);
    put_stripes(w, StripeMap{});
    reply_cached(msg, env->rid, std::move(rep));
  };
  if (!r.ok() || len <= 0) {
    reply_fail();
    co_return;
  }

  clients_[key.client] = ClientInfo{client_ctl, 0};

  // Persistent-region path: a prior run left this key cached (dmine mode).
  if (StripeMap* existing = validate_region(key)) {
    if (existing->len == len) {
      ++metrics_.mopen_reuses;
      net::Buf rep = make_header(MsgKind::kMopenRep, env->rid);
      net::Writer w(rep);
      w.u8(1);
      w.u8(1);  // reused: remote copy still holds the previous run's data
      put_stripes(w, *existing);
      reply_cached(msg, env->rid, std::move(rep));
      co_return;
    }
    // Length changed: the old cache is useless; drop it and allocate fresh.
    const StripeMap old = *existing;  // validate_region's pointer may dangle
    co_await free_stripes(key, old, span.ctx());
    rd_.erase(key);
  }

  // Striping policy: split the region into up to stripe_width fragments so
  // the runtime can fan reads out across distinct hosts in parallel, but
  // never below stripe_min_fragment (small regions stay whole).
  std::size_t hosts_with_room = 0;
  for (const auto& [node, info] : iwd_) {
    if (info.idle && info.largest_free > 0) ++hosts_with_room;
  }
  const int width = std::max(
      1, std::min(params_.stripe_width,
                  static_cast<int>(std::max<std::size_t>(1, hosts_with_room))));
  Bytes64 frag_len = (len + width - 1) / width;
  frag_len = std::max(frag_len, params_.stripe_min_fragment);
  frag_len = std::min(frag_len, len);
  const std::size_t nfrags =
      static_cast<std::size_t>((len + frag_len - 1) / frag_len);

  StripeMap map;
  map.len = len;
  map.frag_len = frag_len;
  const int copies = std::max(1, params_.replica_count);
  std::vector<net::NodeId> used;  // hosts already holding any copy
  bool failed = false;

  for (std::size_t i = 0; i < nfrags && !failed; ++i) {
    const Bytes64 flen = std::min(frag_len, len - map.frag_base(i));
    ReplicaSet set;
    for (int rep = 0; rep < copies; ++rep) {
      // Copies of one fragment must land on distinct hosts — a second copy
      // on the same host dies with the first. Hosts carrying *other*
      // fragments of the stripe are only preferred-out: when no fresh host
      // has room, the stripe doubles up rather than failing outright
      // (primary) or placing fewer copies (secondaries).
      std::vector<net::NodeId> siblings;
      siblings.reserve(set.replicas.size());
      for (const RegionLoc& c : set.replicas) siblings.push_back(c.host);
      auto loc = co_await place_copy(flen, siblings, used, span.ctx());
      if (!loc) {
        if (rep == 0) {
          // The mandatory primary could not be placed anywhere: the whole
          // mopen fails, all-or-nothing.
          failed = true;
        } else {
          // Secondaries are best-effort — serve with fewer copies. Count
          // every copy that was requested but not placed, so the gauge
          // reads as the cluster-wide replication deficit.
          metrics_.replica_shortfalls +=
              static_cast<std::uint64_t>(copies - rep);
        }
        break;
      }
      if (rep > 0) ++metrics_.replicas_placed;
      used.push_back(loc->host);
      set.replicas.push_back(*loc);
    }
    map.frags.push_back(std::move(set));
  }

  if (failed) {
    // Roll back whatever was placed; a copy whose free goes unacked on a
    // live same-epoch host is handed to the keep-alive scrub.
    for (const ReplicaSet& f : map.frags) {
      for (const RegionLoc& c : f.replicas) {
        const auto freed = co_await rpc_free_region(key, c, span.ctx());
        if (!freed.has_value()) queue_pending_free(c);
      }
    }
    reply_fail();
    co_return;
  }

  metrics_.fragments_placed += map.frags.size();
  if (map.frags.size() > 1) ++metrics_.striped_regions;
  rd_[key] = map;
  net::Buf out = make_header(MsgKind::kMopenRep, env->rid);
  net::Writer ow(out);
  ow.u8(1);
  ow.u8(0);  // fresh allocation: contents undefined until written
  put_stripes(ow, map);
  reply_cached(msg, env->rid, std::move(out));
}

void CentralManager::handle_checkalloc(const net::Message& msg) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "cmd.checkalloc", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  ++metrics_.checkallocs;
  net::Buf rep = make_header(MsgKind::kCheckAllocRep, env->rid);
  net::Writer w(rep);
  if (StripeMap* map = r.ok() ? validate_region(key) : nullptr) {
    w.u8(1);
    put_stripes(w, *map);
  } else {
    w.u8(0);
    put_stripes(w, StripeMap{});
  }
  reply_cached(msg, env->rid, std::move(rep));
}

sim::Co<std::optional<bool>> CentralManager::rpc_free_region(
    const RegionKey& key, const RegionLoc& loc, obs::TraceContext ctx) {
  (void)key;
  const std::uint64_t rid = rids_.next();
  net::Buf req = make_header(MsgKind::kFreeReq, rid, ctx);
  net::Writer w(req);
  w.u64(loc.imd_region);
  auto rep = co_await rpc_call(net_, node_,
                               net::Endpoint{loc.host, kImdCtlPort},
                               std::move(req), rid, params_.imd_rpc);
  if (!rep) {
    DODO_DEBUG("cmd", "free rpc to host %u region %llu got no reply", loc.host,
               static_cast<unsigned long long>(loc.imd_region));
    co_return std::nullopt;
  }
  net::Reader rr = body_reader(*rep);
  const bool ok = rr.u8() != 0;
  (void)rr.u64();  // epoch
  const Bytes64 largest = rr.i64();
  if (rr.ok()) iwd_[loc.host].largest_free = largest;
  co_return ok;
}

bool CentralManager::region_may_survive(const RegionLoc& loc) const {
  // A host that re-registered under a newer epoch rebuilt its pool, and a
  // busy host has none — eviction stops the imd and destroys its pool (see
  // ResourceMonitor::evict) while leaving the epoch untouched until the
  // next recruit. Only an idle host still in `loc`'s epoch can be holding
  // the bytes; without the idle check, a copy on an evicted host would sit
  // in the retry queue forever — a leaked pending-free slot.
  auto it = iwd_.find(loc.host);
  return it != iwd_.end() && it->second.idle &&
         it->second.epoch == loc.epoch;
}

void CentralManager::queue_pending_free(const RegionLoc& loc) {
  if (!region_may_survive(loc)) return;  // pool gone; nothing to free
  pending_frees_.push_back(loc);
  ++metrics_.fragments_pending_free;
  // Eager best-effort free: one unacked datagram, no retries, reply ignored
  // (it lands in serve_loop's default case). Most queued fragments sit on
  // reachable hosts, and their pool bytes should come back now, not at the
  // next keep-alive tick — a workload can finish before one fires. The
  // scrub stays the reliable path; a lost datagram costs nothing, and the
  // scrub's follow-up free of an already-freed region resolves cleanly.
  net::Buf req = make_header(MsgKind::kFreeReq, rids_.next());
  net::Writer w(req);
  w.u64(loc.imd_region);
  sock_->send(net::Endpoint{loc.host, kImdCtlPort}, std::move(req));
}

sim::Co<void> CentralManager::free_stripes(const RegionKey& key,
                                           StripeMap map,
                                           obs::TraceContext ctx) {
  // A copy whose free goes unanswered on a live same-epoch host is handed
  // to the pending-free retry queue, NOT kept in the directory. Re-emplacing
  // the map would resurrect entries for sibling copies whose frees DID land
  // (the imd no longer holds them — a dangling directory entry the leak
  // audit rightly flags); the retry queue tracks exactly the unresolved
  // copies and resolves each when its host acks, bumps its epoch, or is
  // evicted. Region ids are never reused within an epoch, so a retried
  // free that raced a lost ack cannot free a successor region.
  for (const ReplicaSet& f : map.frags) {
    for (const RegionLoc& c : f.replicas) {
      const auto freed = co_await rpc_free_region(key, c, ctx);
      if (!freed.has_value()) queue_pending_free(c);
    }
  }
}

sim::Co<void> CentralManager::scrub_pending_frees() {
  std::vector<RegionLoc> pending = std::move(pending_frees_);
  pending_frees_.clear();
  // Epoch moved on, or the host was evicted: that incarnation's pool is
  // gone, nothing to free — the slot resolves without a wire call.
  std::vector<RegionLoc> live;
  for (const RegionLoc& f : pending) {
    if (region_may_survive(f)) {
      live.push_back(f);
    } else {
      ++metrics_.fragments_pending_free_resolved;
    }
  }
  // Fan the frees out: a serial pass would hold every live host's
  // reclamation hostage to one unreachable host's full RPC retry ladder,
  // and a quiescing workload can end before a serial pass drains.
  std::vector<std::uint8_t> answered(live.size(), 0);
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(live.size()));
  for (std::size_t i = 0; i < live.size(); ++i) {
    sim_.spawn([](CentralManager& cmd, RegionLoc loc, std::uint8_t& got,
                  sim::WaitGroup& g) -> sim::Co<void> {
      const auto freed = co_await cmd.rpc_free_region(RegionKey{}, loc);
      got = freed.has_value() ? 1 : 0;
      g.done();
    }(*this, live[i], answered[i], wg));
  }
  co_await wg.wait();
  std::vector<RegionLoc> keep;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (answered[i] == 0 && region_may_survive(live[i])) {
      keep.push_back(live[i]);
    } else {
      ++metrics_.fragments_pending_free_resolved;
    }
  }
  // Mopens/validations may have queued more fragments while we awaited.
  pending_frees_.insert(pending_frees_.end(), keep.begin(), keep.end());
}

sim::Co<void> CentralManager::handle_mfree(net::Message msg) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "cmd.mfree", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  bool ok = false;
  auto it = r.ok() ? rd_.find(key) : rd_.end();
  if (it != rd_.end()) {
    const StripeMap map = it->second;
    rd_.erase(it);
    ++metrics_.frees;
    ok = true;
    co_await free_stripes(key, map, span.ctx());
  }
  net::Buf rep = make_header(MsgKind::kMfreeRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  reply_cached(msg, env->rid, std::move(rep));
}

void CentralManager::handle_drop_replica(net::Message msg) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "cmd.drop_replica", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  const RegionLoc loc = get_loc(r);
  auto same = [&](const RegionLoc& c) {
    return c.host == loc.host && c.epoch == loc.epoch &&
           c.imd_region == loc.imd_region;
  };
  bool ok = false;
  if (r.ok()) {
    // The copy may still be a pending (write-only) clone rather than a
    // directory entry; in either place, it must never serve a read again.
    for (auto g = pending_grows_.begin(); g != pending_grows_.end(); ++g) {
      if (g->key == key && same(g->loc)) {
        queue_pending_free(g->loc);
        pending_grows_.erase(g);
        ++metrics_.invalidations;
        ok = true;
        break;
      }
    }
    auto it = ok ? rd_.end() : rd_.find(key);
    if (it != rd_.end()) {
      for (ReplicaSet& f : it->second.frags) {
        auto c = std::find_if(f.replicas.begin(), f.replicas.end(), same);
        if (c == f.replicas.end()) continue;
        queue_pending_free(*c);
        f.replicas.erase(c);
        ++metrics_.invalidations;
        ok = true;
        break;
      }
      bool dead = false;
      for (const ReplicaSet& f : it->second.frags) {
        if (f.replicas.empty()) dead = true;
      }
      if (dead) {
        // The last copy of a fragment missed a write: part of the cached
        // region is unreachable, so forget the key — the next mopen
        // allocates fresh instead of reusing a torn cache.
        for (const ReplicaSet& f : it->second.frags) {
          for (const RegionLoc& c : f.replicas) queue_pending_free(c);
        }
        rd_.erase(it);
        ++metrics_.stale_regions_dropped;
      }
    }
  }
  net::Buf rep = make_header(MsgKind::kDropReplicaRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  reply_cached(msg, env->rid, std::move(rep));
}

sim::Co<std::optional<std::uint64_t>> CentralManager::rpc_clone(
    const RegionLoc& dst, const RegionLoc& src, obs::TraceContext ctx) {
  const std::uint64_t rid = rids_.next();
  net::Buf req = make_header(MsgKind::kCloneReq, rid, ctx);
  net::Writer w(req);
  w.u64(dst.imd_region);
  // Same epoch guard as alloc: a retransmit straddling an imd restart must
  // not touch the rebuilt pool.
  w.u64(dst.epoch);
  put_loc(w, src);
  auto rep = co_await rpc_call(net_, node_, net::Endpoint{dst.host, kImdCtlPort},
                               std::move(req), rid, params_.imd_rpc);
  if (!rep) co_return std::nullopt;
  net::Reader rr = body_reader(*rep);
  const bool ok = rr.u8() != 0;
  const std::uint64_t src_gen = rr.u64();
  const std::uint64_t epoch = rr.u64();
  const Bytes64 largest = rr.i64();
  if (!rr.ok()) co_return std::nullopt;
  iwd_[dst.host].epoch = epoch;
  iwd_[dst.host].largest_free = largest;
  if (!ok) co_return std::nullopt;
  co_return src_gen;
}

sim::Co<std::optional<std::uint64_t>> CentralManager::probe_write_gen(
    const RegionLoc& loc) {
  auto sock = net_.open_ephemeral(node_);
  const std::uint64_t rid = rids_.next();
  net::Buf req = make_header(MsgKind::kReadReq, rid);
  net::Writer w(req);
  w.u64(loc.imd_region);
  w.u64(loc.epoch);
  w.i64(0);  // offset
  w.i64(0);  // zero-length: pure generation sample, no payload
  sock->send(net::Endpoint{loc.host, kImdDataPort}, std::move(req));
  auto rep = co_await sock->recv_for(params_.imd_rpc.timeout);
  if (!rep) co_return std::nullopt;
  net::Reader rr = body_reader(*rep);
  const std::uint8_t code = rr.u8();
  (void)rr.i64();       // avail
  (void)rr.u8();        // filled
  (void)rr.i64();       // written prefix
  const std::uint64_t gen = rr.u64();
  if (!rr.ok() || code != 0) co_return std::nullopt;
  // Drain the imd's (empty) bulk blast so its handler completes cleanly.
  auto got = co_await net::bulk_recv(*sock, rid, net::BulkParams{}, {});
  if (!got.status.is_ok()) co_return std::nullopt;
  co_return gen;
}

sim::Co<void> CentralManager::grow_region(RegionKey key) {
  obs::ScopedSpan span(params_.spans, "cmd.replica_grow");
  const std::size_t nfrags = [&] {
    auto it = rd_.find(key);
    return it == rd_.end() ? std::size_t{0} : it->second.frags.size();
  }();
  for (std::size_t i = 0; i < nfrags; ++i) {
    // Re-find each round: every await below can invalidate the entry.
    auto it = rd_.find(key);
    if (it == rd_.end() || i >= it->second.frags.size()) co_return;
    const ReplicaSet& f = it->second.frags[i];
    if (f.replicas.empty()) continue;
    std::size_t have = f.replicas.size();
    std::vector<net::NodeId> exclude;
    for (const RegionLoc& c : f.replicas) exclude.push_back(c.host);
    for (const PendingGrow& g : pending_grows_) {
      if (g.key == key && g.frag == i) {
        ++have;
        exclude.push_back(g.loc.host);
      }
    }
    if (have >= static_cast<std::size_t>(std::max(1, params_.replica_max))) {
      continue;
    }
    const RegionLoc src = f.replicas.front();
    auto loc = co_await place_copy(src.len, exclude, {}, span.ctx());
    if (!loc) {
      ++metrics_.replica_shortfalls;
      continue;
    }
    auto src_gen = co_await rpc_clone(*loc, src, span.ctx());
    if (!src_gen) {
      ++metrics_.clone_failures;
      const auto freed = co_await rpc_free_region(key, *loc, span.ctx());
      if (!freed.has_value()) queue_pending_free(*loc);
      continue;
    }
    pending_grows_.push_back(PendingGrow{key, i, *loc, src, *src_gen, false});
  }
}

void CentralManager::shrink_region(const RegionKey& key) {
  auto it = rd_.find(key);
  if (it == rd_.end()) return;
  for (std::size_t i = 0; i < it->second.frags.size(); ++i) {
    auto& reps = it->second.frags[i].replicas;
    if (reps.size() <= 1) continue;  // the primary never shrinks away
    const RegionLoc victim = reps.back();
    reps.pop_back();
    queue_pending_free(victim);
    ++metrics_.replicas_shrunk;
    obs::frecord(params_.flight, obs::FlightEventType::kReplicaShrink,
                 static_cast<std::int64_t>(victim.host),
                 static_cast<std::int64_t>(i), victim.len);
    // Tell the owner to stop writing the released copy. A client whose ping
    // misses the drop self-heals: its next write to the freed region fails,
    // it reports a kDropReplicaReq, and prunes the copy locally.
    client_updates_[key.client].push_back(ReplicaUpdate{
        static_cast<std::uint8_t>(ReplicaUpdateOp::kDrop), key,
        static_cast<std::uint32_t>(i), victim});
  }
}

sim::Co<void> CentralManager::adapt_replicas() {
  // The settle phase also runs under lease_epochs alone: proactive re-homes
  // ride the same PendingGrow lifecycle and must activate (or be dropped)
  // even when elastic replication is off.
  if (!params_.replica_adapt && !params_.lease_epochs) co_return;
  // Phase 1 — settle pending clones. A clone activates only once (a) the
  // owning client acked the write-only add, so every write from then on
  // reaches the copy, and (b) the writes the source saw since the snapshot
  // all reached the copy too: src_gen_now - src_gen_snapshot must equal the
  // copy's own write generation. Anything else is (conservatively) dropped —
  // a copy that might have missed a write is never served.
  std::vector<PendingGrow> grows = std::move(pending_grows_);
  pending_grows_.clear();
  for (PendingGrow& g : grows) {
    auto entry_live = [&] {
      auto it = rd_.find(g.key);
      return it != rd_.end() && g.frag < it->second.frags.size() &&
             !it->second.frags[g.frag].replicas.empty();
    };
    if (!entry_live()) {
      // The region was freed or died while the clone was pending.
      const auto freed = co_await rpc_free_region(g.key, g.loc);
      if (!freed.has_value()) queue_pending_free(g.loc);
      ++metrics_.clone_failures;
      continue;
    }
    if (!g.acked) {
      pending_grows_.push_back(g);  // re-offered on the next ping
      continue;
    }
    const auto src_gen = co_await probe_write_gen(g.src);
    const auto copy_gen = co_await probe_write_gen(g.loc);
    const bool consistent = src_gen.has_value() && copy_gen.has_value() &&
                            *src_gen - g.src_gen == *copy_gen;
    if (consistent && entry_live()) {
      auto it = rd_.find(g.key);
      it->second.frags[g.frag].replicas.push_back(g.loc);
      ++metrics_.replicas_grown;
      obs::frecord(params_.flight, obs::FlightEventType::kReplicaGrow,
                   static_cast<std::int64_t>(g.loc.host),
                   static_cast<std::int64_t>(g.frag), g.loc.len);
      client_updates_[g.key.client].push_back(ReplicaUpdate{
          static_cast<std::uint8_t>(ReplicaUpdateOp::kActivate), g.key,
          static_cast<std::uint32_t>(g.frag), g.loc});
    } else {
      const auto freed = co_await rpc_free_region(g.key, g.loc);
      if (!freed.has_value()) queue_pending_free(g.loc);
      ++metrics_.clone_failures;
      client_updates_[g.key.client].push_back(ReplicaUpdate{
          static_cast<std::uint8_t>(ReplicaUpdateOp::kDrop), g.key,
          static_cast<std::uint32_t>(g.frag), g.loc});
    }
  }
  if (!params_.replica_adapt) co_return;  // lease-only: no heat adaptation
  // Phase 2 — hot/cold decisions from the window's reported read hits,
  // visited in deterministic key order.
  std::vector<std::pair<RegionKey, std::uint64_t>> window(hits_.begin(),
                                                          hits_.end());
  hits_.clear();
  std::sort(window.begin(), window.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.first.inode, a.first.offset, a.first.client) <
                     std::tie(b.first.inode, b.first.offset, b.first.client);
            });
  for (const auto& [key, hits] : window) {
    if (rd_.find(key) == rd_.end()) continue;
    if (hits >= params_.replica_grow_hits) {
      co_await grow_region(key);
    } else if (hits <= params_.replica_shrink_hits) {
      shrink_region(key);
    }
  }
}

sim::Co<void> CentralManager::scrub_suspect_allocs() {
  std::vector<SuspectAlloc> pending = std::move(suspect_allocs_);
  suspect_allocs_.clear();
  std::vector<SuspectAlloc> keep;
  for (const auto& s : pending) {
    auto it = iwd_.find(s.host);
    if (it == iwd_.end() || it->second.epoch != s.epoch) {
      // The host restarted (or was never seen again under that epoch): the
      // pool of that incarnation is gone, nothing to scrub.
      continue;
    }
    const std::uint64_t rid = rids_.next();
    obs::ScopedSpan span(params_.spans, "cmd.scrub_alloc");
    net::Buf req = make_header(MsgKind::kAllocCancel, rid, span.ctx());
    net::Writer w(req);
    w.u64(s.rid);
    auto rep = co_await rpc_call(net_, node_,
                                 net::Endpoint{s.host, kImdCtlPort},
                                 std::move(req), rid, params_.imd_rpc);
    if (!rep) {
      keep.push_back(s);  // still unreachable; retry next keepalive tick
      continue;
    }
    net::Reader rr = body_reader(*rep);
    const bool freed = rr.u8() != 0;
    (void)rr.u64();  // epoch
    const Bytes64 largest = rr.i64();
    if (rr.ok()) iwd_[s.host].largest_free = largest;
    ++metrics_.alloc_cancels_acked;
    if (freed) {
      DODO_DEBUG("cmd", "scrubbed orphaned alloc rid %llu at host %u",
                 static_cast<unsigned long long>(s.rid), s.host);
    }
  }
  // handle_mopen may have appended new suspects while we were awaiting.
  suspect_allocs_.insert(suspect_allocs_.end(), keep.begin(), keep.end());
}

sim::Co<void> CentralManager::process_expiry_notices() {
  std::vector<ExpiryNotice> batch = std::move(pending_expiry_notices_);
  pending_expiry_notices_.clear();
  // Doom entries of dead incarnations can never match a live replica again.
  for (auto it = doomed_copies_.begin(); it != doomed_copies_.end();) {
    auto host = iwd_.find(std::get<0>(*it));
    if (host == iwd_.end() || host->second.epoch != std::get<1>(*it)) {
      it = doomed_copies_.erase(it);
    } else {
      ++it;
    }
  }
  if (batch.empty()) co_return;
  // Register the whole batch as doomed before scanning for survivors: a
  // sibling that is itself dying — named in this batch OR in an earlier one
  // whose fence has not resolved yet — cannot count as a survivor. Under a
  // flash crowd every replica of a fragment can be expiring at once,
  // batches apart.
  for (const ExpiryNotice& e : batch) {
    auto host = iwd_.find(e.host);
    if (host != iwd_.end() && host->second.epoch == e.epoch) {
      doomed_copies_.insert({e.host, e.epoch, e.id});
    }
  }
  auto expiring = [&](const RegionLoc& c) {
    return doomed_copies_.count({c.host, c.epoch, c.imd_region}) > 0;
  };
  for (const ExpiryNotice& e : batch) {
    // A notice from a past incarnation is moot: that pool is already gone.
    auto host = iwd_.find(e.host);
    if (host == iwd_.end() || host->second.epoch != e.epoch) continue;
    // Find the directory copy the notice names; re-scanned per notice since
    // the awaits below can reshape the directory. Ids the cmd never learned
    // (orphaned allocs) simply age out at the fence.
    RegionKey key{};
    std::size_t frag = 0;
    RegionLoc src{};
    bool found = false;
    bool has_survivor = false;
    for (const auto& [k, map] : rd_) {
      for (std::size_t i = 0; i < map.frags.size() && !found; ++i) {
        for (const RegionLoc& c : map.frags[i].replicas) {
          if (c.host == e.host && c.epoch == e.epoch &&
              c.imd_region == e.id) {
            key = k;
            frag = i;
            src = c;
            found = true;
            for (const RegionLoc& s : map.frags[i].replicas) {
              if (!(s.host == c.host && s.imd_region == c.imd_region) &&
                  !expiring(s)) {
                has_survivor = true;
              }
            }
            break;
          }
        }
      }
      if (found) break;
    }
    // A fragment with a surviving replica needs no re-home — the copy's
    // expiry just shrinks the set back toward one.
    if (!found || has_survivor) continue;
    bool already_rehoming = false;
    for (const PendingGrow& g : pending_grows_) {
      if (g.key == key && g.frag == frag) {
        already_rehoming = true;
        break;
      }
    }
    if (already_rehoming) continue;
    std::vector<net::NodeId> exclude;
    for (const RegionLoc& c : rd_[key].frags[frag].replicas) {
      exclude.push_back(c.host);
    }
    // Same clone lifecycle as elastic growth: the copy stays write-only and
    // unserved until the owning client acks it and the source's write
    // generation proves nothing was missed (adapt_replicas phase 1). The
    // source stays readable through its grace window — the imd does not
    // reject its renewal until the fence actually drops — which is exactly
    // the window the handshake needs.
    obs::ScopedSpan span(params_.spans, "cmd.proactive_copy");
    auto loc = co_await place_copy(src.len, exclude, {}, span.ctx());
    if (!loc) {
      ++metrics_.replica_shortfalls;
      continue;
    }
    auto src_gen = co_await rpc_clone(*loc, src, span.ctx());
    auto entry_live = [&] {
      auto it = rd_.find(key);
      return it != rd_.end() && frag < it->second.frags.size() &&
             !it->second.frags[frag].replicas.empty();
    };
    if (!src_gen || !entry_live()) {
      if (!src_gen) ++metrics_.clone_failures;
      const auto freed = co_await rpc_free_region(key, *loc, span.ctx());
      if (!freed.has_value()) queue_pending_free(*loc);
      continue;
    }
    pending_grows_.push_back(
        PendingGrow{key, frag, *loc, src, *src_gen, false});
    ++metrics_.proactive_copies;
    obs::frecord(params_.flight, obs::FlightEventType::kProactiveCopy,
                 static_cast<std::int64_t>(loc->host),
                 static_cast<std::int64_t>(src.host), src.len);
  }
}

sim::Co<void> CentralManager::renew_leases() {
  // Hosts visited in node-id order for determinism.
  std::vector<net::NodeId> hosts;
  hosts.reserve(iwd_.size());
  for (const auto& [node, info] : iwd_) {
    if (info.idle) hosts.push_back(node);
  }
  std::sort(hosts.begin(), hosts.end());
  for (const net::NodeId host : hosts) {
    auto hit = iwd_.find(host);
    if (hit == iwd_.end() || !hit->second.idle) continue;  // evicted mid-sweep
    const std::uint64_t epoch = hit->second.epoch;
    // Every copy the directory — and the settling-clone queue — books on
    // this incarnation holds a lease the imd fences unless renewed.
    std::vector<std::uint64_t> ids;
    for (const auto& [key, map] : rd_) {
      for (const ReplicaSet& f : map.frags) {
        for (const RegionLoc& c : f.replicas) {
          if (c.host == host && c.epoch == epoch) {
            ids.push_back(c.imd_region);
          }
        }
      }
    }
    for (const PendingGrow& g : pending_grows_) {
      if (g.loc.host == host && g.loc.epoch == epoch) {
        ids.push_back(g.loc.imd_region);
      }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.empty()) continue;
    const std::uint64_t rid = rids_.next();
    obs::ScopedSpan span(params_.spans, "cmd.lease_renew");
    net::Buf req = make_header(MsgKind::kLeaseRenewReq, rid, span.ctx());
    net::Writer w(req);
    w.u64(epoch);
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (const std::uint64_t id : ids) w.u64(id);
    auto rep = co_await rpc_call(net_, node_,
                                 net::Endpoint{host, kImdCtlPort},
                                 std::move(req), rid, params_.imd_rpc);
    // No reply: retried next tick — the ttl spans several keepalive
    // intervals precisely so a lost round costs nothing.
    if (!rep) continue;
    net::Reader rr = body_reader(*rep);
    const bool ok = rr.u8() != 0;
    (void)rr.u64();  // imd's current epoch
    const Bytes64 largest = rr.i64();
    const std::uint32_t n_rejected = rr.u32();
    std::vector<std::uint64_t> rejected;
    rejected.reserve(n_rejected);
    for (std::uint32_t i = 0; i < n_rejected && rr.ok(); ++i) {
      rejected.push_back(rr.u64());
    }
    if (!rr.ok()) continue;
    iwd_[host].largest_free = largest;
    if (!ok) {
      // Epoch mismatch: the imd restarted under us. Nothing was renewed;
      // the fresh registration and validate_region sort the directory out.
      continue;
    }
    metrics_.lease_renewals +=
        static_cast<std::uint64_t>(ids.size() - rejected.size());
    metrics_.lease_renew_rejects +=
        static_cast<std::uint64_t>(rejected.size());
    if (!rejected.empty()) prune_rejected_copies(host, epoch, rejected);
  }
}

void CentralManager::prune_rejected_copies(
    net::NodeId host, std::uint64_t epoch,
    const std::vector<std::uint64_t>& ids) {
  obs::frecord(params_.flight, obs::FlightEventType::kHostPrune,
               static_cast<std::int64_t>(host),
               static_cast<std::int64_t>(epoch),
               static_cast<std::int64_t>(ids.size()));
  auto gone = [&](const RegionLoc& c) {
    return c.host == host && c.epoch == epoch &&
           std::find(ids.begin(), ids.end(), c.imd_region) != ids.end();
  };
  // The fence resolved for these ids; their doom entries are spent.
  for (const std::uint64_t id : ids) {
    doomed_copies_.erase({host, epoch, id});
  }
  // A settling clone whose copy was fenced dies here without a free — the
  // imd already reclaimed the bytes; freeing them would double-release.
  for (auto g = pending_grows_.begin(); g != pending_grows_.end();) {
    if (gone(g->loc)) {
      ++metrics_.clone_failures;
      g = pending_grows_.erase(g);
    } else {
      ++g;
    }
  }
  std::vector<RegionKey> dead;
  for (auto& [key, map] : rd_) {
    bool empty = false;
    for (ReplicaSet& f : map.frags) {
      auto first =
          std::remove_if(f.replicas.begin(), f.replicas.end(), gone);
      f.replicas.erase(first, f.replicas.end());
      if (f.replicas.empty()) empty = true;
    }
    if (empty) dead.push_back(key);
  }
  for (const RegionKey& key : dead) {
    auto it = rd_.find(key);
    if (it == rd_.end()) continue;
    // A fragment lost its last copy: the cached region is unreachable, so
    // the entry dies and surviving siblings are freed lazily — exactly the
    // validate_region path.
    for (const ReplicaSet& f : it->second.frags) {
      for (const RegionLoc& c : f.replicas) queue_pending_free(c);
    }
    rd_.erase(it);
    ++metrics_.stale_regions_dropped;
  }
}

sim::Co<void> CentralManager::reclaim_client(std::uint32_t client) {
  ++metrics_.clients_reclaimed;
  std::vector<std::pair<RegionKey, StripeMap>> victims;
  for (const auto& [key, map] : rd_) {
    if (key.client == client) victims.emplace_back(key, map);
  }
  for (const auto& [key, map] : victims) {
    co_await free_stripes(key, map);
    rd_.erase(key);
    ++metrics_.regions_reclaimed;
  }
  clients_.erase(client);
  client_updates_.erase(client);
  DODO_INFO("cmd", "reclaimed %zu regions of dead client %u", victims.size(),
            client);
}

obs::MetricsSnapshot CentralManager::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("cmd.mopens", metrics_.mopens);
  out.set_counter("cmd.mopen_reuses", metrics_.mopen_reuses);
  out.set_counter("cmd.alloc_attempts", metrics_.alloc_attempts);
  out.set_counter("cmd.alloc_failures", metrics_.alloc_failures);
  out.set_counter("cmd.alloc_suspects", metrics_.alloc_suspects);
  out.set_counter("cmd.alloc_cancels_acked", metrics_.alloc_cancels_acked);
  out.set_counter("cmd.checkallocs", metrics_.checkallocs);
  out.set_counter("cmd.stale_regions_dropped", metrics_.stale_regions_dropped);
  out.set_counter("cmd.frees", metrics_.frees);
  out.set_counter("cmd.fragments_placed", metrics_.fragments_placed);
  out.set_counter("cmd.striped_regions", metrics_.striped_regions);
  out.set_counter("cmd.fragments_pending_free",
                  metrics_.fragments_pending_free);
  out.set_counter("cmd.fragments_pending_free_resolved",
                  metrics_.fragments_pending_free_resolved);
  out.set_counter("cmd.replicas_placed", metrics_.replicas_placed);
  out.set_counter("cmd.replica_shortfalls", metrics_.replica_shortfalls);
  out.set_counter("cmd.replicas_grown", metrics_.replicas_grown);
  out.set_counter("cmd.replicas_shrunk", metrics_.replicas_shrunk);
  out.set_counter("cmd.clone_failures", metrics_.clone_failures);
  out.set_counter("cmd.replicas_dropped", metrics_.replicas_dropped);
  out.set_counter("cmd.invalidations", metrics_.invalidations);
  out.set_counter("cmd.pings_sent", metrics_.pings_sent);
  out.set_counter("cmd.clients_reclaimed", metrics_.clients_reclaimed);
  out.set_counter("cmd.regions_reclaimed", metrics_.regions_reclaimed);
  out.set_counter("cmd.epoch_bumps_seen", metrics_.epoch_bumps_seen);
  out.set_counter("cmd.stats_scrapes", metrics_.stats_scrapes);
  out.set_counter("cmd.stats_scrape_failures",
                  metrics_.stats_scrape_failures);
  out.set_gauge("cmd.directory_size", static_cast<std::int64_t>(rd_.size()));
  out.set_gauge("cmd.idle_hosts",
                static_cast<std::int64_t>(idle_host_count()));
  out.set_gauge("cmd.known_hosts", static_cast<std::int64_t>(iwd_.size()));
  out.set_gauge("cmd.clients", static_cast<std::int64_t>(clients_.size()));
  out.set_gauge("cmd.suspect_allocs",
                static_cast<std::int64_t>(suspect_allocs_.size()));
  out.set_gauge("cmd.pending_frees",
                static_cast<std::int64_t>(pending_frees_.size()));
  out.set_gauge("cmd.pending_grows",
                static_cast<std::int64_t>(pending_grows_.size()));
  out.set_gauge("cmd.reply_cache_size",
                static_cast<std::int64_t>(reply_cache_.size()));
  if (params_.lease_epochs) {
    // Omitted with lease_epochs off so the export stays byte-identical to
    // the pre-lease layout.
    out.set_counter("cmd.lease_renewals", metrics_.lease_renewals);
    out.set_counter("cmd.lease_renew_rejects", metrics_.lease_renew_rejects);
    out.set_counter("cmd.lease_expiry_notices",
                    metrics_.lease_expiry_notices);
    out.set_counter("cmd.proactive_copies", metrics_.proactive_copies);
    out.set_gauge("cmd.pending_expiry_notices",
                  static_cast<std::int64_t>(pending_expiry_notices_.size()));
  }
  return out;
}

sim::Co<std::optional<obs::MetricsSnapshot>> CentralManager::scrape_host(
    net::NodeId host) {
  ++metrics_.stats_scrapes;
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "cmd.scrape");
  auto rep = co_await rpc_call(net_, node_, net::Endpoint{host, kRmdPort},
                               make_header(MsgKind::kStatsReq, rid, span.ctx()),
                               rid, params_.imd_rpc);
  if (!rep) {
    ++metrics_.stats_scrape_failures;
    co_return std::nullopt;
  }
  net::Reader rr = body_reader(*rep);
  const std::string json = rr.str();
  obs::MetricsSnapshot snap;
  if (!rr.ok() || !obs::MetricsSnapshot::from_json(json, snap)) {
    ++metrics_.stats_scrape_failures;
    co_return std::nullopt;
  }
  co_return snap;
}

sim::Co<obs::MetricsSnapshot> CentralManager::scrape_cluster() {
  // Snapshot the host list before awaiting: scrapes yield, and the IWD can
  // gain or lose hosts mid-sweep.
  std::vector<net::NodeId> hosts;
  hosts.reserve(iwd_.size());
  for (const auto& [node, info] : iwd_) hosts.push_back(node);
  std::sort(hosts.begin(), hosts.end());
  obs::MetricsSnapshot total;
  for (const net::NodeId host : hosts) {
    auto snap = co_await scrape_host(host);
    if (snap) total.merge(*snap);
  }
  total.merge(metrics_snapshot());  // own view last; names are disjoint
  co_return total;
}

sim::Co<void> CentralManager::keepalive_loop() {
  for (;;) {
    auto stop = co_await stop_ch_.recv_for(params_.keepalive_interval);
    if (stop.has_value() || stopping_) break;
    if (!suspect_allocs_.empty()) co_await scrub_suspect_allocs();
    if (!pending_frees_.empty()) co_await scrub_pending_frees();
    if (params_.lease_epochs) {
      // Re-home first, renew second: the clone of an expiring sole copy must
      // start while the copy is still inside its grace window.
      co_await process_expiry_notices();
      co_await renew_leases();
    }
    // Snapshot: reclaim_client mutates clients_.
    std::vector<std::pair<std::uint32_t, net::Endpoint>> targets;
    targets.reserve(clients_.size());
    for (const auto& [id, info] : clients_) {
      targets.emplace_back(id, info.control);
    }
    for (const auto& [id, control] : targets) {
      const std::uint64_t rid = rids_.next();
      ++metrics_.pings_sent;
      obs::ScopedSpan span(params_.spans, "cmd.ping");
      net::Buf ping = make_header(MsgKind::kPing, rid, span.ctx());
      // Piggyback replica-set deltas: unacked write-only adds (resent every
      // tick until the client acks) followed by queued activates/drops.
      std::vector<ReplicaUpdate> updates;
      for (const PendingGrow& g : pending_grows_) {
        if (g.key.client == id && !g.acked) {
          updates.push_back(ReplicaUpdate{
              static_cast<std::uint8_t>(ReplicaUpdateOp::kAddWriteOnly),
              g.key, static_cast<std::uint32_t>(g.frag), g.loc});
        }
      }
      std::size_t requeue_from = updates.size();
      if (auto qit = client_updates_.find(id); qit != client_updates_.end()) {
        updates.insert(updates.end(), qit->second.begin(), qit->second.end());
        client_updates_.erase(qit);
      }
      {
        net::Writer w(ping);
        w.u32(static_cast<std::uint32_t>(updates.size()));
        for (const ReplicaUpdate& u : updates) {
          w.u8(u.op);
          put_key(w, u.key);
          w.u32(u.frag);
          put_loc(w, u.loc);
        }
      }
      auto rep = co_await rpc_call(net_, node_, control, std::move(ping), rid,
                                   params_.ping_rpc);
      auto it = clients_.find(id);
      if (it == clients_.end()) continue;
      if (rep) {
        it->second.missed = 0;
        // kPong piggyback: acks for applied write-only adds, then per-region
        // read-hit deltas feeding the adaptation window.
        net::Reader r = body_reader(*rep);
        const std::uint32_t nacks = r.u32();
        for (std::uint32_t i = 0; i < nacks && r.ok(); ++i) {
          const RegionKey key = get_key(r);
          const std::uint32_t frag = r.u32();
          const RegionLoc loc = get_loc(r);
          if (!r.ok()) break;
          for (PendingGrow& g : pending_grows_) {
            if (g.key == key && g.frag == frag && g.loc.host == loc.host &&
                g.loc.epoch == loc.epoch &&
                g.loc.imd_region == loc.imd_region) {
              g.acked = true;
            }
          }
        }
        const std::uint32_t nstats = r.u32();
        for (std::uint32_t i = 0; i < nstats && r.ok(); ++i) {
          const RegionKey key = get_key(r);
          const std::uint64_t hits = r.u64();
          if (r.ok()) hits_[key] += hits;
        }
      } else {
        // Activates/drops the client never saw must not be lost (an unacked
        // drop would leave it writing a freed copy until self-heal kicks
        // in); re-queue them for the next tick. The write-only adds re-derive
        // from pending_grows_ anyway.
        if (requeue_from < updates.size()) {
          auto& q = client_updates_[id];
          q.insert(q.begin(), updates.begin() + requeue_from, updates.end());
        }
        if (++it->second.missed > params_.keepalive_miss_limit) {
          co_await reclaim_client(id);
        }
      }
    }
    co_await adapt_replicas();
  }
  loops_.done();
}

}  // namespace dodo::core
