#include "core/cmd.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace dodo::core {

CentralManager::CentralManager(sim::Simulator& sim, net::Network& net,
                               net::NodeId node, CmdParams params)
    : sim_(sim),
      net_(net),
      node_(node),
      params_(params),
      rng_(sim.rng().fork(0x636d64u)),  // "cmd"
      loops_(sim),
      stop_ch_(sim) {}

CentralManager::~CentralManager() = default;

void CentralManager::start() {
  assert(!running_);
  running_ = true;
  stopping_ = false;
  sock_ = net_.open(node_, kCmdPort);
  loops_.add(2);
  sim_.spawn(serve_loop());
  sim_.spawn(keepalive_loop());
}

sim::Co<void> CentralManager::stop() {
  if (!running_) co_return;
  stopping_ = true;
  net::Message sentinel;
  sentinel.header = make_header(MsgKind::kShutdownSentinel, 0);
  sock_->inject(std::move(sentinel));
  stop_ch_.send(1);
  co_await loops_.wait();
  sock_.reset();
  running_ = false;
}

std::vector<std::pair<RegionKey, RegionLoc>> CentralManager::rd_snapshot()
    const {
  std::vector<std::pair<RegionKey, RegionLoc>> out;
  out.reserve(rd_.size());
  for (const auto& [key, map] : rd_) {
    for (const RegionLoc& f : map.frags) out.emplace_back(key, f);
  }
  return out;
}

std::vector<std::pair<net::NodeId, std::uint64_t>> CentralManager::iwd_epochs()
    const {
  std::vector<std::pair<net::NodeId, std::uint64_t>> out;
  out.reserve(iwd_.size());
  for (const auto& [node, info] : iwd_) out.emplace_back(node, info.epoch);
  return out;
}

std::size_t CentralManager::idle_host_count() const {
  std::size_t n = 0;
  for (const auto& [node, info] : iwd_) {
    if (info.idle) ++n;
  }
  return n;
}

void CentralManager::reply_cached(const net::Message& msg, std::uint64_t rid,
                                  net::Buf rep) {
  // Bounded FIFO, never clear-all — a clear would re-execute a retried
  // mopen/mfree whose reply is still in flight (see the imd's reply cache).
  const ReplyKey key{msg.src, rid};
  if (reply_cache_.emplace(key, rep).second) {
    reply_order_.push_back(key);
    while (reply_cache_.size() > params_.reply_cache_capacity &&
           !reply_order_.empty()) {
      reply_cache_.erase(reply_order_.front());
      reply_order_.pop_front();
    }
  }
  sock_->send(msg.src, std::move(rep));
}

bool CentralManager::replay_if_duplicate(const net::Message& msg,
                                         std::uint64_t rid) {
  auto it = reply_cache_.find(ReplyKey{msg.src, rid});
  if (it == reply_cache_.end()) return false;
  sock_->send(msg.src, it->second);
  return true;
}

sim::Co<void> CentralManager::serve_loop() {
  for (;;) {
    net::Message msg = co_await sock_->recv();
    auto env = peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    switch (env->kind) {
      case MsgKind::kHostStatus:
        handle_host_status(msg);
        break;
      case MsgKind::kImdRegister:
        handle_imd_register(msg);
        break;
      case MsgKind::kMopenReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          co_await handle_mopen(std::move(msg));
        }
        break;
      case MsgKind::kCheckAllocReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          handle_checkalloc(msg);
        }
        break;
      case MsgKind::kMfreeReq:
        if (!replay_if_duplicate(msg, env->rid)) {
          co_await handle_mfree(std::move(msg));
        }
        break;
      case MsgKind::kStatsReq: {
        obs::ScopedSpan span(params_.spans, "cmd.stats", env->trace);
        net::Buf rep = make_header(MsgKind::kStatsRep, env->rid);
        net::Writer w(rep);
        w.str(metrics_snapshot().to_json());
        sock_->send(msg.src, std::move(rep));
        break;
      }
      case MsgKind::kDetach: {
        net::Reader r = body_reader(msg);
        const std::uint32_t client = r.u32();
        if (r.ok()) clients_.erase(client);
        sock_->send(msg.src, make_header(MsgKind::kDetach, env->rid));
        break;
      }
      default:
        break;
    }
  }
  loops_.done();
}

void CentralManager::handle_host_status(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const bool idle = r.u8() != 0;
  if (!r.ok()) return;
  auto& info = iwd_[node];
  info.idle = idle;
  if (!idle) info.largest_free = 0;
  DODO_DEBUG("cmd", "host %u now %s", node, idle ? "idle" : "busy");
}

void CentralManager::handle_imd_register(const net::Message& msg) {
  net::Reader r = body_reader(msg);
  const net::NodeId node = r.u32();
  const std::uint64_t epoch = r.u64();
  const Bytes64 pool = r.i64();
  const Bytes64 largest = r.i64();
  if (!r.ok()) return;
  auto& info = iwd_[node];
  if (epoch > info.epoch && info.epoch != 0) ++metrics_.epoch_bumps_seen;
  info.idle = true;
  info.epoch = epoch;
  info.pool_total = pool;
  info.largest_free = largest;
  // Ack so the imd's registration RPC completes.
  sock_->send(msg.src, make_header(MsgKind::kImdRegister,
                                   peek_envelope(msg)->rid));
  DODO_DEBUG("cmd", "imd registered: host %u epoch %llu pool %lld", node,
             static_cast<unsigned long long>(epoch),
             static_cast<long long>(pool));
}

StripeMap* CentralManager::validate_region(const RegionKey& key) {
  auto it = rd_.find(key);
  if (it == rd_.end()) return nullptr;
  bool stale = false;
  for (const RegionLoc& f : it->second.frags) {
    auto host = iwd_.find(f.host);
    if (host == iwd_.end() || !host->second.idle ||
        host->second.epoch != f.epoch) {
      stale = true;
      break;
    }
  }
  if (!stale) return &it->second;
  // Stale: a fragment's workstation was reclaimed (or re-recruited under a
  // new epoch) since the region was allocated. Delete, per §4.3 checkAlloc.
  // Sibling fragments whose own host is still alive under their placement
  // epoch keep pool bytes allocated; queue them for the keep-alive scrub so
  // they do not leak for the rest of the epoch.
  for (const RegionLoc& f : it->second.frags) {
    if (region_may_survive(f)) {
      pending_frees_.push_back(f);
      ++metrics_.fragments_pending_free;
    }
  }
  rd_.erase(it);
  ++metrics_.stale_regions_dropped;
  return nullptr;
}

sim::Co<void> CentralManager::handle_mopen(net::Message msg) {
  const auto env = peek_envelope(msg);
  // Only reached past the replay_if_duplicate guard, so a retried mopen is
  // traced exactly once.
  obs::ScopedSpan span(params_.spans, "cmd.mopen", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  const Bytes64 len = r.i64();
  const net::Endpoint client_ctl = get_endpoint(r);
  ++metrics_.mopens;

  auto reply_fail = [&] {
    ++metrics_.alloc_failures;
    net::Buf rep = make_header(MsgKind::kMopenRep, env->rid);
    net::Writer w(rep);
    w.u8(0);
    w.u8(0);
    put_stripes(w, StripeMap{});
    reply_cached(msg, env->rid, std::move(rep));
  };
  if (!r.ok() || len <= 0) {
    reply_fail();
    co_return;
  }

  clients_[key.client] = ClientInfo{client_ctl, 0};

  // Persistent-region path: a prior run left this key cached (dmine mode).
  if (StripeMap* existing = validate_region(key)) {
    if (existing->len == len) {
      ++metrics_.mopen_reuses;
      net::Buf rep = make_header(MsgKind::kMopenRep, env->rid);
      net::Writer w(rep);
      w.u8(1);
      w.u8(1);  // reused: remote copy still holds the previous run's data
      put_stripes(w, *existing);
      reply_cached(msg, env->rid, std::move(rep));
      co_return;
    }
    // Length changed: the old cache is useless; drop it and allocate fresh.
    const StripeMap old = *existing;  // validate_region's pointer may dangle
    if (!co_await free_stripes(key, old, span.ctx())) {
      // Unacknowledged free against a live same-epoch host: forgetting the
      // entry would orphan the old region. Keep it and fail this mopen —
      // the client degrades to disk and may retry later.
      reply_fail();
      co_return;
    }
    rd_.erase(key);
  }

  // Striping policy: split the region into up to stripe_width fragments so
  // the runtime can fan reads out across distinct hosts in parallel, but
  // never below stripe_min_fragment (small regions stay whole).
  std::size_t hosts_with_room = 0;
  for (const auto& [node, info] : iwd_) {
    if (info.idle && info.largest_free > 0) ++hosts_with_room;
  }
  const int width = std::max(
      1, std::min(params_.stripe_width,
                  static_cast<int>(std::max<std::size_t>(1, hosts_with_room))));
  Bytes64 frag_len = (len + width - 1) / width;
  frag_len = std::max(frag_len, params_.stripe_min_fragment);
  frag_len = std::min(frag_len, len);
  const std::size_t nfrags =
      static_cast<std::size_t>((len + frag_len - 1) / frag_len);

  StripeMap map;
  map.len = len;
  map.frag_len = frag_len;
  std::vector<net::NodeId> used;  // hosts already holding a fragment
  bool failed = false;

  for (std::size_t i = 0; i < nfrags && !failed; ++i) {
    const Bytes64 flen = std::min(frag_len, len - map.frag_base(i));
    // Random host selection among those believed to have room, verifying
    // with the imd and moving on when the hint was wrong (§4.3 alloc).
    // Hosts already carrying a fragment of this stripe are preferred-out so
    // placement lands on distinct hosts; when no unused host has room the
    // stripe doubles up rather than failing outright.
    std::vector<net::NodeId> candidates;
    for (const auto& [node, info] : iwd_) {
      if (!info.idle || info.largest_free < flen) continue;
      if (std::find(used.begin(), used.end(), node) != used.end()) continue;
      candidates.push_back(node);
    }
    if (candidates.empty()) {
      for (const auto& [node, info] : iwd_) {
        if (info.idle && info.largest_free >= flen) candidates.push_back(node);
      }
    }
    std::sort(candidates.begin(), candidates.end());  // determinism

    bool placed = false;
    while (!candidates.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng_.below(candidates.size()));
      const net::NodeId host = candidates[pick];
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(pick));

      ++metrics_.alloc_attempts;
      const std::uint64_t rid = rids_.next();
      const std::uint64_t want_epoch = iwd_[host].epoch;
      net::Buf req = make_header(MsgKind::kAllocReq, rid, span.ctx());
      net::Writer w(req);
      w.i64(flen);
      // Epoch guard: a retransmit of this request that straddles an imd
      // restart must not allocate under the new epoch — we would book the
      // region under state the imd no longer has, orphaning it.
      w.u64(want_epoch);
      auto rep = co_await rpc_call(net_, node_,
                                   net::Endpoint{host, kImdCtlPort},
                                   std::move(req), rid, params_.imd_rpc);
      if (!rep) {
        // No reply proves only unreachability, not reclamation — marking the
        // host busy here would make validate_region drop directory entries
        // for regions the imd still holds, orphaning their pool bytes until
        // the next epoch. Zero the size hint instead: the host stops being an
        // allocation candidate, and the hint self-heals from the next
        // register/alloc/free/cancel ack once the host is reachable again.
        DODO_DEBUG("cmd", "alloc rpc to host %u got no reply", host);
        iwd_[host].largest_free = 0;
        ++metrics_.alloc_suspects;
        suspect_allocs_.push_back(SuspectAlloc{host, want_epoch, rid});
        continue;
      }
      net::Reader rr = body_reader(*rep);
      const bool ok = rr.u8() != 0;
      const std::uint64_t region_id = rr.u64();
      const std::uint64_t epoch = rr.u64();
      const Bytes64 largest = rr.i64();
      if (!rr.ok()) continue;
      iwd_[host].epoch = epoch;
      iwd_[host].largest_free = largest;  // piggybacked hint refresh
      if (!ok) continue;

      map.frags.push_back(RegionLoc{host, epoch, region_id, flen});
      used.push_back(host);
      placed = true;
      break;
    }
    if (!placed) failed = true;
  }

  if (failed) {
    // Roll back whatever was placed; a fragment whose free goes unacked on
    // a live same-epoch host is handed to the keep-alive scrub.
    for (const RegionLoc& f : map.frags) {
      const auto freed = co_await rpc_free_region(key, f, span.ctx());
      if (!freed.has_value() && region_may_survive(f)) {
        pending_frees_.push_back(f);
        ++metrics_.fragments_pending_free;
      }
    }
    reply_fail();
    co_return;
  }

  metrics_.fragments_placed += map.frags.size();
  if (map.frags.size() > 1) ++metrics_.striped_regions;
  rd_[key] = map;
  net::Buf out = make_header(MsgKind::kMopenRep, env->rid);
  net::Writer ow(out);
  ow.u8(1);
  ow.u8(0);  // fresh allocation: contents undefined until written
  put_stripes(ow, map);
  reply_cached(msg, env->rid, std::move(out));
}

void CentralManager::handle_checkalloc(const net::Message& msg) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "cmd.checkalloc", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  ++metrics_.checkallocs;
  net::Buf rep = make_header(MsgKind::kCheckAllocRep, env->rid);
  net::Writer w(rep);
  if (StripeMap* map = r.ok() ? validate_region(key) : nullptr) {
    w.u8(1);
    put_stripes(w, *map);
  } else {
    w.u8(0);
    put_stripes(w, StripeMap{});
  }
  reply_cached(msg, env->rid, std::move(rep));
}

sim::Co<std::optional<bool>> CentralManager::rpc_free_region(
    const RegionKey& key, const RegionLoc& loc, obs::TraceContext ctx) {
  (void)key;
  const std::uint64_t rid = rids_.next();
  net::Buf req = make_header(MsgKind::kFreeReq, rid, ctx);
  net::Writer w(req);
  w.u64(loc.imd_region);
  auto rep = co_await rpc_call(net_, node_,
                               net::Endpoint{loc.host, kImdCtlPort},
                               std::move(req), rid, params_.imd_rpc);
  if (!rep) {
    DODO_DEBUG("cmd", "free rpc to host %u region %llu got no reply", loc.host,
               static_cast<unsigned long long>(loc.imd_region));
    co_return std::nullopt;
  }
  net::Reader rr = body_reader(*rep);
  const bool ok = rr.u8() != 0;
  (void)rr.u64();  // epoch
  const Bytes64 largest = rr.i64();
  if (rr.ok()) iwd_[loc.host].largest_free = largest;
  co_return ok;
}

bool CentralManager::region_may_survive(const RegionLoc& loc) const {
  auto it = iwd_.find(loc.host);
  return it != iwd_.end() && it->second.epoch == loc.epoch;
}

sim::Co<bool> CentralManager::free_stripes(const RegionKey& key,
                                           StripeMap map,
                                           obs::TraceContext ctx) {
  bool safe = true;
  for (const RegionLoc& f : map.frags) {
    const auto freed = co_await rpc_free_region(key, f, ctx);
    if (!freed.has_value() && region_may_survive(f)) safe = false;
  }
  co_return safe;
}

sim::Co<void> CentralManager::scrub_pending_frees() {
  std::vector<RegionLoc> pending = std::move(pending_frees_);
  pending_frees_.clear();
  std::vector<RegionLoc> keep;
  for (const RegionLoc& f : pending) {
    // Epoch moved on: that incarnation's pool is gone, nothing to free.
    if (!region_may_survive(f)) continue;
    const auto freed = co_await rpc_free_region(RegionKey{}, f);
    if (!freed.has_value() && region_may_survive(f)) keep.push_back(f);
  }
  // Mopens/validations may have queued more fragments while we awaited.
  pending_frees_.insert(pending_frees_.end(), keep.begin(), keep.end());
}

sim::Co<void> CentralManager::handle_mfree(net::Message msg) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "cmd.mfree", env->trace);
  net::Reader r = body_reader(msg);
  const RegionKey key = get_key(r);
  bool ok = false;
  auto it = r.ok() ? rd_.find(key) : rd_.end();
  if (it != rd_.end()) {
    const StripeMap map = it->second;
    rd_.erase(it);
    ++metrics_.frees;
    ok = true;
    if (!co_await free_stripes(key, map, span.ctx())) {
      // Some fragment's free went unanswered by a host still registered
      // under its epoch: the imd may still hold it. Keep the directory
      // entry so the bytes remain reclaimable (revalidated, reused, or
      // re-freed) instead of stranding them in the pool for the rest of
      // the epoch. The client still gets ok=1 — its contract is "this key
      // is gone", which holds either way.
      rd_.emplace(key, map);
    }
  }
  net::Buf rep = make_header(MsgKind::kMfreeRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  reply_cached(msg, env->rid, std::move(rep));
}

sim::Co<void> CentralManager::scrub_suspect_allocs() {
  std::vector<SuspectAlloc> pending = std::move(suspect_allocs_);
  suspect_allocs_.clear();
  std::vector<SuspectAlloc> keep;
  for (const auto& s : pending) {
    auto it = iwd_.find(s.host);
    if (it == iwd_.end() || it->second.epoch != s.epoch) {
      // The host restarted (or was never seen again under that epoch): the
      // pool of that incarnation is gone, nothing to scrub.
      continue;
    }
    const std::uint64_t rid = rids_.next();
    obs::ScopedSpan span(params_.spans, "cmd.scrub_alloc");
    net::Buf req = make_header(MsgKind::kAllocCancel, rid, span.ctx());
    net::Writer w(req);
    w.u64(s.rid);
    auto rep = co_await rpc_call(net_, node_,
                                 net::Endpoint{s.host, kImdCtlPort},
                                 std::move(req), rid, params_.imd_rpc);
    if (!rep) {
      keep.push_back(s);  // still unreachable; retry next keepalive tick
      continue;
    }
    net::Reader rr = body_reader(*rep);
    const bool freed = rr.u8() != 0;
    (void)rr.u64();  // epoch
    const Bytes64 largest = rr.i64();
    if (rr.ok()) iwd_[s.host].largest_free = largest;
    ++metrics_.alloc_cancels_acked;
    if (freed) {
      DODO_DEBUG("cmd", "scrubbed orphaned alloc rid %llu at host %u",
                 static_cast<unsigned long long>(s.rid), s.host);
    }
  }
  // handle_mopen may have appended new suspects while we were awaiting.
  suspect_allocs_.insert(suspect_allocs_.end(), keep.begin(), keep.end());
}

sim::Co<void> CentralManager::reclaim_client(std::uint32_t client) {
  ++metrics_.clients_reclaimed;
  std::vector<std::pair<RegionKey, StripeMap>> victims;
  for (const auto& [key, map] : rd_) {
    if (key.client == client) victims.emplace_back(key, map);
  }
  for (const auto& [key, map] : victims) {
    if (co_await free_stripes(key, map)) {
      rd_.erase(key);
      ++metrics_.regions_reclaimed;
    }
    // else: some fragment's free went unacknowledged at a live same-epoch
    // host — keep the entry; a later reclaim or epoch bump will release it.
  }
  clients_.erase(client);
  DODO_INFO("cmd", "reclaimed %zu regions of dead client %u", victims.size(),
            client);
}

obs::MetricsSnapshot CentralManager::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("cmd.mopens", metrics_.mopens);
  out.set_counter("cmd.mopen_reuses", metrics_.mopen_reuses);
  out.set_counter("cmd.alloc_attempts", metrics_.alloc_attempts);
  out.set_counter("cmd.alloc_failures", metrics_.alloc_failures);
  out.set_counter("cmd.alloc_suspects", metrics_.alloc_suspects);
  out.set_counter("cmd.alloc_cancels_acked", metrics_.alloc_cancels_acked);
  out.set_counter("cmd.checkallocs", metrics_.checkallocs);
  out.set_counter("cmd.stale_regions_dropped", metrics_.stale_regions_dropped);
  out.set_counter("cmd.frees", metrics_.frees);
  out.set_counter("cmd.fragments_placed", metrics_.fragments_placed);
  out.set_counter("cmd.striped_regions", metrics_.striped_regions);
  out.set_counter("cmd.fragments_pending_free",
                  metrics_.fragments_pending_free);
  out.set_counter("cmd.pings_sent", metrics_.pings_sent);
  out.set_counter("cmd.clients_reclaimed", metrics_.clients_reclaimed);
  out.set_counter("cmd.regions_reclaimed", metrics_.regions_reclaimed);
  out.set_counter("cmd.epoch_bumps_seen", metrics_.epoch_bumps_seen);
  out.set_counter("cmd.stats_scrapes", metrics_.stats_scrapes);
  out.set_counter("cmd.stats_scrape_failures",
                  metrics_.stats_scrape_failures);
  out.set_gauge("cmd.directory_size", static_cast<std::int64_t>(rd_.size()));
  out.set_gauge("cmd.idle_hosts",
                static_cast<std::int64_t>(idle_host_count()));
  out.set_gauge("cmd.known_hosts", static_cast<std::int64_t>(iwd_.size()));
  out.set_gauge("cmd.clients", static_cast<std::int64_t>(clients_.size()));
  out.set_gauge("cmd.suspect_allocs",
                static_cast<std::int64_t>(suspect_allocs_.size()));
  out.set_gauge("cmd.pending_frees",
                static_cast<std::int64_t>(pending_frees_.size()));
  out.set_gauge("cmd.reply_cache_size",
                static_cast<std::int64_t>(reply_cache_.size()));
  return out;
}

sim::Co<std::optional<obs::MetricsSnapshot>> CentralManager::scrape_host(
    net::NodeId host) {
  ++metrics_.stats_scrapes;
  const std::uint64_t rid = rids_.next();
  obs::ScopedSpan span(params_.spans, "cmd.scrape");
  auto rep = co_await rpc_call(net_, node_, net::Endpoint{host, kRmdPort},
                               make_header(MsgKind::kStatsReq, rid, span.ctx()),
                               rid, params_.imd_rpc);
  if (!rep) {
    ++metrics_.stats_scrape_failures;
    co_return std::nullopt;
  }
  net::Reader rr = body_reader(*rep);
  const std::string json = rr.str();
  obs::MetricsSnapshot snap;
  if (!rr.ok() || !obs::MetricsSnapshot::from_json(json, snap)) {
    ++metrics_.stats_scrape_failures;
    co_return std::nullopt;
  }
  co_return snap;
}

sim::Co<obs::MetricsSnapshot> CentralManager::scrape_cluster() {
  // Snapshot the host list before awaiting: scrapes yield, and the IWD can
  // gain or lose hosts mid-sweep.
  std::vector<net::NodeId> hosts;
  hosts.reserve(iwd_.size());
  for (const auto& [node, info] : iwd_) hosts.push_back(node);
  std::sort(hosts.begin(), hosts.end());
  obs::MetricsSnapshot total;
  for (const net::NodeId host : hosts) {
    auto snap = co_await scrape_host(host);
    if (snap) total.merge(*snap);
  }
  total.merge(metrics_snapshot());  // own view last; names are disjoint
  co_return total;
}

sim::Co<void> CentralManager::keepalive_loop() {
  for (;;) {
    auto stop = co_await stop_ch_.recv_for(params_.keepalive_interval);
    if (stop.has_value() || stopping_) break;
    if (!suspect_allocs_.empty()) co_await scrub_suspect_allocs();
    if (!pending_frees_.empty()) co_await scrub_pending_frees();
    // Snapshot: reclaim_client mutates clients_.
    std::vector<std::pair<std::uint32_t, net::Endpoint>> targets;
    targets.reserve(clients_.size());
    for (const auto& [id, info] : clients_) {
      targets.emplace_back(id, info.control);
    }
    for (const auto& [id, control] : targets) {
      const std::uint64_t rid = rids_.next();
      ++metrics_.pings_sent;
      obs::ScopedSpan span(params_.spans, "cmd.ping");
      auto rep = co_await rpc_call(net_, node_, control,
                                   make_header(MsgKind::kPing, rid, span.ctx()),
                                   rid, params_.ping_rpc);
      auto it = clients_.find(id);
      if (it == clients_.end()) continue;
      if (rep) {
        it->second.missed = 0;
      } else if (++it->second.missed > params_.keepalive_miss_limit) {
        co_await reclaim_client(id);
      }
    }
  }
  loops_.done();
}

}  // namespace dodo::core
