// Workstation activity sources: what the resource monitor daemon samples.
//
// The paper's rmd checks mouse/keyboard device files and /proc/uptime load
// once a second. In the simulator those signals come from an ActivitySource:
// dedicated Beowulf nodes are AlwaysIdle; desktop-cluster experiments use
// ScriptedActivity or the Section-2 trace synthesizer (src/trace).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace dodo::core {

class ActivitySource {
 public:
  virtual ~ActivitySource() = default;

  /// Keyboard/mouse activity at `t` (device-file access within last sample).
  [[nodiscard]] virtual bool console_active(SimTime t) const = 0;

  /// Load average (with screen saver / imd usage already subtracted, as the
  /// paper's rmd does).
  [[nodiscard]] virtual double load(SimTime t) const = 0;

  /// Memory in active use by the owner (kernel + processes + live files).
  [[nodiscard]] virtual Bytes64 active_memory(SimTime t) const = 0;

  /// Total physical memory of the workstation.
  [[nodiscard]] virtual Bytes64 total_memory() const = 0;
};

/// Dedicated-cluster node: never busy, fixed resident footprint.
class AlwaysIdleActivity final : public ActivitySource {
 public:
  AlwaysIdleActivity(Bytes64 total, Bytes64 active)
      : total_(total), active_(active) {}

  [[nodiscard]] bool console_active(SimTime) const override { return false; }
  [[nodiscard]] double load(SimTime) const override { return 0.0; }
  [[nodiscard]] Bytes64 active_memory(SimTime) const override {
    return active_;
  }
  [[nodiscard]] Bytes64 total_memory() const override { return total_; }

 private:
  Bytes64 total_;
  Bytes64 active_;
};

/// Piecewise-scripted owner behaviour: a list of [start, end) busy windows
/// during which the console is active and load is high.
class ScriptedActivity final : public ActivitySource {
 public:
  ScriptedActivity(Bytes64 total, Bytes64 active_idle, Bytes64 active_busy,
                   std::vector<std::pair<SimTime, SimTime>> busy_windows)
      : total_(total),
        active_idle_(active_idle),
        active_busy_(active_busy),
        windows_(std::move(busy_windows)) {}

  [[nodiscard]] bool busy_at(SimTime t) const {
    return std::any_of(windows_.begin(), windows_.end(), [t](const auto& w) {
      return t >= w.first && t < w.second;
    });
  }

  [[nodiscard]] bool console_active(SimTime t) const override {
    return busy_at(t);
  }
  [[nodiscard]] double load(SimTime t) const override {
    return busy_at(t) ? 1.0 : 0.05;
  }
  [[nodiscard]] Bytes64 active_memory(SimTime t) const override {
    return busy_at(t) ? active_busy_ : active_idle_;
  }
  [[nodiscard]] Bytes64 total_memory() const override { return total_; }

 private:
  Bytes64 total_;
  Bytes64 active_idle_;
  Bytes64 active_busy_;
  std::vector<std::pair<SimTime, SimTime>> windows_;
};

/// The paper's recruitment formula (§3.1): harvest everything except the
/// memory in active use, the paging free-list reserve (lotsfree), and a 15%
/// headroom for live file-cache pages.
[[nodiscard]] inline Bytes64 recruit_pool_bytes(Bytes64 total, Bytes64 active,
                                                Bytes64 lotsfree,
                                                double headroom_frac) {
  const auto headroom =
      static_cast<Bytes64>(headroom_frac * static_cast<double>(total));
  const Bytes64 pool = total - active - lotsfree - headroom;
  return pool > 0 ? pool : 0;
}

}  // namespace dodo::core
