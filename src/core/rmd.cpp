#include "core/rmd.hpp"

#include <cassert>

#include "common/log.hpp"

namespace dodo::core {

namespace {
net::Message make_sentinel() {
  net::Message m;
  m.header = make_header(MsgKind::kShutdownSentinel, 0);
  return m;
}
}  // namespace

ResourceMonitor::ResourceMonitor(sim::Simulator& sim, net::Network& net,
                                 net::NodeId node, net::Endpoint cmd,
                                 const ActivitySource& activity,
                                 RmdParams params, ImdParams imd_template)
    : sim_(sim),
      net_(net),
      node_(node),
      cmd_(cmd),
      activity_(activity),
      params_(params),
      imd_template_(imd_template),
      loops_(sim),
      stop_ch_(sim) {}

ResourceMonitor::~ResourceMonitor() = default;

void ResourceMonitor::start() {
  assert(!running_);
  running_ = true;
  stopping_ = false;
  sock_ = net_.open_ephemeral(node_);
  stats_sock_ = net_.open(node_, kRmdPort);
  loops_.add(2);
  sim_.spawn(monitor_loop());
  sim_.spawn(stats_loop());
}

sim::Co<void> ResourceMonitor::stop() {
  if (!running_) co_return;
  stopping_ = true;
  stop_ch_.send(1);
  stats_sock_->inject(make_sentinel());
  co_await loops_.wait();
  if (imd_) {
    co_await imd_->stop();
    imd_.reset();
  }
  sock_.reset();
  stats_sock_.reset();
  running_ = false;
}

void ResourceMonitor::notify_cmd(bool idle) {
  net::Buf h = make_header(MsgKind::kHostStatus, 0);
  net::Writer w(h);
  w.u32(node_);
  w.u8(idle ? 1 : 0);
  sock_->send(cmd_, std::move(h));
}

void ResourceMonitor::set_pressure(PressureLevel level) {
  if (!imd_template_.lease_epochs || level == pressure_) return;
  obs::frecord(params_.flight, obs::FlightEventType::kPressureTransition,
               static_cast<std::int64_t>(pressure_),
               static_cast<std::int64_t>(level));
  pressure_ = level;
  ++metrics_.pressure_signals;
  // Signalled only on change, and only with lease_epochs on: the binary
  // kHostStatus stream is untouched either way.
  net::Buf h = make_header(MsgKind::kPressureStatus, 0);
  net::Writer w(h);
  w.u32(node_);
  w.u8(static_cast<std::uint8_t>(level));
  sock_->send(cmd_, std::move(h));
}

void ResourceMonitor::recruit() {
  ++epoch_counter_;
  const SimTime now = sim_.now();
  const Bytes64 pool = imd_template_.pool_bytes > 0
                           ? imd_template_.pool_bytes
                           : recruit_pool_bytes(activity_.total_memory(),
                                                activity_.active_memory(now),
                                                params_.lotsfree,
                                                params_.headroom_frac);
  if (pool < params_.min_pool) {
    ++metrics_.recruit_skips_small_pool;
    return;
  }
  ++metrics_.recruitments;
  obs::frecord(params_.flight, obs::FlightEventType::kRecruit,
               static_cast<std::int64_t>(epoch_counter_),
               static_cast<std::int64_t>(pool));
  notify_cmd(true);
  ImdParams p = imd_template_;
  p.pool_bytes = pool;
  imd_ = std::make_unique<IdleMemoryDaemon>(sim_, net_, node_,
                                            epoch_counter_, cmd_, p);
  imd_->start();
  DODO_DEBUG("rmd", "host %u recruited, epoch %llu pool %lld", node_,
             static_cast<unsigned long long>(epoch_counter_),
             static_cast<long long>(pool));
}

sim::Co<void> ResourceMonitor::force_evict() {
  held_out_ = true;
  if (recruited()) {
    ++metrics_.forced_evictions;
    co_await evict();
  }
}

void ResourceMonitor::force_recruit() {
  held_out_ = false;
  if (!recruited()) {
    ++metrics_.forced_recruits;
    recruit();
  }
}

sim::Co<void> ResourceMonitor::force_pressure(PressureLevel level,
                                              double keep_frac) {
  if (!imd_template_.lease_epochs || !running_) co_return;
  set_pressure(level);
  switch (level) {
    case PressureLevel::kIdle:
      break;
    case PressureLevel::kRising:
      if (recruited()) {
        const auto used = static_cast<double>(imd_->pool_used_bytes());
        const auto target = static_cast<Bytes64>(used * keep_frac);
        if (imd_->begin_shrink(target) > 0) ++metrics_.pressure_shrinks;
      }
      break;
    case PressureLevel::kUrgent:
      // The owner is back: the paper's binary path, with the same
      // out-of-service hold as force_evict() so a deterministic fault
      // window stays in control of re-recruitment.
      held_out_ = true;
      if (recruited()) {
        ++metrics_.forced_evictions;
        co_await evict();
      }
      break;
  }
}

sim::Co<void> ResourceMonitor::evict() {
  ++metrics_.evictions;
  obs::frecord(params_.flight, obs::FlightEventType::kEvict,
               static_cast<std::int64_t>(epoch_counter_));
  notify_cmd(false);
  if (imd_) {
    co_await imd_->stop();
    imd_.reset();
  }
  DODO_DEBUG("rmd", "host %u reclaimed by owner", node_);
}

sim::Co<void> ResourceMonitor::monitor_loop() {
  SimTime idle_since =
      params_.start_recruited ? -params_.idle_threshold : sim_.now();
  bool was_idle_sample = true;

  if (params_.start_recruited) recruit();

  for (;;) {
    auto stop = co_await stop_ch_.recv_for(params_.sample_interval);
    if (stop.has_value() || stopping_) break;
    const SimTime now = sim_.now();
    const bool console_quiet = !activity_.console_active(now);
    const bool cpu_quiet = activity_.load(now) < params_.load_threshold;
    const bool idle_sample = console_quiet && cpu_quiet;

    ++metrics_.samples;
    if (idle_sample && !was_idle_sample) {
      idle_since = now;  // quiet streak starts
      ++metrics_.busy_to_idle;
    } else if (!idle_sample && was_idle_sample) {
      ++metrics_.idle_to_busy;
    }
    was_idle_sample = idle_sample;

    if (held_out_) continue;  // parked by force_evict(); injector decides
    if (!idle_sample && recruited()) {
      co_await evict();
    } else if (idle_sample && !recruited() &&
               now - idle_since >= params_.idle_threshold) {
      ++metrics_.refraction_timeouts;
      recruit();
    }

    if (imd_template_.lease_epochs) {
      // Graded pressure (§14): urgent = the owner is at the console (the
      // eviction above already fired); rising = still idle, but the owner's
      // working set has grown past what recruitment left as headroom — the
      // pool sheds its coldest regions down to the recomputed budget
      // instead of dying wholesale.
      PressureLevel level = PressureLevel::kIdle;
      if (!idle_sample) {
        level = PressureLevel::kUrgent;
      } else if (recruited() && imd_template_.pool_bytes == 0) {
        const Bytes64 desired = recruit_pool_bytes(
            activity_.total_memory(), activity_.active_memory(now),
            params_.lotsfree, params_.headroom_frac);
        if (desired < imd_->params().pool_bytes) {
          level = PressureLevel::kRising;
          if (imd_->begin_shrink(desired) > 0) ++metrics_.pressure_shrinks;
        }
      }
      set_pressure(level);
    }
  }
  loops_.done();
}

sim::Co<void> ResourceMonitor::stats_loop() {
  for (;;) {
    net::Message msg = co_await stats_sock_->recv();
    auto env = peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    if (env->kind != MsgKind::kStatsReq) continue;
    obs::ScopedSpan span(params_.spans, "rmd.stats", env->trace);
    obs::MetricsSnapshot snap = metrics_snapshot();
    if (imd_) snap.merge(imd_->metrics_snapshot());
    net::Buf rep = make_header(MsgKind::kStatsRep, env->rid);
    net::Writer w(rep);
    w.str(snap.to_json());
    stats_sock_->send(msg.src, std::move(rep));
  }
  loops_.done();
}

obs::MetricsSnapshot ResourceMonitor::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("rmd.recruitments", metrics_.recruitments);
  out.set_counter("rmd.evictions", metrics_.evictions);
  out.set_counter("rmd.samples", metrics_.samples);
  out.set_counter("rmd.idle_to_busy", metrics_.idle_to_busy);
  out.set_counter("rmd.busy_to_idle", metrics_.busy_to_idle);
  out.set_counter("rmd.refraction_timeouts", metrics_.refraction_timeouts);
  out.set_counter("rmd.recruit_skips_small_pool",
                  metrics_.recruit_skips_small_pool);
  out.set_counter("rmd.forced_evictions", metrics_.forced_evictions);
  out.set_counter("rmd.forced_recruits", metrics_.forced_recruits);
  out.set_gauge("rmd.epoch", static_cast<std::int64_t>(epoch_counter_));
  out.set_gauge("rmd.recruited", recruited() ? 1 : 0);
  if (imd_template_.lease_epochs) {
    // Omitted with lease_epochs off so the export stays byte-identical to
    // the pre-lease layout.
    out.set_counter("rmd.pressure_signals", metrics_.pressure_signals);
    out.set_counter("rmd.pressure_shrinks", metrics_.pressure_shrinks);
    out.set_gauge("rmd.pressure_level", static_cast<std::int64_t>(pressure_));
  }
  return out;
}

}  // namespace dodo::core
