#include "core/rmd.hpp"

#include <cassert>

#include "common/log.hpp"

namespace dodo::core {

ResourceMonitor::ResourceMonitor(sim::Simulator& sim, net::Network& net,
                                 net::NodeId node, net::Endpoint cmd,
                                 const ActivitySource& activity,
                                 RmdParams params, ImdParams imd_template)
    : sim_(sim),
      net_(net),
      node_(node),
      cmd_(cmd),
      activity_(activity),
      params_(params),
      imd_template_(imd_template),
      loops_(sim),
      stop_ch_(sim) {}

ResourceMonitor::~ResourceMonitor() = default;

void ResourceMonitor::start() {
  assert(!running_);
  running_ = true;
  stopping_ = false;
  sock_ = net_.open_ephemeral(node_);
  loops_.add(1);
  sim_.spawn(monitor_loop());
}

sim::Co<void> ResourceMonitor::stop() {
  if (!running_) co_return;
  stopping_ = true;
  stop_ch_.send(1);
  co_await loops_.wait();
  if (imd_) {
    co_await imd_->stop();
    imd_.reset();
  }
  sock_.reset();
  running_ = false;
}

void ResourceMonitor::notify_cmd(bool idle) {
  net::Buf h = make_header(MsgKind::kHostStatus, 0);
  net::Writer w(h);
  w.u32(node_);
  w.u8(idle ? 1 : 0);
  sock_->send(cmd_, std::move(h));
}

void ResourceMonitor::recruit() {
  ++epoch_counter_;
  const SimTime now = sim_.now();
  const Bytes64 pool = imd_template_.pool_bytes > 0
                           ? imd_template_.pool_bytes
                           : recruit_pool_bytes(activity_.total_memory(),
                                                activity_.active_memory(now),
                                                params_.lotsfree,
                                                params_.headroom_frac);
  if (pool < params_.min_pool) return;
  ++metrics_.recruitments;
  notify_cmd(true);
  ImdParams p = imd_template_;
  p.pool_bytes = pool;
  imd_ = std::make_unique<IdleMemoryDaemon>(sim_, net_, node_,
                                            epoch_counter_, cmd_, p);
  imd_->start();
  DODO_DEBUG("rmd", "host %u recruited, epoch %llu pool %lld", node_,
             static_cast<unsigned long long>(epoch_counter_),
             static_cast<long long>(pool));
}

sim::Co<void> ResourceMonitor::force_evict() {
  held_out_ = true;
  if (recruited()) co_await evict();
}

void ResourceMonitor::force_recruit() {
  held_out_ = false;
  if (!recruited()) recruit();
}

sim::Co<void> ResourceMonitor::evict() {
  ++metrics_.evictions;
  notify_cmd(false);
  if (imd_) {
    co_await imd_->stop();
    imd_.reset();
  }
  DODO_DEBUG("rmd", "host %u reclaimed by owner", node_);
}

sim::Co<void> ResourceMonitor::monitor_loop() {
  SimTime idle_since =
      params_.start_recruited ? -params_.idle_threshold : sim_.now();
  bool was_idle_sample = true;

  if (params_.start_recruited) recruit();

  for (;;) {
    auto stop = co_await stop_ch_.recv_for(params_.sample_interval);
    if (stop.has_value() || stopping_) break;
    const SimTime now = sim_.now();
    const bool console_quiet = !activity_.console_active(now);
    const bool cpu_quiet = activity_.load(now) < params_.load_threshold;
    const bool idle_sample = console_quiet && cpu_quiet;

    if (idle_sample && !was_idle_sample) {
      idle_since = now;  // quiet streak starts
    }
    was_idle_sample = idle_sample;

    if (held_out_) continue;  // parked by force_evict(); injector decides
    if (!idle_sample && recruited()) {
      co_await evict();
    } else if (idle_sample && !recruited() &&
               now - idle_since >= params_.idle_threshold) {
      recruit();
    }
  }
  loops_.done();
}

}  // namespace dodo::core
