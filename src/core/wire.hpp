// Wire protocol for the Dodo control and data planes.
//
// Every control message is an envelope {u8 kind, u64 rid, u64 trace_id,
// u64 parent_span} followed by kind-specific fields. Replies echo the rid of
// their request. The trace pair is the Dapper-style causal context: the
// recipient opens its handler span as a child of `parent_span` within
// `trace_id`, so cross-process request trees reconstruct offline (both zero
// when the sender records no spans). Bulk region payloads never travel in
// these messages; they move through the §4.4 bulk protocol on per-transfer
// ephemeral sockets whose endpoints the control messages carry.
//
// All imd->cmd replies piggyback the daemon's epoch and largest free block,
// which is how the central manager's idle-workstation directory stays fresh
// (paper §4.3: "this information is piggybacked on all communication
// between the individual imds and the cmd").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/address.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "obs/span.hpp"

namespace dodo::core {

// Well-known ports.
inline constexpr net::Port kCmdPort = 700;      // central manager daemon
inline constexpr net::Port kImdCtlPort = 701;   // imd: alloc/free from cmd
inline constexpr net::Port kImdDataPort = 702;  // imd: read/write from apps
inline constexpr net::Port kRmdPort = 703;      // rmd: stats scrape endpoint
inline constexpr net::Port kClientPort = 710;   // runtime lib: keep-alive

enum class MsgKind : std::uint8_t {
  // rmd -> cmd
  kHostStatus = 1,  // node became idle/busy
  // imd -> cmd
  kImdRegister = 2,  // pool size + epoch on startup
  // rmd -> cmd (lease harvesting, §14): graded local-pressure signal.
  // Body: u32 node, u8 PressureLevel. Sent only on level changes and only
  // with lease_epochs on; the binary kHostStatus keeps flowing unchanged.
  kPressureStatus = 3,
  // imd -> cmd (lease harvesting, §14): regions entering their lease grace
  // window — scheduled for reclamation unless renewed. The cmd reacts by
  // proactively re-replicating sole copies before the fence falls. One-way
  // datagram (best effort: renewal rejects are the backstop). Body: u32
  // node, u64 epoch, u32 n, then n x {u64 region id, i64 len}.
  kLeaseExpiryNotice = 4,
  // cmd -> imd and replies
  kAllocReq = 10,  // body: i64 len, u64 expected epoch (mismatch = reject)
  kAllocRep = 11,
  kFreeReq = 12,
  kFreeRep = 13,
  // Scrub for a suspect alloc: an alloc RPC the cmd gave up on may have
  // executed with every reply lost. Body: u64 rid of that alloc. The imd
  // frees the region it allocated for that rid (if any) and poisons the rid
  // so an even later retransmit cannot re-execute.
  kAllocCancel = 14,
  kAllocCancelRep = 15,
  // Replica grow: the cmd tells an imd to fill a freshly allocated region
  // with the bytes of a live sibling replica. The imd acts as a data-plane
  // reader against the source host (kReadReq + bulk), then adopts the
  // source's written prefix so the copy is never more trustworthy than the
  // original. Body: u64 dst region id, RegionLoc of the source replica.
  kCloneReq = 16,
  kCloneRep = 17,
  // Lease renewal batch (lease harvesting, §14): on every keep-alive tick
  // the cmd renews the leases of the regions its directory maps on an idle
  // host. Request body: u64 expected epoch, u32 n, n x u64 region ids.
  // Reply body: u8 ok (epoch matched), u64 epoch, i64 largest free, u32
  // n_rejected, n_rejected x u64 region ids — a rejected id is fenced or
  // unknown on the imd, so the cmd prunes that copy instead of retrying.
  kLeaseRenewReq = 18,
  kLeaseRenewRep = 19,
  // client -> cmd and replies
  kMopenReq = 20,
  kMopenRep = 21,
  kCheckAllocReq = 22,
  kCheckAllocRep = 23,
  kMfreeReq = 24,
  kMfreeRep = 25,
  kDetach = 26,  // client exits but leaves its regions cached (dmine mode)
  // Invalidate-on-write: a client that could not write one replica of a
  // fragment reports it so the directory drops that copy — a replica that
  // misses an invalidation must never be served again (clean-cache
  // contract). Body: RegionKey + the stale RegionLoc.
  kDropReplicaReq = 27,
  kDropReplicaRep = 28,
  // cmd <-> client keep-alive. kPing piggybacks replica-set deltas for the
  // client's live descriptors (u32 n, then n x {u8 ReplicaUpdateOp,
  // RegionKey, u32 fragment index, RegionLoc}); kPong piggybacks the acks
  // for applied add-write-only deltas (u32 n, n x {RegionKey, u32 fragment
  // index, RegionLoc}) followed by per-region read-hit deltas (u32 n, n x
  // {RegionKey, u64 hits}) that drive Ditto-style replica adaptation.
  kPing = 30,
  kPong = 31,
  // client -> imd data plane and replies
  kReadReq = 40,
  kReadRep = 41,
  kWriteReq = 42,
  kWriteGo = 44,  // imd tells the client where to bulk-send the write data
  kWriteRep = 43,
  // observability scrape: request carries no body; the reply body is the
  // responder's metrics snapshot serialized as JSON text (obs::MetricsSnapshot
  // round-trips it). The cmd answers with its own snapshot; an rmd answers
  // with its snapshot merged with its imd's (when recruited); an imd answers
  // with just its own.
  kStatsReq = 50,
  kStatsRep = 51,
  // never on the wire: injected locally to wake a daemon loop for shutdown
  kShutdownSentinel = 255,
};

/// Graded local-pressure signal from the resource monitor (lease
/// harvesting, DESIGN.md §14). kIdle: harvest freely. kRising: the owner's
/// working set is growing — the imd pool shrinks incrementally, coldest
/// regions first, and the cmd avoids placing new copies on the host.
/// kUrgent: the owner is back at the console — the paper's binary path
/// (whole-daemon eviction) fires unchanged.
enum class PressureLevel : std::uint8_t {
  kIdle = 0,
  kRising = 1,
  kUrgent = 2,
};

/// Replica-set delta piggybacked on the keep-alive exchange. A grown copy
/// arrives write-only first (the client fans writes out to it but never
/// reads it), activates once the cmd proves it missed no write, and drops
/// when invalidated or shrunk.
enum class ReplicaUpdateOp : std::uint8_t {
  kAddWriteOnly = 0,
  kActivate = 1,
  kDrop = 2,
};

/// Region key in the central manager's region directory: (inode of backing
/// file, offset within it), plus a client id for the multi-client extension
/// (0 in the paper's single-client configuration; see §4.3 footnote).
struct RegionKey {
  std::uint32_t inode = 0;
  std::int64_t offset = 0;
  std::uint32_t client = 0;

  friend bool operator==(const RegionKey&, const RegionKey&) = default;
};

struct RegionKeyHash {
  std::size_t operator()(const RegionKey& k) const {
    std::uint64_t h = k.inode * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(k.offset) + (h << 6) + (h >> 2);
    h ^= k.client * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(h);
  }
};

/// Directory shard a region key belongs to when the control plane runs
/// `shard_count` central managers. Pure function of the key, so every
/// client routes identically with no cross-shard lookup on the hot path.
/// The table hash above feeds a fmix64-style avalanche so consecutive file
/// offsets spread across shards instead of striding. shard_count <= 1
/// always maps to shard 0 (the paper's single-cmd layout).
inline std::uint32_t shard_of_key(const RegionKey& k,
                                  std::uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  std::uint64_t h = RegionKeyHash{}(k);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h % shard_count);
}

/// Where a region lives: host + the epoch it was allocated under + the
/// region id within that imd's pool.
struct RegionLoc {
  net::NodeId host = 0;
  std::uint64_t epoch = 0;
  std::uint64_t imd_region = 0;
  Bytes64 len = 0;
};

/// All copies of one fragment. replicas[0] is the primary (the copy the
/// placement loop sat down first); every replica holds the same byte range
/// on a distinct host. A fragment with an empty set no longer exists
/// remotely. All replicas share the same length.
struct ReplicaSet {
  std::vector<RegionLoc> replicas;

  [[nodiscard]] Bytes64 len() const {
    return replicas.empty() ? 0 : replicas.front().len;
  }
  [[nodiscard]] const RegionLoc& primary() const { return replicas.front(); }
  [[nodiscard]] std::size_t size() const { return replicas.size(); }
  [[nodiscard]] bool empty() const { return replicas.empty(); }
};

/// A region striped across one or more imds, each fragment carried by a
/// ReplicaSet of one or more copies. Fragment i covers bytes
/// [i*frag_len, i*frag_len + frags[i].len()) of the region; every fragment
/// is exactly frag_len bytes except possibly the last. Width 1 with a
/// single replica (the paper's layout) is one fragment holding the whole
/// region on one host.
struct StripeMap {
  Bytes64 len = 0;       // total region length
  Bytes64 frag_len = 0;  // stride between fragment starts
  std::vector<ReplicaSet> frags;

  [[nodiscard]] Bytes64 frag_base(std::size_t i) const {
    return static_cast<Bytes64>(i) * frag_len;
  }
};

// ---------------------------------------------------------------------------
// Envelope helpers
// ---------------------------------------------------------------------------

struct Envelope {
  MsgKind kind{};
  std::uint64_t rid = 0;
  obs::TraceContext trace;  // {0,0} when the sender records no spans
};

inline net::Buf make_header(MsgKind kind, std::uint64_t rid,
                            obs::TraceContext ctx = {}) {
  net::Buf h;
  net::Writer w(h);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(rid);
  w.u64(ctx.trace_id);
  w.u64(ctx.parent_span);
  return h;
}

inline std::optional<Envelope> peek_envelope(const net::Message& m) {
  net::Reader r(m.header);
  Envelope e;
  e.kind = static_cast<MsgKind>(r.u8());
  e.rid = r.u64();
  e.trace.trace_id = r.u64();
  e.trace.parent_span = r.u64();
  if (!r.ok()) return std::nullopt;
  return e;
}

/// Reader positioned after the envelope.
inline net::Reader body_reader(const net::Message& m) {
  net::Reader r(m.header);
  (void)r.u8();
  (void)r.u64();  // rid
  (void)r.u64();  // trace_id
  (void)r.u64();  // parent_span
  return r;
}

inline void put_key(net::Writer& w, const RegionKey& k) {
  w.u32(k.inode);
  w.i64(k.offset);
  w.u32(k.client);
}

inline RegionKey get_key(net::Reader& r) {
  RegionKey k;
  k.inode = r.u32();
  k.offset = r.i64();
  k.client = r.u32();
  return k;
}

inline void put_loc(net::Writer& w, const RegionLoc& loc) {
  w.u32(loc.host);
  w.u64(loc.epoch);
  w.u64(loc.imd_region);
  w.i64(loc.len);
}

inline RegionLoc get_loc(net::Reader& r) {
  RegionLoc loc;
  loc.host = r.u32();
  loc.epoch = r.u64();
  loc.imd_region = r.u64();
  loc.len = r.i64();
  return loc;
}

inline void put_stripes(net::Writer& w, const StripeMap& map) {
  w.i64(map.len);
  w.i64(map.frag_len);
  w.u32(static_cast<std::uint32_t>(map.frags.size()));
  for (const ReplicaSet& f : map.frags) {
    w.u32(static_cast<std::uint32_t>(f.replicas.size()));
    for (const RegionLoc& rep : f.replicas) put_loc(w, rep);
  }
}

inline StripeMap get_stripes(net::Reader& r) {
  StripeMap map;
  map.len = r.i64();
  map.frag_len = r.i64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    ReplicaSet set;
    const std::uint32_t nreps = r.u32();
    for (std::uint32_t j = 0; j < nreps && r.ok(); ++j) {
      set.replicas.push_back(get_loc(r));
    }
    map.frags.push_back(std::move(set));
  }
  return map;
}

inline void put_endpoint(net::Writer& w, const net::Endpoint& e) {
  w.u32(e.node);
  w.u32(e.port);
}

inline net::Endpoint get_endpoint(net::Reader& r) {
  net::Endpoint e;
  e.node = r.u32();
  e.port = r.u32();
  return e;
}

}  // namespace dodo::core
