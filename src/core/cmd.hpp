// The central manager daemon (cmd), paper §4.3.
//
// Runs on a dedicated machine. Maintains:
//   IWD (idle-workstation directory): per host, last known epoch and largest
//       free block — hints provided/piggybacked by the imds and rmds; the
//       cmd always verifies with the imd before treating memory as real.
//   RD (region directory): hash table keyed by (inode, offset[, client]) of
//       every allocated region, each entry holding the hosting node, the
//       offset/id within that imd, the length, and an epoch timestamp.
// It exports checkAlloc / alloc / free to the runtime library and sends
// periodic keep-alive echo requests so regions of dead applications can be
// reclaimed. Allocation picks a host *at random* among those believed to
// have a large-enough free block, retrying other hosts on failure, exactly
// as §4.3 describes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/rpc.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::core {

struct CmdParams {
  Duration keepalive_interval = seconds(2.0);
  int keepalive_miss_limit = 3;
  RpcParams imd_rpc{};   // cmd -> imd alloc/free
  RpcParams ping_rpc{millis(300), 0};
  /// Striping policy: regions are split into fragments placed on up to
  /// `stripe_width` distinct idle hosts so the runtime can fan reads out in
  /// parallel. Width 1 reproduces the paper's whole-region placement.
  int stripe_width = 1;
  /// Regions are never split into fragments smaller than this; small
  /// regions therefore stay whole regardless of the width.
  Bytes64 stripe_min_fragment = 64_KiB;
  /// Replication policy: each fragment is placed as up to `replica_count`
  /// copies on distinct idle hosts (composable with striping — width 4 at 2
  /// replicas occupies 8 placements). The primary copy is mandatory
  /// (placement fails and rolls back without it); extra copies are
  /// best-effort when the cluster has no distinct host with room.
  int replica_count = 1;
  /// Ditto-style elasticity: when enabled, the keep-alive loop grows a
  /// fragment's replica set (cloning from a live sibling) once the region's
  /// per-window read hits reach replica_grow_hits, and shrinks cold regions
  /// (hits <= replica_shrink_hits) back toward one copy. Replica counts stay
  /// within [1, replica_max].
  bool replica_adapt = false;
  int replica_max = 4;
  std::uint64_t replica_grow_hits = 64;
  std::uint64_t replica_shrink_hits = 4;
  /// Lease harvesting (DESIGN.md §14): when enabled the keep-alive loop
  /// renews the lease of every directory copy with its imd each tick, and
  /// near-expiry notices trigger proactive re-replication of sole-copy
  /// fragments so an owner's return costs a copy, not a disk fallback.
  /// Must match ImdParams::lease_epochs. Off keeps the cmd byte-identical
  /// to the pre-lease whole-daemon-kill path: no renew RPCs, no extra
  /// metrics rows, no placement-policy change (pressure is never nonzero).
  bool lease_epochs = false;
  /// Duplicate-suppression cache bound; FIFO eviction of the oldest entry
  /// (see ImdParams::reply_cache_capacity for why clear-all is wrong).
  std::size_t reply_cache_capacity = 8192;
  /// Optional trace-span sink (not owned). Null disables span recording.
  obs::SpanRecorder* spans = nullptr;
  /// Optional flight-recorder ring (not owned). Null disables recording.
  obs::FlightRecorder* flight = nullptr;
};

struct CmdMetrics {
  std::uint64_t mopens = 0;
  std::uint64_t mopen_reuses = 0;   // persistent region found in RD
  std::uint64_t alloc_attempts = 0;  // imd RPCs issued
  std::uint64_t alloc_failures = 0;  // mopen replies with no memory
  /// Alloc RPCs abandoned with no reply — the imd may hold a region we
  /// never learned the id of; each is remembered and scrubbed later.
  std::uint64_t alloc_suspects = 0;
  std::uint64_t alloc_cancels_acked = 0;  // suspects confirmed scrubbed
  std::uint64_t checkallocs = 0;
  std::uint64_t stale_regions_dropped = 0;
  std::uint64_t frees = 0;
  std::uint64_t fragments_placed = 0;   // fragment allocs that succeeded
  std::uint64_t striped_regions = 0;    // mopens placed with >1 fragment
  /// Fragments whose region went stale (or whose placement was rolled back)
  /// while their own host stayed healthy; freed lazily by the keep-alive
  /// scrub so no pool bytes leak.
  std::uint64_t fragments_pending_free = 0;
  /// Pending frees that left the retry queue: the imd acknowledged the
  /// free, or the copy provably cannot have survived (host re-registered
  /// under a newer epoch, or was evicted — a busy host has no pool). The
  /// retry accounting invariant is
  ///   fragments_pending_free - fragments_pending_free_resolved
  ///     == pending_frees_.size().
  std::uint64_t fragments_pending_free_resolved = 0;
  /// Secondary copies placed at mopen (beyond each fragment's primary).
  std::uint64_t replicas_placed = 0;
  /// Secondary copies wanted but skipped: no distinct idle host had room.
  std::uint64_t replica_shortfalls = 0;
  /// Elastic replication (replica_adapt).
  std::uint64_t replicas_grown = 0;    // clones verified and activated
  std::uint64_t replicas_shrunk = 0;   // cold copies released
  std::uint64_t clone_failures = 0;    // clone rejected, lost, or stale
  /// Copies pruned from a replica set because their host left the epoch it
  /// was placed under (validate_region) — the read path's failover source.
  std::uint64_t replicas_dropped = 0;
  /// kDropReplicaReq honored: a client could not write one copy, so the
  /// copy left the directory before it could ever serve the stale bytes.
  std::uint64_t invalidations = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t clients_reclaimed = 0;
  std::uint64_t regions_reclaimed = 0;
  /// Re-registrations observed with a larger epoch than the IWD held — an
  /// imd restart (owner returned and left again, or a crash) seen from here.
  std::uint64_t epoch_bumps_seen = 0;
  std::uint64_t stats_scrapes = 0;        // per-host scrape RPCs issued
  std::uint64_t stats_scrape_failures = 0;  // no reply / unparsable snapshot
  /// Lease harvesting (lease_epochs on; DESIGN.md §14).
  std::uint64_t lease_renewals = 0;  // copies confirmed live at renewal
  /// Copies the imd reported gone (fenced or unknown) at renewal — each is
  /// pruned from its replica set without a free (the bytes are already
  /// reclaimed).
  std::uint64_t lease_renew_rejects = 0;
  std::uint64_t lease_expiry_notices = 0;  // kLeaseExpiryNotice received
  /// Proactive re-replications started for sole-copy fragments named in a
  /// near-expiry notice (clones settling through the PendingGrow path).
  std::uint64_t proactive_copies = 0;
};

class CentralManager {
 public:
  CentralManager(sim::Simulator& sim, net::Network& net, net::NodeId node,
                 CmdParams params = {});
  ~CentralManager();

  CentralManager(const CentralManager&) = delete;
  CentralManager& operator=(const CentralManager&) = delete;

  void start();
  sim::Co<void> stop();

  [[nodiscard]] net::Endpoint endpoint() const {
    return net::Endpoint{node_, kCmdPort};
  }
  [[nodiscard]] const CmdMetrics& metrics() const { return metrics_; }
  [[nodiscard]] std::size_t region_count() const { return rd_.size(); }
  /// Unresolved pending-free retry slots. Tests pin the accounting
  /// invariant: fragments_pending_free - fragments_pending_free_resolved
  /// must equal this at quiesce (a leaked slot breaks the equality).
  [[nodiscard]] std::size_t pending_free_count() const {
    return pending_frees_.size();
  }
  [[nodiscard]] std::size_t idle_host_count() const;
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  /// Fault/leak-audit hook: snapshot of the region directory, flattened to
  /// one row per fragment. Every region an imd holds must appear here
  /// (matching host/epoch/id), or nobody can ever free it — the definition
  /// of a leaked pool block.
  [[nodiscard]] std::vector<std::pair<RegionKey, RegionLoc>> rd_snapshot()
      const;

  /// Oracle hook: current reply-cache occupancy (bounded by the capacity).
  [[nodiscard]] std::size_t reply_cache_size() const {
    return reply_cache_.size();
  }

  /// Oracle hook: the IWD's per-host epoch view. Epochs only ever move
  /// forward at the rmd; if the cmd's view ever goes backwards, a stale
  /// registration overwrote a fresh one and stale regions can serve reads.
  [[nodiscard]] std::vector<std::pair<net::NodeId, std::uint64_t>>
  iwd_epochs() const;

  /// The manager's own metrics under "cmd." names (also the kStatsReq reply).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  /// Scrapes one host's rmd stats endpoint (kRmdPort) over the wire.
  /// nullopt when the host never answers or the payload does not parse.
  sim::Co<std::optional<obs::MetricsSnapshot>> scrape_host(net::NodeId host);

  /// Own snapshot merged with a scrape of every host in the IWD (visited in
  /// node-id order; unreachable hosts are skipped and counted). Per-host
  /// rmd/imd counters aggregate bucket-wise into cluster totals.
  sim::Co<obs::MetricsSnapshot> scrape_cluster();

 private:
  struct HostInfo {
    bool idle = false;
    std::uint64_t epoch = 0;
    Bytes64 largest_free = 0;
    Bytes64 pool_total = 0;
    /// Graded rmd pressure (PressureLevel; lease_epochs only — stays kIdle
    /// otherwise). Nonzero makes the host a last-resort placement target.
    std::uint8_t pressure = 0;
  };
  struct ClientInfo {
    net::Endpoint control;
    int missed = 0;
  };

  sim::Co<void> serve_loop();
  sim::Co<void> keepalive_loop();

  sim::Co<void> handle_mopen(net::Message msg);
  sim::Co<void> handle_mfree(net::Message msg);
  void handle_checkalloc(const net::Message& msg);
  void handle_host_status(const net::Message& msg);
  void handle_imd_register(const net::Message& msg);
  /// kPressureStatus datagram: records the host's graded pressure level.
  void handle_pressure_status(const net::Message& msg);
  /// kLeaseExpiryNotice datagram: queues the named regions for the next
  /// keep-alive tick's proactive re-replication pass (no detached work on
  /// the serve loop).
  void handle_lease_expiry_notice(const net::Message& msg);
  /// Invalidate-on-write: drops the named copy from its replica set (the
  /// client could not write it, so serving it would break the clean-cache
  /// contract). A fragment losing its last copy kills the whole entry.
  void handle_drop_replica(net::Message msg);

  /// checkAlloc core: validates a RD entry against the IWD epochs; a region
  /// is stale as soon as ANY fragment's host left the epoch it was placed
  /// under. Stale entries are deleted (surviving fragments queued for a
  /// lazy free) and nullptr returned.
  StripeMap* validate_region(const RegionKey& key);

  /// Frees every copy of every fragment of `map` at its imd. On return the
  /// entry is always safe to forget: each copy either acknowledged the
  /// free, cannot have survived (host re-registered under a newer epoch, or
  /// was evicted), or sits on pending_frees_ for retry. Callers must erase
  /// the directory entry — keeping it would resurrect copies whose frees
  /// landed, which the leak audit reports as dangling.
  sim::Co<void> free_stripes(const RegionKey& key, StripeMap map,
                             obs::TraceContext ctx = {});

  /// Retries the frees queued by free_stripes/validate_region rollbacks.
  sim::Co<void> scrub_pending_frees();

  /// Queues `loc` for the keep-alive scrub iff its pool bytes may still be
  /// allocated; a copy that cannot have survived resolves immediately so
  /// the pending-free accounting never leaks a slot.
  void queue_pending_free(const RegionLoc& loc);

  // -- elastic replication (replica_adapt) ----------------------------------
  /// One keep-alive tick of Ditto-style adaptation: grows hot regions (read
  /// hits >= replica_grow_hits in the window) by cloning a live copy onto a
  /// fresh host, shrinks cold ones (hits <= replica_shrink_hits) toward one
  /// copy, and verifies/activates clones the owning client has acked.
  sim::Co<void> adapt_replicas();
  sim::Co<void> grow_region(RegionKey key);
  void shrink_region(const RegionKey& key);

  /// Allocates one `flen`-byte copy on a random idle host with room,
  /// verifying with the imd and moving on when the hint was wrong (§4.3
  /// alloc). `exclude` hosts are never candidates; `avoid` hosts only when
  /// no other host has room. nullopt when no candidate worked.
  sim::Co<std::optional<RegionLoc>> place_copy(
      Bytes64 flen, const std::vector<net::NodeId>& exclude,
      const std::vector<net::NodeId>& avoid, obs::TraceContext ctx);

  /// Tells dst's imd to fill region `dst.imd_region` with the bytes of the
  /// live sibling `src` (kCloneReq). Returns the source's write generation
  /// at the snapshot, or nullopt on failure.
  sim::Co<std::optional<std::uint64_t>> rpc_clone(const RegionLoc& dst,
                                                  const RegionLoc& src,
                                                  obs::TraceContext ctx);

  /// Zero-length data-plane read against `loc`: samples the region's write
  /// generation (nullopt when the imd does not answer or refuses).
  sim::Co<std::optional<std::uint64_t>> probe_write_gen(const RegionLoc& loc);

  /// Frees a region at its imd. Returns the imd's ok flag, or nullopt when
  /// no reply arrived — in which case the imd may still hold the region and
  /// the caller must not forget the directory entry while the host is alive
  /// under that epoch (see region_may_survive).
  sim::Co<std::optional<bool>> rpc_free_region(const RegionKey& key,
                                               const RegionLoc& loc,
                                               obs::TraceContext ctx = {});

  /// True if `loc`'s host is still registered under `loc`'s epoch, i.e. an
  /// unacknowledged free may have left the region allocated in its pool.
  [[nodiscard]] bool region_may_survive(const RegionLoc& loc) const;
  sim::Co<void> reclaim_client(std::uint32_t client);

  // -- lease harvesting (lease_epochs; DESIGN.md §14) -----------------------
  /// One keep-alive tick of lease upkeep: first re-homes sole-copy fragments
  /// named in queued near-expiry notices (clone from the still-live copy
  /// into a PendingGrow, so the write-consistency handshake is identical to
  /// elastic growth), then renews the lease of every directory copy with
  /// its imd, pruning copies the imd reports gone.
  sim::Co<void> process_expiry_notices();
  sim::Co<void> renew_leases();
  /// Drops every copy on `host` under `epoch` whose region id is in `ids`
  /// from the directory WITHOUT freeing it (the imd already reclaimed the
  /// bytes). A fragment losing its last copy kills the whole entry, exactly
  /// like validate_region.
  void prune_rejected_copies(net::NodeId host, std::uint64_t epoch,
                             const std::vector<std::uint64_t>& ids);

  /// An alloc RPC that exhausted its retries with no reply. If the host was
  /// alive the whole time, it may have allocated a region whose id we never
  /// saw; kAllocCancel releases it once the host answers again. If the host
  /// restarted (epoch moved on), the pool was rebuilt and there is nothing
  /// to scrub.
  struct SuspectAlloc {
    net::NodeId host = 0;
    std::uint64_t epoch = 0;  // epoch named in the abandoned request
    std::uint64_t rid = 0;
  };
  sim::Co<void> scrub_suspect_allocs();

  sim::Simulator& sim_;
  net::Network& net_;
  net::NodeId node_;
  CmdParams params_;
  CmdMetrics metrics_;
  Rng rng_;
  RidSource rids_;

  std::unordered_map<net::NodeId, HostInfo> iwd_;
  std::unordered_map<RegionKey, StripeMap, RegionKeyHash> rd_;
  std::unordered_map<std::uint32_t, ClientInfo> clients_;
  std::vector<SuspectAlloc> suspect_allocs_;
  /// Fragments awaiting a retried free: their directory entry is gone but
  /// the imd may still hold them (unacked free, or a partially placed
  /// stripe that was rolled back). Scrubbed from keepalive_loop.
  std::vector<RegionLoc> pending_frees_;

  /// Per-region read hits reported by the owning client's kPong piggyback;
  /// consumed (and reset) by each adaptation tick.
  std::unordered_map<RegionKey, std::uint64_t, RegionKeyHash> hits_;

  /// A clone that completed but is not yet proven write-consistent. The
  /// copy is NOT in rd_ (so it is never served); the owning client learns
  /// it as a write-only replica via the next kPing, acks on kPong, and only
  /// when the source's write generation still equals the snapshot's does
  /// the copy activate into the directory — any write the copy could have
  /// missed forces a drop instead (never served stale).
  struct PendingGrow {
    RegionKey key;
    std::size_t frag = 0;
    RegionLoc loc;
    RegionLoc src;
    std::uint64_t src_gen = 0;
    bool acked = false;  // client fans writes out to the copy from now on
  };
  std::vector<PendingGrow> pending_grows_;

  /// A region copy an imd announced as near expiry (kLeaseExpiryNotice).
  /// Drained by process_expiry_notices() at the next keep-alive tick.
  struct ExpiryNotice {
    net::NodeId host = 0;
    std::uint64_t epoch = 0;
    std::uint64_t id = 0;
    Bytes64 len = 0;
  };
  std::vector<ExpiryNotice> pending_expiry_notices_;

  /// (host, epoch, id) of every copy a processed expiry notice named whose
  /// fence has not resolved yet. A doomed copy must never count as a
  /// survivor when a sibling's notice arrives in a LATER keep-alive batch:
  /// under a flash crowd a fragment's replicas can all be dying batches
  /// apart — e.g. a proactive copy that landed on a host moments before
  /// that host's own shrink ramp capped it. Entries drop when the fenced id
  /// is pruned at renewal reject, or when the incarnation dies.
  std::set<std::tuple<net::NodeId, std::uint64_t, std::uint64_t>>
      doomed_copies_;

  /// Directory deltas (activate/drop) to piggyback on the next kPing to
  /// each client, keyed by client id. Add-write-only deltas are derived
  /// from pending_grows_ at ping time instead (resent until acked).
  struct ReplicaUpdate {
    std::uint8_t op = 0;  // ReplicaUpdateOp
    RegionKey key;
    std::uint32_t frag = 0;
    RegionLoc loc;
  };
  std::unordered_map<std::uint32_t, std::vector<ReplicaUpdate>>
      client_updates_;

  /// Duplicate-request suppression: a client retransmits an RPC whose reply
  /// was lost; replaying the cached reply keeps non-idempotent operations
  /// (mopen!) from executing twice — without it, a retried first-time mopen
  /// hits the region-reuse path and reports a never-filled region as
  /// "reused". Keyed by (caller endpoint, rid): the runtime uses a fresh
  /// ephemeral socket per call, so retries alias and distinct calls do not.
  struct ReplyKey {
    net::Endpoint src;
    std::uint64_t rid;
    bool operator==(const ReplyKey&) const = default;
  };
  struct ReplyKeyHash {
    std::size_t operator()(const ReplyKey& k) const {
      return net::EndpointHash{}(k.src) ^
             std::hash<std::uint64_t>{}(k.rid * 0x9e3779b97f4a7c15ULL);
    }
  };
  std::unordered_map<ReplyKey, net::Buf, ReplyKeyHash> reply_cache_;
  std::deque<ReplyKey> reply_order_;  // FIFO eviction order

  /// Sends `rep` to msg.src and remembers it for duplicate suppression.
  void reply_cached(const net::Message& msg, std::uint64_t rid,
                    net::Buf rep);
  /// True (and replied) if this (src, rid) was already answered.
  bool replay_if_duplicate(const net::Message& msg, std::uint64_t rid);

  std::unique_ptr<net::Socket> sock_;
  bool running_ = false;
  bool stopping_ = false;
  sim::WaitGroup loops_;
  sim::Channel<int> stop_ch_;
};

}  // namespace dodo::core
