#include "core/imd.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.hpp"
#include "core/rpc.hpp"

namespace dodo::core {

namespace {
net::Message make_sentinel() {
  net::Message m;
  m.header = make_header(MsgKind::kShutdownSentinel, 0);
  return m;
}
}  // namespace

IdleMemoryDaemon::IdleMemoryDaemon(sim::Simulator& sim, net::Network& net,
                                   net::NodeId node, std::uint64_t epoch,
                                   net::Endpoint cmd, ImdParams params)
    : sim_(sim),
      net_(net),
      node_(node),
      epoch_(epoch),
      cmd_(cmd),
      params_(params),
      pool_(params.pool_bytes),
      inflight_(sim),
      stop_ch_(sim),
      lease_stop_ch_(sim) {
  // The bulk counters live in the daemon, not the params copy, so every
  // transfer this incarnation serves aggregates into one place. Same for
  // the span sink: bulk transfers record under this daemon's recorder.
  params_.bulk.stats = &bulk_stats_;
  params_.bulk.spans = params_.spans;
}

IdleMemoryDaemon::~IdleMemoryDaemon() = default;

void IdleMemoryDaemon::start() {
  assert(!running_);
  running_ = true;
  stopping_ = false;
  ctl_sock_ = net_.open(node_, kImdCtlPort);
  data_sock_ = net_.open(node_, kImdDataPort);
  // Control loop, data loop, coalesce loop — plus the lease loop, which
  // exists only with lease_epochs on so the off path schedules exactly the
  // events it always did.
  inflight_.add(params_.lease_epochs ? 4 : 3);
  sim_.spawn(control_loop());
  sim_.spawn(data_loop());
  sim_.spawn(coalesce_loop());
  if (params_.lease_epochs) sim_.spawn(lease_loop());
}

sim::Co<void> IdleMemoryDaemon::stop() {
  if (!running_) co_return;
  stopping_ = true;
  // The paper's rmd sends a signal; the imd "handles the signal by
  // completing the ongoing transfers and exiting".
  ctl_sock_->inject(make_sentinel());
  data_sock_->inject(make_sentinel());
  stop_ch_.send(1);
  if (params_.lease_epochs) lease_stop_ch_.send(1);
  co_await inflight_.wait();
  ctl_sock_.reset();
  data_sock_.reset();
  regions_.clear();
  reply_cache_.clear();
  reply_order_.clear();
  data_seen_.clear();
  data_seen_order_.clear();
  clones_inflight_.clear();
  fenced_.clear();
  running_ = false;
}

const net::Buf* IdleMemoryDaemon::region_bytes(std::uint64_t region_id) const {
  auto it = regions_.find(region_id);
  return it == regions_.end() ? nullptr : &it->second.data;
}

std::vector<std::pair<std::uint64_t, Bytes64>> IdleMemoryDaemon::region_list()
    const {
  std::vector<std::pair<std::uint64_t, Bytes64>> out;
  out.reserve(regions_.size());
  for (const auto& [id, region] : regions_) {
    out.emplace_back(id, region.len);
  }
  return out;
}

sim::Co<void> IdleMemoryDaemon::control_loop() {
  // Register with the central manager: pool size and epoch (§4.2). Sent as
  // an RPC so a lost datagram does not leave the host invisible.
  {
    net::Buf h = make_header(MsgKind::kImdRegister, epoch_);
    net::Writer w(h);
    w.u32(node_);
    w.u64(epoch_);
    w.i64(pool_.pool_size());
    w.i64(pool_.largest_free());
    co_await rpc_call(net_, node_, cmd_, std::move(h), epoch_);
  }

  for (;;) {
    net::Message msg = co_await ctl_sock_->recv();
    auto env = peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    switch (env->kind) {
      case MsgKind::kAllocReq:
        handle_alloc(msg, body_reader(msg));
        break;
      case MsgKind::kAllocCancel:
        handle_alloc_cancel(msg, body_reader(msg));
        break;
      case MsgKind::kFreeReq:
        handle_free(msg, body_reader(msg));
        break;
      case MsgKind::kLeaseRenewReq:
        if (params_.lease_epochs) handle_lease_renew(msg, body_reader(msg));
        break;
      case MsgKind::kCloneReq:
        if (auto it = reply_cache_.find(env->rid); it != reply_cache_.end()) {
          ++metrics_.reply_cache_hits;
          ctl_sock_->send(msg.src, it->second);
        } else if (clones_inflight_.insert(env->rid).second) {
          inflight_.add();
          sim_.spawn(handle_clone(std::move(msg)));
        }
        break;
      case MsgKind::kStatsReq:
        handle_stats(msg);
        break;
      default:
        break;
    }
  }
  inflight_.done();
}

void IdleMemoryDaemon::cache_reply(std::uint64_t rid, net::Buf reply) {
  // Bounded FIFO, never clear-all: evicting only the oldest rids preserves
  // the idempotent-retry contract for every recent request. A clear here
  // would let a late kFreeReq/kAllocReq retransmit re-execute — re-running
  // an alloc orphans a region (pool bytes leak with no owner), and
  // re-running a free reports failure for an operation that succeeded.
  if (!reply_cache_.emplace(rid, std::move(reply)).second) return;
  reply_order_.push_back(rid);
  if (reply_cache_.size() <= params_.reply_cache_capacity) return;
  if (params_.buggy_clear_all_reply_cache) {
    // The PR-1 bug, preserved behind a test-only flag for the fuzz harness:
    // overflow wipes everything, including the reply just cached.
    metrics_.reply_cache_evictions += reply_cache_.size();
    reply_cache_.clear();
    reply_order_.clear();
    return;
  }
  while (reply_cache_.size() > params_.reply_cache_capacity &&
         !reply_order_.empty()) {
    reply_cache_.erase(reply_order_.front());
    reply_order_.pop_front();
    ++metrics_.reply_cache_evictions;
  }
}

void IdleMemoryDaemon::reply_cached_or(const net::Message& msg,
                                       std::uint64_t rid, net::Buf reply) {
  cache_reply(rid, reply);
  ctl_sock_->send(msg.src, std::move(reply));
}

void IdleMemoryDaemon::handle_alloc(const net::Message& msg, net::Reader r) {
  const auto env = peek_envelope(msg);
  if (auto it = reply_cache_.find(env->rid); it != reply_cache_.end()) {
    ++metrics_.reply_cache_hits;
    ctl_sock_->send(msg.src, it->second);  // idempotent retry; no new span
    return;
  }
  // Opened after the replay check: a retried alloc executes (and is traced)
  // exactly once.
  obs::ScopedSpan span(params_.spans, "imd.alloc", env->trace);
  const Bytes64 len = r.i64();
  const std::uint64_t want_epoch = r.u64();
  net::Buf rep = make_header(MsgKind::kAllocRep, env->rid);
  net::Writer w(rep);
  if (r.ok() && want_epoch != epoch_) {
    // A retransmit that straddled a restart: the caller issued this against
    // a different incarnation of the pool. Allocating would create a region
    // the caller books under the wrong epoch — an unreclaimable orphan.
    ++metrics_.alloc_failures;
    ++metrics_.stale_alloc_rejects;
    w.u8(0);
    w.u64(0);
  } else if (!r.ok() || len <= 0 || stopping_) {
    ++metrics_.alloc_failures;
    w.u8(0);
    w.u64(0);
  } else if (auto offset = pool_.alloc(len)) {
    ++metrics_.allocs;
    pool_used_.add(len);
    const std::uint64_t id = next_region_id_++;
    Region region;
    region.pool_offset = *offset;
    region.len = len;
    region.alloc_rid = env->rid;
    if (params_.materialize) {
      region.data.assign(static_cast<std::size_t>(len), 0);
    }
    if (params_.lease_epochs) {
      // Lease granted at birth: the region lives lease_ttl without a
      // renewal. Orphans the cmd never learned about (lost alloc replies,
      // abandoned grows) age out on their own instead of leaking.
      region.last_access = sim_.now();
      region.lease_expiry = sim_.now() + params_.lease_ttl;
      obs::frecord(params_.flight, obs::FlightEventType::kLeaseGrant,
                   static_cast<std::int64_t>(id), len, region.lease_expiry);
    }
    regions_.emplace(id, std::move(region));
    w.u8(1);
    w.u64(id);
  } else {
    ++metrics_.alloc_failures;
    w.u8(0);
    w.u64(0);
  }
  w.u64(epoch_);
  w.i64(pool_.largest_free());
  reply_cached_or(msg, env->rid, std::move(rep));
}

void IdleMemoryDaemon::handle_alloc_cancel(const net::Message& msg,
                                           net::Reader r) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "imd.alloc_cancel", env->trace);
  const std::uint64_t target_rid = r.u64();
  bool freed = false;
  if (r.ok()) {
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
      if (it->second.alloc_rid == target_rid) {
        pool_.free(it->second.pool_offset);
        pool_used_.add(-it->second.len);
        regions_.erase(it);
        ++metrics_.allocs_cancelled;
        freed = true;
        break;
      }
    }
    // Poison the rid: a retransmitted kAllocReq still in flight must replay
    // a failure instead of re-executing after the cancel. If a success reply
    // is cached it is overwritten — its caller has already given up.
    net::Buf poison = make_header(MsgKind::kAllocRep, target_rid);
    net::Writer pw(poison);
    pw.u8(0);
    pw.u64(0);
    pw.u64(epoch_);
    pw.i64(pool_.largest_free());
    if (auto it = reply_cache_.find(target_rid); it != reply_cache_.end()) {
      it->second = std::move(poison);
    } else {
      cache_reply(target_rid, std::move(poison));
    }
  }
  net::Buf rep = make_header(MsgKind::kAllocCancelRep, env->rid);
  net::Writer w(rep);
  w.u8(freed ? 1 : 0);
  w.u64(epoch_);
  w.i64(pool_.largest_free());
  ctl_sock_->send(msg.src, std::move(rep));
}

void IdleMemoryDaemon::handle_free(const net::Message& msg, net::Reader r) {
  const auto env = peek_envelope(msg);
  if (auto it = reply_cache_.find(env->rid); it != reply_cache_.end()) {
    ++metrics_.reply_cache_hits;
    ctl_sock_->send(msg.src, it->second);  // idempotent retry; no new span
    return;
  }
  obs::ScopedSpan span(params_.spans, "imd.free", env->trace);
  const std::uint64_t id = r.u64();
  bool ok = false;
  auto it = regions_.find(id);
  if (r.ok() && it != regions_.end()) {
    // Memory is marked free and reused, never returned to the OS (§3.1);
    // coalescing happens periodically, not here (§4.2).
    ok = pool_.free(it->second.pool_offset);
    pool_used_.add(-it->second.len);
    regions_.erase(it);
    ++metrics_.frees;
  } else if (r.ok() && fenced_.count(id) != 0) {
    // The lease fence already reclaimed the bytes; the free is idempotent.
    // Reporting failure here would strand the cmd's pending-free retry loop
    // on a region that no longer exists.
    ok = true;
  }
  net::Buf rep = make_header(MsgKind::kFreeRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  w.u64(epoch_);
  w.i64(pool_.largest_free());
  reply_cached_or(msg, env->rid, std::move(rep));
}

bool IdleMemoryDaemon::data_request_is_duplicate(const net::Message& msg,
                                                 std::uint64_t rid) {
  const DataKey key{msg.src.node, msg.src.port, rid};
  if (!data_seen_.insert(key).second) {
    ++metrics_.dup_requests_dropped;
    return true;
  }
  data_seen_order_.push_back(key);
  while (data_seen_.size() > params_.data_dedup_capacity &&
         !data_seen_order_.empty()) {
    data_seen_.erase(data_seen_order_.front());
    data_seen_order_.pop_front();
  }
  return false;
}

sim::Co<void> IdleMemoryDaemon::data_loop() {
  for (;;) {
    net::Message msg = co_await data_sock_->recv();
    auto env = peek_envelope(msg);
    if (!env) continue;
    if (env->kind == MsgKind::kShutdownSentinel) break;
    if (stopping_) continue;  // no new transfers while draining
    switch (env->kind) {
      case MsgKind::kReadReq:
      case MsgKind::kWriteReq:
        // A duplicated request datagram must not spawn a second handler:
        // the first one already owns the bulk exchange with the client's
        // ephemeral socket, and a twin would double-serve (and double-trace)
        // the operation.
        if (data_request_is_duplicate(msg, env->rid)) break;
        inflight_.add();
        if (env->kind == MsgKind::kReadReq) {
          sim_.spawn(handle_read(std::move(msg)));
        } else {
          sim_.spawn(handle_write(std::move(msg)));
        }
        break;
      default:
        break;
    }
  }
  inflight_.done();
}

sim::Co<void> IdleMemoryDaemon::handle_read(net::Message req) {
  const SimTime t0 = sim_.now();
  const auto env = peek_envelope(req);
  obs::ScopedSpan span(params_.spans, "imd.read", env->trace);
  net::Reader r = body_reader(req);
  const std::uint64_t region_id = r.u64();
  const std::uint64_t epoch = r.u64();
  const Bytes64 off = r.i64();
  const Bytes64 len = r.i64();

  auto hsock = net_.open_ephemeral(node_);
  auto it = regions_.find(region_id);
  const bool valid = r.ok() && it != regions_.end() && epoch == epoch_ &&
                     off >= 0 && off < it->second.len && len >= 0;
  net::Buf rep = make_header(MsgKind::kReadRep, env->rid);
  net::Writer w(rep);
  if (!valid) {
    // Full reply layout even on rejection: a reader that parses the success
    // shape (code, avail, filled, prefix, gen) must see a well-formed body,
    // or it cannot tell an authoritative "this region is gone" from line
    // noise. Under incremental lease reclamation that distinction is what
    // keeps a client from indicting a live host over one fenced region.
    ++metrics_.bad_region_requests;
    w.u8(static_cast<std::uint8_t>(Err::kNotFound));
    w.i64(0);  // avail
    w.u8(0);   // filled
    w.i64(0);  // written prefix
    w.u64(0);  // write generation
    hsock->send(req.src, std::move(rep));
    inflight_.done();
    co_return;
  }
  // "if len bytes are not available at the request offset, read as many
  // bytes as are available" (§3.2)
  it->second.last_access = sim_.now();  // coldest-first shrink order (§14)
  const Bytes64 n = std::min(len, it->second.len - off);
  const bool filled = off + n <= it->second.written_prefix;
  w.u8(static_cast<std::uint8_t>(Err::kOk));
  w.i64(n);
  w.u8(filled ? 1 : 0);
  // Snapshot trailers for the replica machinery: the written prefix and
  // write generation as of the same instant the payload slice is taken
  // below (no suspend between here and the copy), so a clone adopting them
  // gets a consistent (bytes, prefix, generation) triple.
  w.i64(it->second.written_prefix);
  w.u64(it->second.write_gen);
  hsock->send(req.src, std::move(rep));

  // Copy the requested slice before suspending: the cmd may free this
  // region while the bulk transfer is in flight, which would invalidate a
  // pointer into the pool.
  net::Buf slice;
  net::BodyView body;
  body.size = n;
  if (params_.materialize && !it->second.data.empty()) {
    slice.assign(it->second.data.begin() + static_cast<std::ptrdiff_t>(off),
                 it->second.data.begin() +
                     static_cast<std::ptrdiff_t>(off + n));
    body.data = slice.data();
  }
  const Status st = co_await net::bulk_send(*hsock, req.src, env->rid, body,
                                            params_.bulk, span.ctx());
  if (st.is_ok()) {
    ++metrics_.reads_served;
    metrics_.bytes_read += n;
    flush_latency_.observe(sim_.now() - t0);
  }
  inflight_.done();
}

sim::Co<void> IdleMemoryDaemon::handle_write(net::Message req) {
  const SimTime t0 = sim_.now();
  const auto env = peek_envelope(req);
  obs::ScopedSpan span(params_.spans, "imd.write", env->trace);
  net::Reader r = body_reader(req);
  const std::uint64_t region_id = r.u64();
  const std::uint64_t epoch = r.u64();
  const Bytes64 off = r.i64();
  const Bytes64 len = r.i64();

  auto hsock = net_.open_ephemeral(node_);
  auto it = regions_.find(region_id);
  const bool valid = r.ok() && it != regions_.end() && epoch == epoch_ &&
                     off >= 0 && off < it->second.len && len >= 0;
  if (!valid) {
    ++metrics_.bad_region_requests;
    net::Buf rep = make_header(MsgKind::kWriteRep, env->rid);
    net::Writer w(rep);
    w.u8(static_cast<std::uint8_t>(Err::kNotFound));
    w.i64(0);
    hsock->send(req.src, std::move(rep));
    inflight_.done();
    co_return;
  }
  it->second.last_access = sim_.now();
  const Bytes64 n = std::min(len, it->second.len - off);
  hsock->send(req.src, make_header(MsgKind::kWriteGo, env->rid));

  auto recv =
      co_await net::bulk_recv(*hsock, env->rid, params_.bulk, span.ctx());
  Err code = recv.status.code();
  if (recv.status.is_ok()) {
    if (recv.size != n) {
      code = Err::kInval;
    } else {
      // The region may have been freed by the cmd while the bulk transfer
      // was in flight; re-resolve before touching pool memory.
      auto it2 = regions_.find(region_id);
      if (it2 == regions_.end()) {
        code = Err::kNotFound;
      } else {
        if (params_.materialize && !recv.data.empty()) {
          std::copy_n(recv.data.begin(), static_cast<std::size_t>(n),
                      it2->second.data.begin() +
                          static_cast<std::ptrdiff_t>(off));
        }
        if (off <= it2->second.written_prefix) {
          it2->second.written_prefix =
              std::max(it2->second.written_prefix, off + n);
        }
        ++it2->second.write_gen;
        ++metrics_.writes_served;
        metrics_.bytes_written += n;
        fill_latency_.observe(sim_.now() - t0);
      }
    }
  }
  net::Buf rep = make_header(MsgKind::kWriteRep, env->rid);
  net::Writer w(rep);
  w.u8(static_cast<std::uint8_t>(code));
  w.i64(code == Err::kOk ? n : 0);
  hsock->send(req.src, std::move(rep));
  inflight_.done();
}

sim::Co<void> IdleMemoryDaemon::handle_clone(net::Message req) {
  const auto env = peek_envelope(req);
  obs::ScopedSpan span(params_.spans, "imd.clone", env->trace);
  net::Reader r = body_reader(req);
  const std::uint64_t dst_id = r.u64();
  const std::uint64_t want_epoch = r.u64();
  const RegionLoc src = get_loc(r);

  bool ok = false;
  std::uint64_t src_gen = 0;
  const bool valid = r.ok() && want_epoch == epoch_ && !stopping_ &&
                     regions_.find(dst_id) != regions_.end() && src.len > 0;
  if (valid) {
    // Read the source replica through the regular data plane, exactly as a
    // client would: header, then the §4.4 bulk blast. The source snapshots
    // (bytes, written prefix, write generation) atomically at ReadRep time.
    auto sock = net_.open_ephemeral(node_);
    net::Buf h = make_header(MsgKind::kReadReq, env->rid, span.ctx());
    net::Writer w(h);
    w.u64(src.imd_region);
    w.u64(src.epoch);
    w.i64(0);
    w.i64(src.len);
    sock->send(net::Endpoint{src.host, kImdDataPort}, std::move(h));
    auto rep = co_await sock->recv_for(params_.clone_read_timeout);
    if (rep) {
      net::Reader rr = body_reader(*rep);
      const auto code = static_cast<Err>(rr.u8());
      const Bytes64 avail = rr.i64();
      (void)rr.u8();  // filled flag; the prefix below is authoritative
      const Bytes64 src_prefix = rr.i64();
      const std::uint64_t gen = rr.u64();
      if (rr.ok() && code == Err::kOk && avail == src.len) {
        auto got =
            co_await net::bulk_recv(*sock, env->rid, params_.bulk, span.ctx());
        // Re-resolve across the awaits: the cmd may have freed the
        // destination while the transfer was in flight.
        auto it = regions_.find(dst_id);
        if (got.status.is_ok() && got.size == avail && it != regions_.end() &&
            it->second.len == avail) {
          if (params_.materialize && !got.data.empty()) {
            std::copy(got.data.begin(), got.data.end(),
                      it->second.data.begin());
          }
          // Adopt the source's trust boundary; the copy's own generation
          // restarts at zero so the cmd can count the writes it receives
          // from the moment the owning client learns of it.
          it->second.written_prefix = std::min(src_prefix, it->second.len);
          it->second.write_gen = 0;
          ok = true;
          src_gen = gen;
        }
      }
    }
  }
  if (ok) {
    ++metrics_.clones_served;
  } else {
    ++metrics_.clone_failures;
  }
  net::Buf rep = make_header(MsgKind::kCloneRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  w.u64(src_gen);
  w.u64(epoch_);
  w.i64(pool_.largest_free());
  clones_inflight_.erase(env->rid);
  reply_cached_or(req, env->rid, std::move(rep));
  inflight_.done();
}

void IdleMemoryDaemon::handle_stats(const net::Message& msg) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "imd.stats", env->trace);
  net::Buf rep = make_header(MsgKind::kStatsRep, env->rid);
  net::Writer w(rep);
  w.str(metrics_snapshot().to_json());
  ctl_sock_->send(msg.src, std::move(rep));
}

obs::MetricsSnapshot IdleMemoryDaemon::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  out.set_counter("imd.allocs", metrics_.allocs);
  out.set_counter("imd.alloc_failures", metrics_.alloc_failures);
  out.set_counter("imd.stale_alloc_rejects", metrics_.stale_alloc_rejects);
  out.set_counter("imd.allocs_cancelled", metrics_.allocs_cancelled);
  out.set_counter("imd.frees", metrics_.frees);
  out.set_counter("imd.reads_served", metrics_.reads_served);
  out.set_counter("imd.writes_served", metrics_.writes_served);
  out.set_counter("imd.bad_region_requests", metrics_.bad_region_requests);
  out.set_counter("imd.bytes_read",
                  static_cast<std::uint64_t>(metrics_.bytes_read));
  out.set_counter("imd.bytes_written",
                  static_cast<std::uint64_t>(metrics_.bytes_written));
  out.set_counter("imd.reply_cache_hits", metrics_.reply_cache_hits);
  out.set_counter("imd.reply_cache_evictions",
                  metrics_.reply_cache_evictions);
  out.set_counter("imd.dup_requests_dropped", metrics_.dup_requests_dropped);
  out.set_counter("imd.clones_served", metrics_.clones_served);
  out.set_counter("imd.clone_failures", metrics_.clone_failures);
  if (params_.lease_epochs) {
    // Omitted entirely with lease_epochs off so the export (and every
    // BENCH_*.json built from it) stays byte-identical to the pre-lease
    // layout.
    out.set_counter("imd.regions_reclaimed", metrics_.regions_reclaimed);
    out.set_counter("imd.bytes_reclaimed", metrics_.bytes_reclaimed);
    out.set_counter("imd.leases_renewed", metrics_.leases_renewed);
    out.set_counter("imd.lease_renew_rejects", metrics_.lease_renew_rejects);
    out.set_gauge("imd.fenced_regions",
                  static_cast<std::int64_t>(fenced_.size()));
  }
  out.set_gauge("imd.reply_cache_size",
                static_cast<std::int64_t>(reply_cache_.size()));
  out.set_gauge("imd.pool_bytes", pool_.pool_size());
  out.set_gauge("imd.pool_used_bytes", pool_used_.value());
  out.set_gauge("imd.regions", static_cast<std::int64_t>(regions_.size()));
  out.set_gauge("imd.epoch", static_cast<std::int64_t>(epoch_));
  out.set_histogram("imd.fill_latency", fill_latency_);
  out.set_histogram("imd.flush_latency", flush_latency_);
  bulk_stats_.export_into(out, "imd.bulk.");
  return out;
}

sim::Co<void> IdleMemoryDaemon::coalesce_loop() {
  for (;;) {
    auto stop = co_await stop_ch_.recv_for(params_.coalesce_interval);
    if (stop.has_value() || stopping_) break;
    pool_.coalesce();
  }
  inflight_.done();
}

void IdleMemoryDaemon::handle_lease_renew(const net::Message& msg,
                                          net::Reader r) {
  const auto env = peek_envelope(msg);
  obs::ScopedSpan span(params_.spans, "imd.lease_renew", env->trace);
  const std::uint64_t want_epoch = r.u64();
  const std::uint32_t n = r.u32();
  // Renewal is naturally idempotent (expiry := now + ttl), so unlike
  // alloc/free it needs no reply cache: a retransmit just renews again.
  const bool ok = r.ok() && want_epoch == epoch_ && !stopping_;
  const SimTime deadline = sim_.now() + params_.lease_ttl;
  std::vector<std::uint64_t> rejected;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    auto it = regions_.find(id);
    if (ok && it != regions_.end()) {
      if (!it->second.shrink_victim) {
        it->second.lease_expiry = deadline;
        it->second.expiry_noticed = false;
        ++metrics_.leases_renewed;
      }
      // A shrink victim's fate is sealed — its expiry is NOT extended — but
      // it is still readable until the grace runs out, and the cmd needs it
      // alive as the clone source for the proactive copy. Rejecting it here
      // would make the cmd prune the only copy before the re-home settles;
      // the post-fence renewal attempt rejects it instead.
    } else {
      // Fenced, unknown, or stale-epoch: the copy is gone — the cmd must
      // prune it, not keep renewing it.
      rejected.push_back(id);
      ++metrics_.lease_renew_rejects;
      obs::frecord(params_.flight, obs::FlightEventType::kLeaseRenewReject,
                   static_cast<std::int64_t>(id));
    }
  }
  net::Buf rep = make_header(MsgKind::kLeaseRenewRep, env->rid);
  net::Writer w(rep);
  w.u8(ok ? 1 : 0);
  w.u64(epoch_);
  w.i64(pool_.largest_free());
  w.u32(static_cast<std::uint32_t>(rejected.size()));
  for (const std::uint64_t id : rejected) w.u64(id);
  ctl_sock_->send(msg.src, std::move(rep));
}

void IdleMemoryDaemon::send_expiry_notice(
    const std::vector<std::pair<std::uint64_t, Bytes64>>& regions) {
  Bytes64 noticed = 0;
  for (const auto& [id, len] : regions) noticed += len;
  obs::frecord(params_.flight, obs::FlightEventType::kExpiryNotice,
               static_cast<std::int64_t>(regions.size()), noticed);
  net::Buf h = make_header(MsgKind::kLeaseExpiryNotice, epoch_);
  net::Writer w(h);
  w.u32(node_);
  w.u64(epoch_);
  w.u32(static_cast<std::uint32_t>(regions.size()));
  for (const auto& [id, len] : regions) {
    w.u64(id);
    w.i64(len);
  }
  // One-way datagram, best effort: if it is lost the cmd still discovers
  // the loss at the next renewal (rejected ids) — it just forgoes the
  // proactive copy for these regions.
  ctl_sock_->send(cmd_, std::move(h));
}

sim::Co<void> IdleMemoryDaemon::lease_loop() {
  for (;;) {
    auto stop = co_await lease_stop_ch_.recv_for(params_.lease_check_interval);
    if (stop.has_value() || stopping_) break;
    const SimTime now = sim_.now();
    std::vector<std::uint64_t> reclaim;
    std::vector<std::pair<std::uint64_t, Bytes64>> expiring;
    for (auto& [id, region] : regions_) {
      if (now >= region.lease_expiry) {
        reclaim.push_back(id);
      } else if (!region.expiry_noticed &&
                 now + params_.lease_grace >= region.lease_expiry) {
        region.expiry_noticed = true;
        expiring.emplace_back(id, region.len);
      }
    }
    // Sorted for determinism: regions_ is an unordered_map and both the
    // fence order and the notice body are externally visible.
    std::sort(reclaim.begin(), reclaim.end());
    std::sort(expiring.begin(), expiring.end());
    for (const std::uint64_t id : reclaim) {
      auto it = regions_.find(id);
      pool_.free(it->second.pool_offset);
      pool_used_.add(-it->second.len);
      ++metrics_.regions_reclaimed;
      metrics_.bytes_reclaimed += static_cast<std::uint64_t>(it->second.len);
      obs::frecord(params_.flight, obs::FlightEventType::kLeaseFence,
                   static_cast<std::int64_t>(id), it->second.len);
      fenced_.insert(id);
      regions_.erase(it);
    }
    if (!expiring.empty()) send_expiry_notice(expiring);
  }
  inflight_.done();
}

Bytes64 IdleMemoryDaemon::begin_shrink(Bytes64 target_used_bytes) {
  if (!params_.lease_epochs || !running_ || stopping_) return 0;
  // Coldest-first: order live non-victim regions by last access (ties by id
  // so the choice is deterministic) and schedule just enough of them to
  // bring the pool's surviving bytes under target. Victims keep serving
  // reads through the grace window but can no longer renew.
  std::vector<std::pair<SimTime, std::uint64_t>> order;
  Bytes64 live = 0;
  for (const auto& [id, region] : regions_) {
    if (region.shrink_victim) continue;
    live += region.len;
    order.emplace_back(region.last_access, id);
  }
  std::sort(order.begin(), order.end());
  const SimTime fence = sim_.now() + params_.lease_grace;
  std::vector<std::pair<std::uint64_t, Bytes64>> victims;
  Bytes64 scheduled = 0;
  for (const auto& [last, id] : order) {
    if (live - scheduled <= target_used_bytes) break;
    Region& region = regions_[id];
    region.shrink_victim = true;
    region.expiry_noticed = true;
    region.lease_expiry = std::min(region.lease_expiry, fence);
    obs::frecord(params_.flight, obs::FlightEventType::kLeaseCap,
                 static_cast<std::int64_t>(id), region.lease_expiry);
    scheduled += region.len;
    victims.emplace_back(id, region.len);
  }
  if (!victims.empty()) {
    obs::frecord(params_.flight, obs::FlightEventType::kShrinkScheduled,
                 target_used_bytes, scheduled,
                 static_cast<std::int64_t>(victims.size()));
    send_expiry_notice(victims);
  }
  return scheduled;
}

}  // namespace dodo::core
