#include "core/pool_allocator.hpp"

#include <cassert>

namespace dodo::core {

PoolAllocator::PoolAllocator(Bytes64 pool_size)
    : pool_size_(pool_size), total_free_(pool_size) {
  assert(pool_size > 0);
  free_[0] = pool_size;
}

std::optional<Bytes64> PoolAllocator::alloc(Bytes64 len) {
  if (len <= 0 || len > total_free_) return std::nullopt;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < len) continue;
    const Bytes64 offset = it->first;
    const Bytes64 remainder = it->second - len;
    free_.erase(it);
    if (remainder > 0) free_[offset + len] = remainder;
    allocated_[offset] = len;
    total_free_ -= len;
    return offset;
  }
  return std::nullopt;
}

bool PoolAllocator::free(Bytes64 offset) {
  auto it = allocated_.find(offset);
  if (it == allocated_.end()) return false;
  free_[offset] = it->second;
  total_free_ += it->second;
  allocated_.erase(it);
  return true;
}

void PoolAllocator::coalesce() {
  auto it = free_.begin();
  while (it != free_.end()) {
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_.erase(next);
    } else {
      it = std::next(it);
    }
  }
}

Bytes64 PoolAllocator::largest_free() const {
  Bytes64 best = 0;
  for (const auto& [off, len] : free_) {
    if (len > best) best = len;
  }
  return best;
}

double PoolAllocator::external_fragmentation() const {
  if (total_free_ <= 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free()) /
                   static_cast<double>(total_free_);
}

bool PoolAllocator::check_invariants() const {
  // Walk both maps in offset order; blocks must tile [0, pool_size).
  auto fi = free_.begin();
  auto ai = allocated_.begin();
  Bytes64 cursor = 0;
  Bytes64 free_sum = 0;
  while (fi != free_.end() || ai != allocated_.end()) {
    const bool take_free =
        ai == allocated_.end() ||
        (fi != free_.end() && fi->first < ai->first);
    const auto& [off, len] = take_free ? *fi : *ai;
    if (off != cursor || len <= 0) return false;
    cursor += len;
    if (take_free) {
      free_sum += len;
      ++fi;
    } else {
      ++ai;
    }
  }
  return cursor == pool_size_ && free_sum == total_free_;
}

}  // namespace dodo::core
