// The idle memory daemon (imd), paper §4.2.
//
// Forked by the resource monitor when a workstation goes idle, killed (via
// signal -> cooperative shutdown here) when the owner returns. On startup it
// allocates its memory pool, initializes its epoch, registers with the
// central manager, and then serves:
//   - alloc/free requests from the cmd on the control port, and
//   - region read/write requests from application runtimes on the data
//     port, each handled by a spawned task that runs the §4.4 bulk protocol
//     on an ephemeral socket.
// Shutdown completes in-flight transfers before the daemon exits, exactly as
// §4.1 specifies ("handles the signal by completing the ongoing transfers
// and exiting").
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "core/pool_allocator.hpp"
#include "core/wire.hpp"
#include "net/bulk.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::core {

struct ImdParams {
  Bytes64 pool_bytes = 100 * 1024 * 1024;
  bool materialize = true;          // store real region bytes
  Duration coalesce_interval = seconds(1.0);
  net::BulkParams bulk{};
  double copy_rate_Bps = 80e6;      // memcpy into/out of the pool
  /// Reply-cache bound. Eviction is FIFO on oldest rid, never clear-all: a
  /// wholesale clear forgets recent replies too, so a late retransmit of an
  /// already-executed alloc/free re-executes (orphaning a region or failing
  /// a free that succeeded). Must exceed the number of alloc/free RPCs that
  /// can be outstanding within one retransmit horizon.
  std::size_t reply_cache_capacity = 4096;
  /// Test-only: re-introduce the PR-1 clear-all eviction bug — on overflow
  /// the whole cache is wiped, forgetting recent replies too. Exists so the
  /// fuzz harness can prove its oracles catch (and its shrinker minimizes)
  /// exactly this class of bug; never set outside tests.
  bool buggy_clear_all_reply_cache = false;
  /// Data-plane dedup horizon: how many recent (src, rid) read/write
  /// requests are remembered so a duplicated datagram does not spawn a
  /// second handler (and a second span) for the same operation. Clients use
  /// a fresh ephemeral port + fresh rid per operation, so a repeat of the
  /// pair can only be the same datagram delivered twice.
  std::size_t data_dedup_capacity = 1024;
  /// How long a kCloneReq handler waits for the source imd's ReadRep before
  /// reporting failure. No retries here: the cmd owns the retry loop and a
  /// failed clone is just dropped conservatively.
  Duration clone_read_timeout = millis(500);
  /// Optional trace-span sink (not owned). Null disables span recording.
  obs::SpanRecorder* spans = nullptr;
  /// Optional flight-recorder ring (not owned). Null disables recording.
  obs::FlightRecorder* flight = nullptr;
  /// Lease harvesting (DESIGN.md §14). Off by default: with lease_epochs
  /// false there is no lease loop, no renewal handling and no new wire
  /// traffic — the daemon is byte-identical to the paper's binary
  /// recruit/evict behaviour.
  bool lease_epochs = false;
  /// How long a granted or renewed lease lasts without another renewal.
  /// Must exceed several cmd keep-alive intervals, or healthy regions
  /// expire between renewals.
  Duration lease_ttl = seconds(10.0);
  /// Grace window between the expiry notice (cmd may still re-replicate /
  /// the client may still read) and the fence (bytes reclaimed, id fenced).
  /// Should cover ~3 cmd keep-alive ticks so a proactive copy can settle.
  Duration lease_grace = seconds(2.0);
  /// Lease bookkeeping tick: how often expiries are checked and fenced.
  Duration lease_check_interval = millis(250);
};

struct ImdMetrics {
  std::uint64_t allocs = 0;
  std::uint64_t alloc_failures = 0;
  /// Allocs refused because the request named a different epoch — a
  /// retransmit from before a crash/restart must not create state the
  /// caller would book under the old epoch (it could never free it).
  std::uint64_t stale_alloc_rejects = 0;
  /// Regions released by kAllocCancel (the cmd abandoned the alloc RPC).
  std::uint64_t allocs_cancelled = 0;
  std::uint64_t frees = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t writes_served = 0;
  std::uint64_t bad_region_requests = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  /// Alloc/free retransmits answered from the reply cache.
  std::uint64_t reply_cache_hits = 0;
  /// Cached replies dropped by the FIFO bound (or the test-only clear-all).
  std::uint64_t reply_cache_evictions = 0;
  /// Duplicate data-plane requests (same src endpoint + rid) dropped by the
  /// dedup window instead of spawning a second read/write handler.
  std::uint64_t dup_requests_dropped = 0;
  /// kCloneReq outcomes: regions filled from a live sibling replica vs.
  /// clones that failed (source unreachable, short transfer, region freed
  /// mid-clone) and were reported back as such.
  std::uint64_t clones_served = 0;
  std::uint64_t clone_failures = 0;
  /// Lease harvesting (lease_epochs on): regions reclaimed by the lease
  /// fence (expired or shrink victims) and the pool bytes they covered.
  std::uint64_t regions_reclaimed = 0;
  std::uint64_t bytes_reclaimed = 0;
  /// kLeaseRenewReq outcomes: leases extended vs. ids rejected because the
  /// region is fenced or unknown (shrink victims are neither: still live and
  /// readable, just no longer extended — the post-fence renewal rejects).
  std::uint64_t leases_renewed = 0;
  std::uint64_t lease_renew_rejects = 0;
};

class IdleMemoryDaemon {
 public:
  IdleMemoryDaemon(sim::Simulator& sim, net::Network& net, net::NodeId node,
                   std::uint64_t epoch, net::Endpoint cmd, ImdParams params);
  ~IdleMemoryDaemon();

  IdleMemoryDaemon(const IdleMemoryDaemon&) = delete;
  IdleMemoryDaemon& operator=(const IdleMemoryDaemon&) = delete;

  /// Binds ports, registers with the cmd, spawns the serving loops.
  void start();

  /// Cooperative shutdown: stops accepting work, waits for in-flight
  /// transfers, closes sockets. Awaitable by the rmd.
  sim::Co<void> stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] const ImdMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const PoolAllocator& pool() const { return pool_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  [[nodiscard]] const ImdParams& params() const { return params_; }
  /// Test hook: current reply-cache occupancy (bounded by the capacity).
  [[nodiscard]] std::size_t reply_cache_size() const {
    return reply_cache_.size();
  }

  /// Test hook: raw bytes of a region (materialized mode only).
  [[nodiscard]] const net::Buf* region_bytes(std::uint64_t region_id) const;

  /// Pool bytes currently backing regions (leak accounting in chaos tests).
  [[nodiscard]] Bytes64 allocated_bytes() const {
    return pool_.pool_size() - pool_.total_free();
  }

  /// Fault/leak-audit hook: ids and lengths of all live regions.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Bytes64>> region_list()
      const;

  /// Bulk protocol counters for every transfer this daemon served.
  [[nodiscard]] const net::BulkStats& bulk_stats() const { return bulk_stats_; }

  /// Incrementally-maintained pool occupancy (bytes backing live regions).
  /// The fuzz conservation oracle cross-checks this against region_list().
  [[nodiscard]] std::int64_t pool_used_bytes() const {
    return pool_used_.value();
  }

  /// Everything this daemon knows about itself, under "imd." names. This is
  /// also the kStatsReq reply body (serialized with to_json()).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  /// Lease harvesting (lease_epochs on): schedule just enough of the
  /// coldest regions for reclamation to bring the pool's live bytes under
  /// `target_used_bytes`. Victims get their lease capped at now +
  /// lease_grace, stop being renewable, and are announced to the cmd via
  /// kLeaseExpiryNotice so sole copies can be re-homed before the fence.
  /// Returns the bytes scheduled. No-op with lease_epochs off.
  Bytes64 begin_shrink(Bytes64 target_used_bytes);

  /// Lease test/oracle hooks: whether an id has been reclaimed and fenced,
  /// the full fenced set (ids never resurrect within an epoch), and a live
  /// region's current lease expiry (0 if unknown).
  [[nodiscard]] bool lease_fenced(std::uint64_t region_id) const {
    return fenced_.count(region_id) != 0;
  }
  [[nodiscard]] const std::set<std::uint64_t>& fenced_ids() const {
    return fenced_;
  }
  [[nodiscard]] SimTime region_lease_expiry(std::uint64_t region_id) const {
    auto it = regions_.find(region_id);
    return it == regions_.end() ? 0 : it->second.lease_expiry;
  }

 private:
  struct Region {
    Bytes64 pool_offset = 0;
    Bytes64 len = 0;
    net::Buf data;  // empty in phantom mode
    /// Contiguous bytes written from offset 0. Freshly allocated regions
    /// hold nothing; reads are only trustworthy below this mark. The read
    /// reply carries a "filled" flag so clients never mistake an allocated-
    /// but-never-written region for cached data.
    Bytes64 written_prefix = 0;
    /// Rid of the kAllocReq that created this region, so kAllocCancel can
    /// release a region whose alloc reply never reached the cmd.
    std::uint64_t alloc_rid = 0;
    /// Completed client writes to this region. Rides every ReadRep: the cmd
    /// snapshots it when cloning a replica and later compares generations to
    /// prove the clone missed no write before activating it.
    std::uint64_t write_gen = 0;
    /// Lease harvesting (lease_epochs on). last_access feeds the
    /// coldest-first shrink order; lease_expiry is the absolute fence time,
    /// pushed out by every renewal. expiry_noticed dedups the one-shot
    /// kLeaseExpiryNotice; shrink_victim regions stay readable but are no
    /// longer extended by renewals, so a keep-alive cannot un-schedule a
    /// pressure shrink while the cmd clones them away.
    SimTime last_access = 0;
    SimTime lease_expiry = 0;
    bool expiry_noticed = false;
    bool shrink_victim = false;
  };

  sim::Co<void> control_loop();
  sim::Co<void> data_loop();
  sim::Co<void> coalesce_loop();
  sim::Co<void> lease_loop();
  sim::Co<void> handle_read(net::Message req);
  sim::Co<void> handle_write(net::Message req);
  /// kCloneReq: fills a freshly allocated local region with the bytes of a
  /// live sibling replica via the data plane (kReadReq + bulk against the
  /// source imd), adopting the source's written prefix. Async because it
  /// performs a network transfer; duplicates of an in-flight rid are dropped
  /// (clones_inflight_) and completed ones replay from the reply cache.
  sim::Co<void> handle_clone(net::Message req);

  void handle_alloc(const net::Message& msg, net::Reader r);
  void handle_alloc_cancel(const net::Message& msg, net::Reader r);
  void handle_free(const net::Message& msg, net::Reader r);
  void handle_lease_renew(const net::Message& msg, net::Reader r);
  void send_expiry_notice(
      const std::vector<std::pair<std::uint64_t, Bytes64>>& regions);
  void reply_cached_or(const net::Message& msg, std::uint64_t rid,
                       net::Buf reply);
  void cache_reply(std::uint64_t rid, net::Buf reply);
  void handle_stats(const net::Message& msg);

  sim::Simulator& sim_;
  net::Network& net_;
  net::NodeId node_;
  std::uint64_t epoch_;
  net::Endpoint cmd_;
  ImdParams params_;
  ImdMetrics metrics_;
  net::BulkStats bulk_stats_;
  obs::Gauge pool_used_;
  obs::LatencyHistogram fill_latency_;   // client write -> bytes in the pool
  obs::LatencyHistogram flush_latency_;  // client read -> bytes on the wire

  PoolAllocator pool_;
  std::unordered_map<std::uint64_t, Region> regions_;
  std::uint64_t next_region_id_ = 1;

  // Reply cache so rid-retries of alloc/free are idempotent. Bounded by
  // params_.reply_cache_capacity with FIFO eviction of the oldest rid;
  // reply_order_ tracks insertion order.
  std::unordered_map<std::uint64_t, net::Buf> reply_cache_;
  std::deque<std::uint64_t> reply_order_;

  /// Recently-seen data-plane requests keyed (src node, src port, rid),
  /// bounded FIFO like the reply cache. See ImdParams::data_dedup_capacity.
  struct DataKey {
    net::NodeId node;
    net::Port port;
    std::uint64_t rid;
    friend auto operator<=>(const DataKey&, const DataKey&) = default;
  };
  bool data_request_is_duplicate(const net::Message& msg, std::uint64_t rid);
  std::set<DataKey> data_seen_;
  std::deque<DataKey> data_seen_order_;

  /// Rids of kCloneReq handlers still running, so a retransmit that arrives
  /// before the clone finishes does not spawn a twin transfer.
  std::set<std::uint64_t> clones_inflight_;

  /// Ids reclaimed by the lease fence. Region ids are never reused within
  /// an epoch, so membership is the no-resurrection invariant the lease
  /// oracle checks: a fenced id must never reappear in regions_. A free for
  /// a fenced id reports success (the bytes are already gone); reads,
  /// writes and renewals reject it.
  std::set<std::uint64_t> fenced_;

  std::unique_ptr<net::Socket> ctl_sock_;
  std::unique_ptr<net::Socket> data_sock_;
  bool running_ = false;
  bool stopping_ = false;
  sim::WaitGroup inflight_;
  sim::Channel<int> stop_ch_;        // wakes the coalesce loop on shutdown
  sim::Channel<int> lease_stop_ch_;  // wakes the lease loop on shutdown
};

}  // namespace dodo::core
