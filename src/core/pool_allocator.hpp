// First-fit pool allocator with periodic coalescing (paper §4.2).
//
// The idle memory daemon allocates one large pool at startup and never
// returns memory to the operating system: freed blocks are marked free and
// reused. Allocation is first-fit; adjacent free blocks are merged by a
// coalescing pass that the imd runs periodically (not on every free), which
// is exactly what the paper describes. bench_ablation_allocator measures the
// fragmentation consequences of that choice.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/units.hpp"

namespace dodo::core {

class PoolAllocator {
 public:
  explicit PoolAllocator(Bytes64 pool_size);

  /// First-fit allocation; returns the block's offset within the pool.
  std::optional<Bytes64> alloc(Bytes64 len);

  /// Marks the block at `offset` free (no merging). Returns false if the
  /// offset is not an allocated block.
  bool free(Bytes64 offset);

  /// Merges adjacent free blocks (the imd's periodic pass).
  void coalesce();

  [[nodiscard]] Bytes64 pool_size() const { return pool_size_; }
  [[nodiscard]] Bytes64 total_free() const { return total_free_; }
  [[nodiscard]] Bytes64 largest_free() const;
  [[nodiscard]] std::size_t free_block_count() const { return free_.size(); }
  [[nodiscard]] std::size_t allocated_block_count() const {
    return allocated_.size();
  }

  /// 0 = one contiguous free block; approaches 1 as free space shatters.
  [[nodiscard]] double external_fragmentation() const;

  /// Invariant check for property tests: blocks tile the pool, no overlap.
  [[nodiscard]] bool check_invariants() const;

 private:
  Bytes64 pool_size_;
  Bytes64 total_free_;
  std::map<Bytes64, Bytes64> free_;       // offset -> len, offset-ordered
  std::map<Bytes64, Bytes64> allocated_;  // offset -> len
};

}  // namespace dodo::core
