// The resource monitor daemon (rmd), paper §4.1.
//
// Runs on every participating workstation. Once a second it samples console
// (mouse/keyboard) activity and the process load — with the screen saver and
// the imd's own usage already discounted by the ActivitySource. A machine is
// idle when both console and processor have been quiet (load < 0.3) for five
// minutes. On the busy->idle transition it notifies the cmd and forks the
// idle memory daemon; on idle->busy it notifies the cmd and signals the imd,
// which finishes in-flight transfers and exits.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.hpp"
#include "core/activity.hpp"
#include "core/imd.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::core {

struct RmdParams {
  Duration sample_interval = seconds(1.0);
  Duration idle_threshold = seconds(5.0 * 60.0);  // "five minutes or more"
  double load_threshold = 0.3;
  Bytes64 lotsfree = 4 * 1024 * 1024;  // paging free list reserve
  double headroom_frac = 0.15;         // live file-cache headroom (§3.1)
  Bytes64 min_pool = 4 * 1024 * 1024;  // don't bother recruiting less
  /// Dedicated-cluster mode: the host counts as having been idle for the
  /// full threshold already at t=0, so recruitment is immediate.
  bool start_recruited = false;
  /// Optional trace-span sink (not owned). Null disables span recording.
  obs::SpanRecorder* spans = nullptr;
  /// Optional flight-recorder ring (not owned). Null disables recording.
  obs::FlightRecorder* flight = nullptr;
};

struct RmdMetrics {
  std::uint64_t recruitments = 0;
  std::uint64_t evictions = 0;
  /// Activity samples taken by the monitor loop.
  std::uint64_t samples = 0;
  /// Sample-level transitions (console/load state flipping between samples).
  std::uint64_t idle_to_busy = 0;
  std::uint64_t busy_to_idle = 0;
  /// Recruitments triggered by the idle streak outlasting idle_threshold —
  /// the rmd's refraction period before it trusts a quiet host (§4.1).
  std::uint64_t refraction_timeouts = 0;
  /// Recruitments skipped because the computed pool was below min_pool.
  std::uint64_t recruit_skips_small_pool = 0;
  /// Fault-injection hook invocations that actually changed state.
  std::uint64_t forced_evictions = 0;
  std::uint64_t forced_recruits = 0;
  /// Lease harvesting (lease_epochs on): pressure-level transitions
  /// signalled to the cmd, and rising-pressure samples that actually
  /// scheduled an incremental pool shrink.
  std::uint64_t pressure_signals = 0;
  std::uint64_t pressure_shrinks = 0;
};

class ResourceMonitor {
 public:
  ResourceMonitor(sim::Simulator& sim, net::Network& net, net::NodeId node,
                  net::Endpoint cmd, const ActivitySource& activity,
                  RmdParams params, ImdParams imd_template);
  ~ResourceMonitor();

  ResourceMonitor(const ResourceMonitor&) = delete;
  ResourceMonitor& operator=(const ResourceMonitor&) = delete;

  void start();
  sim::Co<void> stop();

  /// Fault-injection hook: the owner "returns" regardless of what the
  /// activity source says — evicts the imd (if any) and *holds* the host
  /// out of service so the monitor loop cannot re-recruit until
  /// force_recruit() releases it. Deterministic fault windows need the
  /// hold: a dedicated host would otherwise rejoin at the next sample.
  sim::Co<void> force_evict();

  /// Fault-injection hook: recruits immediately (epoch bump, fresh imd,
  /// re-registration with the cmd) and releases the force_evict() hold.
  void force_recruit();

  /// Fault-injection hook for the graded pressure signal (lease harvesting,
  /// DESIGN.md §14; no-op with lease_epochs off). kIdle clears the signal;
  /// kRising shrinks the recruited pool to `keep_frac` of its current live
  /// bytes, coldest regions first; kUrgent is the owner at the console —
  /// the paper's whole-daemon eviction, plus a force_evict()-style hold.
  sim::Co<void> force_pressure(PressureLevel level, double keep_frac);

  [[nodiscard]] PressureLevel pressure() const { return pressure_; }

  [[nodiscard]] bool recruited() const { return imd_ != nullptr; }
  [[nodiscard]] IdleMemoryDaemon* imd() { return imd_.get(); }
  [[nodiscard]] const RmdMetrics& metrics() const { return metrics_; }
  [[nodiscard]] std::uint64_t current_epoch() const { return epoch_counter_; }

  /// The monitor's own metrics under "rmd." names. The kRmdPort stats
  /// endpoint serves this merged with the imd's snapshot when recruited.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

 private:
  sim::Co<void> monitor_loop();
  sim::Co<void> stats_loop();
  void notify_cmd(bool idle);
  void set_pressure(PressureLevel level);
  void recruit();
  sim::Co<void> evict();

  sim::Simulator& sim_;
  net::Network& net_;
  net::NodeId node_;
  net::Endpoint cmd_;
  const ActivitySource& activity_;
  RmdParams params_;
  ImdParams imd_template_;
  RmdMetrics metrics_;

  std::unique_ptr<net::Socket> sock_;
  std::unique_ptr<net::Socket> stats_sock_;  // kRmdPort scrape endpoint
  std::unique_ptr<IdleMemoryDaemon> imd_;
  std::uint64_t epoch_counter_ = 0;
  bool running_ = false;
  bool stopping_ = false;
  bool held_out_ = false;  // force_evict() parked the host out of service
  PressureLevel pressure_ = PressureLevel::kIdle;
  sim::WaitGroup loops_;
  sim::Channel<int> stop_ch_;
};

}  // namespace dodo::core
