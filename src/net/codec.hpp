// Fixed-width little-endian wire codec for protocol headers.
//
// Deliberately boring: explicit widths, no varints, no reflection. Decoding
// is bounds-checked; running off the end marks the reader bad rather than
// throwing, and callers check ok() once after decoding a struct.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "net/message.hpp"

namespace dodo::net {

class Writer {
 public:
  explicit Writer(Buf& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void bytes(const std::uint8_t* data, std::size_t n) {
    out_.insert(out_.end(), data, data + n);
  }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Buf& out_;
};

class Reader {
 public:
  explicit Reader(const Buf& in) : in_(in) {}

  std::uint8_t u8() { return get_le<std::uint8_t>(); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str() {
    const auto n = u32();
    if (!check(n)) return {};
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

 private:
  template <typename T>
  T get_le() {
    if (!check(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<std::uint64_t>(in_[pos_ + i])
                              << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  bool check(std::size_t n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  const Buf& in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dodo::net
