#include "net/bulk.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/log.hpp"
#include "net/codec.hpp"

namespace dodo::net {

namespace {

enum class Kind : std::uint8_t {
  kReq = 1,     // sender -> receiver: total length, asks for credit
  kCredit = 2,  // receiver -> sender: window bytes
  kData = 3,    // sender -> receiver: one chunk
  kAck = 4,     // receiver -> sender: round complete, next base
  kNack = 5,    // receiver -> sender: missing seqs in current round
};

// Header layout: u8 kind, u64 xfer, then for the four *control* kinds a
// trace pair (u64 trace_id, u64 parent_span) mirroring the control-plane
// envelope, then kind-specific fields. kData deliberately omits the trace
// pair: at U-Net's 1472-byte datagrams 16 extra bytes per chunk measurably
// shrinks goodput, and both ends already hold the causal context from the
// RPC that initiated the transfer (plus kReq/kCredit for multi-chunk).
// kData: u64 seq, u64 nchunks, i64 offset, i64 chunk_len, i64 total_len
// kReq:  i64 total_len
// kCredit: i64 window
// kAck:  u64 next_base
// kNack: u32 count, count * u64 seq

struct Decoded {
  Kind kind{};
  std::uint64_t xfer = 0;
  obs::TraceContext trace;
  std::uint64_t seq = 0;
  std::uint64_t nchunks = 0;
  std::uint64_t next_base = 0;
  Bytes64 offset = 0;
  Bytes64 chunk_len = 0;
  Bytes64 total_len = 0;
  Bytes64 window = 0;
  std::vector<std::uint64_t> missing;
  bool ok = false;
};

Decoded decode(const Message& msg) {
  Decoded d;
  Reader r(msg.header);
  d.kind = static_cast<Kind>(r.u8());
  d.xfer = r.u64();
  if (d.kind != Kind::kData) {
    d.trace.trace_id = r.u64();
    d.trace.parent_span = r.u64();
  }
  switch (d.kind) {
    case Kind::kReq:
      d.total_len = r.i64();
      break;
    case Kind::kCredit:
      d.window = r.i64();
      break;
    case Kind::kData:
      d.seq = r.u64();
      d.nchunks = r.u64();
      d.offset = r.i64();
      d.chunk_len = r.i64();
      d.total_len = r.i64();
      break;
    case Kind::kAck:
      d.next_base = r.u64();
      break;
    case Kind::kNack: {
      const auto n = r.u32();
      d.missing.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        d.missing.push_back(r.u64());
      }
      break;
    }
    default:
      return d;
  }
  d.ok = r.ok();
  return d;
}

Buf encode_common(Kind kind, std::uint64_t xfer, obs::TraceContext ctx) {
  Buf h;
  Writer w(h);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(xfer);
  if (kind != Kind::kData) {
    w.u64(ctx.trace_id);
    w.u64(ctx.parent_span);
  }
  return h;
}

/// Room left for chunk payload once the data header is accounted for.
Bytes64 chunk_capacity(const NetParams& p) {
  constexpr Bytes64 kDataHeaderBytes = 1 + 8 + 8 + 8 + 8 + 8 + 8;
  const Bytes64 c = p.max_datagram - kDataHeaderBytes;
  assert(c > 0);
  return c;
}

/// Landing state for one scatter-gather receive: maps the transfer's logical
/// byte stream onto the caller's segment list and tracks, per segment, how
/// many logical bytes are still missing. Chunks are deduplicated by the
/// caller (have[seq]), so each logical byte is landed exactly once and
/// `remaining` hitting zero is a one-shot completion edge per segment.
struct Scatter {
  std::vector<ScatterSeg> segs;
  std::vector<std::uint8_t>* seg_done = nullptr;
  std::vector<Bytes64> start;      // logical start offset per segment
  std::vector<Bytes64> remaining;  // logical bytes not yet landed

  void init() {
    Bytes64 off = 0;
    start.resize(segs.size());
    remaining.resize(segs.size());
    for (std::size_t i = 0; i < segs.size(); ++i) {
      start[i] = off;
      remaining[i] = segs[i].size;
      off += segs[i].size;
    }
    if (seg_done != nullptr) seg_done->assign(segs.size(), 0);
  }

  /// Lands one newly accepted chunk covering logical [off, off+len). The
  /// payload's materialized bytes (possibly none, for phantom bodies) are
  /// copied straight into each overlapping segment; completion is tracked
  /// logically either way. Returns how many segments became complete.
  std::uint64_t land(Bytes64 off, Bytes64 len, const Message& msg) {
    std::uint64_t completed = 0;
    const bool phantom = msg.phantom_body();
    const auto avail = static_cast<Bytes64>(msg.body.size());
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const Bytes64 s_lo = start[i];
      const Bytes64 s_hi = s_lo + segs[i].size;
      const Bytes64 lo = std::max(off, s_lo);
      const Bytes64 hi = std::min(off + len, s_hi);
      if (lo >= hi) continue;
      if (!phantom && segs[i].data != nullptr) {
        const Bytes64 p_lo = lo - off;  // offset within the chunk payload
        if (p_lo < avail) {
          const Bytes64 n = std::min(hi - lo, avail - p_lo);
          std::copy_n(msg.body.begin() + static_cast<std::ptrdiff_t>(p_lo),
                      static_cast<std::size_t>(n),
                      segs[i].data + (lo - s_lo));
        }
      }
      remaining[i] -= hi - lo;
      if (remaining[i] == 0) {
        ++completed;
        if (seg_done != nullptr) (*seg_done)[i] = 1;
      }
    }
    return completed;
  }
};

/// Manual span handle for bulk_recv, where the span may only be opened once
/// the first datagram reveals the sender's trace context, and must close on
/// every co_return path (RAII over the coroutine frame).
struct LazySpan {
  obs::SpanRecorder* rec = nullptr;
  std::uint64_t id = 0;
  std::uint64_t trace = 0;

  void open(const char* name, obs::TraceContext parent) {
    if (rec == nullptr || id != 0) return;
    id = rec->begin(name, parent);
    trace = parent.trace_id != 0 ? parent.trace_id : id;
  }
  [[nodiscard]] obs::TraceContext ctx() const { return {trace, id}; }
  ~LazySpan() {
    if (rec != nullptr && id != 0) rec->end(id);
  }
};

}  // namespace

void BulkStats::export_into(obs::MetricsSnapshot& out,
                            const std::string& prefix) const {
  out.set_counter(prefix + "sends_started", sends_started.value());
  out.set_counter(prefix + "sends_completed", sends_completed.value());
  out.set_counter(prefix + "single_packet_sends", single_packet_sends.value());
  out.set_counter(prefix + "credit_requests", credit_requests.value());
  out.set_counter(prefix + "credit_renegotiations",
                  credit_renegotiations.value());
  out.set_counter(prefix + "rounds", rounds.value());
  out.set_counter(prefix + "chunks_sent", chunks_sent.value());
  out.set_counter(prefix + "chunks_retransmitted",
                  chunks_retransmitted.value());
  out.set_counter(prefix + "nacks_received", nacks_received.value());
  out.set_counter(prefix + "acks_received", acks_received.value());
  out.set_counter(prefix + "bytes_sent", bytes_sent.value());
  out.set_counter(prefix + "recvs_started", recvs_started.value());
  out.set_counter(prefix + "recvs_completed", recvs_completed.value());
  out.set_counter(prefix + "nacks_sent", nacks_sent.value());
  out.set_counter(prefix + "window_clamps", window_clamps.value());
  out.set_counter(prefix + "bytes_received", bytes_received.value());
  // Gated: endpoints that never scatter keep the pre-SG key set so their
  // exported JSON stays byte-identical per seed.
  if (sg_recvs.value() > 0 || sg_segments.value() > 0) {
    out.set_counter(prefix + "sg_recvs", sg_recvs.value());
    out.set_counter(prefix + "sg_segments", sg_segments.value());
  }
}

sim::Co<Status> bulk_send(Socket& sock, Endpoint dst, std::uint64_t xfer_id,
                          BodyView body, BulkParams params,
                          obs::TraceContext ctx) {
  auto& net = sock.network();
  const Bytes64 chunk = chunk_capacity(net.params());
  const Bytes64 total = body.size;
  const std::uint64_t nchunks = total <= 0
                                    ? 1
                                    : static_cast<std::uint64_t>(
                                          (total + chunk - 1) / chunk);
  BulkStats* const st = params.stats;
  if (st != nullptr) {
    st->sends_started.inc();
    if (nchunks == 1) st->single_packet_sends.inc();
  }
  obs::ScopedSpan span(params.spans, "bulk.send", ctx);
  // Datagrams carry the send span when recording, else the caller's context
  // unchanged — so the receiver joins the trace either way.
  const obs::TraceContext wire_ctx = span.id() != 0 ? span.ctx() : ctx;

  std::vector<bool> sent_once(nchunks, false);
  auto send_data = [&](std::uint64_t seq) {
    const Bytes64 off = static_cast<Bytes64>(seq) * chunk;
    const Bytes64 len = std::min(chunk, total - off);
    Buf h = encode_common(Kind::kData, xfer_id, wire_ctx);
    Writer w(h);
    w.u64(seq);
    w.u64(nchunks);
    w.i64(off);
    w.i64(len);
    w.i64(total);
    Buf payload;
    if (body.data != nullptr && len > 0) {
      payload.assign(body.data + off, body.data + off + len);
    }
    if (st != nullptr) {
      if (sent_once[seq]) {
        st->chunks_retransmitted.inc();
      } else {
        st->chunks_sent.inc();
      }
      st->bytes_sent.inc(static_cast<std::uint64_t>(len > 0 ? len : 0));
    }
    sent_once[seq] = true;
    sock.send(dst, std::move(h), std::move(payload), len > 0 ? len : 0);
  };

  // Multi-chunk transfers negotiate the receiver's window first (§4.4);
  // single-chunk transfers go straight to data.
  Bytes64 window = chunk;
  if (nchunks > 1) {
    int tries = 0;
    int req_sends = 0;
    for (;;) {
      if (st != nullptr) {
        st->credit_requests.inc();
        if (++req_sends > 1) st->credit_renegotiations.inc();
      }
      Buf h = encode_common(Kind::kReq, xfer_id, wire_ctx);
      Writer w(h);
      w.i64(total);
      sock.send(dst, std::move(h));
      auto reply = co_await sock.recv_for(params.ack_timeout);
      if (reply) {
        const Decoded d = decode(*reply);
        if (d.ok && d.xfer == xfer_id && d.kind == Kind::kCredit &&
            d.window >= chunk) {
          window = d.window;
          break;
        }
        continue;  // stray message; keep waiting within this try
      }
      if (++tries > params.max_retries) {
        co_return Status(Err::kTimeout, "bulk: no credit from receiver");
      }
    }
  }

  const std::uint64_t win_chunks =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(window / chunk));

  std::uint64_t base = 0;
  std::vector<std::uint64_t> missing;
  auto fill_round = [&](std::uint64_t from) {
    missing.clear();
    const std::uint64_t end = std::min(nchunks, from + win_chunks);
    for (std::uint64_t s = from; s < end; ++s) missing.push_back(s);
  };
  fill_round(base);

  int stalls = 0;
  std::size_t last_missing = missing.size() + 1;
  while (base < nchunks) {
    if (st != nullptr) st->rounds.inc();
    for (const auto seq : missing) send_data(seq);
    // The whole blast must clear the wire before the receiver can possibly
    // acknowledge; a fixed timeout shorter than that would trigger
    // spurious re-blasts of the entire round.
    const Duration blast_time =
        net.wire_time(chunk) * static_cast<Duration>(missing.size()) +
        net.send_cpu_time(chunk) * static_cast<Duration>(missing.size());
    // A late verdict is not a lost round: with several transfers sharing
    // this node's transmit link (a replicated mwrite fans a region to every
    // copy at once), the round drains in a multiple of blast_time. So a
    // timeout sends a datagram-sized credit probe instead of re-blasting
    // window bytes — re-blasting into an already-jammed link is how one
    // slow round turns into congestion collapse. If data really was lost,
    // the receiver's progress deadline NACKs exactly the missing chunks;
    // data retransmits happen only on that NACK, never on a bare timeout.
    bool reblast = false;
    while (!reblast) {
      auto reply = co_await sock.recv_for(params.ack_timeout + blast_time);
      if (!reply) {
        if (++stalls > params.max_retries) {
          co_return Status(Err::kTimeout, "bulk: receiver stopped responding");
        }
        if (st != nullptr) st->credit_requests.inc();
        Buf probe = encode_common(Kind::kReq, xfer_id, wire_ctx);
        Writer w(probe);
        w.i64(total);
        sock.send(dst, std::move(probe));
        continue;
      }
      const Decoded d = decode(*reply);
      if (!d.ok || d.xfer != xfer_id) continue;
      switch (d.kind) {
        case Kind::kAck:
          if (st != nullptr) st->acks_received.inc();
          if (d.next_base > base) {
            base = d.next_base;
            fill_round(base);
            stalls = 0;
            last_missing = missing.size() + 1;
            reblast = true;  // the next round's fresh data
          }
          break;  // duplicate ack: keep waiting
        case Kind::kNack:
          if (st != nullptr) st->nacks_received.inc();
          missing = d.missing;
          if (missing.empty()) {
            // Defensive: an empty NACK would livelock the blast loop.
            fill_round(base);
          }
          if (missing.size() < last_missing) {
            last_missing = missing.size();
            stalls = 0;
          } else if (++stalls > params.max_retries) {
            co_return Status(Err::kTimeout, "bulk: no forward progress");
          }
          reblast = true;
          break;
        case Kind::kCredit:
          // Probe answered: the receiver is alive and still waiting on the
          // wire to drain. Keep waiting; stalls stays, so patience is
          // bounded even against a receiver that only ever answers probes.
          break;
        default:
          break;
      }
    }
  }
  if (st != nullptr) st->sends_completed.inc();
  co_return Status::ok();
}

namespace {

/// Shared receive loop for bulk_recv and bulk_recv_sg: `sg == nullptr`
/// materializes the transfer into result.data (the classic path, byte for
/// byte unchanged); otherwise chunks land straight into the scatter
/// segments. Everything the wire can observe is common code.
sim::Co<BulkRecvResult> bulk_recv_impl(Socket& sock, std::uint64_t xfer_id,
                                       BulkParams params,
                                       obs::TraceContext ctx, Scatter* sg) {
  auto& net = sock.network();
  const Bytes64 chunk = chunk_capacity(net.params());

  BulkStats* const st = params.stats;
  if (st != nullptr) {
    st->recvs_started.inc();
    // A window smaller than one chunk cannot make progress; the credit
    // grant below renegotiates it up to a single chunk.
    if (params.window_bytes < chunk) st->window_clamps.inc();
  }
  LazySpan span{params.spans};
  // With a local parent, open immediately; otherwise wait for the first
  // datagram and adopt the sender's context (see below).
  if (ctx.traced()) span.open("bulk.recv", ctx);

  BulkRecvResult result;
  Bytes64 total = -1;
  std::uint64_t nchunks = 0;
  std::uint64_t base = 0;
  std::uint64_t round_end = 0;
  std::uint64_t win_chunks =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     params.window_bytes / chunk));
  std::vector<bool> have;  // per-chunk received flags
  bool materialized = true;
  Endpoint peer{};
  bool know_peer = false;

  auto send_ack = [&] {
    Buf h = encode_common(Kind::kAck, xfer_id, span.ctx());
    Writer w(h);
    w.u64(base);
    sock.send(peer, std::move(h));
  };
  auto send_nack = [&] {
    if (st != nullptr) st->nacks_sent.inc();
    Buf h = encode_common(Kind::kNack, xfer_id, span.ctx());
    Writer w(h);
    std::vector<std::uint64_t> missing;
    for (std::uint64_t s = base; s < round_end; ++s) {
      if (!have[s]) missing.push_back(s);
    }
    w.u32(static_cast<std::uint32_t>(missing.size()));
    for (const auto s : missing) w.u64(s);
    sock.send(peer, std::move(h));
  };
  auto start_round = [&] {
    round_end = std::min(nchunks, base + win_chunks);
  };
  auto round_complete = [&] {
    for (std::uint64_t s = base; s < round_end; ++s) {
      if (!have[s]) return false;
    }
    return true;
  };

  // The receive-gap timer is a deadline on transfer PROGRESS, re-armed only
  // by datagrams that advance the transfer: a credit request, a newly
  // accepted in-window chunk, or a stale chunk that provoked a re-ACK.
  // Duplicates of chunks already held, frames beyond the window, foreign
  // transfers, and corrupt datagrams do not move it — a sender re-blasting
  // bytes we hold is making no progress, and the timely targeted NACK
  // (listing exactly what is missing) is what stops it from re-blasting the
  // whole round again on its own coarser timeout. Crucially the deadline is
  // absolute, not a per-recv timeout: a steady stream of useless datagrams
  // must not keep resetting the clock.
  //
  // The gap deadline backs off exponentially within a round. A quiet gap can
  // mean loss (the blast arrived with holes — the chunks are gone and only a
  // NACK revives them) or congestion (the blast is intact but queued behind
  // sibling transfers sharing the sender's link — a replicated mwrite fans K
  // copies out at once, so our whole round can sit (K-1) blast-times deep in
  // the transmit queue). The receiver cannot tell the two apart, so it NACKs
  // fast the first time — loss recovery stays one gap away — and then waits
  // twice as long before each repeat NACK for the same round. Without the
  // backoff every spurious NACK triggers a full re-blast into the very queue
  // that caused it, and the amplification compounds until the link collapses.
  // Progress (the round advancing) resets the backoff; probes do not.
  auto& simclock = net.simulator();
  constexpr Duration kMaxGapBackoff = 8;  // cap, in multiples of the base gap
  int idle = 0;
  Duration gap = params.recv_gap_timeout;
  SimTime armed_at = simclock.now();
  for (;;) {
    const Duration remaining = armed_at + gap - simclock.now();
    if (remaining <= 0) {
      // A full gap elapsed with no progress.
      if (++idle > params.max_retries) {
        result.status =
            Status(Err::kTimeout, "bulk: sender stopped transmitting");
        co_return result;
      }
      if (know_peer && nchunks > 0) send_nack();
      gap = std::min(gap * 2, params.recv_gap_timeout * kMaxGapBackoff);
      armed_at = simclock.now();
      continue;
    }
    auto msg = co_await sock.recv_for(remaining);
    if (!msg) continue;  // deadline reached; handled above
    const Decoded d = decode(*msg);
    if (!d.ok || d.xfer != xfer_id) continue;
    peer = msg->src;
    know_peer = true;
    // Adopt the sender's trace on first contact (no-op once open, or when
    // the sender is untraced too).
    if (d.trace.traced()) span.open("bulk.recv", d.trace);

    switch (d.kind) {
      case Kind::kReq: {
        if (total < 0) {
          total = d.total_len;
          nchunks = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>((total + chunk - 1) / chunk));
          have.assign(nchunks, false);
          start_round();
        }
        idle = 0;
        armed_at = simclock.now();
        Buf h = encode_common(Kind::kCredit, xfer_id, span.ctx());
        Writer w(h);
        w.i64(static_cast<Bytes64>(win_chunks) * chunk);
        sock.send(peer, std::move(h));
        break;
      }
      case Kind::kData: {
        if (total < 0) {
          total = d.total_len;
          nchunks = std::max<std::uint64_t>(1, d.nchunks);
          have.assign(nchunks, false);
          start_round();
        }
        if (d.seq >= nchunks) break;
        if (d.seq < base) {
          // Stale retransmit from an already-completed round: the sender
          // missed our ACK. Re-acknowledge so it advances — it is alive and
          // waiting on us, so the gap timer re-arms too.
          idle = 0;
          armed_at = simclock.now();
          send_ack();
          break;
        }
        if (d.seq >= round_end) break;  // beyond window; drop
        if (!have[d.seq]) {
          idle = 0;
          armed_at = simclock.now();
          have[d.seq] = true;
          if (st != nullptr) {
            st->bytes_received.inc(
                static_cast<std::uint64_t>(d.chunk_len > 0 ? d.chunk_len : 0));
          }
          if (sg != nullptr) {
            if (msg->phantom_body()) materialized = false;
            const Bytes64 len = std::min(d.chunk_len, total - d.offset);
            const std::uint64_t done = sg->land(d.offset, len, *msg);
            if (st != nullptr) st->sg_segments.inc(done);
          } else if (msg->phantom_body()) {
            materialized = false;
          } else if (materialized && total > 0) {
            const auto off = static_cast<std::size_t>(d.offset);
            const auto len =
                std::min<std::size_t>(msg->body.size(),
                                      static_cast<std::size_t>(total) - off);
            if (result.data.empty()) {
              result.data.assign(static_cast<std::size_t>(total), 0);
            }
            std::copy_n(msg->body.begin(), len, result.data.begin() + off);
          }
        }
        if (round_complete()) {
          base = round_end;
          gap = params.recv_gap_timeout;  // progress: restore fast NACKs
          send_ack();
          if (base >= nchunks) {
            result.size = total < 0 ? 0 : total;
            if (!materialized) result.data.clear();
            result.status = Status::ok();
            if (st != nullptr) st->recvs_completed.inc();
            co_return result;
          }
          start_round();
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

sim::Co<BulkRecvResult> bulk_recv(Socket& sock, std::uint64_t xfer_id,
                                  BulkParams params, obs::TraceContext ctx) {
  co_return co_await bulk_recv_impl(sock, xfer_id, params, ctx, nullptr);
}

sim::Co<BulkRecvResult> bulk_recv_sg(Socket& sock, std::uint64_t xfer_id,
                                     std::vector<ScatterSeg> segs,
                                     std::vector<std::uint8_t>* seg_done,
                                     BulkParams params, obs::TraceContext ctx) {
  Scatter sg;
  sg.segs = std::move(segs);
  sg.seg_done = seg_done;
  sg.init();
  if (params.stats != nullptr) params.stats->sg_recvs.inc();
  co_return co_await bulk_recv_impl(sock, xfer_id, params, ctx, &sg);
}

}  // namespace dodo::net
