#include "net/transport.hpp"

#include <cassert>
#include <cstdlib>

#include "common/log.hpp"

namespace dodo::net {

namespace {
constexpr Port kFirstEphemeralPort = 32768;
}  // namespace

NetParams NetParams::udp() {
  NetParams p;
  p.name = "udp";
  p.max_datagram = 60 * 1024;
  p.frag_size = 1500;
  p.frame_overhead = 58;
  // Linux 2.0 on a 200 MHz Pentium Pro: sendto/recvfrom kernel crossing and
  // UDP/IP processing per datagram, IP fragmentation per 1500 B, and a
  // kernel<->user copy on each side (~80 MB/s memcpy on that hardware).
  p.per_dgram_send_cpu = micros(70);
  p.per_frag_send_cpu = micros(13);
  p.per_dgram_recv_cpu = micros(70);
  p.per_frag_recv_cpu = micros(13);
  p.per_byte_send_cpu_ns = 12.0;
  p.per_byte_recv_cpu_ns = 12.0;
  p.bandwidth_Bps = 12.5e6;
  p.propagation = micros(15);
  return p;
}

NetParams NetParams::unet() {
  NetParams p;
  p.name = "unet";
  p.max_datagram = 1472;
  p.frag_size = 1472;
  p.frame_overhead = 58;
  // U-Net: user-level access to the NIC, no kernel crossing; ~30 us
  // application-to-application small-message one-way latency as reported by
  // von Eicken et al for Fast Ethernet U-Net.
  p.per_dgram_send_cpu = micros(8);
  p.per_frag_send_cpu = 0;
  p.per_dgram_recv_cpu = micros(8);
  p.per_frag_recv_cpu = 0;
  p.per_byte_send_cpu_ns = 4.0;
  p.per_byte_recv_cpu_ns = 4.0;
  p.bandwidth_Bps = 12.5e6;
  p.propagation = micros(10);
  return p;
}

NetParams NetParams::unet_batched() {
  NetParams p = unet();
  p.name = "unet";
  // ~23 KB per simulated datagram: small enough that several chunks sit in
  // a bulk window and pipeline on the wire (CPU of chunk i+1 overlaps the
  // wire time of chunk i, as with real back-to-back packets), large enough
  // to cut event counts by ~16x.
  p.max_datagram = 16 * 1472;
  // Per-packet costs move to the per-fragment slots; fragments are 1472 B,
  // so each simulated datagram charges exactly what its constituent real
  // packets would have.
  p.per_frag_send_cpu = p.per_dgram_send_cpu;
  p.per_frag_recv_cpu = p.per_dgram_recv_cpu;
  p.per_dgram_send_cpu = 0;
  p.per_dgram_recv_cpu = 0;
  return p;
}

Network::Network(sim::Simulator& sim, NetParams params, std::size_t num_nodes)
    : sim_(sim),
      params_(std::move(params)),
      loss_rng_(sim.rng().fork(0x6e657477u)),  // "netw"
      tx_free_(num_nodes, 0),
      rx_free_(num_nodes, 0),
      node_up_(num_nodes, true),
      next_ephemeral_(num_nodes, kFirstEphemeralPort) {}

std::unique_ptr<Socket> Network::open(NodeId node, Port port) {
  assert(node < node_up_.size());
  const Endpoint ep{node, port};
  assert(bound_.find(ep) == bound_.end() && "port already bound");
  auto sock = std::unique_ptr<Socket>(new Socket(*this, ep));
  bound_[ep] = sock.get();
  return sock;
}

std::unique_ptr<Socket> Network::open_ephemeral(NodeId node) {
  assert(node < node_up_.size());
  Port port = next_ephemeral_[node]++;
  while (bound_.count(Endpoint{node, port}) != 0) {
    port = next_ephemeral_[node]++;
  }
  return open(node, port);
}

void Network::set_node_up(NodeId node, bool up) {
  assert(node < node_up_.size());
  node_up_[node] = up;
}

bool Network::node_up(NodeId node) const {
  return node < node_up_.size() && node_up_[node];
}

namespace {
std::pair<NodeId, NodeId> normalize_link(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

void Network::set_link_cut(NodeId a, NodeId b, bool cut) {
  if (cut) {
    cut_links_.insert(normalize_link(a, b));
  } else {
    cut_links_.erase(normalize_link(a, b));
  }
}

bool Network::link_cut(NodeId a, NodeId b) const {
  return cut_links_.count(normalize_link(a, b)) != 0;
}

Duration Network::send_cpu_time(Bytes64 payload) const {
  const Bytes64 frags = params_.fragments_of(payload);
  return params_.per_dgram_send_cpu + frags * params_.per_frag_send_cpu +
         static_cast<Duration>(params_.per_byte_send_cpu_ns *
                               static_cast<double>(payload));
}

Duration Network::recv_cpu_time(Bytes64 payload) const {
  const Bytes64 frags = params_.fragments_of(payload);
  return params_.per_dgram_recv_cpu + frags * params_.per_frag_recv_cpu +
         static_cast<Duration>(params_.per_byte_recv_cpu_ns *
                               static_cast<double>(payload));
}

Duration Network::wire_time(Bytes64 payload) const {
  const Bytes64 frags = params_.fragments_of(payload);
  const Bytes64 on_wire = payload + frags * params_.frame_overhead;
  return transfer_time(on_wire, params_.bandwidth_Bps);
}

void Network::send(Message msg) {
  const Bytes64 payload = msg.wire_bytes();
  assert(payload <= params_.max_datagram && "datagram exceeds transport MTU");

  ++metrics_.datagrams_sent;
  metrics_.payload_bytes_sent += static_cast<std::uint64_t>(payload);

  if (!node_up(msg.src.node) || !node_up(msg.dst.node)) {
    ++metrics_.datagrams_dropped;
    return;
  }
  if (!cut_links_.empty() && link_cut(msg.src.node, msg.dst.node)) {
    ++metrics_.datagrams_cut;
    return;
  }
  if (params_.loss_rate > 0.0 && loss_rng_.chance(params_.loss_rate)) {
    ++metrics_.datagrams_lost;
    return;
  }
  if (drop_filter_ && drop_filter_(msg)) {
    ++metrics_.datagrams_lost;
    return;
  }

  const SimTime now = sim_.now();
  const SimTime ready = now + send_cpu_time(payload);
  const SimTime depart = ready > tx_free_[msg.src.node]
                             ? ready
                             : tx_free_[msg.src.node];
  const SimTime arrive = depart + wire_time(payload) + params_.propagation;
  tx_free_[msg.src.node] = depart + wire_time(payload);

  // The receive link is claimed at ARRIVAL time, not send time: with several
  // senders blasting one node concurrently (striped fan-out reads), frames
  // interleave on the receiver in arrival order. Reserving rx_free_ here at
  // send() time would let the first caller's whole blast pre-empt frames of
  // a concurrent sender that physically land earlier, serializing transfers
  // that should overlap. So each datagram is scheduled at its wire-arrival
  // instant, and only then claims the receiver's CPU slot.
  //
  // Capture by value: the socket may close before delivery, so we re-resolve
  // the destination at delivery time, exactly like a NIC handing a frame to
  // a port nobody listens on.
  auto schedule_arrival = [this, payload](SimTime at, Message m) {
    sim_.schedule(at, [this, payload, m = std::move(m)]() mutable {
      const SimTime rx_start = sim_.now() > rx_free_[m.dst.node]
                                   ? sim_.now()
                                   : rx_free_[m.dst.node];
      const SimTime deliver_at = rx_start + recv_cpu_time(payload);
      rx_free_[m.dst.node] = deliver_at;
      sim_.schedule(deliver_at, [this, m = std::move(m)]() mutable {
        if (!node_up(m.dst.node)) {
          ++metrics_.datagrams_dropped;
          return;
        }
        auto it = bound_.find(m.dst);
        if (it == bound_.end()) {
          ++metrics_.datagrams_dropped;
          DODO_DEBUG("net", "drop to closed port %s",
                     to_string(m.dst).c_str());
          return;
        }
        ++metrics_.datagrams_delivered;
        if (delivery_probe_) delivery_probe_(m);
        it->second->deliver(std::move(m));
      });
    });
  };

  if (dup_filter_ && dup_filter_(msg)) {
    // Deliver an identical copy back-to-back after the original, occupying
    // its own slot on the receive link like any real duplicate frame. The
    // original is scheduled first at the same arrival instant, so FIFO event
    // order keeps original-then-duplicate on the receive link.
    ++metrics_.datagrams_duplicated;
    Message dup = msg;
    schedule_arrival(arrive, std::move(msg));
    schedule_arrival(arrive, std::move(dup));
    return;
  }
  schedule_arrival(arrive, std::move(msg));
}

void Network::unbind(const Endpoint& ep) { bound_.erase(ep); }

Socket::~Socket() {
  if (net_ != nullptr) net_->unbind(local_);
}

void Socket::send(const Endpoint& dst, Buf header, Buf body,
                  Bytes64 body_size) {
  Message msg;
  msg.src = local_;
  msg.dst = dst;
  msg.header = std::move(header);
  msg.body = std::move(body);
  msg.body_size =
      body_size >= 0 ? body_size : static_cast<Bytes64>(msg.body.size());
  assert(msg.body_size >= static_cast<Bytes64>(msg.body.size()));
  net_->send(std::move(msg));
}

}  // namespace dodo::net
