// Bulk data transfer protocol (paper §4.4).
//
// Memory regions can be arbitrarily large while datagrams are bounded
// (~1500 B for U-Net, ~60 KB for UDP), so transfers are packetized with
// sequence numbers. The sender first negotiates the space available at the
// receiver, then "blasts" as many packets as fit in that window and waits.
// The receiver waits for that many packets or a timeout; on timeout it sends
// a *selective NACK* listing the missing sequence numbers. ACKs advance the
// window. Single-packet transfers skip the negotiation.
//
// Each bulk exchange runs on a dedicated ephemeral socket pair, so there is
// no cross-transfer multiplexing; the xfer id is carried anyway as a
// tripwire against misrouted datagrams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/task.hpp"

namespace dodo::net {

/// Protocol-level counters for one endpoint's bulk transfers. Each owning
/// component (an imd, a client) keeps its own instance and points its
/// BulkParams at it, so the counters aggregate over every transfer that
/// endpoint participates in — sends and receives both.
struct BulkStats {
  // Sender side.
  obs::Counter sends_started;
  obs::Counter sends_completed;
  obs::Counter single_packet_sends;  // fast path: credit negotiation skipped
  obs::Counter credit_requests;      // kReq datagrams put on the wire
  obs::Counter credit_renegotiations;  // kReq re-sent (credit lost/timed out)
  obs::Counter rounds;               // window blasts issued
  obs::Counter chunks_sent;          // first transmissions
  obs::Counter chunks_retransmitted;
  obs::Counter nacks_received;
  obs::Counter acks_received;
  obs::Counter bytes_sent;
  // Receiver side.
  obs::Counter recvs_started;
  obs::Counter recvs_completed;
  obs::Counter nacks_sent;
  obs::Counter window_clamps;  // window_bytes < one chunk, renegotiated up
  obs::Counter bytes_received;
  // Scatter-gather receives (the zero-copy batched data path). Exported
  // only when nonzero so endpoints that never scatter keep their snapshot
  // key set — and their exported JSON — byte-identical to pre-SG builds.
  obs::Counter sg_recvs;     // bulk_recv_sg calls started
  obs::Counter sg_segments;  // landing segments fully filled in place

  /// Exports every counter into `out` under `prefix` (e.g. "imd.bulk.").
  void export_into(obs::MetricsSnapshot& out, const std::string& prefix) const;
};

struct BulkParams {
  /// Receiver window ("the amount of space available at the receiver").
  Bytes64 window_bytes = 1024 * 1024;
  /// Receiver: max quiet time within a round before it NACKs.
  Duration recv_gap_timeout = millis(20);
  /// Sender: max wait for a CREDIT/ACK/NACK (beyond the round's own wire
  /// time) before probing the receiver with a credit request. Data is only
  /// re-sent when the receiver NACKs; a bare timeout never re-blasts.
  Duration ack_timeout = millis(40);
  /// Rounds without forward progress before the transfer is abandoned.
  int max_retries = 8;
  /// Optional protocol counters, owned by the endpoint (not by the params
  /// copy). Null disables accounting.
  BulkStats* stats = nullptr;
  /// Optional span recorder: bulk_send opens a "bulk.send" span (child of
  /// the ctx it is given), bulk_recv a "bulk.recv" span. Null disables.
  obs::SpanRecorder* spans = nullptr;
};

/// A borrowed view of the bytes to send. `data == nullptr` sends a phantom
/// body: timing and protocol behaviour are identical, but no bytes are
/// materialized (used by paper-scale benchmarks).
struct BodyView {
  const std::uint8_t* data = nullptr;
  Bytes64 size = 0;
};

struct BulkRecvResult {
  Status status;
  Buf data;        // empty when the sender used a phantom body
  Bytes64 size = 0;  // logical size actually transferred
};

/// Sends `body` to `dst`. Returns kOk once the receiver has acknowledged
/// every packet, kTimeout if progress stalls for max_retries rounds.
/// `ctx` is the causal parent: it rides every datagram of the exchange, so
/// the receiving side parents its span to this transfer's trace.
sim::Co<Status> bulk_send(Socket& sock, Endpoint dst, std::uint64_t xfer_id,
                          BodyView body, BulkParams params = {},
                          obs::TraceContext ctx = {});

/// Receives one bulk transfer on `sock` (from whoever contacts it first).
/// If `ctx` is untraced, the receiver adopts the context carried by the
/// first datagram of the exchange (how a write-side imd joins the client's
/// trace even though the client initiates the bulk push).
sim::Co<BulkRecvResult> bulk_recv(Socket& sock, std::uint64_t xfer_id,
                                  BulkParams params = {},
                                  obs::TraceContext ctx = {});

/// One landing segment of a scatter-gather receive. The transfer's logical
/// byte stream maps across the segment list in order: segment k covers
/// logical offsets [sum(size_0..k-1), sum(size_0..k)). `data == nullptr`
/// discards that range — the receive-side analogue of a phantom body.
struct ScatterSeg {
  std::uint8_t* data = nullptr;
  Bytes64 size = 0;
};

/// bulk_recv variant that lands chunk payloads directly in the caller's
/// buffers with zero intermediate copies. Wire behaviour (credit grants,
/// ACK/NACK cadence, gap deadlines) is identical to bulk_recv — only the
/// landing differs, so a capture of the datagram stream cannot tell the two
/// apart. Bytes beyond sum(segs[i].size) are discarded. `seg_done`, when
/// non-null, is reset to segs.size() zeros and each entry set to 1 the
/// moment that segment's full byte range has arrived — the per-segment
/// completion hook fragment-granular degradation builds on. On success
/// `result.data` stays empty (the bytes are already in place) and
/// `result.size` reports the logical transfer size.
sim::Co<BulkRecvResult> bulk_recv_sg(Socket& sock, std::uint64_t xfer_id,
                                     std::vector<ScatterSeg> segs,
                                     std::vector<std::uint8_t>* seg_done,
                                     BulkParams params = {},
                                     obs::TraceContext ctx = {});

}  // namespace dodo::net
