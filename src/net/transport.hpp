// Simulated cluster network: switched full-duplex Ethernet with two
// calibrated NIC/protocol timing models (UDP/IP and U-Net), per §4/§5 of the
// paper.
//
// Timing model per datagram:
//   depart  = max(now + send_cpu, tx_free[src]) ; tx link serializes
//   arrive  = depart + wire_time + propagation
//   deliver = max(arrive, rx_free[dst]) + recv_cpu ; rx link serializes
// where send/recv CPU include a per-datagram cost, a per-fragment cost
// (UDP datagrams fragment at 1500 B on the wire), and a per-byte copy cost
// (kernel copies for UDP; much cheaper for user-level U-Net).
//
// Datagrams to closed ports or down nodes vanish, exactly like UDP: all
// loss/timeout handling lives in the protocols above (bulk transfer NACKs,
// RPC retries), as in the real system.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/address.hpp"
#include "net/message.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace dodo::net {

/// Timing parameters for one transport flavour.
struct NetParams {
  std::string name;
  Bytes64 max_datagram = 0;     // largest payload send() accepts
  Bytes64 frag_size = 1500;     // wire fragmentation unit
  Bytes64 frame_overhead = 58;  // header bytes per fragment on the wire
  Duration per_dgram_send_cpu = 0;
  Duration per_frag_send_cpu = 0;
  Duration per_dgram_recv_cpu = 0;
  Duration per_frag_recv_cpu = 0;
  double per_byte_send_cpu_ns = 0.0;  // copy cost, ns per payload byte
  double per_byte_recv_cpu_ns = 0.0;
  double bandwidth_Bps = 12.5e6;  // 100 Mb/s Fast Ethernet
  Duration propagation = 0;
  double loss_rate = 0.0;  // per-datagram drop probability

  /// UDP/IP on Linux 2.0 over Fast Ethernet (paper's UDP configuration).
  /// Datagrams up to ~60 KB, fragmented at 1500 B; kernel crossing per
  /// datagram plus per-fragment IP processing plus two kernel copies.
  static NetParams udp();

  /// U-Net user-level networking (paper's fast path): 1472-byte messages,
  /// no kernel crossing, single user-space copy.
  static NetParams unet();

  /// Timing-equivalent U-Net profile for large simulations: one simulated
  /// datagram stands in for up to ~120 real U-Net packets, with the per-
  /// packet CPU and wire costs charged through the per-fragment accounting.
  /// Event counts drop by ~100x; end-to-end transfer times are identical to
  /// within the window-protocol's ACK granularity. Packet-level tests use
  /// unet(); paper-scale benchmarks use this.
  static NetParams unet_batched();

  [[nodiscard]] Bytes64 fragments_of(Bytes64 payload) const {
    if (payload <= 0) return 1;
    return (payload + frag_size - 1) / frag_size;
  }
};

struct NetMetrics {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagrams_lost = 0;      // random loss injection
  std::uint64_t datagrams_dropped = 0;   // closed port / down node
  std::uint64_t datagrams_cut = 0;       // severed link (fault injection)
  std::uint64_t datagrams_duplicated = 0;  // dup-filter injected copies
  std::uint64_t payload_bytes_sent = 0;
};

class Socket;

class Network {
 public:
  Network(sim::Simulator& sim, NetParams params, std::size_t num_nodes);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Binds a socket to a well-known port. Aborts if the port is taken.
  std::unique_ptr<Socket> open(NodeId node, Port port);

  /// Binds a socket to a fresh ephemeral port on `node`.
  std::unique_ptr<Socket> open_ephemeral(NodeId node);

  /// Nodes that are "down" silently eat traffic in both directions.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Fault-injection hook: changes the uniform per-datagram drop probability
  /// at runtime (correlated loss bursts raise it for a window, then restore
  /// the base rate). The loss RNG stream is unaffected, so a run with a
  /// burst diverges from the fault-free run only inside the burst window.
  void set_loss_rate(double rate) { params_.loss_rate = rate; }

  /// Fault-injection hook: severs (or restores) the bidirectional link
  /// between two nodes. Datagrams on a cut link vanish like UDP on a
  /// partitioned switch; both nodes stay reachable from everyone else.
  void set_link_cut(NodeId a, NodeId b, bool cut);
  [[nodiscard]] bool link_cut(NodeId a, NodeId b) const;

  /// Oracle hook: invoked on every datagram actually handed to a bound
  /// socket (after loss/cut/down filtering), before the socket sees it. The
  /// fuzz harness evaluates its cheap always-on invariants here. The probe
  /// must not send, close sockets, or otherwise mutate the network. Pass an
  /// empty function to uninstall.
  void set_delivery_probe(std::function<void(const Message&)> probe) {
    delivery_probe_ = std::move(probe);
  }

  /// Test-only hook: a predicate consulted right before a datagram would be
  /// delivered; returning true drops it (counted as a loss). Unlike
  /// loss_rate this is deterministic and content-aware, so a test can
  /// surgically drop, say, specific bulk DATA sequence numbers to force a
  /// selective NACK. Pass an empty function to uninstall.
  void set_drop_filter(std::function<bool(const Message&)> filter) {
    drop_filter_ = std::move(filter);
  }

  /// Test-only hook: a predicate consulted on each datagram that will be
  /// delivered; returning true delivers a SECOND copy immediately after the
  /// first (back-to-back on the receive link), modelling UDP duplicate
  /// delivery. Deterministic and content-aware, like set_drop_filter. Used
  /// to prove the daemons' dedup/replay paths open no duplicate spans and
  /// execute no duplicate work. Pass an empty function to uninstall.
  void set_dup_filter(std::function<bool(const Message&)> filter) {
    dup_filter_ = std::move(filter);
  }

  [[nodiscard]] const NetParams& params() const { return params_; }
  [[nodiscard]] NetMetrics& metrics() { return metrics_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Computes the one-way CPU+wire cost components for a payload size;
  /// exposed for the calibration tests.
  [[nodiscard]] Duration send_cpu_time(Bytes64 payload) const;
  [[nodiscard]] Duration recv_cpu_time(Bytes64 payload) const;
  [[nodiscard]] Duration wire_time(Bytes64 payload) const;

 private:
  friend class Socket;

  void send(Message msg);
  void unbind(const Endpoint& ep);

  sim::Simulator& sim_;
  NetParams params_;
  Rng loss_rng_;
  NetMetrics metrics_;
  std::vector<SimTime> tx_free_;
  std::vector<SimTime> rx_free_;
  std::vector<bool> node_up_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;  // normalized (lo, hi)
  std::vector<Port> next_ephemeral_;
  std::unordered_map<Endpoint, Socket*, EndpointHash> bound_;
  std::function<void(const Message&)> delivery_probe_;
  std::function<bool(const Message&)> drop_filter_;
  std::function<bool(const Message&)> dup_filter_;
};

/// An open datagram endpoint. Closing (destroying) the socket unbinds it;
/// in-flight datagrams addressed to it are dropped, which is exactly how the
/// paper's daemons disappear when a workstation is reclaimed.
class Socket {
 public:
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] Endpoint local() const { return local_; }

  /// Sends a datagram. Payload larger than params().max_datagram aborts:
  /// packetization is the bulk protocol's job, not the transport's.
  void send(const Endpoint& dst, Buf header, Buf body = {},
            Bytes64 body_size = -1);

  /// Awaitable receive.
  [[nodiscard]] auto recv() { return inbox_.recv(); }
  /// Awaitable receive with timeout (std::nullopt on timeout).
  [[nodiscard]] auto recv_for(Duration d) { return inbox_.recv_for(d); }
  /// Non-blocking receive.
  std::optional<Message> try_recv() { return inbox_.try_recv(); }

  /// Delivers a message into this socket's inbox directly, bypassing the
  /// network and its timing (used for same-process control sentinels such
  /// as the rmd's shutdown signal to the imd).
  void inject(Message msg) { deliver(std::move(msg)); }

  [[nodiscard]] Network& network() { return *net_; }

 private:
  friend class Network;

  Socket(Network& net, Endpoint local)
      : net_(&net), local_(local), inbox_(net.simulator()) {}

  void deliver(Message msg) { inbox_.send(std::move(msg)); }

  Network* net_;
  Endpoint local_;
  sim::Channel<Message> inbox_;
};

}  // namespace dodo::net
