// Node addressing for the simulated cluster network.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace dodo::net {

/// Identifies a workstation in the cluster (the simulator's stand-in for an
/// IP address).
using NodeId = std::uint32_t;

/// A communication endpoint within a node. Well-known ports are listed in
/// core/wire.hpp; ephemeral ports are handed out by the network. 32 bits
/// (wider than real UDP) because the simulator burns one ephemeral port per
/// bulk exchange and paper-scale runs make hundreds of thousands of them.
using Port = std::uint32_t;

struct Endpoint {
  NodeId node = 0;
  Port port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

inline std::string to_string(const Endpoint& e) {
  return "n" + std::to_string(e.node) + ":" + std::to_string(e.port);
}

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.node) << 32) | e.port);
  }
};

}  // namespace dodo::net
