// Datagram representation.
//
// A Message carries a small codec-encoded `header` (control fields) and an
// optional bulk `body`. The body has a *logical* size independent of the
// bytes actually materialized: paper-scale benchmarks run with "phantom"
// bodies (logical size but no bytes) so that multi-gigabyte datasets do not
// have to exist in host RAM, while all timing is computed from the logical
// size. Correctness tests always run with materialized bodies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "net/address.hpp"

namespace dodo::net {

using Buf = std::vector<std::uint8_t>;

struct Message {
  Endpoint src;
  Endpoint dst;
  Buf header;
  Buf body;
  Bytes64 body_size = 0;  // logical body length; >= body.size()

  /// Total logical datagram size used by the timing model.
  [[nodiscard]] Bytes64 wire_bytes() const {
    return static_cast<Bytes64>(header.size()) + body_size;
  }

  /// True when the body is accounted for but not materialized.
  [[nodiscard]] bool phantom_body() const {
    return body.empty() && body_size > 0;
  }
};

}  // namespace dodo::net
