// Cluster harness: builds a complete simulated Dodo deployment matching the
// paper's testbed (§5.1) and runs application coroutines on it.
//
// Node layout: node 0 runs the central manager daemon on a dedicated
// machine; node 1 runs the application (with the only disk that matters);
// nodes 2..1+imd_hosts are harvested workstations, each with a resource
// monitor that recruits an idle memory daemon. The paper's configuration is
// the default: 12 hosts x 100 MB pools (1.2 GB of remote memory), an 80 MB
// local region cache, 128 MB application node.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "core/activity.hpp"
#include "core/cmd.hpp"
#include "core/rmd.hpp"
#include "disk/filesystem.hpp"
#include "manage/region_manager.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_merge.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"

namespace dodo::cluster {

/// Phase-resolved telemetry (DESIGN §15). Everything defaults off, so a
/// config that doesn't opt in schedules the exact same events and exports
/// the exact same bytes as before this subsystem existed.
struct TelemetryOptions {
  /// Sim-clock sampling cadence for the cluster-owned TelemetryTimeline;
  /// 0 disables the sampler (no timer events enter the simulation).
  Duration sample_interval = 0;
  /// Evaluate the HealthMonitor's invariant/rate rules on every sample and
  /// fire a flight-recorder dump on violation. Adds watchdog-only rows
  /// (imd.pool_region_bytes, imd.lease_live_fenced, obs.spans_open) to the
  /// telemetry samples — never to metrics_snapshot().
  bool watchdog = false;
  obs::HealthConfig health{};
  /// Give every daemon a bounded flight recorder (see obs/flight.hpp).
  bool flight = false;
  std::size_t flight_capacity = 256;
  /// Base name for automatic dump files: FLIGHT_<dump_name>.txt written to
  /// $DODO_FLIGHT_DIR (default cwd) when the watchdog trips. Empty disables
  /// file dumps; flight_dump() still renders the text on demand.
  std::string dump_name;
};

struct ClusterConfig {
  int imd_hosts = 12;
  /// Directory shards: the number of central manager instances the control
  /// plane runs. Region keys map to shards by core::shard_of_key; harvested
  /// host i registers with shard i % cmd_shards, so each shard owns a
  /// disjoint partition of the imd pool and runs its own keep-alive, scrub,
  /// and pending-free machinery over it. 1 (default) is the paper's layout
  /// and takes exactly the single-cmd code path.
  int cmd_shards = 1;
  Bytes64 imd_pool = 100 * 1024 * 1024;   // 0 = derive from activity
  Bytes64 local_cache = 80 * 1024 * 1024;  // libmanage pool on the app node
  /// Page cache on the application node. With Dodo, the region cache takes
  /// most of the app node's memory; without it, the OS uses that memory for
  /// file pages. 128 MB node, ~12 MB kernel, app image ~8 MB.
  Bytes64 page_cache_dodo = 24 * 1024 * 1024;
  Bytes64 page_cache_baseline = 100 * 1024 * 1024;
  net::NetParams net = net::NetParams::unet_batched();
  bool use_dodo = true;
  bool materialize = true;   // false: phantom data (paper-scale benches)
  manage::Policy policy = manage::Policy::kLru;
  std::uint64_t seed = 1;
  /// Non-empty: per-host activity sources for non-dedicated (churn) runs;
  /// otherwise hosts are dedicated (always idle, recruited at t=0).
  std::vector<const core::ActivitySource*> host_activity;
  core::RmdParams rmd{};
  core::CmdParams cmd{};
  /// Template for every host's imd; pool_bytes/materialize are overridden
  /// from imd_pool/materialize above (kept separate for config brevity).
  core::ImdParams imd{};
  runtime::ClientParams client{};
  manage::ManageParams manage_overrides{};  // cache size/policy set from above
  /// Optional trace-span sink, wired into every daemon as one flat recorder
  /// (no per-daemon tracks). Not owned; must outlive the cluster.
  obs::SpanRecorder* spans = nullptr;
  /// When true and `spans` is null, the cluster owns an obs::TraceDomain:
  /// one SpanRecorder track per (host, daemon) sharing a cluster-unique id
  /// space, so cross-process parent links resolve in the merged timeline.
  /// Reachable via traces(); export with trace_tsv()/trace_chrome_json().
  bool record_spans = false;
  /// Sampler + watchdog + flight recorders; see TelemetryOptions.
  TelemetryOptions telemetry{};
};

/// Owns the whole simulated deployment. Destruction tears down suspended
/// daemon coroutines before the network/filesystem they reference.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] disk::SimFilesystem& fs() { return *fs_; }
  /// Shard 0's manager — the only one in the paper layout, and the legacy
  /// accessor every single-cmd call site keeps using.
  [[nodiscard]] core::CentralManager& cmd() { return *cmds_.front(); }
  [[nodiscard]] core::CentralManager& cmd(int shard) {
    return *cmds_.at(static_cast<std::size_t>(shard));
  }
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(cmds_.size());
  }
  [[nodiscard]] runtime::DodoClient* dodo() { return client_.get(); }
  [[nodiscard]] manage::RegionManager* manager() { return manager_.get(); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] core::ResourceMonitor& rmd(int host) { return *rmds_.at(host); }

  [[nodiscard]] net::NodeId app_node() const { return 1; }
  [[nodiscard]] net::NodeId cmd_node() const { return 0; }
  /// Network node id of harvested host index `host` (0..imd_hosts-1).
  [[nodiscard]] net::NodeId host_node(int host) const {
    return static_cast<net::NodeId>(host + 2);
  }
  /// Network node of cmd shard `shard`. Shard 0 keeps the paper's dedicated
  /// node 0; extra shards run on nodes appended after the harvested hosts,
  /// so the host/app node ids never move when cmd_shards changes.
  [[nodiscard]] net::NodeId shard_node(int shard) const {
    return shard == 0 ? 0
                      : static_cast<net::NodeId>(config_.imd_hosts + 1 + shard);
  }
  /// Shard whose imd-pool partition harvested host `host` belongs to (the
  /// shard its rmd registers with).
  [[nodiscard]] int shard_of_host(int host) const {
    return host % shard_count();
  }

  // -- fault-injection hooks (driven by fault::FaultInjector) ---------------

  /// Crash: the host drops off the network mid-whatever-it-was-doing. Its
  /// daemons keep running as zombies whose datagrams all vanish — exactly a
  /// kernel panic as seen from the rest of the cluster.
  void crash_host(int host) {
    obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, host,
                 0, 0, "crash_host");
    net_->set_node_up(host_node(host), false);
  }

  /// Recovery from crash_host: network back, the zombie imd torn down, and
  /// a fresh imd recruited under a bumped epoch. Any state the old imd held
  /// is gone — stale directory entries must be caught by epoch validation.
  sim::Co<void> restart_host(int host);

  /// Graceful owner-return reclaim: the rmd signals the imd, which finishes
  /// in-flight transfers and exits. The host stays out of service until
  /// recruit_host().
  sim::Co<void> evict_host(int host);

  /// Re-recruits an evicted host (epoch bump, fresh registration).
  void recruit_host(int host) {
    obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, host,
                 0, 0, "recruit_host");
    rmds_.at(static_cast<std::size_t>(host))->force_recruit();
  }

  /// Graded memory pressure on a harvested host (lease_epochs only; no-op
  /// otherwise — see ResourceMonitor::force_pressure). `level` is a
  /// core::PressureLevel ordinal; `keep_frac` is the fraction of live pool
  /// bytes a kRising shrink keeps. kUrgent holds the host out of service
  /// like evict_host until recruit_host releases it.
  sim::Co<void> pressure_host(int host, int level, double keep_frac);

  /// Cold-stops and immediately restarts every central manager shard.
  /// Directory state survives (a warm restart from its in-memory image);
  /// in-flight client RPCs ride it out via retransmits.
  sim::Co<void> restart_cmd();

  /// Crash one cmd shard: its node drops off the network, the daemon keeps
  /// running as a zombie whose datagrams vanish. Regions mapped to sibling
  /// shards are untouched; this shard's clients see mopen/mclose timeouts.
  void crash_cmd_shard(int shard) {
    obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, shard,
                 0, 0, "crash_cmd_shard");
    net_->set_node_up(shard_node(shard), false);
  }

  /// Recovery from crash_cmd_shard: network back, the zombie stopped and
  /// replaced by a fresh manager with an EMPTY directory, and every host in
  /// the shard's partition evicted + re-recruited (epoch bump, fresh pools)
  /// so the new directory and its imds agree from the first registration.
  /// Regions freed before the crash cannot resurrect: nothing survives in
  /// either the directory or the partition's pools.
  sim::Co<void> restart_cmd_shard(int shard);

  /// Creates the application dataset file on the app node, materialized or
  /// pattern-backed per the config. Returns the (writable) fd.
  int create_dataset(const std::string& name, Bytes64 size,
                     std::uint64_t content_seed = 0x64617461);

  /// Runs an application coroutine to completion and returns its elapsed
  /// simulated time. The simulation keeps daemons alive across calls, so
  /// this can be called repeatedly (e.g. dmine run 1, run 2).
  SimTime run_app(std::function<sim::Co<void>(Cluster&)> app,
                  Duration limit = 400LL * 3600 * kSecond);

  /// run_app that reports instead of aborting when the app fails to finish
  /// within the limit (or the simulator's event limit fires). Generative
  /// (fuzz) harnesses use this: a pathological schedule is a result to
  /// minimize, not a reason to kill the process.
  [[nodiscard]] bool try_run_app(std::function<sim::Co<void>(Cluster&)> app,
                                 Duration limit);

  /// Replaces the client+manager with fresh instances (a "new process" for
  /// persistent-data experiments). Same client id: region keys match.
  void restart_client();

  /// One deterministic in-process snapshot of the whole deployment: cmd,
  /// client, region manager, every rmd (+ its imd when recruited), and the
  /// network counters. Per-host metrics aggregate bucket-wise. This is what
  /// the bench binaries export as JSON; the kStats RPC path serves the same
  /// shapes over the wire.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  /// Over-the-wire scrape of the whole deployment: every shard's
  /// scrape_cluster() fans out concurrently, then the per-shard snapshots
  /// merge in sorted order — the merged snapshot is independent of shard
  /// completion order, so multi-cmd JSON exports stay byte-identical per
  /// seed at quiesce.
  sim::Co<obs::MetricsSnapshot> scrape_cluster();

  /// The caller-supplied flat span sink (null in TraceDomain mode — use
  /// traces() / merged_spans() there).
  [[nodiscard]] obs::SpanRecorder* spans() { return config_.spans; }

  /// The cluster-owned trace domain (config.record_spans), or null.
  [[nodiscard]] obs::TraceDomain* traces() { return traces_.get(); }

  /// Closes every still-open span across all tracks at the current sim time
  /// so exports never contain end=-1 rows; the number of spans force-closed
  /// accumulates into the `obs.spans_open_at_quiesce` gauge. Idempotent:
  /// calling again only counts spans opened since the previous quiesce.
  void quiesce_traces();

  /// Cluster-merged span timeline (quiesces first). Empty without traces().
  [[nodiscard]] std::vector<obs::MergedSpan> merged_spans();

  /// Merged-timeline exports (both quiesce first). Deterministic: identical
  /// bytes for identical seeds. Empty string without traces().
  [[nodiscard]] std::string trace_tsv();
  [[nodiscard]] std::string trace_chrome_json();

  [[nodiscard]] std::int64_t spans_open_at_quiesce() const {
    return spans_open_at_quiesce_;
  }

  // -- phase-resolved telemetry (DESIGN §15) --------------------------------

  /// The cluster-owned sampled timeline (telemetry.sample_interval > 0), or
  /// null. Fed in-process with the same snapshot shapes the kStats RPC path
  /// serves, so sampling never perturbs wire traffic or the event schedule.
  [[nodiscard]] obs::TelemetryTimeline* timeline() { return timeline_.get(); }

  /// The online invariant watchdog (telemetry.watchdog), or null.
  [[nodiscard]] obs::HealthMonitor* health() { return health_.get(); }

  /// The per-daemon flight-recorder domain (telemetry.flight), or null.
  [[nodiscard]] obs::FlightDomain* flight() { return flight_.get(); }

  /// Takes one telemetry sample right now: snapshot (+ watchdog-only rows),
  /// timeline append, health evaluation, dump on violation. The sampler
  /// loop calls this every sample_interval; tests may call it directly.
  /// No-op without a timeline or when sim time has not advanced since the
  /// previous sample.
  void take_telemetry_sample();

  /// Renders the merged flight dump (plus the tail of the merged trace when
  /// spans are recorded). Empty string when flight recording is off.
  [[nodiscard]] std::string flight_dump(const std::string& reason);

  /// flight_dump() to FLIGHT_<telemetry.dump_name>.txt in $DODO_FLIGHT_DIR
  /// (default cwd). No-op when flight is off or dump_name is empty.
  void write_flight_dump(const std::string& reason);

  /// Test hook: applied to every telemetry sample before it is recorded and
  /// judged — how the watchdog tests deliberately break a conservation rule
  /// without corrupting the cluster itself.
  void set_telemetry_mutator(
      std::function<void(obs::MetricsSnapshot&)> mutator) {
    telemetry_mutator_ = std::move(mutator);
  }

 private:
  sim::Co<void> telemetry_loop();

  ClusterConfig config_;
  sim::Simulator sim_;
  // Destroyed after the daemons below: their ScopedSpan guards close out
  // spans while suspended coroutine frames unwind during teardown.
  std::unique_ptr<obs::TraceDomain> traces_;
  std::int64_t spans_open_at_quiesce_ = 0;
  // Telemetry lives next to the trace domain, above every daemon, so the
  // recorders daemons point at outlive their coroutine frames at teardown.
  std::unique_ptr<obs::TelemetryTimeline> timeline_;
  std::unique_ptr<obs::HealthMonitor> health_;
  std::unique_ptr<obs::FlightDomain> flight_;
  obs::FlightRecorder* cluster_flight_ = nullptr;  // fault-hook recorder
  std::function<void(obs::MetricsSnapshot&)> telemetry_mutator_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<disk::SimFilesystem> fs_;
  std::vector<std::unique_ptr<core::CentralManager>> cmds_;  // one per shard
  std::vector<core::CmdParams> shard_params_;  // for cold shard restarts
  [[nodiscard]] std::vector<net::Endpoint> cmd_endpoints() const;
  std::vector<std::unique_ptr<core::AlwaysIdleActivity>> default_activity_;
  std::vector<std::unique_ptr<core::ResourceMonitor>> rmds_;
  std::unique_ptr<runtime::DodoClient> client_;
  std::unique_ptr<manage::RegionManager> manager_;
};

}  // namespace dodo::cluster
