#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/wire.hpp"
#include "sim/channel.hpp"

namespace dodo::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), sim_(config_.seed) {
  if (config_.cmd_shards < 1) config_.cmd_shards = 1;
  if (config_.spans == nullptr && config_.record_spans) {
    traces_ = std::make_unique<obs::TraceDomain>(sim_);
  }
  if (config_.telemetry.sample_interval > 0) {
    timeline_ = std::make_unique<obs::TelemetryTimeline>();
  }
  if (config_.telemetry.watchdog) {
    health_ = std::make_unique<obs::HealthMonitor>(config_.telemetry.health);
  }
  if (config_.telemetry.flight) {
    flight_ = std::make_unique<obs::FlightDomain>(
        sim_, config_.telemetry.flight_capacity);
    cluster_flight_ = flight_->recorder("cluster");
  }
  // Extra cmd shards live on nodes appended after the harvested hosts, so
  // the paper's node layout (cmd=0, app=1, hosts=2..) never shifts.
  const auto nodes = static_cast<std::size_t>(config_.imd_hosts) + 2 +
                     static_cast<std::size_t>(config_.cmd_shards - 1);
  net_ = std::make_unique<net::Network>(sim_, config_.net, nodes);

  disk::FsParams fsp;
  fsp.cache.capacity =
      config_.use_dodo ? config_.page_cache_dodo : config_.page_cache_baseline;
  fs_ = std::make_unique<disk::SimFilesystem>(sim_, fsp);

  for (int s = 0; s < config_.cmd_shards; ++s) {
    const net::NodeId node = shard_node(s);
    core::CmdParams cmdp = config_.cmd;
    if (traces_) cmdp.spans = traces_->recorder(node, "cmd");
    if (config_.spans != nullptr) cmdp.spans = config_.spans;
    if (flight_) cmdp.flight = flight_->recorder("cmd" + std::to_string(s));
    shard_params_.push_back(cmdp);
    cmds_.push_back(
        std::make_unique<core::CentralManager>(sim_, *net_, node, cmdp));
    cmds_.back()->start();
  }

  if (config_.use_dodo) {
    for (int i = 0; i < config_.imd_hosts; ++i) {
      const auto node = static_cast<net::NodeId>(i + 2);
      const core::ActivitySource* activity = nullptr;
      core::RmdParams rp = config_.rmd;
      if (static_cast<std::size_t>(i) < config_.host_activity.size() &&
          config_.host_activity[static_cast<std::size_t>(i)] != nullptr) {
        activity = config_.host_activity[static_cast<std::size_t>(i)];
      } else {
        // Dedicated Beowulf node: always idle, recruited immediately.
        default_activity_.push_back(std::make_unique<core::AlwaysIdleActivity>(
            128_MiB, 20_MiB));
        activity = default_activity_.back().get();
        rp.start_recruited = true;
      }
      core::ImdParams ip = config_.imd;
      ip.pool_bytes = config_.imd_pool;
      ip.materialize = config_.materialize;
      ip.spans = config_.spans;
      rp.spans = config_.spans;
      if (traces_) {
        // One "thread" per daemon per host: tracks are created here, in host
        // order, so the Perfetto layout is identical run to run.
        rp.spans = traces_->recorder(i + 2, "rmd");
        ip.spans = traces_->recorder(i + 2, "imd");
      }
      if (flight_) {
        rp.flight = flight_->recorder("host" + std::to_string(i) + ".rmd");
        ip.flight = flight_->recorder("host" + std::to_string(i) + ".imd");
      }
      rmds_.push_back(std::make_unique<core::ResourceMonitor>(
          sim_, *net_, node, cmds_[static_cast<std::size_t>(shard_of_host(i))]->endpoint(),
          *activity, rp, ip));
      rmds_.back()->start();
    }
    restart_client();
  }
  if (timeline_) sim_.spawn(telemetry_loop());
}

Cluster::~Cluster() {
  // Suspended daemon coroutine frames hold sockets and channel waiters that
  // reference the network; tear the frames down while everything is alive.
  manager_.reset();
  sim_.destroy_detached();
}

sim::Co<void> Cluster::restart_host(int host) {
  obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, host, 0,
               0, "restart_host");
  net_->set_node_up(host_node(host), true);
  auto& rmd = *rmds_.at(static_cast<std::size_t>(host));
  co_await rmd.force_evict();
  rmd.force_recruit();
}

sim::Co<void> Cluster::evict_host(int host) {
  obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, host, 0,
               0, "evict_host");
  co_await rmds_.at(static_cast<std::size_t>(host))->force_evict();
}

sim::Co<void> Cluster::pressure_host(int host, int level, double keep_frac) {
  obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, host,
               level, 0, "pressure_host");
  co_await rmds_.at(static_cast<std::size_t>(host))
      ->force_pressure(static_cast<core::PressureLevel>(level), keep_frac);
}

sim::Co<void> Cluster::restart_cmd() {
  obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, 0, 0, 0,
               "restart_cmd");
  for (auto& cmd : cmds_) {
    co_await cmd->stop();
    cmd->start();
  }
}

sim::Co<void> Cluster::restart_cmd_shard(int shard) {
  obs::frecord(cluster_flight_, obs::FlightEventType::kFaultInjected, shard,
               0, 0, "restart_cmd_shard");
  const auto s = static_cast<std::size_t>(shard);
  net_->set_node_up(shard_node(shard), true);
  // Stop the zombie first: its suspended coroutines reference the object
  // being replaced and must unwind before it is destroyed.
  co_await cmds_[s]->stop();
  cmds_[s] = std::make_unique<core::CentralManager>(
      sim_, *net_, shard_node(shard), shard_params_[s]);
  cmds_[s]->start();
  // The fresh manager's directory is empty but the partition's imds still
  // hold the pre-crash pool: evict + re-recruit each (epoch bump, fresh
  // empty pool, immediate re-registration) so directory and pools agree —
  // and a region freed before the crash has nowhere left to resurrect from.
  for (int h = 0; h < config_.imd_hosts; ++h) {
    if (shard_of_host(h) != shard) continue;
    auto& rmd = *rmds_.at(static_cast<std::size_t>(h));
    co_await rmd.force_evict();
    rmd.force_recruit();
  }
}

std::vector<net::Endpoint> Cluster::cmd_endpoints() const {
  std::vector<net::Endpoint> eps;
  eps.reserve(cmds_.size());
  for (const auto& cmd : cmds_) eps.push_back(cmd->endpoint());
  return eps;
}

void Cluster::restart_client() {
  assert(config_.use_dodo);
  manager_.reset();
  client_.reset();
  runtime::ClientParams cp = config_.client;
  cp.spans = config_.spans;
  if (traces_) cp.spans = traces_->recorder(1, "client");
  if (flight_) cp.flight = flight_->recorder("client");
  client_ = std::make_unique<runtime::DodoClient>(
      sim_, *net_, app_node(), cmd_endpoints(), *fs_, cp);
  client_->start();
  manage::ManageParams mp = config_.manage_overrides;
  mp.local_cache_bytes = config_.local_cache;
  mp.materialize = config_.materialize;
  mp.policy = config_.policy;
  mp.spans = config_.spans;
  if (traces_) mp.spans = traces_->recorder(1, "manage");
  manager_ =
      std::make_unique<manage::RegionManager>(sim_, *client_, *fs_, mp);
}

int Cluster::create_dataset(const std::string& name, Bytes64 size,
                            std::uint64_t content_seed) {
  if (!fs_->exists(name)) {
    std::unique_ptr<disk::DataStore> store;
    if (config_.materialize) {
      store = std::make_unique<disk::MaterializedStore>(size);
    } else {
      store = std::make_unique<disk::PatternStore>(size, content_seed);
    }
    fs_->create(name, size, std::move(store));
  }
  return fs_->open(name, disk::OpenMode::kReadWrite);
}

SimTime Cluster::run_app(std::function<sim::Co<void>(Cluster&)> app,
                         Duration limit) {
  const SimTime start = sim_.now();
  if (!try_run_app(std::move(app), limit)) {
    std::fprintf(stderr,
                 "dodo::cluster: application did not finish within the "
                 "simulated time limit (%.1f s)\n",
                 to_seconds(limit));
    std::abort();
  }
  return sim_.now() - start;
}

void Cluster::quiesce_traces() {
  if (traces_) {
    spans_open_at_quiesce_ +=
        static_cast<std::int64_t>(traces_->open_count());
    traces_->close_open_spans();
  } else if (config_.spans != nullptr) {
    spans_open_at_quiesce_ +=
        static_cast<std::int64_t>(config_.spans->open_count());
    config_.spans->close_open();
  }
}

std::vector<obs::MergedSpan> Cluster::merged_spans() {
  quiesce_traces();
  if (!traces_) return {};
  return traces_->merged();
}

std::string Cluster::trace_tsv() {
  quiesce_traces();
  return traces_ ? traces_->to_tsv() : std::string();
}

std::string Cluster::trace_chrome_json() {
  quiesce_traces();
  return traces_ ? traces_->to_chrome_json() : std::string();
}

obs::MetricsSnapshot Cluster::metrics_snapshot() const {
  obs::MetricsSnapshot out;
  for (const auto& cmd : cmds_) out.merge(cmd->metrics_snapshot());
  if (cmds_.size() > 1) {
    // Sharded runs additionally export each shard's view under a
    // "shard<i>." prefix (DESIGN §9); the unprefixed "cmd.*" names above
    // stay the cluster-wide totals. Single-shard output is unchanged.
    for (std::size_t s = 0; s < cmds_.size(); ++s) {
      out.merge(cmds_[s]->metrics_snapshot().prefixed(
          "shard" + std::to_string(s) + "."));
    }
  }
  if (client_) out.merge(client_->metrics_snapshot());
  if (manager_) out.merge(manager_->metrics_snapshot());
  for (const auto& rmd : rmds_) {
    out.merge(rmd->metrics_snapshot());
    if (rmd->imd() != nullptr) out.merge(rmd->imd()->metrics_snapshot());
  }
  const net::NetMetrics& nm =
      const_cast<net::Network&>(*net_).metrics();
  out.set_counter("net.datagrams_sent", nm.datagrams_sent);
  out.set_counter("net.datagrams_delivered", nm.datagrams_delivered);
  out.set_counter("net.datagrams_lost", nm.datagrams_lost);
  out.set_counter("net.datagrams_dropped", nm.datagrams_dropped);
  out.set_counter("net.datagrams_cut", nm.datagrams_cut);
  out.set_counter("net.datagrams_duplicated", nm.datagrams_duplicated);
  out.set_counter("net.payload_bytes_sent", nm.payload_bytes_sent);
  if (traces_) {
    out.set_counter("obs.spans_recorded",
                    static_cast<std::uint64_t>(traces_->total_spans()));
    out.set_counter("obs.spans_dropped", traces_->dropped());
    out.set_counter("obs.span_orphans_rejected",
                    traces_->orphans_rejected());
  } else if (config_.spans != nullptr) {
    out.set_counter("obs.spans_recorded",
                    static_cast<std::uint64_t>(config_.spans->spans().size()));
    out.set_counter("obs.spans_dropped", config_.spans->dropped());
    out.set_counter("obs.span_orphans_rejected",
                    config_.spans->orphans_rejected());
  }
  out.set_gauge("obs.spans_open_at_quiesce", spans_open_at_quiesce_);
  // Watchdog/flight rows appear only when those subsystems are on, so every
  // pre-telemetry export stays byte-identical.
  if (health_) out.merge(health_->health_snapshot());
  if (flight_) {
    out.set_counter("flight.events", flight_->total_events());
    out.set_counter("flight.dropped", flight_->dropped());
  }
  return out;
}

sim::Co<void> Cluster::telemetry_loop() {
  // Lives for the whole deployment like the daemon keep-alive loops;
  // destroy_detached() reaps the suspended frame at teardown.
  for (;;) {
    co_await sim_.sleep(config_.telemetry.sample_interval);
    take_telemetry_sample();
  }
}

void Cluster::take_telemetry_sample() {
  if (!timeline_) return;
  if (!timeline_->times().empty() &&
      sim_.now() <= timeline_->times().back()) {
    return;  // idempotent per instant (tests may force extra samples)
  }
  obs::MetricsSnapshot snap = metrics_snapshot();
  if (config_.telemetry.watchdog) {
    // Watchdog-only rows, computed from direct object inspection — the same
    // ground truth the fuzz conservation oracles use at quiesce. Added only
    // to the telemetry sample, never to metrics_snapshot(), so BENCH/TRACE
    // exports are untouched by the watchdog being on.
    std::int64_t region_bytes = 0;
    std::int64_t live_fenced = 0;
    for (const auto& rmd : rmds_) {
      core::IdleMemoryDaemon* imd = rmd->imd();
      if (imd == nullptr) continue;
      for (const auto& [id, len] : imd->region_list()) {
        region_bytes += len;
        if (imd->lease_fenced(id)) ++live_fenced;
      }
    }
    snap.set_gauge("imd.pool_region_bytes", region_bytes);
    snap.set_gauge("imd.lease_live_fenced", live_fenced);
    if (traces_) {
      snap.set_gauge("obs.spans_open",
                     static_cast<std::int64_t>(traces_->open_count()));
    }
  }
  if (telemetry_mutator_) telemetry_mutator_(snap);
  timeline_->add_sample(sim_.now(), snap);
  if (health_) {
    const std::vector<obs::HealthViolation> violations =
        health_->on_sample(sim_.now(), snap);
    for (const obs::HealthViolation& v : violations) {
      obs::frecord(cluster_flight_, obs::FlightEventType::kHealthViolation, 0,
                   0, 0, v.rule + ": " + v.detail);
    }
    if (!violations.empty()) {
      write_flight_dump("health:" + violations.front().rule);
    }
  }
}

std::string Cluster::flight_dump(const std::string& reason) {
  if (!flight_) return {};
  std::string out = flight_->dump(reason);
  if (traces_) {
    const std::vector<obs::MergedSpan> spans = merged_spans();
    const std::size_t tail = std::min<std::size_t>(spans.size(), 40);
    out += "# trace tail (" + std::to_string(tail) + " of " +
           std::to_string(spans.size()) + " merged spans)\n";
    for (std::size_t i = spans.size() - tail; i < spans.size(); ++i) {
      const obs::MergedSpan& ms = spans[i];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%lld\t%lld\thost%d\t",
                    static_cast<long long>(ms.span.start),
                    static_cast<long long>(ms.span.end), ms.host);
      out += buf;
      out += ms.daemon + "\t" + ms.span.name + "\n";
    }
  }
  return out;
}

void Cluster::write_flight_dump(const std::string& reason) {
  if (!flight_ || config_.telemetry.dump_name.empty()) return;
  const char* dir = std::getenv("DODO_FLIGHT_DIR");
  const std::string path = std::string(dir != nullptr ? dir : ".") +
                           "/FLIGHT_" + config_.telemetry.dump_name + ".txt";
  const std::string text = flight_dump(reason);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "dodo: wrote flight dump %s (%s)\n", path.c_str(),
               reason.c_str());
}

sim::Co<obs::MetricsSnapshot> Cluster::scrape_cluster() {
  // Fan the per-shard scrapes out concurrently: each shard serially visits
  // only its own partition, so the wall-clock cost is one partition's.
  std::vector<obs::MetricsSnapshot> parts(cmds_.size());
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(cmds_.size()));
  for (std::size_t s = 0; s < cmds_.size(); ++s) {
    sim_.spawn([](Cluster& c, std::size_t i,
                  std::vector<obs::MetricsSnapshot>& out,
                  sim::WaitGroup& g) -> sim::Co<void> {
      out[i] = co_await c.cmds_[i]->scrape_cluster();
      g.done();
    }(*this, s, parts, wg));
  }
  co_await wg.wait();
  // Scrapes complete in timing order, not shard order; sort the serialized
  // parts before merging so the merged snapshot is a pure function of their
  // contents and multi-cmd JSON exports stay byte-identical per seed.
  std::vector<std::string> jsons;
  jsons.reserve(parts.size());
  for (const obs::MetricsSnapshot& p : parts) jsons.push_back(p.to_json());
  std::sort(jsons.begin(), jsons.end());
  obs::MetricsSnapshot total;
  for (const std::string& j : jsons) {
    obs::MetricsSnapshot part;
    if (obs::MetricsSnapshot::from_json(j, part)) total.merge(part);
  }
  co_return total;
}

bool Cluster::try_run_app(std::function<sim::Co<void>(Cluster&)> app,
                          Duration limit) {
  const SimTime start = sim_.now();
  bool finished = false;
  sim_.spawn([](Cluster& c, std::function<sim::Co<void>(Cluster&)> fn,
                bool& done) -> sim::Co<void> {
    // Let freshly started daemons finish registering with the cmd before
    // the application's first allocation (otherwise the first mopen fails
    // and the refraction period suppresses remote memory for seconds).
    co_await c.sim_.sleep(50_ms);
    co_await fn(c);
    done = true;
    c.sim_.request_stop();
  }(*this, std::move(app), finished));
  sim_.run(start + limit);
  return finished;
}

}  // namespace dodo::cluster
