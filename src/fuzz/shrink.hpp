// Greedy delta-debugging schedule minimization.
//
// Given a failing schedule and a predicate ("does this candidate still
// fail the same way?"), alternately ddmin-reduces the workload op list and
// the fault event list until neither shrinks, then emits the minimal
// schedule. The predicate should match on the oracle-name prefix of the
// violation so shrinking never wanders from one bug onto another.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "fuzz/schedule.hpp"

namespace dodo::fuzz {

/// Returns true when the candidate still exhibits the failure under
/// investigation.
using SchedulePredicate = std::function<bool(const Schedule&)>;

struct ShrinkResult {
  Schedule minimal;
  std::size_t initial_size = 0;  // ops + faults before shrinking
  std::size_t runs = 0;          // predicate evaluations spent
};

/// `failing` must satisfy the predicate (asserted on entry). `max_runs`
/// bounds predicate evaluations; the best schedule found so far is returned
/// when the budget runs out.
[[nodiscard]] ShrinkResult shrink_schedule(const Schedule& failing,
                                           const SchedulePredicate& still_fails,
                                           std::size_t max_runs = 400);

/// Renders a ready-to-paste gtest body replaying `s` and asserting the
/// violation prefix, for promoting a shrunk schedule into test_chaos.cpp.
[[nodiscard]] std::string to_regression_test(const Schedule& s,
                                             const std::string& test_name,
                                             const std::string& oracle_prefix);

}  // namespace dodo::fuzz
