#include "fuzz/oracle.hpp"

#include <cstdio>

#include "core/imd.hpp"
#include "core/rmd.hpp"
#include "fault/fault.hpp"

namespace dodo::fuzz {

namespace {
std::string fmt(const char* oracle, const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, args...);
  return std::string(oracle) + ": " + buf;
}
}  // namespace

std::string EpochOracle::check(cluster::Cluster& cluster) {
  for (int h = 0; h < cluster.config().imd_hosts; ++h) {
    const net::NodeId node = cluster.host_node(h);
    const std::uint64_t cur = cluster.rmd(h).current_epoch();
    auto [it, fresh] = rmd_high_.try_emplace(node, cur);
    if (!fresh && cur < it->second) {
      return fmt("epoch-monotonicity",
                 "rmd on node %u went backwards: %llu -> %llu", node,
                 static_cast<unsigned long long>(it->second),
                 static_cast<unsigned long long>(cur));
    }
    it->second = cur;
  }
  // Each host registers with exactly one shard, so the union of the
  // per-shard IWD views still holds one row per node. A cold-restarted
  // shard re-learns its partition under bumped epochs, which stays monotone
  // against the high-water marks carried across the restart.
  for (int sh = 0; sh < cluster.shard_count(); ++sh) {
    for (const auto& [node, epoch] : cluster.cmd(sh).iwd_epochs()) {
      // Epoch 0 is the unregistered placeholder a host-status message
      // default-creates in a cold-restarted shard's empty directory before
      // the re-registration RPC lands; it carries no ordering claim.
      if (epoch == 0) continue;
      auto [it, fresh] = cmd_view_high_.try_emplace(node, epoch);
      if (!fresh && epoch < it->second) {
        return fmt("epoch-monotonicity",
                   "cmd IWD view of node %u went backwards: %llu -> %llu",
                   node, static_cast<unsigned long long>(it->second),
                   static_cast<unsigned long long>(epoch));
      }
      it->second = epoch;
      auto rmd_it = rmd_high_.find(node);
      if (rmd_it != rmd_high_.end() && epoch > rmd_it->second) {
        return fmt("epoch-monotonicity",
                   "cmd IWD view of node %u (%llu) ahead of its rmd (%llu)",
                   node, static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(rmd_it->second));
      }
    }
  }
  return "";
}

std::string check_reply_cache_bounds(cluster::Cluster& cluster) {
  const std::size_t cmd_cap = cluster.config().cmd.reply_cache_capacity;
  for (int sh = 0; sh < cluster.shard_count(); ++sh) {
    if (cluster.cmd(sh).reply_cache_size() > cmd_cap) {
      return fmt("reply-cache-bound",
                 "cmd shard %d cache holds %zu > capacity %zu", sh,
                 cluster.cmd(sh).reply_cache_size(), cmd_cap);
    }
  }
  for (int h = 0; h < cluster.config().imd_hosts; ++h) {
    core::IdleMemoryDaemon* imd = cluster.rmd(h).imd();
    if (imd == nullptr) continue;
    if (imd->reply_cache_size() > imd->params().reply_cache_capacity) {
      return fmt("reply-cache-bound",
                 "imd on host %d holds %zu > capacity %zu", h,
                 imd->reply_cache_size(), imd->params().reply_cache_capacity);
    }
  }
  return "";
}

std::string check_descriptor_bound(cluster::Cluster& cluster,
                                   std::size_t max_slots) {
  // Every workload op addresses one of `max_slots` keys and closes before
  // reopening, so drop_node reaping must keep the table within the slot
  // count — unbounded growth was the PR-1 mark-inactive-forever bug.
  const std::size_t n = cluster.dodo()->region_table_size();
  if (n > max_slots) {
    return fmt("descriptor-bound", "client holds %zu descriptors > %zu slots",
               n, max_slots);
  }
  return "";
}

std::string check_conservation(cluster::Cluster& cluster) {
  const runtime::ClientMetrics& m = cluster.dodo()->metrics();
  if (m.mreads_total != m.remote_hits + m.mreads_degraded) {
    return fmt("metric-conservation",
               "mreads %llu != remote hits %llu + degraded %llu",
               static_cast<unsigned long long>(m.mreads_total),
               static_cast<unsigned long long>(m.remote_hits),
               static_cast<unsigned long long>(m.mreads_degraded));
  }
  if (m.mreads_degraded > m.disk_fallbacks) {
    // disk_fallbacks is fragment-granular: every degraded mread took at
    // least one per-fragment disk tick, possibly several under striping.
    return fmt("metric-conservation",
               "degraded mreads %llu exceed fragment disk fallbacks %llu",
               static_cast<unsigned long long>(m.mreads_degraded),
               static_cast<unsigned long long>(m.disk_fallbacks));
  }
  // Batched-path conservation: every op that joined a batch is an mread,
  // only multi-op batches count as coalesced, and flushes never outnumber
  // the ops that could have triggered them.
  if (m.batched_reads > m.mreads_total) {
    return fmt("metric-conservation",
               "batched reads %llu exceed mreads %llu",
               static_cast<unsigned long long>(m.batched_reads),
               static_cast<unsigned long long>(m.mreads_total));
  }
  if (m.coalesced_mreads > m.batched_reads) {
    return fmt("metric-conservation",
               "coalesced mreads %llu exceed batched reads %llu",
               static_cast<unsigned long long>(m.coalesced_mreads),
               static_cast<unsigned long long>(m.batched_reads));
  }
  if (m.batch_flushes > m.batched_reads) {
    return fmt("metric-conservation",
               "batch flushes %llu exceed batched reads %llu",
               static_cast<unsigned long long>(m.batch_flushes),
               static_cast<unsigned long long>(m.batched_reads));
  }
  // Ring conservation holds at quiesce: every submitted op completed (a
  // drained ring holds nothing in flight).
  if (m.ring_submitted != m.ring_completed) {
    return fmt("metric-conservation",
               "ring submitted %llu != completed %llu",
               static_cast<unsigned long long>(m.ring_submitted),
               static_cast<unsigned long long>(m.ring_completed));
  }
  for (int h = 0; h < cluster.config().imd_hosts; ++h) {
    core::IdleMemoryDaemon* imd = cluster.rmd(h).imd();
    if (imd == nullptr) continue;
    std::int64_t sum = 0;
    for (const auto& [id, len] : imd->region_list()) sum += len;
    if (sum != imd->pool_used_bytes()) {
      return fmt("metric-conservation",
                 "imd on host %d: pool gauge %lld B but regions sum %lld B", h,
                 static_cast<long long>(imd->pool_used_bytes()),
                 static_cast<long long>(sum));
    }
  }
  return "";
}

std::string check_lease_no_resurrection(cluster::Cluster& cluster) {
  if (!cluster.config().imd.lease_epochs) return "";
  for (int h = 0; h < cluster.config().imd_hosts; ++h) {
    core::IdleMemoryDaemon* imd = cluster.rmd(h).imd();
    if (imd == nullptr || !imd->running()) continue;
    for (const auto& [id, len] : imd->region_list()) {
      if (imd->lease_fenced(id)) {
        return fmt("lease-resurrection",
                   "imd on host %d holds region %llu live inside its fence "
                   "(epoch %llu)",
                   h, static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(imd->epoch()));
      }
    }
  }
  return "";
}

std::string check_lease_conservation(cluster::Cluster& cluster) {
  if (!cluster.config().imd.lease_epochs) return "";
  std::string violation = check_lease_no_resurrection(cluster);
  if (!violation.empty()) return violation;
  // No directory shard may still map a region its imd has fenced under the
  // current incarnation: the renewal reject must have pruned it by quiesce,
  // or reads would route at reclaimed memory for the rest of the epoch.
  // (Entries under an older epoch are the ordinary crash/evict stale path,
  // scrubbed by validate_region; the lease fence only governs its epoch.)
  for (int h = 0; h < cluster.config().imd_hosts; ++h) {
    core::IdleMemoryDaemon* imd = cluster.rmd(h).imd();
    if (imd == nullptr || !imd->running()) continue;
    const net::NodeId node = imd->node();
    const std::uint64_t epoch = imd->epoch();
    for (int sh = 0; sh < cluster.shard_count(); ++sh) {
      for (const auto& [key, loc] : cluster.cmd(sh).rd_snapshot()) {
        if (loc.host != node || loc.epoch != epoch) continue;
        if (imd->lease_fenced(loc.imd_region)) {
          return fmt("lease-conservation",
                     "shard %d still maps fenced region %llu on node %u "
                     "epoch %llu",
                     sh, static_cast<unsigned long long>(loc.imd_region),
                     node, static_cast<unsigned long long>(epoch));
        }
      }
    }
  }
  return "";
}

std::string check_span_tree(cluster::Cluster& cluster) {
  const std::vector<obs::MergedSpan> all = cluster.merged_spans();
  std::map<std::uint64_t, const obs::MergedSpan*> by_id;
  std::uint64_t prev_id = 0;
  for (const obs::MergedSpan& m : all) {
    const obs::SpanRecord& s = m.span;
    if (s.id <= prev_id) {
      return fmt("span-tree", "span ids not strictly increasing at %llu",
                 static_cast<unsigned long long>(s.id));
    }
    prev_id = s.id;
    if (s.end < s.start) {
      return fmt("span-tree", "span %llu (%s) ends before it starts",
                 static_cast<unsigned long long>(s.id), s.name.c_str());
    }
    by_id[s.id] = &m;
  }
  for (const obs::MergedSpan& m : all) {
    const obs::SpanRecord& s = m.span;
    if (s.parent == 0) continue;
    const auto it = by_id.find(s.parent);
    if (it == by_id.end()) {
      // The parent may have been dropped at recorder capacity; only a
      // parent id that was never allocated is a propagation bug, and the
      // recorder already rejects those (counted, not recorded). A recorded
      // dangling edge therefore always points at a real defect unless
      // spans were dropped.
      if (cluster.traces() != nullptr && cluster.traces()->dropped() > 0) {
        continue;
      }
      return fmt("span-tree", "span %llu (%s) has unknown parent %llu",
                 static_cast<unsigned long long>(s.id), s.name.c_str(),
                 static_cast<unsigned long long>(s.parent));
    }
    const obs::SpanRecord& p = it->second->span;
    if (s.trace != p.trace) {
      return fmt("span-tree",
                 "span %llu trace %llu != parent %llu trace %llu",
                 static_cast<unsigned long long>(s.id),
                 static_cast<unsigned long long>(s.trace),
                 static_cast<unsigned long long>(p.id),
                 static_cast<unsigned long long>(p.trace));
    }
    if (s.start < p.start) {
      return fmt("span-tree",
                 "span %llu (%s) starts %lld before parent %llu start %lld",
                 static_cast<unsigned long long>(s.id), s.name.c_str(),
                 static_cast<long long>(s.start),
                 static_cast<unsigned long long>(p.id),
                 static_cast<long long>(p.start));
    }
    // A child on another track got there over the wire: the server side
    // legitimately drains past the client span that caused it (final ACKs
    // are still in flight when the client returns, and a client-side
    // timeout cuts the parent short). Same-track children must nest.
    const bool cross_track = it->second->host != m.host ||
                             it->second->daemon != m.daemon;
    if (!cross_track && s.end > p.end) {
      return fmt("span-tree",
                 "span %llu (%s) ends %lld after parent %llu end %lld",
                 static_cast<unsigned long long>(s.id), s.name.c_str(),
                 static_cast<long long>(s.end),
                 static_cast<unsigned long long>(p.id),
                 static_cast<long long>(p.end));
    }
  }
  return "";
}

std::string check_no_leaks(cluster::Cluster& cluster) {
  std::string report = fault::leak_report(cluster);
  if (report.empty()) return "";
  if (report.back() == '\n') report.pop_back();
  return "region-leak: " + report;
}

}  // namespace dodo::fuzz
