#include "fuzz/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "fuzz/oracle.hpp"
#include "runtime/ring.hpp"

namespace dodo::fuzz {

namespace {

/// Deterministic content for a push/write op: a pure function of the op's
/// pattern seed and the byte position.
void fill_pattern(std::vector<std::uint8_t>& buf, std::uint64_t pattern) {
  for (std::size_t j = 0; j < buf.size(); ++j) {
    buf[j] = static_cast<std::uint8_t>((pattern >> ((j & 7) * 8)) +
                                       j * 131 + 17);
  }
}

/// What the workload believes about one region slot across open/close (and
/// crash/reclaim) cycles.
struct SlotState {
  int rd = -1;
  bool open = false;
  /// An mopen for this key was ever issued. Until then, a reused=true reply
  /// would mean the cmd invented a region out of nothing.
  bool ever_attempted = false;
  /// True when `remote` is the exact content of the remote region (set by a
  /// fully acknowledged full-region push/write; cleared by any failed or
  /// fresh path). Reads with filled=true are byte-checked only while true.
  bool remote_certain = false;
  std::vector<std::uint8_t> remote;
  /// Superseded certain images, newest last (bounded). The staleness oracle
  /// matches a diverging read against these: a hit means some replica
  /// missed an invalidation and served bytes older than the last acked
  /// write — the exact failure invalidate-on-write must prevent.
  std::vector<std::vector<std::uint8_t>> stale;

  void retire_image() {
    if (!remote_certain) return;
    stale.push_back(remote);
    if (stale.size() > 4) stale.erase(stale.begin());
  }
};

}  // namespace

RunResult run_schedule(const Schedule& s, const RunOptions& opt) {
  RunResult result;

  cluster::ClusterConfig cfg;
  cfg.imd_hosts = s.hosts;
  cfg.cmd_shards = s.shards;
  cfg.imd_pool = s.pool;
  cfg.local_cache = 256_KiB;
  cfg.page_cache_dodo = 128_KiB;
  cfg.seed = s.seed;
  cfg.rmd.min_pool = 64_KiB;  // schedules use deliberately tiny pools
  cfg.cmd.keepalive_interval = millis(500);  // fast scrub/reclaim at quiesce
  cfg.cmd.stripe_width = s.stripe_width;
  // Small enough that the 16-64 KiB schedule regions actually stripe.
  cfg.cmd.stripe_min_fragment = 4_KiB;
  cfg.cmd.replica_count = s.replica_count;
  cfg.client.cmd_rpc.retries = 5;
  cfg.client.refraction = millis(50);
  cfg.client.bulk.max_retries = 30;
  cfg.imd.reply_cache_capacity = s.imd_reply_cache_capacity;
  if (s.batch) {
    // Batched data path: a window the size of one region lets the four
    // quarter-region ring reads below coalesce into a single bulk transfer;
    // the short timer flushes partial batches that a fault interrupted.
    cfg.client.coalesce_window_bytes = s.region;
    cfg.client.coalesce_window = millis(2);
  }
  cfg.imd.buggy_clear_all_reply_cache = opt.buggy_imd_reply_cache;
  // Lease schedules: grace spans three 500ms keep-alive ticks so a
  // near-expiry proactive copy can finish its write-only/ack/activate
  // handshake while the source is still readable.
  cfg.imd.lease_epochs = s.lease;
  cfg.cmd.lease_epochs = s.lease;
  cfg.imd.lease_ttl = seconds(3.0);
  cfg.imd.lease_grace = seconds(1.5);
  cfg.record_spans = true;  // the span-tree oracle audits the merged trace
  // Flight recorder: on an oracle violation the run dumps the per-daemon
  // event rings (faults, lease transitions, pressure, prunes) for triage.
  cfg.telemetry.flight = true;
  cfg.telemetry.dump_name = "fuzz";

  // Everything the probe lambda captures must outlive the Cluster (the
  // network owns the probe and dies with it).
  std::string violation;
  auto note = [&violation](std::string v) {
    if (!v.empty() && violation.empty()) violation = std::move(v);
  };
  EpochOracle epochs;

  cluster::Cluster c(cfg);
  c.sim().set_event_limit(opt.event_limit);

  const Bytes64 dataset = static_cast<Bytes64>(s.slots) * s.region;
  const int fd = c.create_dataset("fuzz", dataset);
  std::vector<std::uint8_t> file_shadow(static_cast<std::size_t>(dataset));
  fill_pattern(file_shadow, s.seed * 0x9e3779b97f4a7c15ULL);
  c.fs().store_of_inode(c.fs().inode_of(fd))->write(0, dataset,
                                                    file_shadow.data());

  fault::FaultPlan plan;
  for (const fault::FaultEvent& ev : s.faults) plan.add(ev);
  fault::FaultInjector inj(c, plan);
  inj.arm();

  // Cheap oracles on every datagram actually delivered anywhere.
  c.network().set_delivery_probe([&](const net::Message&) {
    ++result.deliveries_probed;
    if (!violation.empty()) return;  // first violation wins; stop checking
    note(epochs.check(c));
    note(check_reply_cache_bounds(c));
    note(check_descriptor_bound(c, static_cast<std::size_t>(s.slots)));
    note(check_lease_no_resurrection(c));
  });

  std::vector<SlotState> slots(static_cast<std::size_t>(s.slots));
  const std::size_t rsz = static_cast<std::size_t>(s.region);

  auto app = [&](cluster::Cluster& cl) -> sim::Co<void> {
    auto* client = cl.dodo();
    std::vector<std::uint8_t> buf(rsz);
    std::vector<std::uint8_t> back(rsz);
    // Batched schedules drive every read through one ring for the whole
    // workload, so submitted/completed conservation spans fault windows.
    std::optional<runtime::DodoRing> ring;
    if (s.batch) ring.emplace(cl.sim(), *client, 8);

    for (const WorkOp& op : s.ops) {
      ++result.ops_executed;
      if (!violation.empty()) break;
      auto& sl = slots[static_cast<std::size_t>(op.slot)];
      // Descriptors die asynchronously (another slot's failure on the same
      // host drops every descriptor there); resync before acting.
      if (sl.open && !client->active(sl.rd)) {
        sl.open = false;
        sl.rd = -1;
      }
      switch (op.kind) {
        case OpKind::kOpen: {
          if (sl.open) break;
          if (sl.rd >= 0 && client->known(sl.rd)) {
            // A close left pending by a lost kMfreeRep holds the slot's
            // descriptor; it must resolve before the key can reopen, or
            // the client table would exceed the descriptor bound.
            (void)co_await client->mclose(sl.rd);
            if (client->known(sl.rd)) break;  // still unresolved
            sl.rd = -1;
          }
          const bool first_ever = !sl.ever_attempted;
          sl.ever_attempted = true;
          const auto [rd, reused] = co_await client->mopen_ex(
              s.region, fd, static_cast<Bytes64>(op.slot) * s.region);
          if (rd < 0) break;
          if (reused && first_ever) {
            note("phantom-reuse: cmd reported reuse for key of slot " +
                 std::to_string(op.slot) + " before any mopen was issued");
            break;
          }
          if (!reused) sl.remote_certain = false;
          sl.rd = rd;
          sl.open = true;
          break;
        }
        case OpKind::kPush: {
          if (!sl.open) break;
          fill_pattern(buf, op.pattern);
          const Status st =
              co_await client->push_remote(sl.rd, 0, buf.data(), s.region);
          if (st.is_ok()) {
            if (sl.remote != buf) sl.retire_image();
            sl.remote = buf;
            sl.remote_certain = true;
          } else {
            // The imd may hold any prefix of the new bytes (or all of them
            // with the ack lost); nothing is certain until the next fully
            // acknowledged overwrite.
            sl.remote_certain = false;
          }
          break;
        }
        case OpKind::kWrite: {
          if (!sl.open) break;
          fill_pattern(buf, op.pattern);
          const Bytes64 n =
              co_await client->mwrite(sl.rd, 0, buf.data(), s.region);
          // mwrite always issues the backing-file write once the descriptor
          // passed the entry check, even when the remote half fails — disk
          // stays authoritative, so the file shadow updates unconditionally.
          std::copy(buf.begin(), buf.end(),
                    file_shadow.begin() +
                        static_cast<std::ptrdiff_t>(op.slot) *
                            static_cast<std::ptrdiff_t>(rsz));
          // A remote-half failure still returns n (disk landed) but drops
          // the descriptor, so full n no longer implies the remote copy is
          // current — only a still-active descriptor does.
          if (n == s.region && client->active(sl.rd)) {
            if (sl.remote != buf) sl.retire_image();
            sl.remote = buf;
            sl.remote_certain = true;
          } else {
            sl.remote_certain = false;
          }
          break;
        }
        case OpKind::kRead: {
          if (!sl.open) break;
          runtime::DodoClient::ReadResult rr;
          if (s.batch) {
            // Four adjacent quarter-region submissions: the coalescing
            // window (= region) merges them into one bulk transfer, and the
            // CQEs reassemble the same ReadResult the one-shot path returns.
            const Bytes64 q = s.region / 4;
            for (std::uint64_t i = 0; i < 4; ++i) {
              runtime::Sqe sqe;
              sqe.op = runtime::RingOp::kRead;
              sqe.rd = sl.rd;
              sqe.offset = static_cast<Bytes64>(i) * q;
              sqe.len = i == 3 ? s.region - 3 * q : q;
              sqe.buf = back.data() + static_cast<std::ptrdiff_t>(i * q);
              sqe.user_data = i;
              co_await ring->submit(sqe);
            }
            co_await ring->drain();
            rr.n = 0;
            rr.filled = true;
            for (int i = 0; i < 4; ++i) {
              const auto cqe = ring->try_reap();
              if (!cqe.has_value()) {
                // Always reap all four so a failed op never leaves stale
                // CQEs for the next kRead to misattribute.
                note("ring: drained ring yielded fewer completions than "
                     "submissions");
                rr.n = -1;
                continue;
              }
              if (cqe->n < 0) {
                rr.n = -1;
                continue;
              }
              if (rr.n >= 0) rr.n += cqe->n;
              rr.filled = rr.filled && cqe->filled;
              const Bytes64 base =
                  static_cast<Bytes64>(cqe->user_data) * q;
              for (const auto& [roff, rlen] : cqe->disk_ranges) {
                rr.disk_ranges.emplace_back(base + roff, rlen);
              }
            }
          } else {
            rr = co_await client->mread_ex(sl.rd, 0, back.data(), s.region);
          }
          if (rr.n == s.region && rr.filled && sl.remote_certain) {
            // Fragments lost mid-read come back from the backing file,
            // whose bytes are authoritative but may lag a push-only
            // overwrite; splice the file shadow over those ranges before
            // comparing against the remote image.
            std::vector<std::uint8_t> expect = sl.remote;
            for (const auto& [roff, rlen] : rr.disk_ranges) {
              std::copy_n(file_shadow.begin() +
                              static_cast<std::ptrdiff_t>(op.slot) *
                                  static_cast<std::ptrdiff_t>(rsz) +
                              static_cast<std::ptrdiff_t>(roff),
                          static_cast<std::ptrdiff_t>(rlen),
                          expect.begin() + static_cast<std::ptrdiff_t>(roff));
            }
            if (back != expect) {
              std::size_t at = 0;
              while (at < rsz && back[at] == expect[at]) ++at;
              bool was_stale = false;
              for (const auto& img : sl.stale) {
                if (back == img) {
                  was_stale = true;
                  break;
                }
              }
              if (was_stale) {
                note("staleness: mread of slot " + std::to_string(op.slot) +
                     " returned bytes of a superseded acked write (a replica "
                     "missed its invalidation)");
              } else {
                note("byte-exactness: remote read of slot " +
                     std::to_string(op.slot) + " diverges at byte " +
                     std::to_string(at));
              }
            }
          }
          break;
        }
        case OpKind::kClose: {
          if (sl.rd < 0) break;
          (void)co_await client->mclose(sl.rd);
          // A lost kMfreeRep keeps the descriptor client-side (deactivated,
          // awaiting a retry); only a resolved close forgets it. The remote
          // region may survive an unacked free; remote_certain keeps
          // describing its bytes for a future reused reattach.
          if (!client->known(sl.rd)) sl.rd = -1;
          sl.open = false;
          break;
        }
        case OpKind::kSync: {
          if (sl.rd < 0) break;
          (void)co_await client->msync(sl.rd);
          break;
        }
        case OpKind::kSleep: {
          co_await cl.sim().sleep(op.dur);
          break;
        }
      }
    }

    // -- quiesce ------------------------------------------------------------
    // 1. Let every planned fault fire; the generator pairs every window
    //    fault with its end, so after this the network is healed.
    SimTime last_fault = 0;
    for (const fault::FaultEvent& ev : s.faults) {
      last_fault = std::max(last_fault, ev.at);
    }
    if (cl.sim().now() < last_fault + millis(500)) {
      co_await cl.sim().sleep_until(last_fault + millis(500));
    }
    int spins = 0;
    while (!inj.done() && spins++ < 40) co_await cl.sim().sleep(millis(250));

    // 2. Drain every key on the now-healthy network: reattach (or freshly
    //    allocate) and close each slot that was ever touched. This clears
    //    directory entries whose free was executed but never acknowledged
    //    mid-fault — those are legal transients, not leaks, and only an
    //    acknowledged free distinguishes the two.
    for (int i = 0; i < s.slots; ++i) {
      auto& sl = slots[static_cast<std::size_t>(i)];
      if (sl.open && !client->active(sl.rd)) {
        sl.open = false;
        sl.rd = -1;
      }
      if (!sl.ever_attempted && !sl.open) continue;
      for (int attempt = 0; attempt < 4 && sl.rd < 0; ++attempt) {
        const auto [rd, reused] = co_await client->mopen_ex(
            s.region, fd, static_cast<Bytes64>(i) * s.region);
        (void)reused;
        if (rd >= 0) {
          sl.rd = rd;
          sl.open = true;
        } else {
          co_await cl.sim().sleep(millis(80));  // outwait refraction
        }
      }
      for (int attempt = 0; attempt < 4 && sl.rd >= 0; ++attempt) {
        (void)co_await client->mclose(sl.rd);
        if (!client->known(sl.rd)) {
          sl.rd = -1;
          break;
        }
        co_await cl.sim().sleep(millis(80));  // pending close; retry
      }
      sl.open = false;
    }

    // 3. Settle: several keep-alive intervals so the cmd's suspect-alloc
    //    scrub and hint refresh finish.
    co_await cl.sim().sleep(seconds(2.5));
    (void)co_await cl.fs().fsync(fd);
  };

  result.completed = c.try_run_app(app, opt.run_limit);
  result.faults_applied = inj.log().size();
  result.client_metrics = c.dodo()->metrics();
  c.network().set_delivery_probe(nullptr);

  // -- final oracles on the quiesced cluster --------------------------------
  if (result.completed) {
    note(epochs.check(c));
    note(check_reply_cache_bounds(c));
    note(check_descriptor_bound(c, static_cast<std::size_t>(s.slots)));
    note(check_no_leaks(c));
    note(check_conservation(c));
    note(check_lease_conservation(c));
    note(check_span_tree(c));
    std::vector<std::uint8_t> disk(static_cast<std::size_t>(dataset));
    c.fs().store_of_inode(c.fs().inode_of(fd))->read(0, dataset, disk.data());
    if (disk != file_shadow) {
      std::size_t at = 0;
      while (at < disk.size() && disk[at] == file_shadow[at]) ++at;
      note("byte-exactness: disk diverges from the disk-only shadow at byte " +
           std::to_string(at));
    }
  }
  result.violation = violation;
  if (!violation.empty()) c.write_flight_dump("oracle:" + violation);
  return result;
}

}  // namespace dodo::fuzz
