// Invariant oracles over a live cluster. Each check returns "" when the
// invariant holds, else a one-line violation of the form
// "oracle-name: detail" — the shrinker matches candidate failures by the
// oracle-name prefix so a minimization never wanders onto a different bug.
//
// Cheap checks (epochs, cache occupancy, descriptor bound) run on every
// message delivery via the network's delivery probe; the expensive ones
// (leak audit, disk byte-exactness) run at quiesce points.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cluster/cluster.hpp"

namespace dodo::fuzz {

/// Epochs only move forward. Tracks the high-water mark per host for both
/// the authoritative view (the rmd's counter) and the cmd's IWD view; a
/// regression in either means stale state overwrote fresh state.
class EpochOracle {
 public:
  /// Returns "" or "epoch-monotonicity: ...".
  std::string check(cluster::Cluster& cluster);

 private:
  std::map<net::NodeId, std::uint64_t> rmd_high_;
  std::map<net::NodeId, std::uint64_t> cmd_view_high_;
};

/// Reply caches stay within their configured bounds ("" or
/// "reply-cache-bound: ...").
[[nodiscard]] std::string check_reply_cache_bounds(cluster::Cluster& cluster);

/// The client's descriptor table never exceeds the number of distinct
/// region keys the workload can hold open ("" or "descriptor-bound: ...").
[[nodiscard]] std::string check_descriptor_bound(cluster::Cluster& cluster,
                                                 std::size_t max_slots);

/// Wraps fault::leak_report as an oracle ("" or "region-leak: ...").
[[nodiscard]] std::string check_no_leaks(cluster::Cluster& cluster);

/// Metric conservation, valid only at quiesce (an in-flight mread has been
/// counted in the total but not yet resolved): every mread the client
/// admitted landed in exactly one of remote_hits or disk_fallbacks, and each
/// recruited imd's incrementally-maintained pool-occupancy gauge equals the
/// sum of its live region lengths ("" or "metric-conservation: ...").
[[nodiscard]] std::string check_conservation(cluster::Cluster& cluster);

/// Lease fencing, valid at any time (trivially "" with lease_epochs off):
/// no region an imd holds live is also in its fenced set. Region ids are
/// never reused within an epoch, so a fenced id coming back live means a
/// late datagram resurrected reclaimed memory ("" or
/// "lease-resurrection: ...").
[[nodiscard]] std::string check_lease_no_resurrection(
    cluster::Cluster& cluster);

/// Lease conservation, valid only at quiesce (mid-run there is a legal
/// <=1-keepalive-tick window between an imd fencing a region and the cmd's
/// renewal reject pruning it): includes the no-resurrection check, and
/// additionally no cmd directory entry may still map a fenced region of a
/// live imd incarnation — a surviving entry would route reads at reclaimed
/// memory for the rest of the epoch ("" or "lease-conservation: ...").
[[nodiscard]] std::string check_lease_conservation(cluster::Cluster& cluster);

/// Trace-tree well-formedness, valid only after Cluster::quiesce_traces():
/// span ids are unique and increasing, every non-root span's parent exists
/// in the merged timeline and shares its trace id, a child never starts
/// before its parent or before its own end, and a child ends within its
/// parent unless it is a server/bulk-side span (those legitimately drain
/// past the client span that caused them). "" or "span-tree: ...".
[[nodiscard]] std::string check_span_tree(cluster::Cluster& cluster);

}  // namespace dodo::fuzz
