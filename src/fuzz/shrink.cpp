#include "fuzz/shrink.hpp"

#include <cassert>
#include <vector>

namespace dodo::fuzz {

namespace {

/// One ddmin pass over a list: try deleting contiguous chunks, halving the
/// chunk size until single elements. Accepts any deletion that keeps the
/// schedule failing. Returns true if anything was removed.
template <typename T, typename Rebuild>
bool ddmin_list(std::vector<T>& items, const Rebuild& rebuild,
                const SchedulePredicate& still_fails, std::size_t& runs,
                std::size_t max_runs) {
  bool shrunk_any = false;
  std::size_t chunk = items.size() / 2;
  if (chunk == 0 && !items.empty()) chunk = 1;
  while (chunk >= 1 && !items.empty()) {
    bool removed_this_granularity = false;
    for (std::size_t start = 0; start < items.size() && runs < max_runs;) {
      const std::size_t end = std::min(start + chunk, items.size());
      std::vector<T> candidate;
      candidate.reserve(items.size() - (end - start));
      candidate.insert(candidate.end(), items.begin(),
                       items.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       items.begin() + static_cast<std::ptrdiff_t>(end),
                       items.end());
      ++runs;
      if (still_fails(rebuild(candidate))) {
        items = std::move(candidate);
        shrunk_any = true;
        removed_this_granularity = true;
        // Same `start` now points at fresh elements; don't advance.
      } else {
        start = end;
      }
    }
    if (runs >= max_runs) break;
    if (chunk == 1 && !removed_this_granularity) break;
    chunk = removed_this_granularity ? std::min(chunk, items.size())
                                     : chunk / 2;
    if (chunk == 0) chunk = items.empty() ? 0 : 1;
    if (items.empty()) break;
  }
  return shrunk_any;
}

}  // namespace

ShrinkResult shrink_schedule(const Schedule& failing,
                             const SchedulePredicate& still_fails,
                             std::size_t max_runs) {
  ShrinkResult out;
  out.initial_size = failing.size();
  out.minimal = failing;
  assert(still_fails(failing) && "shrink_schedule needs a failing input");
  ++out.runs;  // the assertion run above

  Schedule& best = out.minimal;
  for (;;) {
    bool progress = false;
    progress |= ddmin_list(
        best.ops,
        [&](const std::vector<WorkOp>& ops) {
          Schedule cand = best;
          cand.ops = ops;
          return cand;
        },
        still_fails, out.runs, max_runs);
    progress |= ddmin_list(
        best.faults,
        [&](const std::vector<fault::FaultEvent>& faults) {
          Schedule cand = best;
          cand.faults = faults;
          return cand;
        },
        still_fails, out.runs, max_runs);
    if (!progress || out.runs >= max_runs) break;
  }
  return out;
}

std::string to_regression_test(const Schedule& s, const std::string& test_name,
                               const std::string& oracle_prefix) {
  std::string body;
  body += "TEST(FuzzRegression, " + test_name + ") {\n";
  body += "  static const char* kSchedule =\n";
  std::string serialized = s.serialize();
  std::string line;
  for (char ch : serialized) {
    if (ch == '\n') {
      body += "      \"" + line + "\\n\"\n";
      line.clear();
    } else {
      line += ch;
    }
  }
  if (!line.empty()) body += "      \"" + line + "\"\n";
  body += "      ;\n";
  body += "  fuzz::Schedule s;\n";
  body += "  std::string err;\n";
  body += "  ASSERT_TRUE(fuzz::Schedule::parse(kSchedule, s, &err)) << err;\n";
  body += "  const auto r = fuzz::run_schedule(s);\n";
  body += "  EXPECT_TRUE(r.ok()) << r.violation;\n";
  if (!oracle_prefix.empty()) {
    body += "  // Shrunk from a violation of: " + oracle_prefix + "\n";
  }
  body += "}\n";
  return body;
}

}  // namespace dodo::fuzz
