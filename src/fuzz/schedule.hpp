// A fuzz schedule: one complete, replayable test case for the simulated
// cluster — the cluster shape, a sequence of application operations, and a
// list of fault events. Schedules serialize to a line-oriented text format
// (".schedule" files) so a failure found by the fuzzer can be shrunk,
// checked into the repo, and replayed byte-for-byte by tools/fuzz_repro or
// a regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fault/fault.hpp"

namespace dodo::fuzz {

enum class OpKind : std::uint8_t {
  kOpen,   // mopen_ex(region, fd, slot*region)
  kPush,   // push_remote of a full region of pattern bytes
  kRead,   // mread_ex of the full region, byte-checked when filled
  kWrite,  // mwrite of a full region (disk + remote in parallel)
  kClose,  // mclose
  kSync,   // msync
  kSleep,  // advance simulated time (lets faults/keepalives interleave)
};

[[nodiscard]] const char* to_string(OpKind kind);
[[nodiscard]] bool op_kind_from_string(const std::string& name, OpKind& out);

/// One application operation against a region slot. `pattern` seeds the
/// content written by kPush/kWrite; `dur` is the kSleep duration.
struct WorkOp {
  OpKind kind{};
  int slot = 0;
  std::uint64_t pattern = 0;
  Duration dur = 0;
};

/// The whole test case. The workload addresses `slots` fixed-size regions
/// backing consecutive ranges of one dataset file of slots*region bytes.
struct Schedule {
  // -- cluster shape --------------------------------------------------------
  int hosts = 2;
  Bytes64 pool = 1_MiB;            // per-host imd pool
  Bytes64 region = 32_KiB;         // slot/region size
  int slots = 8;
  int stripe_width = 1;            // cmd K-way striping across idle hosts
  /// Copies of every fragment the cmd places on distinct hosts (static; the
  /// adaptive grow/shrink loop stays off in fuzz runs for determinism).
  int replica_count = 1;
  /// Directory shards (cmd instances); hosts partition round-robin across
  /// them and region keys route by hash (cluster::ClusterConfig::cmd_shards).
  int shards = 1;
  /// Lease-based harvesting (DESIGN.md §14): imds grant/fence per-region
  /// leases, the cmd renews them each keepalive tick, and kHostPressure
  /// fault events drive graded incremental reclamation.
  bool lease = false;
  /// Batched data path (DESIGN.md §16): clients coalesce adjacent mreads
  /// within a region-sized window and kRead ops issue through a
  /// submission/completion ring instead of one awaited mread.
  bool batch = false;
  std::size_t imd_reply_cache_capacity = 64;
  std::uint64_t seed = 1;          // simulator/cluster seed

  // -- the two shrinkable event lists ---------------------------------------
  std::vector<WorkOp> ops;
  std::vector<fault::FaultEvent> faults;

  [[nodiscard]] std::size_t size() const { return ops.size() + faults.size(); }

  /// Text form, first line "# dodo fuzz schedule v1". parse() is its exact
  /// inverse; round-tripping is covered by test_fuzz.
  [[nodiscard]] std::string serialize() const;

  /// Parses serialize() output. On failure returns false and, if `error` is
  /// non-null, a one-line description naming the offending line.
  static bool parse(const std::string& text, Schedule& out,
                    std::string* error = nullptr);
};

}  // namespace dodo::fuzz
