#include "fuzz/generator.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace dodo::fuzz {

namespace {

// Per-category fault state machines: the generator walks sim time forward
// and only emits transitions that are legal from the current state, so a
// generated plan never, e.g., restarts a host that is running or overlaps
// two loss bursts (whose ends would fight over the restored base rate).
enum class HostState : std::uint8_t { kRecruited, kCrashed, kEvicted };

}  // namespace

Schedule generate_schedule(std::uint64_t seed, const GenParams& params) {
  Rng cfg_rng = Rng(seed).fork(0x636f6e66);   // "conf"
  Rng op_rng = Rng(seed).fork(0x6f707321);    // "ops!"
  Rng fault_rng = Rng(seed).fork(0x666c7473); // "flts"

  Schedule s;
  s.seed = seed;
  // Mostly single-host: every alloc/free then lands in one imd's reply
  // cache, which is what an eviction bug needs to matter.
  s.hosts = cfg_rng.below(10) < 7 ? 1 : 2;
  // A quarter of schedules instead stripe regions across 3-4 hosts,
  // exercising the fan-out data path and per-fragment failure handling.
  // Drawn from a forked stream so the cfg/op/fault draws of non-striped
  // schedules are unchanged by the stripe dimension.
  Rng stripe_rng = Rng(seed).fork(0x73747270);  // "strp"
  if (stripe_rng.below(100) < 25) {
    s.hosts = 3 + static_cast<int>(stripe_rng.below(2));
    s.stripe_width = 2 + static_cast<int>(stripe_rng.below(3));
  }
  // A forked replica stream mirrors the stripe one: ~25% of schedules place
  // two copies of every fragment on distinct hosts, exercising the write
  // fan-out, read failover, and the staleness oracle. Composes with
  // striping when both streams fire.
  Rng rep_rng = Rng(seed).fork(0x7265706c);  // "repl"
  if (rep_rng.below(100) < 25) {
    s.replica_count = 2;
    s.hosts = std::max(s.hosts, 3 + static_cast<int>(rep_rng.below(2)));
  }
  // ~25% of schedules shard the cmd directory 2-3 ways (again a fresh
  // stream, so unsharded schedules keep their exact pre-sharding draws).
  // Hosts are topped up so every shard owns at least one imd; shard-crash
  // faults are appended separately below from the same stream.
  Rng shard_rng = Rng(seed).fork(0x73687264);  // "shrd"
  const bool sharded = shard_rng.below(100) < 25;
  if (sharded) {
    s.shards = 2 + static_cast<int>(shard_rng.below(2));
    s.hosts = std::max(s.hosts, s.shards + 1);
  }
  // ~25% of schedules turn on lease-based harvesting (a fresh stream again,
  // so lease-off schedules keep their exact pre-lease draws). The pressure
  // ramps it drives are appended after the base fault machinery below;
  // crashes and evicts of lease-holding hosts come free from that machinery.
  Rng lease_rng = Rng(seed).fork(0x6c656173);  // "leas"
  s.lease = lease_rng.below(100) < 25;
  // ~25% of schedules run the batched data path: kRead ops go through a
  // submission/completion ring against a coalescing client (a fresh stream
  // again, so unbatched schedules keep their exact pre-batching draws).
  Rng batch_rng = Rng(seed).fork(0x62746368);  // "btch"
  s.batch = batch_rng.below(100) < 25;
  s.region = 16_KiB << cfg_rng.below(2);
  s.slots = 4 + static_cast<int>(cfg_rng.below(5));
  s.pool = std::max<Bytes64>(2 * s.slots * s.region, 512_KiB);
  // Small on purpose: a handful of open/close cycles must be able to push a
  // cached-but-unconsumed reply across the eviction boundary.
  s.imd_reply_cache_capacity = 3 + static_cast<std::size_t>(cfg_rng.below(4));

  // -- workload -------------------------------------------------------------
  const std::size_t n_ops =
      params.min_ops +
      static_cast<std::size_t>(op_rng.below(params.max_ops - params.min_ops + 1));
  s.ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    WorkOp op;
    op.slot = static_cast<int>(op_rng.below(static_cast<std::uint64_t>(s.slots)));
    op.pattern = op_rng.next();
    // Weighted toward open/close churn (alloc/free RPC pressure), with
    // enough pushes/reads to keep the byte oracle armed.
    const std::uint64_t w = op_rng.below(100);
    if (w < 34) {
      op.kind = OpKind::kOpen;
    } else if (w < 44) {
      op.kind = OpKind::kPush;
    } else if (w < 56) {
      op.kind = OpKind::kRead;
    } else if (w < 63) {
      op.kind = OpKind::kWrite;
    } else if (w < 90) {
      op.kind = OpKind::kClose;
    } else if (w < 92) {
      op.kind = OpKind::kSync;
    } else {
      // ~8% sleeps averaging ~80ms: stretches a 40-140 op workload across
      // the fault horizon so bursts land mid-churn, while leaving op
      // clusters between sleeps dense enough to flood a small reply cache
      // within one retransmit backoff.
      op.kind = OpKind::kSleep;
      op.dur = op_rng.range(10 * kMillisecond, 150 * kMillisecond);
    }
    s.ops.push_back(op);
  }

  // -- faults ---------------------------------------------------------------
  std::vector<HostState> host(static_cast<std::size_t>(s.hosts),
                              HostState::kRecruited);
  SimTime loss_until = -1;  // end of the currently open loss burst
  SimTime cmd_down_until = -1;
  const std::size_t windows =
      params.min_fault_windows +
      static_cast<std::size_t>(fault_rng.below(
          params.max_fault_windows - params.min_fault_windows + 1));
  SimTime t = params.first_fault;
  for (std::size_t i = 0; i < windows && t < params.horizon; ++i) {
    t += fault_rng.range(30 * kMillisecond, 300 * kMillisecond);
    if (t >= params.horizon) break;
    // Short windows: it is the *boundaries* that bite. A reply lost in the
    // last moments of a burst leaves a retransmit pending while the healed
    // network lets the workload churn at full speed — exactly the race a
    // reply-cache eviction bug loses.
    const Duration dur =
        fault_rng.range(100 * kMillisecond, 500 * kMillisecond);
    const std::uint64_t w = fault_rng.below(100);
    const int h = static_cast<int>(
        fault_rng.below(static_cast<std::uint64_t>(s.hosts)));
    auto& hs = host[static_cast<std::size_t>(h)];
    if (w < 55) {
      // Loss bursts dominate: they are what turns every other interaction
      // into a retransmit exercise.
      if (t <= loss_until) continue;
      const double rate = fault_rng.uniform(0.15, params.max_loss_rate);
      s.faults.push_back({t, fault::FaultKind::kLossBurstBegin, -1, 0, 0, rate});
      s.faults.push_back({t + dur, fault::FaultKind::kLossBurstEnd, -1, 0, 0, 0});
      loss_until = t + dur;
    } else if (w < 63) {
      // Partition the app node from one harvested host.
      s.faults.push_back({t, fault::FaultKind::kPartitionBegin, -1, 1,
                          static_cast<net::NodeId>(h + 2), 0});
      s.faults.push_back({t + dur, fault::FaultKind::kPartitionEnd, -1, 1,
                          static_cast<net::NodeId>(h + 2), 0});
    } else if (w < 70) {
      if (hs != HostState::kRecruited) continue;
      s.faults.push_back({t, fault::FaultKind::kImdCrash, h, 0, 0, 0});
      s.faults.push_back({t + dur, fault::FaultKind::kImdRestart, h, 0, 0, 0});
      hs = HostState::kRecruited;  // restored within the window
    } else if (w < 82) {
      if (hs != HostState::kRecruited) continue;
      s.faults.push_back({t, fault::FaultKind::kHostEvict, h, 0, 0, 0});
      s.faults.push_back({t + dur, fault::FaultKind::kHostRecruit, h, 0, 0, 0});
    } else if (w < 92) {
      if (t <= cmd_down_until) continue;
      s.faults.push_back({t, fault::FaultKind::kCmdBlackoutBegin, -1, 0, 0, 0});
      s.faults.push_back({t + dur, fault::FaultKind::kCmdBlackoutEnd, -1, 0, 0, 0});
      cmd_down_until = t + dur;
    } else {
      s.faults.push_back({t, fault::FaultKind::kCmdRestart, -1, 0, 0, 0});
    }
  }
  // Loss-burst windows may overlap other categories but never each other;
  // window ends can land past `horizon`, which the runner's quiesce point
  // waits out. Sorting is the injector's job (stable, by time).

  // Sharded schedules usually also lose a cmd shard mid-run: the crash
  // lands anywhere in the fault horizon (mid-alloc, mid-pending-free-retry —
  // whatever the ops happen to be doing), and every crash is paired with a
  // restart before quiesce so the leak audit sees the partition freshly
  // re-registered rather than a zombie directory.
  // Lease schedules drive graded pressure ramps on top of the base faults:
  // rising pressure sheds the pool incrementally to a keep fraction (then
  // clears), and urgent pressure is the owner storming back — the paper's
  // whole-daemon eviction through the new signal path, paired with a recruit
  // that releases the hold before quiesce. Every hook is a no-op on a host
  // that happens to be evicted or crashed at fire time, so the ramps compose
  // with the window faults above without a legality dance.
  if (s.lease) {
    const std::size_t ramps = 1 + static_cast<std::size_t>(lease_rng.below(3));
    SimTime pt = params.first_fault;
    for (std::size_t i = 0; i < ramps && pt < params.horizon; ++i) {
      pt += lease_rng.range(50 * kMillisecond, 400 * kMillisecond);
      if (pt >= params.horizon) break;
      const int h = static_cast<int>(
          lease_rng.below(static_cast<std::uint64_t>(s.hosts)));
      const Duration dur =
          lease_rng.range(200 * kMillisecond, 600 * kMillisecond);
      if (lease_rng.below(100) < 70) {
        const double keep = lease_rng.uniform(0.2, 0.6);
        s.faults.push_back(
            {pt, fault::FaultKind::kHostPressure, h, 1, 0, keep});
        s.faults.push_back(
            {pt + dur, fault::FaultKind::kHostPressure, h, 0, 0, 0});
      } else {
        s.faults.push_back({pt, fault::FaultKind::kHostPressure, h, 2, 0, 0});
        s.faults.push_back(
            {pt + dur, fault::FaultKind::kHostRecruit, h, 0, 0, 0});
      }
    }
  }

  if (sharded && shard_rng.below(100) < 60) {
    const int target =
        static_cast<int>(shard_rng.below(static_cast<std::uint64_t>(s.shards)));
    const SimTime crash_at =
        params.first_fault +
        shard_rng.range(0, (params.horizon - params.first_fault) * 7 / 10);
    const Duration down =
        shard_rng.range(100 * kMillisecond, 600 * kMillisecond);
    s.faults.push_back(
        {crash_at, fault::FaultKind::kCmdShardCrash, target, 0, 0, 0});
    s.faults.push_back({crash_at + down, fault::FaultKind::kCmdShardRestart,
                        target, 0, 0, 0});
  }
  return s;
}

}  // namespace dodo::fuzz
