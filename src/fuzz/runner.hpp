// Executes one Schedule on a fresh simulated cluster with every oracle
// armed. The run is a pure function of (schedule, options): the cluster
// seed, the workload, and the fault plan are all taken from the schedule,
// so a violation reproduces exactly — which is what makes shrinking and
// regression promotion possible.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "fuzz/schedule.hpp"
#include "runtime/dodo_client.hpp"

namespace dodo::fuzz {

struct RunOptions {
  /// Re-introduces the PR-1 imd reply-cache clear-all eviction bug for this
  /// run only. Deliberately NOT part of the Schedule: a serialized schedule
  /// must describe a test case, never a code variant.
  bool buggy_imd_reply_cache = false;
  /// Simulated-time cap handed to Cluster::try_run_app. A schedule that
  /// exceeds it is reported (completed=false), not aborted.
  Duration run_limit = 600 * kSecond;
  /// Hard cap on simulator events — catches livelocks that a time limit
  /// alone cannot (retry storms at a frozen sim time). 0 disables.
  std::uint64_t event_limit = 20'000'000;
};

struct RunResult {
  bool completed = false;       // workload + quiesce finished within limits
  std::string violation;        // first "oracle-name: detail", or empty
  std::size_t ops_executed = 0;
  std::size_t faults_applied = 0;
  std::uint64_t deliveries_probed = 0;
  /// Final client-side counters — lets callers assert a run actually
  /// exercised remote memory rather than no-opping through closed slots.
  runtime::ClientMetrics client_metrics{};

  [[nodiscard]] bool ok() const { return completed && violation.empty(); }
};

[[nodiscard]] RunResult run_schedule(const Schedule& schedule,
                                     const RunOptions& options = {});

}  // namespace dodo::fuzz
