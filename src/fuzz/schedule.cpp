#include "fuzz/schedule.hpp"

#include <cstdio>
#include <sstream>

namespace dodo::fuzz {

namespace {
constexpr const char* kMagic = "# dodo fuzz schedule v1";
}  // namespace

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kOpen: return "open";
    case OpKind::kPush: return "push";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kClose: return "close";
    case OpKind::kSync: return "sync";
    case OpKind::kSleep: return "sleep";
  }
  return "unknown";
}

bool op_kind_from_string(const std::string& name, OpKind& out) {
  static constexpr OpKind kAll[] = {
      OpKind::kOpen, OpKind::kPush,  OpKind::kRead, OpKind::kWrite,
      OpKind::kClose, OpKind::kSync, OpKind::kSleep,
  };
  for (OpKind k : kAll) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string Schedule::serialize() const {
  std::string out;
  char line[256];
  out += kMagic;
  out += '\n';
  std::snprintf(line, sizeof(line), "hosts %d\n", hosts);
  out += line;
  std::snprintf(line, sizeof(line), "pool %lld\n",
                static_cast<long long>(pool));
  out += line;
  std::snprintf(line, sizeof(line), "region %lld\n",
                static_cast<long long>(region));
  out += line;
  std::snprintf(line, sizeof(line), "slots %d\n", slots);
  out += line;
  std::snprintf(line, sizeof(line), "stripe %d\n", stripe_width);
  out += line;
  std::snprintf(line, sizeof(line), "replica %d\n", replica_count);
  out += line;
  std::snprintf(line, sizeof(line), "shards %d\n", shards);
  out += line;
  std::snprintf(line, sizeof(line), "lease %d\n", lease ? 1 : 0);
  out += line;
  std::snprintf(line, sizeof(line), "batch %d\n", batch ? 1 : 0);
  out += line;
  std::snprintf(line, sizeof(line), "reply_cache %zu\n",
                imd_reply_cache_capacity);
  out += line;
  std::snprintf(line, sizeof(line), "seed %llu\n",
                static_cast<unsigned long long>(seed));
  out += line;
  for (const WorkOp& op : ops) {
    std::snprintf(line, sizeof(line), "op %s %d %llu %lld\n",
                  to_string(op.kind), op.slot,
                  static_cast<unsigned long long>(op.pattern),
                  static_cast<long long>(op.dur));
    out += line;
  }
  for (const fault::FaultEvent& ev : faults) {
    std::snprintf(line, sizeof(line), "fault %s %lld %d %u %u %.6f\n",
                  fault::to_string(ev.kind), static_cast<long long>(ev.at),
                  ev.host, ev.a, ev.b, ev.rate);
    out += line;
  }
  return out;
}

bool Schedule::parse(const std::string& text, Schedule& out,
                     std::string* error) {
  auto fail = [&](int lineno, const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + what;
    }
    return false;
  };

  Schedule s;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kMagic) saw_magic = true;
      continue;
    }
    if (!saw_magic) return fail(lineno, "missing schedule header");

    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "hosts") {
      if (!(ls >> s.hosts) || s.hosts < 1) return fail(lineno, "bad hosts");
    } else if (key == "pool") {
      long long v = 0;
      if (!(ls >> v) || v <= 0) return fail(lineno, "bad pool");
      s.pool = v;
    } else if (key == "region") {
      long long v = 0;
      if (!(ls >> v) || v <= 0) return fail(lineno, "bad region");
      s.region = v;
    } else if (key == "slots") {
      if (!(ls >> s.slots) || s.slots < 1) return fail(lineno, "bad slots");
    } else if (key == "stripe") {
      // Optional (pre-striping schedules omit it); absent means width 1.
      if (!(ls >> s.stripe_width) || s.stripe_width < 1) {
        return fail(lineno, "bad stripe");
      }
    } else if (key == "replica") {
      // Optional (pre-replication schedules omit it); absent means 1 copy.
      if (!(ls >> s.replica_count) || s.replica_count < 1) {
        return fail(lineno, "bad replica");
      }
    } else if (key == "shards") {
      // Optional (pre-sharding schedules omit it); absent means one cmd.
      if (!(ls >> s.shards) || s.shards < 1) return fail(lineno, "bad shards");
    } else if (key == "lease") {
      // Optional (pre-lease schedules omit it); absent means leases off.
      int v = 0;
      if (!(ls >> v) || v < 0 || v > 1) return fail(lineno, "bad lease");
      s.lease = v != 0;
    } else if (key == "batch") {
      // Optional (pre-batching schedules omit it); absent means unbatched.
      int v = 0;
      if (!(ls >> v) || v < 0 || v > 1) return fail(lineno, "bad batch");
      s.batch = v != 0;
    } else if (key == "reply_cache") {
      long long v = 0;
      if (!(ls >> v) || v < 1) return fail(lineno, "bad reply_cache");
      s.imd_reply_cache_capacity = static_cast<std::size_t>(v);
    } else if (key == "seed") {
      if (!(ls >> s.seed)) return fail(lineno, "bad seed");
    } else if (key == "op") {
      std::string kind;
      WorkOp op;
      // Patterns are raw 64-bit rng draws; half of them overflow a signed
      // read, so extract unsigned.
      unsigned long long pattern = 0;
      long long dur = 0;
      if (!(ls >> kind >> op.slot >> pattern >> dur)) {
        return fail(lineno, "malformed op line");
      }
      if (!op_kind_from_string(kind, op.kind)) {
        return fail(lineno, "unknown op kind '" + kind + "'");
      }
      if (op.slot < 0) return fail(lineno, "negative op slot");
      op.pattern = static_cast<std::uint64_t>(pattern);
      op.dur = dur;
      if (op.dur < 0) return fail(lineno, "negative op duration");
      s.ops.push_back(op);
    } else if (key == "fault") {
      std::string kind;
      fault::FaultEvent ev;
      long long at = 0;
      if (!(ls >> kind >> at >> ev.host >> ev.a >> ev.b >> ev.rate)) {
        return fail(lineno, "malformed fault line");
      }
      if (!fault::fault_kind_from_string(kind, ev.kind)) {
        return fail(lineno, "unknown fault kind '" + kind + "'");
      }
      if (at < 0) return fail(lineno, "negative fault time");
      ev.at = at;
      s.faults.push_back(ev);
    } else {
      return fail(lineno, "unknown key '" + key + "'");
    }
    // Trailing junk on a recognized line is a format error too: it means a
    // hand-edited schedule would silently not mean what it says.
    std::string extra;
    if (ls >> extra) return fail(lineno, "trailing tokens '" + extra + "'");
  }
  if (!saw_magic) return fail(lineno, "missing schedule header");
  for (const WorkOp& op : s.ops) {
    if (op.slot >= s.slots) {
      return fail(lineno, "op slot out of range of 'slots'");
    }
  }
  out = std::move(s);
  return true;
}

}  // namespace dodo::fuzz
