// Randomized schedule generation: expands a single 64-bit seed into a
// complete Schedule — cluster shape, workload op list, and fault event
// list — deterministically. Same seed, same schedule, forever; reporting a
// fuzz failure is reporting its seed.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "fuzz/schedule.hpp"

namespace dodo::fuzz {

struct GenParams {
  // Workload volume. The default profile is open/close-churn heavy: the
  // reply-cache class of bug only fires when alloc/free traffic overflows a
  // small cache within one retransmit horizon.
  std::size_t min_ops = 40;
  std::size_t max_ops = 140;
  std::size_t min_fault_windows = 1;
  std::size_t max_fault_windows = 6;
  /// Fault times are drawn in [first_fault, horizon]. The horizon must
  /// match the sim time the op list actually spans (ops take single-digit
  /// milliseconds; interleaved sleep ops supply the rest) or faults land on
  /// an idle cluster and probe nothing.
  SimTime first_fault = 60 * kMillisecond;
  SimTime horizon = 2500 * kMillisecond;
  /// Sustained loss bursts up to this rate — far beyond tuned IID rates,
  /// which is the point: replies must die often enough to exercise the
  /// retransmit/reply-cache machinery.
  double max_loss_rate = 0.40;
};

/// Pure function of (seed, params).
[[nodiscard]] Schedule generate_schedule(std::uint64_t seed,
                                         const GenParams& params = {});

}  // namespace dodo::fuzz
