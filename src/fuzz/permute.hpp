// Seed-driven message-delivery permuter.
//
// Given n messages in send order, produces the delivery sequence an
// adversarial-but-plausible network would hand the receiver: each message
// may be dropped, duplicated, or displaced from its slot by at most
// `reorder_window` positions. The plan is a pure function of (n, seed,
// params), so any failure reproduces from the seed alone.
//
// Header-only and dependent only on common/rng.hpp: the transport unit
// tests (test_rtnet, test_usock) include it directly without linking the
// fuzz library, and the fuzz generator reuses it for schedule synthesis.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace dodo::fuzz {

struct PermuteParams {
  double drop_rate = 0.0;       // P(message never delivered)
  double dup_rate = 0.0;        // P(message delivered twice)
  std::size_t reorder_window = 0;  // max forward displacement per swap pass
};

/// Returns the delivery sequence as indices into the send order. An index
/// may appear zero times (dropped), once, or twice (duplicated). With all
/// params zero this is the identity permutation.
inline std::vector<std::size_t> permute_deliveries(std::size_t n,
                                                   std::uint64_t seed,
                                                   const PermuteParams& p) {
  Rng rng(seed ^ 0x70657263756d65ULL);  // "permute" salt
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  // Bounded reorder: stable-sort by a jittered key k_i = i + r_i with
  // r_i uniform in [0, window]. Elements more than `window` apart can
  // never exchange key order, so every element lands within `window`
  // positions of where it was sent — the "bounded badness" real networks
  // exhibit — while nearby pairs invert freely.
  if (p.reorder_window > 0) {
    std::vector<std::pair<std::size_t, std::size_t>> keyed(n);
    for (std::size_t i = 0; i < n; ++i) {
      keyed[i] = {i + static_cast<std::size_t>(
                          rng.below(p.reorder_window + 1)),
                  i};
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (std::size_t i = 0; i < n; ++i) order[i] = keyed[i].second;
  }

  std::vector<std::size_t> out;
  out.reserve(n + n / 4);
  for (std::size_t idx : order) {
    if (p.drop_rate > 0.0 && rng.chance(p.drop_rate)) continue;
    out.push_back(idx);
    if (p.dup_rate > 0.0 && rng.chance(p.dup_rate)) out.push_back(idx);
  }
  return out;
}

}  // namespace dodo::fuzz
