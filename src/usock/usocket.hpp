// The usocket library (paper §4.6, Figure 6).
//
// The paper's Dodo runs over either UDP sockets or U-Net; for programming
// convenience the authors wrote libusocket.a, a UDP-socket-like veneer over
// U-Net's raw MAC-addressed frames. This is that API over the simulated
// U-Net transport: datagram sockets addressed by MAC address (no ports —
// U-Net channels are per-host here), with send/recv, scatter-gather iovec
// variants, and timeouts.
//
// API shape follows Figure 6; calls that block (u_recv*) are coroutines.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "net/transport.hpp"
#include "sim/task.hpp"

namespace dodo::usock {

using macaddr_t = std::array<std::uint8_t, 6>;

/// "xx:xx:xx:xx:xx:xx" -> address. Returns all-zero on parse error.
macaddr_t u_aton(const char* str_addr);

/// address -> "xx:xx:xx:xx:xx:xx"; writes into caller buffer (>= 18 bytes),
/// returns it.
char* u_ntoa(const macaddr_t& macaddr, char* str_addr);

/// Scatter/gather element (mirrors struct iovec).
struct u_iovec {
  void* iov_base;
  std::size_t iov_len;
};

/// One stack instance per simulated node (stands in for the per-process
/// U-Net endpoint table).
class USocketStack {
 public:
  USocketStack(net::Network& net, net::NodeId node);

  /// The MAC address of a node in this simulated segment.
  static macaddr_t mac_of(net::NodeId node);
  static std::optional<net::NodeId> node_of(const macaddr_t& mac);

  [[nodiscard]] macaddr_t local_mac() const { return mac_of(node_); }

  // -- Figure 6 API ----------------------------------------------------------

  /// Creates a socket; buffer sizes are accepted for fidelity (the sim
  /// transport has no finite buffers). Returns usockfd >= 0, or -1.
  int u_socket(int sendbufsize, int recvbufsize);
  int u_close(int usockfd);

  /// Binds the socket to this host's U-Net endpoint; only one bound socket
  /// per stack (one U-Net channel per host pair in our configuration).
  int u_bind(int usockfd, const macaddr_t* macaddr, int nbaddr);

  /// Sets the default destination for u_send.
  int u_connect(int usockfd, const macaddr_t& macaddr);

  /// Sends to the connected peer. Returns bytes sent or -1.
  int u_send(int usockfd, const void* buff, std::size_t len);
  int u_send_iovec(int usockfd, const u_iovec* iov, int iovc);

  /// Receives one datagram (truncating to len). timeout_ms < 0 blocks
  /// forever; returns bytes received or -1 on timeout/bad fd. The sender's
  /// address is stored through `macaddr` when non-null.
  sim::Co<int> u_recv(int usockfd, void* buff, std::size_t len,
                      macaddr_t* macaddr, int timeout_ms);
  sim::Co<int> u_recv_iovec(int usockfd, u_iovec* iov, int* iovc,
                            macaddr_t* macaddr, int timeout_ms);

 private:
  struct USock {
    std::unique_ptr<net::Socket> sock;  // null until bound or first send
    macaddr_t peer{};
    bool connected = false;
    bool bound = false;
  };

  USock* lookup(int fd);
  int ensure_socket(USock& u);

  net::Network& net_;
  net::NodeId node_;
  std::unordered_map<int, USock> socks_;
  int next_fd_ = 0;
};

/// Well-known port the usocket layer claims on each node.
inline constexpr net::Port kUsockPort = 900;

}  // namespace dodo::usock
