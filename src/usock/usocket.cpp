#include "usock/usocket.hpp"

#include <cstdio>
#include <cstring>

namespace dodo::usock {

macaddr_t u_aton(const char* str_addr) {
  macaddr_t mac{};
  unsigned int b[6];
  if (str_addr == nullptr ||
      std::sscanf(str_addr, "%x:%x:%x:%x:%x:%x", &b[0], &b[1], &b[2], &b[3],
                  &b[4], &b[5]) != 6) {
    return macaddr_t{};
  }
  for (int i = 0; i < 6; ++i) {
    if (b[i] > 0xff) return macaddr_t{};
    mac[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(b[i]);
  }
  return mac;
}

char* u_ntoa(const macaddr_t& macaddr, char* str_addr) {
  std::snprintf(str_addr, 18, "%02x:%02x:%02x:%02x:%02x:%02x", macaddr[0],
                macaddr[1], macaddr[2], macaddr[3], macaddr[4], macaddr[5]);
  return str_addr;
}

USocketStack::USocketStack(net::Network& net, net::NodeId node)
    : net_(net), node_(node) {}

macaddr_t USocketStack::mac_of(net::NodeId node) {
  // Locally-administered OUI 02:0d:0d ("dodo"), node id in the low 24 bits.
  return macaddr_t{0x02, 0x0d, 0x0d,
                   static_cast<std::uint8_t>(node >> 16),
                   static_cast<std::uint8_t>(node >> 8),
                   static_cast<std::uint8_t>(node)};
}

std::optional<net::NodeId> USocketStack::node_of(const macaddr_t& mac) {
  if (mac[0] != 0x02 || mac[1] != 0x0d || mac[2] != 0x0d) return std::nullopt;
  return (static_cast<net::NodeId>(mac[3]) << 16) |
         (static_cast<net::NodeId>(mac[4]) << 8) | mac[5];
}

USocketStack::USock* USocketStack::lookup(int fd) {
  auto it = socks_.find(fd);
  return it == socks_.end() ? nullptr : &it->second;
}

int USocketStack::u_socket(int sendbufsize, int recvbufsize) {
  if (sendbufsize < 0 || recvbufsize < 0) return -1;
  const int fd = next_fd_++;
  socks_[fd] = USock{};
  return fd;
}

int USocketStack::u_close(int usockfd) {
  return socks_.erase(usockfd) > 0 ? 0 : -1;
}

int USocketStack::ensure_socket(USock& u) {
  if (u.sock) return 0;
  u.sock = u.bound ? net_.open(node_, kUsockPort)
                   : net_.open_ephemeral(node_);
  return 0;
}

int USocketStack::u_bind(int usockfd, const macaddr_t* macaddr, int nbaddr) {
  USock* u = lookup(usockfd);
  if (u == nullptr || macaddr == nullptr || nbaddr < 1) return -1;
  // The bound address must name this host.
  bool ours = false;
  for (int i = 0; i < nbaddr; ++i) {
    ours = ours || macaddr[i] == mac_of(node_);
  }
  if (!ours) return -1;
  if (u->sock) return -1;  // already in use
  u->bound = true;
  ensure_socket(*u);
  return 0;
}

int USocketStack::u_connect(int usockfd, const macaddr_t& macaddr) {
  USock* u = lookup(usockfd);
  if (u == nullptr || !node_of(macaddr).has_value()) return -1;
  u->peer = macaddr;
  u->connected = true;
  return 0;
}

int USocketStack::u_send(int usockfd, const void* buff, std::size_t len) {
  u_iovec iov{const_cast<void*>(buff), len};
  return u_send_iovec(usockfd, &iov, 1);
}

int USocketStack::u_send_iovec(int usockfd, const u_iovec* iov, int iovc) {
  USock* u = lookup(usockfd);
  if (u == nullptr || !u->connected || iov == nullptr || iovc < 1) return -1;
  ensure_socket(*u);
  net::Buf payload;
  for (int i = 0; i < iovc; ++i) {
    const auto* p = static_cast<const std::uint8_t*>(iov[i].iov_base);
    payload.insert(payload.end(), p, p + iov[i].iov_len);
  }
  if (static_cast<Bytes64>(payload.size()) >
      net_.params().max_datagram) {
    return -1;  // U-Net frames don't fragment; the bulk layer's job
  }
  const auto node = node_of(u->peer);
  if (!node) return -1;
  const auto n = static_cast<int>(payload.size());
  u->sock->send(net::Endpoint{*node, kUsockPort}, {}, std::move(payload));
  return n;
}

sim::Co<int> USocketStack::u_recv(int usockfd, void* buff, std::size_t len,
                                  macaddr_t* macaddr, int timeout_ms) {
  u_iovec iov{buff, len};
  int iovc = 1;
  co_return co_await u_recv_iovec(usockfd, &iov, &iovc, macaddr, timeout_ms);
}

sim::Co<int> USocketStack::u_recv_iovec(int usockfd, u_iovec* iov, int* iovc,
                                        macaddr_t* macaddr, int timeout_ms) {
  USock* u = lookup(usockfd);
  if (u == nullptr || iov == nullptr || iovc == nullptr || *iovc < 1) {
    co_return -1;
  }
  ensure_socket(*u);
  std::optional<net::Message> msg;
  if (timeout_ms < 0) {
    msg = co_await u->sock->recv();
  } else {
    msg = co_await u->sock->recv_for(millis(timeout_ms));
  }
  if (!msg) co_return -1;
  if (macaddr != nullptr) *macaddr = mac_of(msg->src.node);
  // Scatter into the iovec array; truncate like a datagram socket.
  std::size_t off = 0;
  int used = 0;
  for (int i = 0; i < *iovc && off < msg->body.size(); ++i) {
    const std::size_t n = std::min(iov[i].iov_len, msg->body.size() - off);
    std::memcpy(iov[i].iov_base, msg->body.data() + off, n);
    off += n;
    used = i + 1;
  }
  *iovc = used;
  co_return static_cast<int>(off);
}

}  // namespace dodo::usock
