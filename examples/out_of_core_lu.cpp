// Out-of-core LU factorization through the region-management library.
//
// The workload the paper calls `lu`: a dense matrix that does not fit in
// local memory is factored slab by slab; each slab update re-reads every
// earlier slab (a triangle scan), which Dodo turns into remote-memory hits
// instead of disk seeks. The first-in replacement policy is the right one
// for this pattern (§4.5). This example runs a real (small) factorization,
// verifies L*U against the original matrix, and shows where the bytes came
// from.
//
// Run:  ./examples/out_of_core_lu
#include <cstdio>

#include "apps/block_io.hpp"
#include "apps/lu.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

using namespace dodo;

int main() {
  apps::LuConfig lu;
  lu.n = 128;
  lu.slab_cols = 16;
  lu.files = 4;

  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 16_KiB;  // tiny on purpose: force the remote tier
  cfg.policy = manage::Policy::kFirstIn;
  cfg.seed = 3;
  cluster::Cluster c(cfg);

  const int fd = c.create_dataset("matrix.dat", lu.total_bytes());
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  const auto a = apps::lu_make_matrix(lu);
  apps::lu_store_matrix(*store, lu, a);
  std::printf("matrix: %dx%d doubles (%lld KB), %d slabs x %d files\n", lu.n,
              lu.n, static_cast<long long>(lu.total_bytes() / 1024),
              lu.slabs(), lu.files);

  apps::DodoBlockIo io(*c.manager(), fd, lu.total_bytes(), lu.chunk_bytes());
  apps::RunStats stats;
  const SimTime elapsed = c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await apps::run_lu_real(cl, io, lu, &stats);
  });

  const auto packed = apps::lu_load_matrix(*store, lu);
  const double err = apps::lu_verify(packed, a, lu.n);
  std::printf("factorized in %.2f simulated seconds, %llu chunk requests\n",
              to_seconds(elapsed),
              static_cast<unsigned long long>(stats.requests));
  std::printf("max |L*U - A| = %.2e  (%s)\n", err,
              err < 1e-8 ? "correct" : "WRONG");

  const auto& m = c.manager()->metrics();
  std::printf(
      "bytes served: %.1f MB local cache, %.1f MB remote memory, %.1f MB "
      "disk\n",
      static_cast<double>(m.bytes_from_local) / 1e6,
      static_cast<double>(m.bytes_from_remote) / 1e6,
      static_cast<double>(m.bytes_from_disk) / 1e6);
  return 0;
}
