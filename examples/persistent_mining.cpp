// Persistent-dataset mining — the dmine pattern from the paper.
//
// Applications that process persistent data can leave their regions cached
// in remote memory between runs: the program detaches instead of closing,
// and the next run's mopen re-attaches to the same (inode, offset) keys.
// This example mines association rules twice over the same transaction
// file; run 1 pulls everything from disk and populates remote memory, run 2
// never touches the disk.
//
// Run:  ./examples/persistent_mining
#include <cstdio>

#include "apps/block_io.hpp"
#include "apps/dmine.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

using namespace dodo;

int main() {
  apps::DmineConfig mine;
  mine.num_transactions = 4000;
  mine.num_items = 100;
  mine.avg_items = 8;
  mine.num_patterns = 5;
  mine.pattern_prob = 0.5;
  mine.min_support = 0.08;
  mine.block = 16_KiB;

  const auto txns = apps::generate_transactions(mine);
  const auto bytes = apps::encode_transactions(txns, mine.block);
  const auto dataset = static_cast<Bytes64>(bytes.size());

  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 2_MiB;
  cfg.local_cache = 64_KiB;  // much smaller than the dataset
  cfg.policy = manage::Policy::kFirstIn;  // multi-scan: first-in (§4.5)
  cfg.seed = 9;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("transactions.dat", dataset);
  c.fs().store_of_inode(c.fs().inode_of(fd))->write(0, dataset, bytes.data());
  std::printf("dataset: %u transactions, %lld KB, local cache only %lld KB\n",
              mine.num_transactions, static_cast<long long>(dataset / 1024),
              static_cast<long long>(cfg.local_cache / 1024));

  auto mine_once = [&](const char* label) {
    apps::DodoBlockIo io(*c.manager(), fd, dataset, mine.block);
    apps::RunStats stats;
    std::vector<std::vector<apps::ItemSet>> levels;
    const auto disk_before = c.fs().disk().metrics().reads;
    const SimTime t = c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
      co_await apps::run_dmine_real(cl, io, mine, dataset, &stats, &levels);
    });
    std::printf("%s: %.2f s simulated, %llu disk reads", label, to_seconds(t),
                static_cast<unsigned long long>(
                    c.fs().disk().metrics().reads - disk_before));
    std::printf(", frequent itemsets per level:");
    for (const auto& level : levels) std::printf(" %zu", level.size());
    std::printf("\n");
    return t;
  };

  const SimTime run1 = mine_once("run 1 (cold: disk -> remote memory)");

  // Exit without freeing regions — the dmine persistence mode — then start
  // a "new process" (fresh client + region manager, same client id).
  c.run_app([](cluster::Cluster& cl) -> sim::Co<void> {
    co_await cl.dodo()->detach();
  });
  c.restart_client();

  const SimTime run2 = mine_once("run 2 (warm: remote memory only)  ");
  std::printf("speedup from persistent remote regions: %.2fx\n",
              to_seconds(run1) / to_seconds(run2));
  return 0;
}
