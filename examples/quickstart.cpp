// Quickstart: the Dodo API in five calls.
//
// Builds a small simulated cluster (central manager + three idle
// workstations), then uses the paper's §3.2 interface directly:
//   mopen  - allocate a remote memory region backed by a file range
//   mwrite - write through to remote memory AND the backing file
//   mread  - read back from remote memory
//   msync  - wait until the backing file is on disk
//   mclose - release the region
//
// Run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"

using namespace dodo;

int main() {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 3;
  cfg.imd_pool = 32_MiB;
  cfg.seed = 7;
  cluster::Cluster c(cfg);

  // A writable backing file on the application node's disk. Every Dodo
  // region is backed by a file range; remote memory is a clean cache.
  const int fd = c.create_dataset("demo.dat", 16_MiB);

  c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
    runtime::DodoClient& dodo = *cl.dodo();

    // 1 MiB region backed by bytes [0, 1 MiB) of demo.dat.
    const int rd = co_await dodo.mopen(1_MiB, fd, 0);
    if (rd < 0) {
      std::printf("mopen failed, dodo_errno=%d\n", dodo_errno());
      co_return;
    }
    std::printf("mopen    -> region descriptor %d\n", rd);

    std::vector<std::uint8_t> out(64_KiB);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(i % 251);
    }
    const SimTime t0 = cl.sim().now();
    const Bytes64 wrote = co_await dodo.mwrite(rd, 0, out.data(), 64_KiB);
    std::printf("mwrite   -> %lld bytes (disk + remote in parallel, %.2f ms)\n",
                static_cast<long long>(wrote),
                to_millis(cl.sim().now() - t0));

    std::vector<std::uint8_t> in(64_KiB, 0);
    const SimTime t1 = cl.sim().now();
    const Bytes64 got = co_await dodo.mread(rd, 0, in.data(), 64_KiB);
    std::printf("mread    -> %lld bytes from remote memory (%.2f ms)\n",
                static_cast<long long>(got), to_millis(cl.sim().now() - t1));
    std::printf("           data %s\n", in == out ? "verified" : "MISMATCH");

    const int synced = co_await dodo.msync(rd);
    std::printf("msync    -> %d (backing file durable)\n", synced);

    const int closed = co_await dodo.mclose(rd);
    std::printf("mclose   -> %d\n", closed);

    std::printf("\nclient metrics: %llu remote reads, %llu remote writes\n",
                static_cast<unsigned long long>(dodo.metrics().remote_reads),
                static_cast<unsigned long long>(dodo.metrics().remote_writes));
  });

  std::printf("cluster: %zu idle hosts registered at the central manager\n",
              c.cmd().idle_host_count());
  return 0;
}
