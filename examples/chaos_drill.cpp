// Chaos drill: runs a scanning workload while a deterministic fault
// schedule tears the cluster apart — a loss burst, a host crash and
// epoch-bumped restart, a graceful reclaim, a manager blackout and later a
// manager restart — and shows the three artifacts the fault subsystem
// produces:
//   1. the structured fault log (every applied fault, sim-timestamped),
//   2. per-sweep data digests compared against a disk-only baseline run
//      (the paper's "failure degrades to disk" claim, checked byte-exactly),
//   3. the post-quiesce leak audit over imd pools vs. the central directory.
//
// Run:  ./examples/chaos_drill [seed]
//
// Exit code 0 iff every sweep matched the baseline, every planned fault
// fired, and no pool bytes leaked.
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/block_io.hpp"
#include "cluster/cluster.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"

using namespace dodo;

namespace {

constexpr Bytes64 kDataset = 4_MiB;
constexpr Bytes64 kBlock = 32_KiB;

cluster::ClusterConfig config(std::uint64_t seed, bool use_dodo) {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 8_MiB;
  cfg.local_cache = 512_KiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.seed = seed;
  cfg.use_dodo = use_dodo;
  cfg.client.bulk.max_retries = 50;
  return cfg;
}

void fill(cluster::Cluster& c, int fd) {
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  std::vector<std::uint8_t> data(static_cast<std::size_t>(kDataset));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((i * 167 + 43) & 0xff);
  }
  store->write(0, kDataset, data.data());
}

sim::Co<std::uint64_t> sweep(cluster::Cluster& c, apps::BlockIo& io) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(kBlock));
  std::uint64_t h = 1469598103934665603ULL;
  for (Bytes64 off = 0; off < kDataset; off += kBlock) {
    co_await io.read(off, buf.data(), kBlock);
    for (std::uint8_t b : buf) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    co_await c.sim().sleep(5_ms);
  }
  co_return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "-v") {
      Logger::instance().set_level(LogLevel::kDebug);
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  // Baseline: the same sweep on a disk-only deployment.
  std::uint64_t baseline = 0;
  {
    cluster::Cluster c(config(seed, /*use_dodo=*/false));
    const int fd = c.create_dataset("data", kDataset);
    fill(c, fd);
    apps::FsBlockIo io(c.fs(), fd);
    c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
      baseline = co_await sweep(cl, io);
      co_await io.finish(false);
    });
  }
  std::printf("disk-only baseline digest: %016llx\n\n",
              static_cast<unsigned long long>(baseline));

  cluster::Cluster c(config(seed, /*use_dodo=*/true));
  const int fd = c.create_dataset("data", kDataset);
  fill(c, fd);
  apps::DodoBlockIo io(*c.manager(), fd, kDataset, kBlock);

  fault::FaultPlan plan;
  plan.loss_burst(300_ms, 1_s, 0.20)
      .imd_crash(500_ms, 0)
      .partition(800_ms, 700_ms, c.app_node(), c.host_node(2))
      .host_evict(1500_ms, 3)
      .cmd_blackout(1800_ms, 600_ms)
      .imd_restart(2500_ms, 0)
      .host_recruit(3_s, 3)
      .cmd_restart(4200_ms);
  fault::FaultInjector inj(c, plan);
  inj.arm();

  std::vector<std::uint64_t> digests;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    for (int s = 0; s < 400 && (s < 4 || !inj.done()); ++s) {
      digests.push_back(co_await sweep(cl, io));
    }
    co_await io.finish(false);
  });

  std::printf("fault log (%zu/%zu planned events applied):\n",
              inj.log().size(), plan.size());
  std::printf("%s\n", inj.log().dump().c_str());

  bool all_match = true;
  for (std::size_t s = 0; s < digests.size(); ++s) {
    const bool match = digests[s] == baseline;
    all_match = all_match && match;
    std::printf("sweep %zu digest: %016llx  [%s]\n", s,
                static_cast<unsigned long long>(digests[s]),
                match ? "MATCH" : "DIVERGED");
  }

  const std::string leaks = fault::leak_report(c);
  std::printf("\nleak audit: %s\n",
              leaks.empty() ? "clean (imd pools == cmd directory)"
                            : leaks.c_str());
  const auto& m = c.dodo()->metrics();
  std::printf("client: %llu nodes dropped, %llu descriptors reaped, "
              "%zu live descriptors\n",
              static_cast<unsigned long long>(m.nodes_dropped),
              static_cast<unsigned long long>(m.descriptors_dropped),
              c.dodo()->region_table_size());

  const bool ok = all_match && leaks.empty() && inj.done();
  std::printf("\n%s\n", ok ? "CHAOS DRILL PASSED: failure degraded to disk, "
                             "byte-exact, zero leaks"
                           : "CHAOS DRILL FAILED");
  return ok ? 0 : 1;
}
