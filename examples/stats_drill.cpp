// Stats drill: exercises the observability layer end to end while a chaos
// schedule runs underneath it. A scanning workload reads a dataset through
// the Dodo client as faults fire (loss burst, imd crash + epoch-bumped
// restart, manager blackout); concurrently the central manager scrapes the
// whole cluster over the wire (kStatsReq/kStatsRep against every rmd's
// stats port) on a fixed cadence. The drill then checks that the numbers a
// live operator would see are the numbers the system actually produced:
//
//   1. every mread is conserved: remote_hits + mreads_degraded == mreads,
//   2. the chaos schedule visibly shows up (disk fallbacks under faults),
//   3. the wire scrape agrees with the in-process snapshot at quiesce,
//   4. trace spans recorded a consistent tree (parents precede children).
//
// Run:  ./examples/stats_drill [seed] [-v] [--trace-json OUT.json]
//                              [--trace-tsv OUT.tsv]
//
// --trace-json dumps the cluster-merged trace of the whole drill — chaos
// schedule included — as Chrome trace-event JSON, loadable at
// https://ui.perfetto.dev (one Perfetto "process" per host, one "thread"
// per daemon). --trace-tsv writes the same spans as "# dodo trace v1" TSV,
// the input format of tools/trace_report (critical-path text report).
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/block_io.hpp"
#include "cluster/cluster.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"

using namespace dodo;

namespace {

constexpr Bytes64 kDataset = 4_MiB;
constexpr Bytes64 kBlock = 32_KiB;

sim::Co<void> sweep(cluster::Cluster& c, apps::BlockIo& io) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(kBlock));
  for (Bytes64 off = 0; off < kDataset; off += kBlock) {
    co_await io.read(off, buf.data(), kBlock);
    co_await c.sim().sleep(5_ms);
  }
}

// A free coroutine, not a capturing lambda: reference parameters live in the
// coroutine frame, so they stay valid across suspensions. They all point at
// locals of the app coroutine below, which blocks on `wg` before returning.
sim::Co<void> scraper(cluster::Cluster& cl, const bool& scraping,
                      std::vector<obs::MetricsSnapshot>& scrapes,
                      sim::WaitGroup& wg) {
  while (scraping) {
    co_await cl.sim().sleep(400_ms);
    scrapes.push_back(co_await cl.cmd().scrape_cluster());
  }
  wg.done();
}

void print_counter(const obs::MetricsSnapshot& s, const char* name) {
  std::printf("  %-32s %llu\n", name,
              static_cast<unsigned long long>(s.counter_value(name)));
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  const char* trace_json_path = nullptr;
  const char* trace_tsv_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "-v") {
      Logger::instance().set_level(LogLevel::kDebug);
    } else if (std::string(argv[i]) == "--trace-json" && i + 1 < argc) {
      trace_json_path = argv[++i];
    } else if (std::string(argv[i]) == "--trace-tsv" && i + 1 < argc) {
      trace_tsv_path = argv[++i];
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 8_MiB;
  cfg.local_cache = 512_KiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.seed = seed;
  cfg.record_spans = true;
  cfg.client.bulk.max_retries = 50;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("data", kDataset);
  apps::DodoBlockIo io(*c.manager(), fd, kDataset, kBlock);

  // The first two sweeps (~1.3 s) run clean so remote memory actually fills
  // up; only then does the schedule start tearing hosts down, so the mreads
  // it breaks are real remote reads that must fall back to disk.
  fault::FaultPlan plan;
  plan.loss_burst(1500_ms, 600_ms, 0.30)
      .imd_crash(1700_ms, 0)
      .cmd_blackout(2500_ms, 400_ms)
      .imd_restart(3200_ms, 0)
      .host_evict(3500_ms, 2)
      .host_recruit(4_s, 2);
  fault::FaultInjector inj(c, plan);
  inj.arm();

  // Scrapes gathered over the wire mid-chaos, then one final one at quiesce.
  std::vector<obs::MetricsSnapshot> scrapes;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    bool scraping = true;
    sim::WaitGroup wg(cl.sim());
    wg.add(1);
    cl.sim().spawn(scraper(cl, scraping, scrapes, wg));
    for (int s = 0; s < 40 && (s < 4 || !inj.done()); ++s) {
      co_await sweep(cl, io);
    }
    co_await io.finish(false);
    scraping = false;
    co_await wg.wait();
    // One last sweep after everything settled, then the quiesce scrape.
    co_await cl.sim().sleep(200_ms);
    scrapes.push_back(co_await cl.cmd().scrape_cluster());
  });

  std::printf("fault log (%zu/%zu planned events applied):\n%s\n",
              inj.log().size(), plan.size(), inj.log().dump().c_str());

  const obs::MetricsSnapshot local = c.metrics_snapshot();
  const obs::MetricsSnapshot& wire = scrapes.back();
  std::printf("%zu wire scrapes; final has %zu metrics, local snapshot %zu\n",
              scrapes.size(), wire.size(), local.size());
  std::printf("client view at quiesce:\n");
  print_counter(local, "client.mreads_total");
  print_counter(local, "client.remote_hits");
  print_counter(local, "client.mreads_degraded");
  print_counter(local, "client.disk_fallbacks");
  print_counter(local, "client.bulk.chunks_retransmitted");
  std::printf("cluster view at quiesce (wire scrape):\n");
  print_counter(wire, "cmd.alloc_attempts");
  print_counter(wire, "cmd.stats_scrape_failures");
  print_counter(wire, "imd.reads_served");
  print_counter(wire, "rmd.forced_evictions");

  // 1. Conservation: every mread either hit remote memory or degraded to
  // disk for at least one fragment.
  const std::uint64_t mreads = local.counter_value("client.mreads_total");
  const std::uint64_t hits = local.counter_value("client.remote_hits");
  const std::uint64_t degraded = local.counter_value("client.mreads_degraded");
  const std::uint64_t falls = local.counter_value("client.disk_fallbacks");
  const bool conserved = mreads == hits + degraded && degraded <= falls &&
                         mreads > 0;

  // 2. The chaos schedule must be visible in the metrics: an imd crash plus
  // a loss burst forces at least one block back to the disk path.
  const bool chaos_seen = falls > 0 && inj.done();

  // 3. Wire scrape vs in-process snapshot. The scrape runs through each
  // daemon's RPC path while the local snapshot walks the objects directly;
  // at quiesce the monotonic workload counters must agree exactly. (Daemon
  // self-counters like rmd.samples keep ticking, so compare workload ones.)
  bool wire_agrees = true;
  for (const char* name : {"imd.reads_served", "imd.writes_served",
                           "imd.allocs", "cmd.mopens"}) {
    if (wire.counter_value(name) != local.counter_value(name)) {
      std::printf("wire/local disagree on %s: %llu vs %llu\n", name,
                  static_cast<unsigned long long>(wire.counter_value(name)),
                  static_cast<unsigned long long>(local.counter_value(name)));
      wire_agrees = false;
    }
  }

  // 4. Span tree sanity on the cluster-merged trace: ids are
  // allocation-ordered, so a parent must have a smaller id than its
  // children, and quiesce must have closed every span.
  const std::vector<obs::MergedSpan> spans = c.merged_spans();
  bool spans_ok = !spans.empty();
  for (const obs::MergedSpan& m : spans) {
    if (m.span.parent >= m.span.id || m.span.end < m.span.start) {
      spans_ok = false;
    }
  }
  std::printf("%zu spans recorded (%llu dropped, %lld open at quiesce), "
              "tree %s\n",
              spans.size(),
              static_cast<unsigned long long>(c.traces()->dropped()),
              static_cast<long long>(c.spans_open_at_quiesce()),
              spans_ok ? "consistent" : "BROKEN");

  auto dump = [](const char* path, const std::string& text) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
  };
  if (trace_json_path != nullptr) {
    if (!dump(trace_json_path, c.trace_chrome_json())) return 1;
    std::printf("wrote %s (load at https://ui.perfetto.dev)\n",
                trace_json_path);
  }
  if (trace_tsv_path != nullptr) {
    if (!dump(trace_tsv_path, c.trace_tsv())) return 1;
    std::printf("wrote %s (feed to tools/trace_report)\n", trace_tsv_path);
  }

  const bool ok = conserved && chaos_seen && wire_agrees && spans_ok;
  std::printf("\n%s\n", ok ? "STATS DRILL PASSED: conservation held, chaos "
                             "visible, wire scrape exact"
                           : "STATS DRILL FAILED");
  return ok ? 0 : 1;
}
