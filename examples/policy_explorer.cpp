// Region-replacement policy explorer.
//
// The region-management library is modular in its replacement policy
// (§3.3): csetPolicy() switches between LRU, MRU, and first-in. This
// example runs the same two access patterns under each policy and prints
// where the bytes came from — a compact illustration of why the paper's
// dmine/lu use first-in while random working-set workloads want LRU.
//
// Run:  ./examples/policy_explorer
#include <cstdio>
#include <memory>

#include "apps/block_io.hpp"
#include "apps/synthetic.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

using namespace dodo;

namespace {

const char* policy_name(manage::Policy p) {
  switch (p) {
    case manage::Policy::kLru:
      return "LRU";
    case manage::Policy::kMru:
      return "MRU";
    case manage::Policy::kFirstIn:
      return "first-in";
  }
  return "?";
}

void run_one(apps::SyntheticConfig scfg, manage::Policy policy) {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 8_MiB;
  cfg.local_cache = 2_MiB;
  cfg.page_cache_dodo = 512_KiB;
  cfg.policy = policy;
  cfg.seed = 21;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("data", scfg.dataset);
  apps::DodoBlockIo io(*c.manager(), fd, scfg.dataset, scfg.req_size);
  apps::RunStats stats;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await apps::run_synthetic(cl, io, scfg, &stats);
  });
  const auto& m = c.manager()->metrics();
  const double total = static_cast<double>(
      m.bytes_from_local + m.bytes_from_remote + m.bytes_from_disk);
  std::printf("  %-9s total %6.1fs steady %5.1fs | local %4.1f%% remote "
              "%4.1f%% disk %4.1f%%\n",
              policy_name(policy), to_seconds(stats.total()),
              stats.steady_seconds(),
              100.0 * static_cast<double>(m.bytes_from_local) / total,
              100.0 * static_cast<double>(m.bytes_from_remote) / total,
              100.0 * static_cast<double>(m.bytes_from_disk) / total);
}

}  // namespace

int main() {
  apps::SyntheticConfig s;
  s.dataset = 8_MiB;
  s.req_size = 32_KiB;
  s.iterations = 4;
  s.compute_per_req = 1 * kMillisecond;
  s.seed = 5;

  std::printf("multi-scan sequential (dmine/lu-like; dataset 4x local "
              "cache):\n");
  s.pattern = apps::SyntheticConfig::Pattern::kSequential;
  for (const auto p : {manage::Policy::kLru, manage::Policy::kMru,
                       manage::Policy::kFirstIn}) {
    run_one(s, p);
  }

  std::printf("\nhotcold (80%% of references to a 20%% hot set):\n");
  s.pattern = apps::SyntheticConfig::Pattern::kHotcold;
  for (const auto p : {manage::Policy::kLru, manage::Policy::kMru,
                       manage::Policy::kFirstIn}) {
    run_one(s, p);
  }
  return 0;
}
