// Replicated hot regions (DESIGN.md §11): the cmd places up to
// replica_count copies of each fragment on distinct idle hosts, libdodo
// picks a copy per read with power-of-two-choices over per-host latency
// scores and fails over to siblings before touching disk, writes fan out
// write-through to every copy with invalidate-on-write for any copy that
// misses, and the keep-alive loop grows hot regions / shrinks cold ones
// Ditto-style. These tests pin the placement policy, the failover order
// (sibling before disk), the staleness contract (a copy that missed a
// write is never served), the elastic grow/shrink handshake, and the two
// data-path bugfix regressions that ride along (pending-free slot
// accounting under eviction, OR-joined write fan-out aggregation).
// Labeled `replica` (ctest -L replica / the replica test preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "disk/filesystem.hpp"
#include "obs/span.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"

namespace dodo::runtime {
namespace {

using sim::Co;
using sim::Simulator;

// Node 0: cmd. Node 1: application. Nodes 2..1+hosts: imds.
struct ReplicaFixture {
  Simulator sim{47};
  net::Network net;
  obs::SpanRecorder spans;
  core::CentralManager cmd;
  disk::SimFilesystem fs;
  std::vector<std::unique_ptr<core::IdleMemoryDaemon>> imds;
  DodoClient client;
  int fd = -1;

  explicit ReplicaFixture(int hosts, core::CmdParams cp,
                          Bytes64 pool = 16_MiB,
                          ClientParams clp = ClientParams{})
      : net(sim, net::NetParams::unet(),
            static_cast<std::size_t>(hosts) + 2),
        spans(sim),
        cmd(sim, net, 0, cp),
        fs(sim),
        client(sim, net, 1, net::Endpoint{0, core::kCmdPort}, fs,
               make_client_params(&spans, clp)) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      core::ImdParams p;
      p.pool_bytes = pool;
      imds.push_back(std::make_unique<core::IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 2), 1,
          net::Endpoint{0, core::kCmdPort}, p));
      imds.back()->start();
    }
    fs.create("backing", 8_MiB);
    fd = fs.open("backing", disk::OpenMode::kReadWrite);
    client.start();
  }

  static core::CmdParams replicated(int count, int width = 1,
                                    Bytes64 min_fragment = 4_KiB) {
    core::CmdParams p;
    p.replica_count = count;
    p.stripe_width = width;
    p.stripe_min_fragment = min_fragment;
    return p;
  }

  static ClientParams make_client_params(obs::SpanRecorder* rec,
                                         ClientParams p = ClientParams{}) {
    p.spans = rec;
    return p;
  }

  template <typename F>
  void run(F&& body, SimTime limit = 300_s) {
    bool finished = false;
    sim.spawn([](ReplicaFixture& f, F fn, bool& done) -> Co<void> {
      co_await f.sim.sleep(5_ms);  // let daemons register
      co_await fn(f);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run(limit);
    EXPECT_TRUE(finished) << "test body did not complete";
  }

  [[nodiscard]] int hosts_holding_regions() const {
    int n = 0;
    for (const auto& imd : imds) n += imd->region_count() > 0 ? 1 : 0;
    return n;
  }

  /// Hosts (node ids) whose imd currently holds at least one region.
  [[nodiscard]] std::vector<net::NodeId> holding_nodes() const {
    std::vector<net::NodeId> out;
    for (const auto& imd : imds) {
      if (imd->region_count() > 0) out.push_back(imd->node());
    }
    return out;
  }
};

net::Buf pattern(std::size_t n, std::uint8_t salt = 0) {
  net::Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return b;
}

TEST(Replica, CopiesLandOnDistinctHosts) {
  ReplicaFixture fx(3, ReplicaFixture::replicated(2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    // One directory entry, one fragment, two copies on two distinct hosts.
    EXPECT_EQ(f.cmd.region_count(), 1u);
    EXPECT_EQ(f.hosts_holding_regions(), 2);
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 2u);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 1u);
  EXPECT_EQ(fx.cmd.metrics().replicas_placed, 1u);
  EXPECT_EQ(fx.cmd.metrics().replica_shortfalls, 0u);
}

TEST(Replica, SecondaryShortfallIsNonFatal) {
  // One idle host cannot hold three distinct copies: the mandatory primary
  // lands, the secondaries are recorded as shortfalls, and the region works.
  ReplicaFixture fx(1, ReplicaFixture::replicated(3));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 5);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data);
    EXPECT_EQ(f.hosts_holding_regions(), 1);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 1u);
  EXPECT_EQ(fx.cmd.metrics().replicas_placed, 0u);
  EXPECT_EQ(fx.cmd.metrics().replica_shortfalls, 2u);
  // A single copy is not a replica set: reads count as plain remote hits.
  EXPECT_EQ(fx.client.metrics().replica_hits, 0u);
}

TEST(Replica, ComposesWithStriping) {
  // Width 2 at 2 replicas = 4 placements on 4 distinct hosts.
  ReplicaFixture fx(4, ReplicaFixture::replicated(2, 2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 128_KiB;  // 2 x 64 KiB fragments
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 4);
    for (const auto& imd : f.imds) EXPECT_EQ(imd->region_count(), 1u);

    net::Buf data = pattern(static_cast<std::size_t>(rlen), 17);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 2u);
  EXPECT_EQ(fx.cmd.metrics().replicas_placed, 2u);
  EXPECT_EQ(fx.cmd.metrics().striped_regions, 1u);
  // The write fanned out to every copy of every fragment.
  EXPECT_EQ(fx.client.metrics().remote_write_bytes,
            static_cast<std::int64_t>(2 * 128_KiB));
  // Both fragment reads came from a multi-copy set.
  EXPECT_EQ(fx.client.metrics().replica_hits, 2u);
}

TEST(Replica, ReadsFailOverToSiblingBeforeDisk) {
  ReplicaFixture fx(3, ReplicaFixture::replicated(2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 29);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Kill one of the two copy holders before any read samples the hosts.
    // Unsampled copies score as optimistic, so the picker must try the dead
    // copy within the first couple of reads — and every read must still be
    // served entirely from remote memory: the moment the dead copy is
    // selected, the read fails over to the live sibling instead of disk.
    const auto holders = f.holding_nodes();
    EXPECT_EQ(holders.size(), 2u);
    f.net.set_node_up(holders.front(), false);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    for (int i = 0; i < 8; ++i) {
      std::fill(back.begin(), back.end(), 0);
      const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
      EXPECT_EQ(rr.n, rlen);
      EXPECT_EQ(back, data);
      EXPECT_TRUE(rr.disk_ranges.empty());
      EXPECT_TRUE(f.client.active(rd));  // sibling keeps the descriptor alive
    }
  });
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 0u);
  // The dead copy was selected at least once and the read moved on.
  EXPECT_GE(fx.client.metrics().replica_failovers, 1u);
}

TEST(Replica, WriteInvalidatesCopyThatMissedIt) {
  ReplicaFixture fx(3, ReplicaFixture::replicated(2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 31);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 2u);

    // One copy holder dies; the next write cannot reach it. The write still
    // succeeds (disk + the live copy), the dead copy leaves both the local
    // map and the cmd directory, and the descriptor stays active.
    const auto holders = f.holding_nodes();
    EXPECT_EQ(holders.size(), 2u);
    f.net.set_node_up(holders.back(), false);
    net::Buf data2 = pattern(static_cast<std::size_t>(rlen), 37);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data2.data(), rlen), rlen);
    EXPECT_TRUE(f.client.active(rd));
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 1u);

    // The surviving copy serves the NEW bytes from remote memory — a stale
    // read through the invalidated copy is impossible (it is gone).
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
    EXPECT_EQ(rr.n, rlen);
    EXPECT_TRUE(rr.disk_ranges.empty());
    EXPECT_EQ(back, data2);
  });
  EXPECT_EQ(fx.client.metrics().invalidations_sent, 1u);
  EXPECT_EQ(fx.cmd.metrics().invalidations, 1u);
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
}

TEST(Replica, HotRegionGrowsAndColdRegionShrinks) {
  core::CmdParams cp = ReplicaFixture::replicated(1);
  cp.replica_adapt = true;
  cp.replica_max = 2;
  cp.replica_grow_hits = 8;
  cp.replica_shrink_hits = 2;
  ReplicaFixture fx(3, cp);
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 41);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 1u);

    // Hot window: 12 read hits >= replica_grow_hits, reported on the next
    // keep-alive ping. The grow handshake (clone, write-only offer, client
    // ack, generation probe, activate) spans a few keep-alive ticks.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
      EXPECT_EQ(back, data);
    }
    co_await f.sim.sleep(seconds(7.0));
    EXPECT_EQ(f.cmd.metrics().replicas_grown, 1u);
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 2u);
    EXPECT_EQ(f.hosts_holding_regions(), 2);

    // The activated copy serves reads (replica_hits) and takes writes
    // (fan-out to both copies keeps them coherent).
    net::Buf data2 = pattern(static_cast<std::size_t>(rlen), 43);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data2.data(), rlen), rlen);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data2);

    // Cold window: 1 hit <= replica_shrink_hits drops the extra copy and
    // frees its pool bytes; the primary never shrinks away.
    co_await f.sim.sleep(seconds(7.0));
    EXPECT_EQ(f.cmd.metrics().replicas_shrunk, 1u);
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 1u);
    co_await f.sim.sleep(seconds(3.0));
    EXPECT_EQ(f.hosts_holding_regions(), 1);

    // Still byte-exact through the shrunk set, still remote.
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data2);
  });
  EXPECT_GE(fx.client.metrics().replica_updates_applied, 2u);
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
  // Pending-free accounting stayed exact across the shrink's free.
  EXPECT_EQ(fx.cmd.metrics().fragments_pending_free -
                fx.cmd.metrics().fragments_pending_free_resolved,
            fx.cmd.pending_free_count());
}

// Bugfix regression (satellite #1): a pending-free retry slot whose owning
// imd is evicted between retry scheduling and resolution must resolve — the
// old accounting kept retrying a host whose pool was already destroyed,
// leaking the slot (and the gauge) forever.
TEST(Replica, PendingFreeSlotResolvesWhenOwnerEvictedMidRetry) {
  ReplicaFixture fx(3, ReplicaFixture::replicated(2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 53);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Crash one copy holder mid-epoch, then write: invalidate-on-write
    // drops the copy from the directory and queues its fragment on the
    // pending-free retry list. The host is unreachable, so the free RPC
    // cannot resolve — the slot sits in retry.
    const auto holders = f.holding_nodes();
    EXPECT_EQ(holders.size(), 2u);
    const net::NodeId dead = holders.back();
    f.net.set_node_up(dead, false);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    co_await f.sim.sleep(seconds(6.0));  // a scrub tick retries and fails
    EXPECT_EQ(f.cmd.pending_free_count(), 1u);
    EXPECT_EQ(f.cmd.metrics().fragments_pending_free -
                  f.cmd.metrics().fragments_pending_free_resolved,
              f.cmd.pending_free_count());

    // The host is evicted (rmd reports busy; the pool is destroyed) while
    // the retry is still scheduled. The next scrub must resolve the slot:
    // nothing is left to free, and retrying forever leaks it.
    auto sock = f.net.open_ephemeral(1);
    net::Buf h = core::make_header(core::MsgKind::kHostStatus, 1);
    net::Writer w(h);
    w.u32(dead);
    w.u8(0);  // busy
    sock->send(net::Endpoint{0, core::kCmdPort}, std::move(h));
    co_await f.sim.sleep(seconds(6.0));
    EXPECT_EQ(f.cmd.pending_free_count(), 0u);
    EXPECT_EQ(f.cmd.metrics().fragments_pending_free,
              f.cmd.metrics().fragments_pending_free_resolved);
  });
}

// Bugfix regression (satellite #2): the mwrite fan-out join must OR the
// per-copy failure flags. A stale copy that fails fast (its region was
// freed behind the client's back — a missed invalidation) races a slower
// successful sibling; the success completing last must not mask the
// failure, and the failed copy must be invalidated, not served.
TEST(Replica, StaleCopyFailureIsNotMaskedByFastSibling) {
  ReplicaFixture fx(2, ReplicaFixture::replicated(2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 59);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    EXPECT_EQ(f.imds[0]->region_count(), 1u);
    EXPECT_EQ(f.imds[1]->region_count(), 1u);

    // Free one copy's region directly at its imd, behind the client's and
    // the cmd's backs — the copy is now stale storage the client still
    // maps. Its next write fails immediately (unknown region) while the
    // healthy sibling's bulk transfer is still in flight.
    const auto stale = f.imds[1]->region_list();
    EXPECT_EQ(stale.size(), 1u);
    if (stale.empty()) co_return;
    auto sock = f.net.open_ephemeral(1);
    net::Buf h = core::make_header(core::MsgKind::kFreeReq, 999001);
    net::Writer w(h);
    w.u64(stale.front().first);
    sock->send(net::Endpoint{f.imds[1]->node(), core::kImdCtlPort},
               std::move(h));
    (void)co_await sock->recv_for(seconds(1.0));  // drain the free's ack
    EXPECT_EQ(f.imds[1]->region_count(), 0u);

    // The fan-out write: fast failure + slow success. The OR-join must
    // record the failure (invalidating the stale copy) even though the
    // sibling's success lands later.
    net::Buf data2 = pattern(static_cast<std::size_t>(rlen), 61);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data2.data(), rlen), rlen);
    EXPECT_TRUE(f.client.active(rd));
    EXPECT_EQ(f.client.metrics().invalidations_sent, 1u);
    EXPECT_EQ(f.cmd.rd_snapshot().size(), 1u);

    // Staleness oracle, in miniature: no read may return superseded bytes.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
    EXPECT_EQ(rr.n, rlen);
    EXPECT_TRUE(rr.disk_ranges.empty());
    EXPECT_EQ(back, data2);
  });
  EXPECT_EQ(fx.cmd.metrics().invalidations, 1u);
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 0u);
}

TEST(Replica, CountOneMatchesLegacyPlacement) {
  // The default replica_count must reproduce single-copy behavior bit for
  // bit: one copy per fragment, no replica metrics ticking.
  ReplicaFixture fx(3, ReplicaFixture::replicated(1));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 67);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data);
    EXPECT_EQ(f.hosts_holding_regions(), 1);
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 0);
  });
  EXPECT_EQ(fx.cmd.metrics().replicas_placed, 0u);
  EXPECT_EQ(fx.client.metrics().replica_hits, 0u);
  EXPECT_EQ(fx.client.metrics().replica_failovers, 0u);
}

TEST(Replica, McloseFreesEveryCopy) {
  ReplicaFixture fx(4, ReplicaFixture::replicated(2, 2));
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(128_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 4);
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.cmd.region_count(), 0u);
    EXPECT_EQ(f.hosts_holding_regions(), 0);
  });
  EXPECT_EQ(fx.cmd.metrics().frees, 1u);
}

TEST(Replica, WriteBarrierFlushesPendingBatch) {
  // Batched data path regression (DESIGN.md §16): an mwrite landing between
  // queued coalesced mreads must flush the pending batch *first* — the
  // queued reads observe the pre-write bytes, never a torn mix, and the
  // write proceeds only once the batch resolved. A long window timer makes
  // the barrier (not the timer) the only thing that can flush in time.
  ClientParams clp;
  clp.coalesce_window_bytes = 64_KiB;
  clp.coalesce_window = 50 * kMillisecond;
  ReplicaFixture fx(1, ReplicaFixture::replicated(1), 16_MiB, clp);
  fx.run([](ReplicaFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf before = pattern(static_cast<std::size_t>(rlen), 41);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, before.data(), rlen), rlen);

    // Two adjacent reads join one batch and sit pending on the 50ms timer.
    net::Buf got(static_cast<std::size_t>(32_KiB), 0);
    int done = 0;
    DodoClient::ReadResult r0, r1;
    f.client.mread_enqueue(rd, 0, got.data(), 16_KiB,
                           [&](const DodoClient::ReadResult& r) {
                             r0 = r;
                             ++done;
                           });
    f.client.mread_enqueue(rd, 16_KiB,
                           got.data() + static_cast<std::ptrdiff_t>(16_KiB),
                           16_KiB,
                           [&](const DodoClient::ReadResult& r) {
                             r1 = r;
                             ++done;
                           });
    EXPECT_EQ(done, 0);  // still batched, nothing flushed yet

    net::Buf after = pattern(static_cast<std::size_t>(rlen), 43);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, after.data(), rlen), rlen);
    EXPECT_EQ(done, 2);  // the barrier flushed and awaited the batch
    EXPECT_EQ(r0.n, 16_KiB);
    EXPECT_EQ(r1.n, 16_KiB);
    EXPECT_TRUE(r0.filled);
    EXPECT_TRUE(r1.filled);
    EXPECT_TRUE(r0.disk_ranges.empty());
    EXPECT_TRUE(r1.disk_ranges.empty());
    // The queued reads saw the pre-write image, byte for byte.
    EXPECT_TRUE(std::equal(got.begin(), got.end(), before.begin()));

    // A fresh full-window read flushes immediately and sees the new bytes.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, after);
  });
  const auto& m = fx.client.metrics();
  EXPECT_EQ(m.batch_write_barriers, 1u);
  EXPECT_EQ(m.batched_reads, 3u);
  EXPECT_EQ(m.coalesced_mreads, 2u);  // only the 2-op batch coalesced
  EXPECT_EQ(m.batch_flushes, 2u);
  EXPECT_EQ(m.mreads_total, 3u);
  EXPECT_EQ(m.remote_hits, 3u);
  EXPECT_EQ(m.mreads_degraded, 0u);
  EXPECT_EQ(m.disk_fallbacks, 0u);
}

}  // namespace
}  // namespace dodo::runtime
