// Phase-resolved telemetry (DESIGN.md §15): the time-series sampler, the
// per-daemon flight recorder, and the online invariant watchdog.
//
// Unit level: TelemetryTimeline's delta/quantile derivations, the window
// helpers, the JSON/TSV exports and their strict parser, the FlightRecorder
// ring bounds, and HealthMonitor's conservation/rate rules on hand-built
// snapshots. Cluster level: the sim-clock sampler produces an evenly spaced
// timeline; a deliberately broken conservation rule (injected through the
// telemetry mutator test hook) trips the watchdog within one sample
// interval and fires a flight dump; an injected fault lands in the flight
// dump together with the lease/pressure transitions that preceded it; a
// graded-pressure window resolves as a curve (steady window flat, reclaim
// window spiking); and same-seed runs export byte-identical TELEM JSON.
// Labeled `telemetry` (ctest -L telemetry / the telemetry presets).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/block_io.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/simulator.hpp"

namespace dodo {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using obs::FlightEventType;
using obs::MetricsSnapshot;
using obs::TelemetryTimeline;
using sim::Co;

// ---------------------------------------------------------------------------
// TelemetryTimeline unit tests

TEST(Timeline, CounterDeltaGaugeLevelAndVanishedCounter) {
  TelemetryTimeline tl;
  MetricsSnapshot s1;
  s1.set_counter("c.reads", 10);
  s1.set_gauge("g.pool", 100);
  tl.add_sample(1000, s1);

  MetricsSnapshot s2;
  s2.set_counter("c.reads", 25);
  s2.set_gauge("g.pool", 70);
  tl.add_sample(2000, s2);

  // A daemon death removes its counters: the delta goes negative, loudly.
  MetricsSnapshot s3;
  s3.set_gauge("g.pool", 0);
  tl.add_sample(3000, s3);

  EXPECT_EQ(tl.sample_count(), 3u);
  EXPECT_EQ(tl.interval(), 1000);
  EXPECT_EQ(tl.series("c.reads.delta"),
            (std::vector<std::int64_t>{10, 15, -25}));
  EXPECT_EQ(tl.series("g.pool"), (std::vector<std::int64_t>{100, 70, 0}));
  // Unknown names read as all-zero, not a crash.
  EXPECT_EQ(tl.series("nope"), (std::vector<std::int64_t>{0, 0, 0}));
}

TEST(Timeline, HistogramCountDeltaAndQuantiles) {
  TelemetryTimeline tl;
  MetricsSnapshot s1;
  obs::LatencyHistogram h1;
  h1.observe(500);     // bucket <= 1us
  h1.observe(5'000);   // bucket <= 10us
  s1.set_histogram("lat", h1);
  tl.add_sample(1000, s1);

  MetricsSnapshot s2;
  obs::LatencyHistogram h2 = h1;
  for (int i = 0; i < 98; ++i) h2.observe(5'000);
  h2.observe(50'000'000'000);  // overflow bucket
  s2.set_histogram("lat", h2);
  tl.add_sample(2000, s2);

  EXPECT_EQ(tl.series("lat.count.delta"),
            (std::vector<std::int64_t>{2, 99}));
  // Interval 2: 98 observations in the <=10us bucket, one in overflow. The
  // p50 estimate is the 10us bound; p99 (rank ceil(99*.99)=99 of 99, but
  // only 98 sit at <=10us) lands in the overflow bucket, reported as 10x
  // the last bound.
  const auto p50 = tl.series("lat.p50");
  const auto p99 = tl.series("lat.p99");
  EXPECT_EQ(p50[1], 10'000);
  EXPECT_EQ(p99[1], 100'000'000'000);
  // Interval 1: two observations, p50 at the 1us bound, p99 at 10us.
  EXPECT_EQ(p50[0], 1'000);
  EXPECT_EQ(p99[0], 10'000);
}

TEST(Timeline, OverflowBucketReportsTenTimesLastBound) {
  TelemetryTimeline tl;
  MetricsSnapshot s1;
  obs::LatencyHistogram h;
  h.observe(50'000'000'000);  // beyond the 10s last bound
  s1.set_histogram("lat", h);
  tl.add_sample(1000, s1);
  EXPECT_EQ(tl.series("lat.p50")[0], 100'000'000'000);
}

TEST(Timeline, WindowHelpersUseHalfOpenLoExclusiveWindow) {
  TelemetryTimeline tl;
  for (int i = 1; i <= 4; ++i) {
    MetricsSnapshot s;
    s.set_counter("c", static_cast<std::uint64_t>(i * 10));
    tl.add_sample(i * 1000, s);
  }
  // Deltas: 10, 10, 10, 10 at t = 1000..4000. Window (1000, 3000].
  EXPECT_EQ(tl.window_sum("c.delta", 1000, 3000), 20);
  EXPECT_EQ(tl.window_max("c.delta", 1000, 3000), 10);
  EXPECT_EQ(tl.window_sum("c.delta", 5000, 9000), 0);
}

TEST(Timeline, ExportJsonRoundTripsAndDropsAllZeroSeries) {
  TelemetryTimeline tl;
  for (int i = 1; i <= 3; ++i) {
    MetricsSnapshot s;
    s.set_counter("live", static_cast<std::uint64_t>(i));
    s.set_counter("dead", 0);  // all-zero delta series: dropped on export
    s.set_gauge("level", 7 * i);
    tl.add_sample(i * 500, s);
  }
  const std::string json =
      TelemetryTimeline::export_json({{"run", &tl}});
  TelemetryTimeline::ParsedExport parsed;
  std::string err;
  ASSERT_TRUE(TelemetryTimeline::parse_export(json, parsed, &err)) << err;
  ASSERT_EQ(parsed.size(), 1u);
  const auto& run = parsed.at("run");
  EXPECT_EQ(run.t, (std::vector<std::int64_t>{500, 1000, 1500}));
  EXPECT_EQ(run.series.at("live.delta"),
            (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_EQ(run.series.at("level"), (std::vector<std::int64_t>{7, 14, 21}));
  EXPECT_EQ(run.series.count("dead.delta"), 0u);

  // The parser is strict: corrupt documents fail with a why.
  TelemetryTimeline::ParsedExport junk;
  EXPECT_FALSE(TelemetryTimeline::parse_export("{\"v\":2}", junk, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(TelemetryTimeline::parse_export(json + "x", junk, &err));
}

TEST(Timeline, ExportTsvHasHeaderAndOneRowPerSample) {
  TelemetryTimeline tl;
  for (int i = 1; i <= 2; ++i) {
    MetricsSnapshot s;
    s.set_counter("c", static_cast<std::uint64_t>(i));
    tl.add_sample(i * 100, s);
  }
  const std::string tsv = TelemetryTimeline::export_tsv({{"arm", &tl}});
  EXPECT_NE(tsv.find("# dodo telemetry v1 label=arm samples=2"),
            std::string::npos);
  EXPECT_NE(tsv.find("t_ns\tc.delta"), std::string::npos);
  EXPECT_NE(tsv.find("100\t1"), std::string::npos);
  EXPECT_NE(tsv.find("200\t1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder unit tests

TEST(Flight, RingEvictsOldestAndCountsDrops) {
  sim::Simulator sim{1};
  obs::FlightRecorder rec(sim, "imd", /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.record(FlightEventType::kLeaseGrant, i);
  }
  EXPECT_EQ(rec.total(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().a, 6);  // oldest retained
  EXPECT_EQ(evs.back().a, 9);
}

TEST(Flight, DomainDumpMergesTimeSortedWithTotals) {
  sim::Simulator sim{1};
  obs::FlightDomain dom(sim, 8);
  dom.recorder("cmd0")->record(FlightEventType::kRecruit, 1);
  dom.recorder("host0.imd")
      ->record(FlightEventType::kLeaseGrant, 42, 4096, 0, "r42");
  const std::string dump = dom.dump("test-reason");
  EXPECT_NE(dump.find("# dodo flight v1 reason=test-reason"),
            std::string::npos);
  EXPECT_NE(dump.find("# recorder cmd0 total=1 dropped=0"),
            std::string::npos);
  EXPECT_NE(dump.find("recruit"), std::string::npos);
  EXPECT_NE(dump.find("lease_grant"), std::string::npos);
  EXPECT_NE(dump.find("r42"), std::string::npos);
  EXPECT_EQ(dom.total_events(), 2u);
  EXPECT_EQ(dom.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// HealthMonitor unit tests

MetricsSnapshot healthy_sample() {
  MetricsSnapshot s;
  s.set_counter("client.mreads_total", 100);
  s.set_counter("client.remote_hits", 90);
  s.set_counter("client.mreads_degraded", 5);
  s.set_counter("client.disk_fallbacks", 5);
  s.set_counter("cmd.replica_shortfalls", 0);
  s.set_gauge("imd.pool_used_bytes", 4096);
  s.set_gauge("imd.pool_region_bytes", 4096);
  s.set_gauge("imd.lease_live_fenced", 0);
  s.set_gauge("obs.spans_open", 2);
  return s;
}

TEST(Health, CleanSampleProducesNoViolations) {
  obs::HealthMonitor mon({});
  const auto v = mon.on_sample(1000, healthy_sample());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(mon.last_sample_ok());
  const MetricsSnapshot hs = mon.health_snapshot();
  EXPECT_EQ(hs.counter_value("health.samples"), 1u);
  EXPECT_EQ(hs.counter_value("health.violations"), 0u);
  EXPECT_EQ(hs.gauge_value("health.ok"), 1);
}

TEST(Health, ConservationRulesTripOnFirstBadSample) {
  obs::HealthMonitor mon({});
  MetricsSnapshot bad = healthy_sample();
  bad.set_counter("client.remote_hits", 200);  // hits > total
  bad.set_gauge("imd.pool_region_bytes", 1);          // pool mismatch
  bad.set_gauge("imd.lease_live_fenced", 3);          // resurrection
  const auto v = mon.on_sample(1000, bad);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].rule, "conservation.mreads");
  EXPECT_EQ(v[1].rule, "conservation.pool");
  EXPECT_EQ(v[2].rule, "lease.no_resurrection");
  EXPECT_FALSE(mon.last_sample_ok());
  EXPECT_EQ(mon.health_snapshot().gauge_value("health.ok"), 0);
  EXPECT_EQ(mon.health_snapshot().counter_value(
                "health.violations.conservation.pool"),
            1u);
}

TEST(Health, RateRulesNeedAPreviousSampleAndThresholds) {
  obs::HealthConfig cfg;
  cfg.disk_fallback_spike = 10;
  cfg.span_leak_samples = 2;
  obs::HealthMonitor mon(cfg);

  // First sample: rate rules have no previous to diff against (the span
  // streak counts 2 > 0, but stays under the 2-sample threshold).
  EXPECT_TRUE(mon.on_sample(1000, healthy_sample()).empty());

  MetricsSnapshot s2 = healthy_sample();
  s2.set_counter("client.disk_fallbacks", 100);  // +95 > 10: spike
  // mreads conservation must keep up with the edited fallbacks count.
  s2.set_counter("client.mreads_degraded", 100);
  s2.set_counter("client.mreads_total", 200);
  auto v = mon.on_sample(2000, s2);  // spans_open flat: streak resets
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "rate.disk_fallback_spike");

  MetricsSnapshot s3 = s2;
  s3.set_gauge("obs.spans_open", 3);  // growing, streak 1
  EXPECT_TRUE(mon.on_sample(3000, s3).empty());
  MetricsSnapshot s4 = s3;
  s4.set_gauge("obs.spans_open", 4);  // streak 2: leak rule fires
  v = mon.on_sample(4000, s4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "rate.span_leak");
  // The rule re-arms: a flat sample then two more growth samples refire.
  EXPECT_TRUE(mon.on_sample(5000, s4).empty());
  EXPECT_EQ(mon.health_snapshot().counter_value(
                "health.violations.rate.span_leak"),
            1u);
}

// ---------------------------------------------------------------------------
// Cluster integration

ClusterConfig telemetry_config(std::uint64_t seed, bool leases = false) {
  ClusterConfig cfg;
  cfg.imd_hosts = 3;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 256_KiB;
  cfg.page_cache_dodo = 128_KiB;
  cfg.seed = seed;
  cfg.materialize = false;  // phantom data: these tests assert telemetry
  cfg.telemetry.sample_interval = millis(100);
  cfg.telemetry.flight = true;
  if (leases) {
    cfg.imd.lease_epochs = true;
    cfg.cmd.lease_epochs = true;
    cfg.cmd.keepalive_interval = millis(500);
    cfg.imd.lease_ttl = seconds(3.0);
    cfg.imd.lease_grace = seconds(1.5);
  }
  return cfg;
}

/// mopen + write + a paced read loop until `until` sim time.
Co<void> paced_sweep(Cluster& cl, int fd, Bytes64 len, SimTime until) {
  auto* d = cl.dodo();
  const int rd = co_await d->mopen(len, fd, 0);
  EXPECT_GE(rd, 0);
  co_await d->mwrite(rd, 0, nullptr, len);
  const Bytes64 block = 16_KiB;
  while (cl.sim().now() < until) {
    for (Bytes64 off = 0; off + block <= len; off += block) {
      co_await d->mread(rd, off, nullptr, block);
      co_await cl.sim().sleep(millis(2));
      if (cl.sim().now() >= until) break;
    }
  }
  co_await d->mclose(rd);
}

TEST(TelemetryCluster, SamplerProducesEvenlySpacedTimeline) {
  Cluster c(telemetry_config(7));
  const Bytes64 len = 512_KiB;
  const int fd = c.create_dataset("data", len);
  c.run_app([&](Cluster& cl) -> Co<void> {
    co_await paced_sweep(cl, fd, len, seconds(1.0));
  });
  auto* tl = c.timeline();
  ASSERT_NE(tl, nullptr);
  ASSERT_GE(tl->sample_count(), 8u);
  EXPECT_EQ(tl->interval(), millis(100));
  const auto& t = tl->times();
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    EXPECT_EQ(t[i] - t[i - 1], millis(100)) << "sample " << i;
  }
  // The read workload shows up as a nonzero mread-delta curve.
  std::int64_t total = 0;
  for (std::int64_t v : tl->series("client.mreads_total.delta")) total += v;
  EXPECT_GT(total, 0);
}

TEST(TelemetryCluster, WatchdogTripsWithinOneSampleAndDumpsFlight) {
  ClusterConfig cfg = telemetry_config(11);
  cfg.telemetry.watchdog = true;
  Cluster c(cfg);
  const Bytes64 len = 256_KiB;
  const int fd = c.create_dataset("data", len);

  // Deliberately break mread conservation from a fixed sim time onward: the
  // mutator edits the *telemetry* sample only, so the cluster itself stays
  // healthy while the watchdog sees a corrupt invariant.
  const SimTime break_at = millis(450);
  c.set_telemetry_mutator([&](MetricsSnapshot& snap) {
    if (c.sim().now() >= break_at) {
      snap.set_counter("client.remote_hits",
                       snap.counter_value("client.mreads_total") + 1000);
    }
  });
  c.run_app([&](Cluster& cl) -> Co<void> {
    co_await paced_sweep(cl, fd, len, seconds(1.0));
  });

  auto* mon = c.health();
  ASSERT_NE(mon, nullptr);
  ASSERT_GT(mon->violations(), 0u);
  // Within one sample interval: the first violating sample is the first one
  // taken at or after break_at.
  const auto& samples = c.timeline()->samples();
  const auto& times = c.timeline()->times();
  std::size_t first_bad = samples.size();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].counter_value("health.violations") > 0) {
      // health.* rows describe the *previous* sample's evaluation; the
      // violation itself happened at or before this sample's time.
      first_bad = i;
      break;
    }
  }
  // The watchdog fired no later than one interval past break_at.
  ASSERT_LT(first_bad, samples.size());
  EXPECT_LE(times[first_bad], break_at + 2 * millis(100));

  // The violation is on the flight record, and the dump names the rule.
  const std::string dump = c.flight_dump("test");
  EXPECT_NE(dump.find("health_violation"), std::string::npos);
  EXPECT_NE(dump.find("conservation.mreads"), std::string::npos);
}

TEST(TelemetryCluster, InjectedFaultLandsInFlightDumpWithPriorTransitions) {
  Cluster c(telemetry_config(13, /*leases=*/true));
  const Bytes64 len = 512_KiB;
  const int fd = c.create_dataset("data", len);
  c.run_app([&](Cluster& cl) -> Co<void> {
    auto* d = cl.dodo();
    const int rd = co_await d->mopen(len, fd, 0);
    EXPECT_GE(rd, 0);
    co_await d->mwrite(rd, 0, nullptr, len);
    co_await cl.sim().sleep(millis(300));
    // Graded pressure first, then the crash: the dump must show the
    // pressure transition and the lease grants that preceded the fault.
    co_await cl.pressure_host(0, 1, 0.5);  // kRising
    co_await cl.sim().sleep(millis(200));
    cl.crash_host(1);
    co_await cl.sim().sleep(millis(300));
    co_await d->mread(rd, 0, nullptr, 16_KiB);
    co_await d->mclose(rd);
  });
  const std::string dump = c.flight_dump("injected-fault");
  const auto fault_at = dump.find("crash_host");
  ASSERT_NE(fault_at, std::string::npos);
  // Time-sorted dump: grants and the pressure transition precede the fault.
  EXPECT_LT(dump.find("lease_grant"), fault_at);
  EXPECT_LT(dump.find("pressure_host"), fault_at);
  EXPECT_NE(dump.find("pressure"), std::string::npos);
}

TEST(TelemetryCluster, GradedPressureResolvesAsReclaimWindowCurve) {
  Cluster c(telemetry_config(17, /*leases=*/true));
  const Bytes64 len = 1_MiB;
  const int fd = c.create_dataset("data", len);
  const SimTime pressure_at = seconds(1.5);
  c.run_app([&](Cluster& cl) -> Co<void> {
    auto* d = cl.dodo();
    const int rd = co_await d->mopen(len, fd, 0);
    EXPECT_GE(rd, 0);
    co_await d->mwrite(rd, 0, nullptr, len);
    const Bytes64 block = 16_KiB;
    bool pressed = false;
    while (cl.sim().now() < seconds(5.0)) {
      for (Bytes64 off = 0; off + block <= len; off += block) {
        co_await d->mread(rd, off, nullptr, block);
        co_await cl.sim().sleep(millis(2));
        if (!pressed && cl.sim().now() >= pressure_at) {
          pressed = true;
          for (int h = 0; h < 3; ++h) {
            co_await cl.pressure_host(h, 1, 0.25);  // kRising, keep 25%
          }
        }
        if (cl.sim().now() >= seconds(5.0)) break;
      }
    }
    co_await d->mclose(rd);
  });
  auto* tl = c.timeline();
  ASSERT_NE(tl, nullptr);
  // Steady phase: no expiry notices before the pressure hits. Reclaim
  // phase: the shrink schedules victims whose notices spike right after.
  const std::int64_t steady =
      tl->window_sum("cmd.lease_expiry_notices.delta", 0, pressure_at);
  const std::int64_t reclaim = tl->window_sum(
      "cmd.lease_expiry_notices.delta", pressure_at, seconds(5.0));
  EXPECT_EQ(steady, 0);
  EXPECT_GT(reclaim, 0);
  EXPECT_GT(tl->window_max("rmd.pressure_shrinks.delta", pressure_at,
                           seconds(5.0)),
            0);
}

TEST(TelemetryCluster, SameSeedRunsExportByteIdenticalTelemetryJson) {
  auto one_run = [](std::uint64_t seed) {
    Cluster c(telemetry_config(seed, /*leases=*/true));
    const Bytes64 len = 512_KiB;
    const int fd = c.create_dataset("data", len);
    c.run_app([&](Cluster& cl) -> Co<void> {
      co_await paced_sweep(cl, fd, len, seconds(1.5));
    });
    c.take_telemetry_sample();
    return TelemetryTimeline::export_json({{"run", c.timeline()}});
  };
  const std::string a = one_run(23);
  const std::string b = one_run(23);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, one_run(24));  // the export carries signal, not schema
}

TEST(TelemetryCluster, TelemetryOffKeepsSnapshotIdenticalToBaseline) {
  // With telemetry fully off the metrics snapshot must not grow new rows:
  // the health_/flight_ sections only exist when their features are on.
  ClusterConfig off;
  off.imd_hosts = 2;
  off.imd_pool = 2_MiB;
  off.materialize = false;
  off.seed = 5;
  Cluster c(off);
  const Bytes64 len = 128_KiB;
  const int fd = c.create_dataset("data", len);
  c.run_app([&](Cluster& cl) -> Co<void> {
    auto* d = cl.dodo();
    const int rd = co_await d->mopen(len, fd, 0);
    co_await d->mwrite(rd, 0, nullptr, len);
    co_await d->mread(rd, 0, nullptr, len);
    co_await d->mclose(rd);
  });
  EXPECT_EQ(c.timeline(), nullptr);
  EXPECT_EQ(c.health(), nullptr);
  EXPECT_EQ(c.flight(), nullptr);
  const std::string json = c.metrics_snapshot().to_json();
  EXPECT_EQ(json.find("health."), std::string::npos);
  EXPECT_EQ(json.find("flight."), std::string::npos);
  EXPECT_EQ(json.find("telemetry."), std::string::npos);
  EXPECT_EQ(c.flight_dump("x"), "");
}

}  // namespace
}  // namespace dodo
