// Integration tests for the Dodo daemons: imd (pool + data plane), cmd
// (IWD/RD, allocation, keep-alive reclamation), rmd (idleness detection and
// recruit/evict), speaking the real wire protocol.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "common/units.hpp"
#include "core/activity.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "core/rmd.hpp"
#include "core/rpc.hpp"
#include "core/wire.hpp"
#include "net/bulk.hpp"
#include "sim/simulator.hpp"

namespace dodo::core {
namespace {

using sim::Co;
using sim::Simulator;

TEST(Recruitment, PoolFormulaMatchesPaper) {
  // 256 MB host with ~50 MB kernel+process+live-files in use: the paper's
  // Table 1 reports ~187 MB available. total - active - lotsfree - 15%.
  const Bytes64 total = 256_MiB;
  const Bytes64 active = 26_MiB;
  const Bytes64 pool = recruit_pool_bytes(total, active, 4_MiB, 0.15);
  EXPECT_EQ(pool, 256_MiB - 26_MiB - 4_MiB - static_cast<Bytes64>(0.15 * 256_MiB));
  EXPECT_NEAR(static_cast<double>(pool) / 1_MiB, 187.6, 1.0);
  // Overloaded machine: nothing to harvest.
  EXPECT_EQ(recruit_pool_bytes(32_MiB, 30_MiB, 4_MiB, 0.15), 0);
}

// ---------------------------------------------------------------------------
// Client-side protocol helpers (what the runtime library does, in miniature)
// ---------------------------------------------------------------------------

struct MopenResult {
  bool ok = false;
  StripeMap map;
  RegionLoc loc;  // first fragment (the whole region at stripe width 1)
};

Co<MopenResult> do_mopen(net::Network& net, net::NodeId node,
                         net::Endpoint cmd, RegionKey key, Bytes64 len,
                         std::uint64_t rid) {
  net::Buf h = make_header(MsgKind::kMopenReq, rid);
  net::Writer w(h);
  put_key(w, key);
  w.i64(len);
  put_endpoint(w, net::Endpoint{node, kClientPort});
  auto rep = co_await rpc_call(net, node, cmd, std::move(h), rid);
  MopenResult res;
  if (!rep) co_return res;
  net::Reader r = body_reader(*rep);
  res.ok = r.u8() != 0;
  (void)r.u8();  // reused flag
  res.map = get_stripes(r);
  if (!res.map.frags.empty() && !res.map.frags.front().empty()) {
    res.loc = res.map.frags.front().primary();
  }
  co_return res;
}

Co<Status> do_region_write(net::Network& net, net::NodeId node,
                           const RegionLoc& loc, Bytes64 off,
                           const net::Buf& data, std::uint64_t rid) {
  auto sock = net.open_ephemeral(node);
  net::Buf h = make_header(MsgKind::kWriteReq, rid);
  net::Writer w(h);
  w.u64(loc.imd_region);
  w.u64(loc.epoch);
  w.i64(off);
  w.i64(static_cast<Bytes64>(data.size()));
  sock->send(net::Endpoint{loc.host, kImdDataPort}, std::move(h));
  auto go = co_await sock->recv_for(millis(500));
  if (!go) co_return Status(Err::kTimeout, "no WriteGo");
  auto env = peek_envelope(*go);
  if (!env || env->kind != MsgKind::kWriteGo) {
    co_return Status(Err::kInval, "unexpected reply");
  }
  const Status st = co_await net::bulk_send(
      *sock, go->src, rid,
      net::BodyView{data.data(), static_cast<Bytes64>(data.size())});
  if (!st.is_ok()) co_return st;
  auto rep = co_await sock->recv_for(millis(500));
  if (!rep) co_return Status(Err::kTimeout, "no WriteRep");
  net::Reader r = body_reader(*rep);
  co_return Status(static_cast<Err>(r.u8()));
}

struct ReadResult {
  Status status;
  net::Buf data;
};

Co<ReadResult> do_region_read(net::Network& net, net::NodeId node,
                              const RegionLoc& loc, Bytes64 off, Bytes64 len,
                              std::uint64_t rid) {
  auto sock = net.open_ephemeral(node);
  net::Buf h = make_header(MsgKind::kReadReq, rid);
  net::Writer w(h);
  w.u64(loc.imd_region);
  w.u64(loc.epoch);
  w.i64(off);
  w.i64(len);
  sock->send(net::Endpoint{loc.host, kImdDataPort}, std::move(h));
  ReadResult res;
  auto rep = co_await sock->recv_for(millis(500));
  if (!rep) {
    res.status = Status(Err::kTimeout, "no ReadRep");
    co_return res;
  }
  net::Reader r = body_reader(*rep);
  const Err code = static_cast<Err>(r.u8());
  if (code != Err::kOk) {
    res.status = Status(code);
    co_return res;
  }
  auto got = co_await net::bulk_recv(*sock, rid);
  res.status = got.status;
  res.data = std::move(got.data);
  co_return res;
}

// ---------------------------------------------------------------------------

struct ImdFixture {
  Simulator sim{11};
  net::Network net{sim, net::NetParams::unet(), 4};
  // A bare cmd endpoint that just absorbs the registration.
  std::unique_ptr<net::Socket> cmd_sock;
  IdleMemoryDaemon imd;

  ImdFixture(ImdParams p = {})
      : cmd_sock(net.open(0, kCmdPort)),
        imd(sim, net, 1, /*epoch=*/7, net::Endpoint{0, kCmdPort}, p) {
    sim.spawn([](net::Socket& s) -> Co<void> {
      for (;;) {
        auto m = co_await s.recv();
        auto env = peek_envelope(m);
        if (env && env->kind == MsgKind::kImdRegister) {
          s.send(m.src, make_header(MsgKind::kImdRegister, env->rid));
        }
      }
    }(*cmd_sock));
    imd.start();
  }

  Co<std::optional<std::uint64_t>> alloc(Bytes64 len, std::uint64_t rid,
                                         std::uint64_t epoch = 7) {
    net::Buf h = make_header(MsgKind::kAllocReq, rid);
    net::Writer w(h);
    w.i64(len);
    w.u64(epoch);  // imd rejects allocs naming a different epoch
    auto rep = co_await rpc_call(net, 0, net::Endpoint{1, kImdCtlPort},
                                 std::move(h), rid);
    if (!rep) co_return std::nullopt;
    net::Reader r = body_reader(*rep);
    if (r.u8() == 0) co_return std::nullopt;
    co_return r.u64();
  }

  /// Sends kFreeReq (optionally as a retransmit of an old rid) and returns
  /// the ok flag, or nullopt on RPC failure.
  Co<std::optional<bool>> free_region(std::uint64_t id, std::uint64_t rid) {
    net::Buf h = make_header(MsgKind::kFreeReq, rid);
    net::Writer w(h);
    w.u64(id);
    auto rep = co_await rpc_call(net, 0, net::Endpoint{1, kImdCtlPort},
                                 std::move(h), rid);
    if (!rep) co_return std::nullopt;
    net::Reader r = body_reader(*rep);
    co_return r.u8() != 0;
  }

  /// Sends kAllocCancel for an abandoned alloc rid; returns the freed flag.
  Co<std::optional<bool>> cancel_alloc(std::uint64_t target_rid,
                                       std::uint64_t rid) {
    net::Buf h = make_header(MsgKind::kAllocCancel, rid);
    net::Writer w(h);
    w.u64(target_rid);
    auto rep = co_await rpc_call(net, 0, net::Endpoint{1, kImdCtlPort},
                                 std::move(h), rid);
    if (!rep) co_return std::nullopt;
    net::Reader r = body_reader(*rep);
    co_return r.u8() != 0;
  }
};

TEST(Imd, AllocWriteReadRoundTrip) {
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto region = co_await f.alloc(100000, 1);
    EXPECT_TRUE(region.has_value());
    if (!region) co_return;
    RegionLoc loc{1, 7, *region, 100000};
    net::Buf data(100000);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31);
    }
    const Status st = co_await do_region_write(f.net, 0, loc, 0, data, 2);
    EXPECT_TRUE(st.is_ok()) << st.to_string();
    auto rd = co_await do_region_read(f.net, 0, loc, 0, 100000, 3);
    EXPECT_TRUE(rd.status.is_ok()) << rd.status.to_string();
    EXPECT_EQ(rd.data, data);
    // Partial read from the middle.
    auto rd2 = co_await do_region_read(f.net, 0, loc, 5000, 64, 4);
    EXPECT_TRUE(rd2.status.is_ok());
    EXPECT_EQ(rd2.data, net::Buf(data.begin() + 5000, data.begin() + 5064));
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.imd.metrics().writes_served, 1u);
  EXPECT_EQ(fx.imd.metrics().reads_served, 2u);
}

TEST(Imd, ReadClipsAtRegionEnd) {
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto region = co_await f.alloc(1000, 1);
    EXPECT_TRUE(region.has_value());
    if (!region) co_return;
    RegionLoc loc{1, 7, *region, 1000};
    auto rd = co_await do_region_read(f.net, 0, loc, 900, 500, 2);
    EXPECT_TRUE(rd.status.is_ok());
    EXPECT_EQ(rd.data.size(), 100u);  // only 100 bytes available
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
}

TEST(Imd, WrongEpochRejected) {
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto region = co_await f.alloc(1000, 1);
    EXPECT_TRUE(region.has_value());
    if (!region) co_return;
    RegionLoc stale{1, /*epoch=*/6, *region, 1000};
    auto rd = co_await do_region_read(f.net, 0, stale, 0, 100, 2);
    EXPECT_EQ(rd.status.code(), Err::kNotFound);
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.imd.metrics().bad_region_requests, 1u);
}

TEST(Imd, UnknownRegionRejected) {
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    RegionLoc bogus{1, 7, 424242, 1000};
    auto rd = co_await do_region_read(f.net, 0, bogus, 0, 100, 2);
    EXPECT_EQ(rd.status.code(), Err::kNotFound);
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
}

TEST(Imd, AllocRetryWithSameRidIsIdempotent) {
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto r1 = co_await f.alloc(1000, 42);
    auto r2 = co_await f.alloc(1000, 42);  // same rid: a "retry"
    EXPECT_TRUE(r1 && r2);
    if (!r1 || !r2) co_return;
    EXPECT_EQ(*r1, *r2);
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.imd.metrics().allocs, 1u);
  EXPECT_EQ(fx.imd.region_count(), 1u);
}

TEST(Imd, AllocNamingWrongEpochIsRejected) {
  // Regression for the epoch-straddling retransmit orphan: an alloc issued
  // against one incarnation of the pool retried into the next (the imd
  // crashed and restarted mid-RPC) must be refused, not allocated — the
  // caller books the region under the old epoch and could never free it.
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto stale = co_await f.alloc(4096, 1, /*epoch=*/6);  // imd is epoch 7
    EXPECT_FALSE(stale.has_value());
    auto fresh = co_await f.alloc(4096, 2, /*epoch=*/7);
    EXPECT_TRUE(fresh.has_value());
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.imd.metrics().stale_alloc_rejects, 1u);
  EXPECT_EQ(fx.imd.region_count(), 1u);
}

TEST(Imd, AllocCancelReleasesRegionAndPoisonsRid) {
  // An alloc whose every reply was lost leaves a region the cmd cannot
  // name. kAllocCancel(rid) must release it, return the pool bytes, and
  // poison the rid so a still-in-flight retransmit of the original alloc
  // replays a failure instead of re-allocating.
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto region = co_await f.alloc(64_KiB, 5);
    EXPECT_TRUE(region.has_value());
    if (!region) co_return;
    auto freed = co_await f.cancel_alloc(/*target_rid=*/5, /*rid=*/6);
    EXPECT_TRUE(freed.has_value() && *freed);
    EXPECT_EQ(f.imd.region_count(), 0u);
    EXPECT_EQ(f.imd.allocated_bytes(), 0);
    // Cancel is idempotent: a retransmitted cancel finds nothing.
    auto again = co_await f.cancel_alloc(5, 7);
    EXPECT_TRUE(again.has_value());
    EXPECT_FALSE(again.value_or(true));
    // Late retransmit of the original alloc: poisoned, must not execute.
    auto late = co_await f.alloc(64_KiB, 5);
    EXPECT_FALSE(late.has_value());
    EXPECT_EQ(f.imd.region_count(), 0u);
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.imd.metrics().allocs_cancelled, 1u);
  EXPECT_EQ(fx.imd.metrics().allocs, 1u);
}

TEST(Imd, PoolExhaustionFailsAlloc) {
  ImdParams p;
  p.pool_bytes = 1_MiB;
  ImdFixture fx(p);
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto r1 = co_await f.alloc(800 * 1024, 1);
    EXPECT_TRUE(r1.has_value());
    auto r2 = co_await f.alloc(800 * 1024, 2);
    EXPECT_FALSE(r2.has_value());
    ok = true;
  }(fx, done));
  fx.sim.run(30_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.imd.metrics().alloc_failures, 1u);
}

TEST(Imd, StopCompletesInFlightTransfer) {
  ImdFixture fx;
  bool read_ok = false;
  bool stopped = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto region = co_await f.alloc(2_MiB, 1);
    EXPECT_TRUE(region.has_value());
    if (!region) co_return;
    RegionLoc loc{1, 7, *region, 2_MiB};
    auto rd = co_await do_region_read(f.net, 0, loc, 0, 2_MiB, 2);
    // The transfer started before the stop: it must complete correctly.
    EXPECT_TRUE(rd.status.is_ok()) << rd.status.to_string();
    EXPECT_EQ(rd.data.size(), static_cast<std::size_t>(2_MiB));
    ok = true;
  }(fx, read_ok));
  // Request the stop shortly after the transfer begins.
  fx.sim.schedule(40_ms, [&] {
    fx.sim.spawn([](ImdFixture& f, bool& s) -> Co<void> {
      co_await f.imd.stop();
      s = true;
    }(fx, stopped));
  });
  fx.sim.run(60_s);
  EXPECT_TRUE(read_ok);
  EXPECT_TRUE(stopped);
  EXPECT_FALSE(fx.imd.running());
}

TEST(Imd, ReplyCacheOverflowKeepsRecentRetriesIdempotent) {
  // Regression for the clear-all reply-cache eviction: push the cache past
  // its capacity right after a free, then replay that free's rid as a stale
  // retransmit. A wholesale clear() forgets the *recent* reply too, so the
  // retry re-executes against a nonexistent region and reports a false
  // failure (ok=0). Bounded FIFO eviction only drops the oldest rids, so
  // the retransmit must replay the cached ok=1 reply and execute nothing.
  ImdParams p;
  p.pool_bytes = 64_MiB;
  ImdFixture fx(p);
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    std::uint64_t rid = 1;
    // Warm the cache close to capacity (one entry per alloc reply).
    const std::size_t warm = f.imd.params().reply_cache_capacity - 6;
    for (std::size_t i = 0; i < warm; ++i) {
      if (!co_await f.alloc(1024, rid++)) {
        ADD_FAILURE() << "warmup alloc failed";
        co_return;
      }
    }
    // The operation whose retry we care about.
    auto victim = co_await f.alloc(1024, rid++);
    EXPECT_TRUE(victim.has_value());
    if (!victim) co_return;
    const std::uint64_t free_rid = rid++;
    auto freed = co_await f.free_region(*victim, free_rid);
    EXPECT_TRUE(freed.has_value());
    if (!freed) co_return;
    EXPECT_TRUE(*freed);
    EXPECT_EQ(f.imd.metrics().frees, 1u);
    // Now overflow: >capacity total entries. clear-all would wipe free_rid's
    // cached reply here; FIFO eviction drops only rids 1..N from the warmup.
    for (int i = 0; i < 16; ++i) {
      if (!co_await f.alloc(1024, rid++)) {
        ADD_FAILURE() << "overflow alloc failed";
        co_return;
      }
    }
    const std::size_t regions_before = f.imd.region_count();
    // Stale retransmit of the free. Must be answered from cache: still ok=1,
    // and no re-execution (frees metric unchanged, no pool double-free).
    auto replay = co_await f.free_region(*victim, free_rid);
    EXPECT_TRUE(replay.has_value());
    if (!replay) co_return;
    EXPECT_TRUE(*replay) << "retransmitted free re-executed and failed: the "
                            "reply cache forgot a recent rid";
    EXPECT_EQ(f.imd.metrics().frees, 1u);
    EXPECT_EQ(f.imd.region_count(), regions_before);
    EXPECT_TRUE(f.imd.pool().check_invariants());
    ok = true;
  }(fx, done));
  fx.sim.run(600_s);
  EXPECT_TRUE(done);
  // The cache honored its bound the whole time.
  EXPECT_LE(fx.imd.reply_cache_size(), fx.imd.params().reply_cache_capacity);
}

TEST(Imd, ReplyCacheOverflowKeepsAllocRetryFromOrphaningARegion) {
  // Same overflow setup, alloc flavor: re-executing a retried alloc mints a
  // second region nobody maps — pool bytes leak with no owner. The cached
  // reply must return the original region id instead.
  ImdParams p;
  p.pool_bytes = 64_MiB;
  ImdFixture fx(p);
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    std::uint64_t rid = 1;
    const std::size_t warm = f.imd.params().reply_cache_capacity - 4;
    for (std::size_t i = 0; i < warm; ++i) {
      if (!co_await f.alloc(1024, rid++)) {
        ADD_FAILURE() << "warmup alloc failed";
        co_return;
      }
    }
    const std::uint64_t alloc_rid = rid++;
    auto first = co_await f.alloc(4096, alloc_rid);
    EXPECT_TRUE(first.has_value());
    if (!first) co_return;
    for (int i = 0; i < 16; ++i) {
      if (!co_await f.alloc(1024, rid++)) {
        ADD_FAILURE() << "overflow alloc failed";
        co_return;
      }
    }
    const std::size_t regions_before = f.imd.region_count();
    const std::uint64_t allocs_before = f.imd.metrics().allocs;
    auto retry = co_await f.alloc(4096, alloc_rid);  // stale retransmit
    EXPECT_TRUE(retry.has_value());
    if (!retry) co_return;
    EXPECT_EQ(*retry, *first) << "alloc retry re-executed: orphaned region";
    EXPECT_EQ(f.imd.region_count(), regions_before);
    EXPECT_EQ(f.imd.metrics().allocs, allocs_before);
    ok = true;
  }(fx, done));
  fx.sim.run(600_s);
  EXPECT_TRUE(done);
}

TEST(Imd, WriteRacingFreeLeavesPoolConsistent) {
  // A region is freed while its handle_write is suspended in bulk_recv: the
  // write must complete with kNotFound (not touch recycled pool memory),
  // and the allocator must account the region as gone.
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    auto region = co_await f.alloc(256_KiB, 1);
    EXPECT_TRUE(region.has_value());
    if (!region) co_return;
    auto sock = f.net.open_ephemeral(0);
    net::Buf h = make_header(MsgKind::kWriteReq, 2);
    net::Writer w(h);
    w.u64(*region);
    w.u64(7);  // epoch
    w.i64(0);
    w.i64(256_KiB);
    sock->send(net::Endpoint{1, kImdDataPort}, std::move(h));
    auto go = co_await sock->recv_for(millis(500));
    EXPECT_TRUE(go.has_value());
    if (!go) co_return;
    EXPECT_EQ(peek_envelope(*go)->kind, MsgKind::kWriteGo);
    // handle_write is now suspended in bulk_recv. Free the region under it.
    auto freed = co_await f.free_region(*region, 3);
    EXPECT_TRUE(freed.has_value());
    if (!freed) co_return;
    EXPECT_TRUE(*freed);
    // Deliver the bulk data anyway (a slow/retransmitting client).
    net::Buf data(256_KiB, 0x5A);
    const Status st = co_await net::bulk_send(
        *sock, go->src, 2,
        net::BodyView{data.data(), static_cast<Bytes64>(data.size())});
    EXPECT_TRUE(st.is_ok()) << st.to_string();
    auto rep = co_await sock->recv_for(millis(500));
    EXPECT_TRUE(rep.has_value());
    if (!rep) co_return;
    net::Reader r = body_reader(*rep);
    EXPECT_EQ(static_cast<Err>(r.u8()), Err::kNotFound);
    ok = true;
  }(fx, done));
  fx.sim.run(60_s);
  EXPECT_TRUE(done);
  // The freed region stayed freed; nothing was written into recycled pool
  // memory and the allocator's books balance.
  EXPECT_EQ(fx.imd.region_count(), 0u);
  EXPECT_EQ(fx.imd.pool().allocated_block_count(), 0u);
  EXPECT_EQ(fx.imd.pool().total_free(), fx.imd.pool().pool_size());
  EXPECT_TRUE(fx.imd.pool().check_invariants());
  EXPECT_EQ(fx.imd.metrics().writes_served, 0u);
}

// ---------------------------------------------------------------------------
// RPC backoff
// ---------------------------------------------------------------------------

TEST(Rpc, AttemptTimeoutBacksOffExponentiallyWithDeterministicJitter) {
  RpcParams p;
  p.timeout = millis(200);
  p.retries = 5;
  p.backoff = 2.0;
  p.max_timeout = seconds(2.0);
  p.jitter = 0.25;
  const std::uint64_t rid = 0xDEADBEEF;
  Duration prev = 0;
  for (int attempt = 0; attempt <= p.retries; ++attempt) {
    double base = static_cast<double>(p.timeout);
    for (int i = 0; i < attempt; ++i) base *= p.backoff;
    base = std::min(base, static_cast<double>(p.max_timeout));
    const Duration t = rpc_attempt_timeout(p, rid, attempt);
    // Within [base, base * (1 + jitter)].
    EXPECT_GE(t, static_cast<Duration>(base)) << "attempt " << attempt;
    EXPECT_LE(t, static_cast<Duration>(base * (1.0 + p.jitter)) + 1)
        << "attempt " << attempt;
    // Deterministic: same (rid, attempt) always yields the same timeout.
    EXPECT_EQ(t, rpc_attempt_timeout(p, rid, attempt));
    EXPECT_GE(t, prev);  // never shrinks below the previous attempt's base
    prev = static_cast<Duration>(base);
  }
  // The cap engages: attempts past the cap stop growing (modulo jitter).
  const Duration capped = rpc_attempt_timeout(p, rid, 10);
  EXPECT_LE(capped,
            static_cast<Duration>(static_cast<double>(p.max_timeout) *
                                  (1.0 + p.jitter)) + 1);
  // Different rids de-synchronize: some pair of rids must jitter apart.
  bool diverged = false;
  for (std::uint64_t r = 1; r < 16 && !diverged; ++r) {
    diverged = rpc_attempt_timeout(p, r, 1) != rpc_attempt_timeout(p, r + 1, 1);
  }
  EXPECT_TRUE(diverged);
}

TEST(Rpc, CallAgainstBlackHoleSpendsExactlyTheBackoffSchedule) {
  // rpc_call to a node with nothing bound: every attempt times out, and the
  // elapsed sim time is exactly the sum of the per-attempt timeouts — the
  // deterministic-jitter schedule, not wall-clock noise.
  ImdFixture fx;
  bool done = false;
  fx.sim.spawn([](ImdFixture& f, bool& ok) -> Co<void> {
    RpcParams p;
    p.timeout = millis(100);
    p.retries = 3;
    const std::uint64_t rid = 77;
    Duration expected = 0;
    for (int a = 0; a <= p.retries; ++a) {
      expected += rpc_attempt_timeout(p, rid, a);
    }
    const SimTime t0 = f.sim.now();
    net::Buf h = make_header(MsgKind::kAllocReq, rid);
    net::Writer w(h);
    w.i64(64);
    auto rep = co_await rpc_call(f.net, 0, net::Endpoint{3, 999},
                                 std::move(h), rid, p);
    EXPECT_FALSE(rep.has_value());
    EXPECT_EQ(f.sim.now() - t0, expected);
    ok = true;
  }(fx, done));
  fx.sim.run(60_s);
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// cmd
// ---------------------------------------------------------------------------

struct ClusterFixture {
  Simulator sim{13};
  net::Network net{sim, net::NetParams::unet(), 8};
  CentralManager cmd{sim, net, 0};
  std::vector<std::unique_ptr<IdleMemoryDaemon>> imds;

  explicit ClusterFixture(int hosts = 2, Bytes64 pool = 8_MiB) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      ImdParams p;
      p.pool_bytes = pool;
      imds.push_back(std::make_unique<IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 1), /*epoch=*/1,
          cmd.endpoint(), p));
      imds.back()->start();
    }
  }
};

TEST(Cmd, MopenAllocatesOnSomeIdleHost) {
  ClusterFixture fx;
  MopenResult res;
  fx.sim.spawn([](ClusterFixture& f, MopenResult& out) -> Co<void> {
    co_await f.sim.sleep(10_ms);  // let imds register
    out = co_await do_mopen(f.net, 7, f.cmd.endpoint(),
                            RegionKey{100, 0, 1}, 1_MiB, 1);
  }(fx, res));
  // Stop before the keep-alive reclaimer notices this fixture client never
  // answers pings (that behaviour has its own test below).
  fx.sim.run(1_s);
  ASSERT_TRUE(res.ok);
  EXPECT_GE(res.loc.host, 1u);
  EXPECT_LE(res.loc.host, 2u);
  EXPECT_EQ(res.loc.len, 1_MiB);
  EXPECT_EQ(fx.cmd.region_count(), 1u);
}

TEST(Cmd, MopenReusesPersistentRegion) {
  ClusterFixture fx;
  MopenResult first, second;
  fx.sim.spawn([](ClusterFixture& f, MopenResult& a, MopenResult& b) -> Co<void> {
    co_await f.sim.sleep(10_ms);
    a = co_await do_mopen(f.net, 7, f.cmd.endpoint(), RegionKey{100, 4096, 1},
                          64_KiB, 1);
    b = co_await do_mopen(f.net, 7, f.cmd.endpoint(), RegionKey{100, 4096, 1},
                          64_KiB, 2);
  }(fx, first, second));
  fx.sim.run(1_s);
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_EQ(first.loc.host, second.loc.host);
  EXPECT_EQ(first.loc.imd_region, second.loc.imd_region);
  EXPECT_EQ(fx.cmd.metrics().mopen_reuses, 1u);
  EXPECT_EQ(fx.cmd.region_count(), 1u);
}

TEST(Cmd, AllocationFailsOverToHostWithSpace) {
  // Host 1 pool is tiny; host 2 can hold the region. The cmd's random pick
  // must end up on host 2 regardless of order, since host 1 refuses.
  ClusterFixture fx(1, 64_KiB);
  {
    ImdParams p;
    p.pool_bytes = 8_MiB;
    fx.imds.push_back(std::make_unique<IdleMemoryDaemon>(
        fx.sim, fx.net, 2, 1, fx.cmd.endpoint(), p));
    fx.imds.back()->start();
  }
  MopenResult res;
  fx.sim.spawn([](ClusterFixture& f, MopenResult& out) -> Co<void> {
    co_await f.sim.sleep(10_ms);
    out = co_await do_mopen(f.net, 7, f.cmd.endpoint(), RegionKey{1, 0, 1},
                            1_MiB, 1);
  }(fx, res));
  fx.sim.run(30_s);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.loc.host, 2u);
}

TEST(Cmd, MopenFailsWhenNoHostHasSpace) {
  ClusterFixture fx(2, 64_KiB);
  MopenResult res;
  res.ok = true;
  fx.sim.spawn([](ClusterFixture& f, MopenResult& out) -> Co<void> {
    co_await f.sim.sleep(10_ms);
    out = co_await do_mopen(f.net, 7, f.cmd.endpoint(), RegionKey{1, 0, 1},
                            1_MiB, 1);
  }(fx, res));
  fx.sim.run(30_s);
  EXPECT_FALSE(res.ok);
  EXPECT_GE(fx.cmd.metrics().alloc_failures, 1u);
}

TEST(Cmd, BusyHostInvalidatesItsRegions) {
  ClusterFixture fx(1);
  MopenResult res, recheck;
  bool checked = false;
  fx.sim.spawn([](ClusterFixture& f, MopenResult& a, MopenResult& c,
                  bool& done) -> Co<void> {
    co_await f.sim.sleep(10_ms);
    a = co_await do_mopen(f.net, 7, f.cmd.endpoint(), RegionKey{5, 0, 1},
                          64_KiB, 1);
    // rmd reports the host busy (owner came back).
    auto s = f.net.open_ephemeral(7);
    net::Buf h = make_header(MsgKind::kHostStatus, 0);
    net::Writer w(h);
    w.u32(1);
    w.u8(0);
    s->send(f.cmd.endpoint(), std::move(h));
    co_await f.sim.sleep(10_ms);
    // checkAlloc must now fail and drop the region from the RD.
    net::Buf h2 = make_header(MsgKind::kCheckAllocReq, 9);
    net::Writer w2(h2);
    put_key(w2, RegionKey{5, 0, 1});
    auto rep = co_await rpc_call(f.net, 7, f.cmd.endpoint(), std::move(h2), 9);
    EXPECT_TRUE(rep.has_value());
    if (!rep) co_return;
    net::Reader r = body_reader(*rep);
    c.ok = r.u8() != 0;
    done = true;
  }(fx, res, recheck, checked));
  fx.sim.run(30_s);
  ASSERT_TRUE(checked);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(recheck.ok);
  EXPECT_EQ(fx.cmd.region_count(), 0u);
  EXPECT_EQ(fx.cmd.metrics().stale_regions_dropped, 1u);
}

TEST(Cmd, KeepaliveReclaimsDeadClientRegions) {
  ClusterFixture fx(1);
  bool opened = false;
  // A client that answers no pings: mopen from a node with no listener on
  // kClientPort (the rpc reply socket is ephemeral and closes right away).
  fx.sim.spawn([](ClusterFixture& f, bool& ok) -> Co<void> {
    co_await f.sim.sleep(10_ms);
    auto res = co_await do_mopen(f.net, 7, f.cmd.endpoint(),
                                 RegionKey{8, 0, 33}, 64_KiB, 1);
    ok = res.ok;
  }(fx, opened));
  fx.sim.run(60_s);
  EXPECT_TRUE(opened);
  // After several missed keep-alives the cmd reclaims everything client 33
  // owned, and the imd's pool is whole again.
  EXPECT_EQ(fx.cmd.region_count(), 0u);
  EXPECT_GE(fx.cmd.metrics().clients_reclaimed, 1u);
  EXPECT_EQ(fx.cmd.metrics().regions_reclaimed, 1u);
  EXPECT_EQ(fx.imds[0]->region_count(), 0u);
}

TEST(Cmd, PingPongKeepsClientAlive) {
  ClusterFixture fx(1);
  bool opened = false;
  // A live client: responds to pings on its control port.
  auto ctl = fx.net.open(7, kClientPort);
  fx.sim.spawn([](net::Socket& s) -> Co<void> {
    for (;;) {
      auto m = co_await s.recv();
      auto env = peek_envelope(m);
      if (env && env->kind == MsgKind::kPing) {
        s.send(m.src, make_header(MsgKind::kPong, env->rid));
      }
    }
  }(*ctl));
  fx.sim.spawn([](ClusterFixture& f, bool& ok) -> Co<void> {
    co_await f.sim.sleep(10_ms);
    auto res = co_await do_mopen(f.net, 7, f.cmd.endpoint(),
                                 RegionKey{8, 0, 44}, 64_KiB, 1);
    ok = res.ok;
  }(fx, opened));
  fx.sim.run(60_s);
  EXPECT_TRUE(opened);
  EXPECT_EQ(fx.cmd.region_count(), 1u);
  EXPECT_EQ(fx.cmd.metrics().clients_reclaimed, 0u);
  EXPECT_GT(fx.cmd.metrics().pings_sent, 10u);
}

// ---------------------------------------------------------------------------
// rmd
// ---------------------------------------------------------------------------

TEST(Rmd, RecruitsAfterFiveIdleMinutes) {
  Simulator sim(17);
  net::Network net(sim, net::NetParams::unet(), 3);
  CentralManager cmd(sim, net, 0);
  cmd.start();
  AlwaysIdleActivity activity(128_MiB, 20_MiB);
  ImdParams imd_p;
  imd_p.pool_bytes = 0;  // derive from activity
  ResourceMonitor rmd(sim, net, 1, cmd.endpoint(), activity, RmdParams{},
                      imd_p);
  rmd.start();
  sim.run(4 * 60_s);
  EXPECT_FALSE(rmd.recruited());  // not yet: threshold is 5 minutes
  sim.run(6 * 60_s);
  ASSERT_TRUE(rmd.recruited());
  EXPECT_EQ(rmd.metrics().recruitments, 1u);
  // Pool follows the §3.1 formula.
  EXPECT_EQ(rmd.imd()->pool().pool_size(),
            recruit_pool_bytes(128_MiB, 20_MiB, 4_MiB, 0.15));
  EXPECT_EQ(cmd.idle_host_count(), 1u);
}

TEST(Rmd, EvictsWhenOwnerReturnsAndRerecruitsWithNewEpoch) {
  Simulator sim(19);
  net::Network net(sim, net::NetParams::unet(), 3);
  CentralManager cmd(sim, net, 0);
  cmd.start();
  // Busy window from t=60s to t=120s.
  ScriptedActivity activity(128_MiB, 20_MiB, 64_MiB,
                            {{60_s, 120_s}});
  RmdParams rp;
  rp.start_recruited = true;
  ResourceMonitor rmd(sim, net, 1, cmd.endpoint(), activity, rp, ImdParams{});
  rmd.start();

  sim.run(30_s);
  ASSERT_TRUE(rmd.recruited());
  const std::uint64_t epoch1 = rmd.imd()->epoch();

  sim.run(90_s);  // inside the busy window
  EXPECT_FALSE(rmd.recruited());
  EXPECT_EQ(rmd.metrics().evictions, 1u);
  EXPECT_EQ(cmd.idle_host_count(), 0u);

  sim.run(120_s + 5 * 60_s + 10_s);  // busy ends at 120s; idle threshold
  ASSERT_TRUE(rmd.recruited());
  EXPECT_GT(rmd.imd()->epoch(), epoch1);
  EXPECT_EQ(cmd.idle_host_count(), 1u);
}

}  // namespace
}  // namespace dodo::core
