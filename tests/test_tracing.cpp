// End-to-end causal tracing tests: wire propagation of TraceContext across
// process boundaries, exactly-one-server-span under duplicate delivery and
// RPC retry, deterministic Chrome trace-event export, and the
// latency-breakdown gauges derived from critical-path attribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"
#include "sim/simulator.hpp"

namespace dodo {
namespace {

cluster::ClusterConfig trace_config(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 2;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 256_KiB;
  cfg.page_cache_dodo = 128_KiB;
  cfg.seed = seed;
  cfg.record_spans = true;
  return cfg;
}

constexpr Bytes64 kLen = 128_KiB;

/// One full round trip through the remote path: allocate, push, pull, free.
sim::Co<void> one_round_trip(cluster::Cluster& cl, int fd, int reads) {
  auto& d = *cl.dodo();
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(kLen), 0x5a);
  const int rd = co_await d.mopen(kLen, fd, 0);
  if (rd < 0) {
    ADD_FAILURE() << "mopen failed: " << rd;
    co_return;
  }
  co_await d.mwrite(rd, 0, buf.data(), kLen);
  for (int i = 0; i < reads; ++i) {
    co_await d.mread(rd, 0, buf.data(), kLen);
  }
  co_await d.mclose(rd);
}

const obs::MergedSpan* find_by_id(const std::vector<obs::MergedSpan>& spans,
                                  std::uint64_t id) {
  for (const obs::MergedSpan& m : spans) {
    if (m.span.id == id) return &m;
  }
  return nullptr;
}

std::size_t count_named(const std::vector<obs::MergedSpan>& spans,
                        const std::string& name) {
  std::size_t n = 0;
  for (const obs::MergedSpan& m : spans) {
    if (m.span.name == name) ++n;
  }
  return n;
}

TEST(Tracing, MreadParentsAcrossProcessBoundaries) {
  cluster::Cluster c(trace_config(21));
  const int fd = c.create_dataset("data", kLen);
  c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
    co_await one_round_trip(cl, fd, 1);
  });
  const std::vector<obs::MergedSpan> spans = c.merged_spans();
  ASSERT_FALSE(spans.empty());

  // Walk up from the imd's server-side read span: it must parent to the
  // client's wire-wait span, which parents to the client.mread root — the
  // whole chain stitched across process boundaries by the wire header.
  const obs::MergedSpan* imd_read = nullptr;
  for (const obs::MergedSpan& m : spans) {
    if (m.span.name == "imd.read" && m.daemon == "imd") {
      imd_read = &m;
      break;
    }
  }
  ASSERT_NE(imd_read, nullptr) << "no server-side read span recorded";

  const obs::MergedSpan* wait = find_by_id(spans, imd_read->span.parent);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->span.name, "net.read");
  EXPECT_EQ(wait->daemon, "client");  // parent lives on the client track

  const obs::MergedSpan* root = find_by_id(spans, wait->span.parent);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->span.name, "client.mread");
  EXPECT_EQ(root->span.parent, 0u);
  // The trace id is the root span's own id, shared by the whole tree.
  EXPECT_EQ(root->span.trace, root->span.id);
  EXPECT_EQ(imd_read->span.trace, root->span.id);

  // The bulk transfer shows up on both sides of the wire, same trace.
  bool bulk_send_on_imd = false;
  bool bulk_recv_on_client = false;
  for (const obs::MergedSpan& m : spans) {
    if (m.span.trace != root->span.id) continue;
    if (m.span.name == "bulk.send" && m.daemon == "imd") bulk_send_on_imd = true;
    if (m.span.name == "bulk.recv" && m.daemon == "client") {
      bulk_recv_on_client = true;
    }
  }
  EXPECT_TRUE(bulk_send_on_imd);
  EXPECT_TRUE(bulk_recv_on_client);
}

TEST(Tracing, SameSeedChromeJsonIsByteIdentical) {
  auto run = [](std::uint64_t seed) {
    cluster::Cluster c(trace_config(seed));
    const int fd = c.create_dataset("data", kLen);
    c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
      co_await one_round_trip(cl, fd, 3);
    });
    return c.trace_chrome_json();
  };
  const std::string a = run(9);
  const std::string b = run(9);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.rfind("{\"traceEvents\":[", 0), 0u);  // starts the JSON object
  EXPECT_NE(a.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.find("process_name"), std::string::npos);
}

TEST(Tracing, DuplicateDataRequestOpensExactlyOneServerSpan) {
  cluster::Cluster c(trace_config(33));
  // Deliver every imd read request twice: the imd's data-path dedup must
  // drop the copy, so no second imd.read span (and no second bulk push).
  c.network().set_dup_filter([](const net::Message& m) {
    const auto env = core::peek_envelope(m);
    return env && env->kind == core::MsgKind::kReadReq;
  });
  const int fd = c.create_dataset("data", kLen);
  c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
    co_await one_round_trip(cl, fd, 4);
  });
  c.network().set_dup_filter(nullptr);

  EXPECT_GT(c.network().metrics().datagrams_duplicated, 0u);
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_GT(s.counter_value("imd.dup_requests_dropped"), 0u);
  // Exactly one server span per read actually served, duplicates or not.
  const std::vector<obs::MergedSpan> spans = c.merged_spans();
  EXPECT_EQ(count_named(spans, "imd.read"),
            s.counter_value("imd.reads_served"));
}

TEST(Tracing, LostMopenReplyRetriesButOpensOneCmdSpan) {
  cluster::Cluster c(trace_config(47));
  // Drop the first mopen reply: the client retransmits the same rid, the
  // cmd's reply cache replays the cached answer, and no second handler span
  // opens — exactly-one-span under retry.
  bool dropped = false;
  c.network().set_drop_filter([&dropped](const net::Message& m) {
    if (dropped) return false;
    const auto env = core::peek_envelope(m);
    if (env && env->kind == core::MsgKind::kMopenRep) {
      dropped = true;
      return true;
    }
    return false;
  });
  const int fd = c.create_dataset("data", kLen);
  c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
    co_await one_round_trip(cl, fd, 1);
  });
  c.network().set_drop_filter(nullptr);

  EXPECT_TRUE(dropped);
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_EQ(s.counter_value("cmd.mopens"), 1u);
  const std::vector<obs::MergedSpan> spans = c.merged_spans();
  EXPECT_EQ(count_named(spans, "cmd.mopen"), 1u);
  // The one cmd span still parents into the client's mopen wait span.
  for (const obs::MergedSpan& m : spans) {
    if (m.span.name != "cmd.mopen") continue;
    const obs::MergedSpan* p = find_by_id(spans, m.span.parent);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->daemon, "client");
  }
}

TEST(Tracing, LatencyBreakdownGaugesCoverRootOperations) {
  cluster::Cluster c(trace_config(5));
  const int fd = c.create_dataset("data", kLen);
  c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
    co_await one_round_trip(cl, fd, 2);
  });
  const std::vector<obs::TraceSummary> traces =
      obs::analyze_traces(c.merged_spans());
  ASSERT_FALSE(traces.empty());
  obs::MetricsSnapshot out;
  obs::export_latency_breakdown(traces, out);
  EXPECT_GT(out.gauge_value("latency_breakdown.traces"), 0);
  EXPECT_GT(out.gauge_value("latency_breakdown.client.mread.count"), 0);
  EXPECT_GT(out.gauge_value("latency_breakdown.client.mread.total.p50_ns"), 0);
  EXPECT_GT(out.gauge_value("latency_breakdown.client.mread.total.p99_ns"), 0);
  // A remote fill moves real bytes, so bulk time is attributed.
  EXPECT_GT(
      out.gauge_value(std::string("latency_breakdown.client.mread.") +
                      obs::segment_name(obs::Segment::kBulk) + ".p50_ns"),
      0);
}

TEST(Tracing, QuiesceClosesEveryOpenSpanAndCountsThem) {
  cluster::Cluster c(trace_config(13));
  const int fd = c.create_dataset("data", kLen);
  c.run_app([fd](cluster::Cluster& cl) -> sim::Co<void> {
    co_await one_round_trip(cl, fd, 1);
  });
  // Long-lived loop spans (pings, keepalives) are still open when the app
  // exits; quiesce must stamp them, leaving no end<start rows.
  const std::vector<obs::MergedSpan> spans = c.merged_spans();
  for (const obs::MergedSpan& m : spans) {
    EXPECT_GE(m.span.end, m.span.start) << m.span.name;
  }
  EXPECT_GE(c.spans_open_at_quiesce(), 0);
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_EQ(s.gauge_value("obs.spans_open_at_quiesce"),
            c.spans_open_at_quiesce());
}

}  // namespace
}  // namespace dodo
